//! Experiment E5 — the Figures 1–2 interactive flow, end to end through
//! the engine: search → view → profile popup → explore a member → save
//! as SVG, plus the multi-vertex "+" button.

use c_explorer::prelude::*;
use cx_explorer::Profile;

fn demo_engine(n: usize) -> Engine {
    let (graph, areas) = dblp_like(&DblpParams::scaled(n, 42));
    let profiles = cx_datagen::generate_profiles(&graph, &areas, 3);
    let records: Vec<(VertexId, Profile)> = profiles
        .into_iter()
        .map(|p| {
            (
                p.vertex,
                Profile {
                    name: p.name,
                    areas: p.areas,
                    institutes: p.institutes,
                    interests: p.interests,
                },
            )
        })
        .collect();
    let engine = Engine::with_graph("dblp", graph);
    engine.set_profiles(None, records).unwrap();
    engine
}

#[test]
fn search_view_profile_explore_loop() {
    let engine = demo_engine(3000);
    let snap = engine.snapshot(None).unwrap();
    let g = &*snap.graph;
    let hub = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
    let hub_label = g.label(hub).to_owned();

    // Search (Figure 1).
    let communities = engine.search("acq", &QuerySpec::by_label(hub_label).k(4)).unwrap();
    assert!(!communities.is_empty(), "hub must have a community");
    let first = &communities[0];
    assert!(first.contains(hub));
    assert!(!first.theme(g).is_empty(), "ACQ communities carry a theme");

    // Display: layout in bounds, query vertex highlighted.
    let scene = engine
        .display(None, first, LayoutAlgorithm::default_force(), Some(hub))
        .unwrap();
    assert_eq!(scene.vertex_count(), first.len());
    assert!(scene.in_bounds());
    let hi = scene.highlight.expect("query vertex highlighted");
    assert_eq!(scene.vertices[hi].0, hub);
    // Save-as-SVG path works.
    assert!(scene.to_svg().starts_with("<svg"));

    // The hub is a top-degree author, so it has a profile (Figure 2).
    let profile = engine.profile(None, hub).unwrap().expect("hub is renowned");
    assert!(!profile.interests.is_empty());

    // Explore a member's community.
    let member = *first.vertices().iter().find(|&&v| v != hub).unwrap();
    let member_label = g.label(member).to_owned();
    let second = engine.search("acq", &QuerySpec::by_label(member_label).k(4)).unwrap();
    assert!(!second.is_empty(), "member should have a k=4 community too");
    assert!(second[0].contains(member));
}

#[test]
fn multi_vertex_plus_button() {
    let engine = demo_engine(2000);
    let snap = engine.snapshot(None).unwrap();
    let g = &*snap.graph;
    let hub = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
    // Jointly query the hub and its strongest neighbour.
    let buddy = *g
        .neighbors(hub)
        .iter()
        .max_by_key(|&&v| g.degree(v))
        .expect("hub has neighbours");
    let spec = QuerySpec::by_labels([g.label(hub), g.label(buddy)]).k(3);
    let joint = engine.search("acq", &spec).unwrap();
    if let Some(c) = joint.first() {
        assert!(c.contains(hub));
        assert!(c.contains(buddy));
        assert!(c.min_internal_degree(g) >= 3);
    }
    // Single-vertex answers contain the joint one's members count-wise.
    let single = engine.search("acq", &QuerySpec::by_label(g.label(hub)).k(3)).unwrap();
    assert!(!single.is_empty());
}

#[test]
fn suggestion_box_finds_authors() {
    let engine = demo_engine(1000);
    let hits = engine.suggest(None, "author-1", 5).unwrap();
    assert!(!hits.is_empty());
    assert!(hits.len() <= 5);
    assert!(hits[0].1.contains("author-1"));
    // Exact match ranks first.
    let exact = engine.suggest(None, "author-42", 5).unwrap();
    assert_eq!(exact[0].1, "author-42");
}

#[test]
fn switching_algorithms_on_same_query() {
    let engine = demo_engine(2000);
    let snap = engine.snapshot(None).unwrap();
    let g = &*snap.graph;
    let hub = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
    let spec = QuerySpec::by_label(g.label(hub)).k(4);
    for algo in ["acq", "acq-inc-s", "acq-inc-t", "global", "global-maxmin", "local", "ktruss", "codicil"] {
        let out = engine.search(algo, &spec).unwrap();
        for c in &out {
            assert!(c.contains(hub), "{algo} community must contain the query vertex");
        }
    }
}
