//! Experiment E1 — the paper's figures as executable assertions, driven
//! through the public facade crate exactly as a downstream user would.

use c_explorer::prelude::*;

/// Figure 5(a)+(b): the example graph's CL-tree has the paper's exact
/// shape — root {J} at level 0, children {F,G} and {H,I} at level 1,
/// {E} at level 2 under {F,G}, {A,B,C,D} at level 3 under {E}.
#[test]
fn figure5_cltree_shape() {
    let g = cx_datagen::figure5_graph();
    let tree = ClTree::build(&g);
    assert_eq!(tree.node_count(), 5);
    assert_eq!(tree.height(), 4);
    let names = |vs: &[VertexId]| -> Vec<String> {
        vs.iter().map(|&v| g.label(v).to_owned()).collect()
    };
    let root = tree.node(tree.root());
    assert_eq!(root.level, 0);
    assert_eq!(names(&root.vertices), ["J"]);
    // The core-number table of Figure 5(b).
    let expect = [
        ("A", 3), ("B", 3), ("C", 3), ("D", 3),
        ("E", 2),
        ("F", 1), ("G", 1), ("H", 1), ("I", 1),
        ("J", 0),
    ];
    for (label, core) in expect {
        assert_eq!(tree.core(g.vertex_by_label(label).unwrap()), core, "core({label})");
    }
}

/// Section 3.2's worked ACQ example: q=A, k=2, S={w,x,y} →
/// the subgraph {A, C, D} sharing exactly {x, y} — for all four
/// query strategies.
#[test]
fn figure5_acq_worked_example() {
    let g = cx_datagen::figure5_graph();
    let tree = ClTree::build(&g);
    let q = g.vertex_by_label("A").unwrap();
    let s: Vec<KeywordId> =
        ["w", "x", "y"].iter().map(|n| g.interner().get(n).unwrap()).collect();
    for strategy in AcqStrategy::ALL {
        let res = cx_acq::acq(&g, &tree, q, &AcqOptions::with_k(2).keywords(s.clone()), strategy);
        assert_eq!(res.communities.len(), 1, "{}", strategy.name());
        let c = &res.communities[0];
        let members: Vec<&str> = c.vertices().iter().map(|&v| g.label(v)).collect();
        assert_eq!(members, ["A", "C", "D"], "{}", strategy.name());
        let mut theme = c.theme(&g);
        theme.sort();
        assert_eq!(theme, ["x", "y"], "{}", strategy.name());
    }
}

/// Figure 6(a)'s qualitative shape on the DBLP-like workload:
/// Global returns one huge community; Local and ACQ return small ones;
/// ACQ may return several; ACQ wins CPJ and CMF against Global.
#[test]
fn figure6a_shape() {
    let (g, _) = dblp_like(&DblpParams::scaled(4000, 42));
    let hub = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
    let label = g.label(hub).to_owned();
    let engine = Engine::with_graph("dblp", g);
    let spec = QuerySpec::by_label(label).k(4);
    let report = engine.compare(None, &["global", "local", "acq"], &spec).unwrap();
    let row = |m: &str| report.rows.iter().find(|r| r.method == m).unwrap();

    assert!(row("global").communities == 1);
    assert!(
        row("global").avg_vertices >= 10.0 * row("acq").avg_vertices,
        "global {} not ≫ acq {}",
        row("global").avg_vertices,
        row("acq").avg_vertices
    );
    assert!(row("local").avg_vertices < row("global").avg_vertices);
    assert!(row("acq").cpj > row("global").cpj, "ACQ must win CPJ");
    assert!(row("acq").cmf > row("global").cmf, "ACQ must win CMF");
    // Every ACQ community satisfies the degree constraint.
    let snap = engine.snapshot(None).unwrap();
    let g = &*snap.graph;
    for c in &row("acq").results {
        assert!(c.min_internal_degree(g) >= 4);
    }
}

/// The "Dec is *generally* faster" claim (E7), measured as verification
/// work aggregated over hub queries (for an individual query whose answer
/// sits mid-lattice, Dec can examine more subsets — the paper's wording
/// is "generally" for exactly this reason).
#[test]
fn dec_generally_verifies_fewer_candidates_than_inc_s() {
    let (g, _) = dblp_like(&DblpParams::scaled(2000, 42));
    let tree = ClTree::build(&g);
    let mut hubs: Vec<VertexId> = g.vertices().collect();
    hubs.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let (mut dec_total, mut inc_total) = (0usize, 0usize);
    for &q in hubs.iter().take(24) {
        let s: Vec<KeywordId> = g.keywords(q).iter().copied().take(8).collect();
        let opts = AcqOptions::with_k(4).keywords(s);
        let dec = cx_acq::acq(&g, &tree, q, &opts, AcqStrategy::Dec);
        let inc = cx_acq::acq(&g, &tree, q, &opts, AcqStrategy::IncS);
        assert_eq!(dec.communities, inc.communities, "answers must agree at q={q}");
        dec_total += dec.candidates_verified;
        inc_total += inc.candidates_verified;
    }
    assert!(
        dec_total <= inc_total,
        "aggregate: Dec {dec_total} > Inc-S {inc_total}"
    );
}

/// The CL-tree index is linear-size: bytes per vertex stay bounded as the
/// graph doubles (E6's space half).
#[test]
fn cltree_space_is_linear() {
    let mut per_vertex = Vec::new();
    for n in [2000usize, 4000, 8000] {
        let (g, _) = dblp_like(&DblpParams::scaled(n, 7));
        let tree = ClTree::build(&g);
        per_vertex.push(tree.memory_bytes() as f64 / n as f64);
    }
    let (min, max) = (
        per_vertex.iter().cloned().fold(f64::MAX, f64::min),
        per_vertex.iter().cloned().fold(0.0, f64::max),
    );
    assert!(
        max / min < 1.5,
        "bytes/vertex varies superlinearly: {per_vertex:?}"
    );
}
