//! End-to-end browser–server test: a real TCP client drives the full
//! Figure 3 stack — upload, suggest, search, compare, profile, SVG —
//! against a background server instance.

use std::io::{Read, Write};
use std::net::TcpStream;

use c_explorer::prelude::*;
use cx_server::{Json, Server};

fn http_get(port: u16, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").unwrap();
    read_response(stream)
}

fn http_post(port: u16, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
    .unwrap();
    read_response(stream)
}

fn read_response(mut stream: TcpStream) -> (u16, String) {
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

fn start_server() -> cx_server::ServerHandle {
    let engine = Engine::with_graph("fig5", cx_datagen::figure5_graph());
    let server = Server::new(engine);
    server.serve_background().unwrap()
}

#[test]
fn full_stack_over_tcp() {
    let handle = start_server();
    let port = handle.port();

    // Landing page.
    let (status, html) = http_get(port, "/");
    assert_eq!(status, 200);
    assert!(html.contains("C-Explorer"));

    // Capability discovery.
    let (status, body) = http_get(port, "/api/graphs");
    assert_eq!(status, 200);
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("default_graph").and_then(Json::as_str), Some("fig5"));

    // The paper's worked example through the wire.
    let (status, body) = http_get(port, "/api/search?name=A&k=2&algo=acq");
    assert_eq!(status, 200);
    let v = Json::parse(&body).unwrap();
    let comms = v.get("communities").and_then(Json::as_array).unwrap();
    assert_eq!(comms.len(), 1);
    assert_eq!(comms[0].get("size").and_then(Json::as_f64), Some(3.0));

    // Suggestions.
    let (status, body) = http_get(port, "/api/suggest?q=a&limit=3");
    assert_eq!(status, 200);
    assert!(!Json::parse(&body).unwrap().as_array().unwrap().is_empty());

    // Comparison analysis.
    let (status, body) = http_get(port, "/api/compare?name=A&k=2&algos=global,acq");
    assert_eq!(status, 200);
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("rows").and_then(Json::as_array).map(|r| r.len()), Some(2));

    // SVG export.
    let (status, svg) = http_get(port, "/api/svg?name=A&k=2");
    assert_eq!(status, 200);
    assert!(svg.starts_with("<svg"));

    // Upload a new graph, then query it.
    let upload_body = "v\tx\tdb\nv\ty\tdb\nv\tz\tdb\ne\t0\t1\ne\t1\t2\ne\t0\t2\n";
    let (status, body) = http_post(port, "/api/upload?name=tiny", upload_body);
    assert_eq!(status, 200, "{body}");
    let (status, body) = http_get(port, "/api/search?graph=tiny&name=x&k=2&algo=acq");
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    let comms = v.get("communities").and_then(Json::as_array).unwrap();
    assert_eq!(comms[0].get("size").and_then(Json::as_f64), Some(3.0));

    // Errors come back as JSON with useful statuses.
    let (status, body) = http_get(port, "/api/search?name=nobody");
    assert_eq!(status, 404);
    assert!(Json::parse(&body).unwrap().get("error").is_some());
}

/// Durability end to end: mutate a store-backed server over HTTP, then
/// boot a second server on the same directory and require identical
/// search results and generations — the restart is invisible on the wire.
#[test]
fn durable_server_survives_restart() {
    let dir = std::env::temp_dir().join(format!("cx-e2e-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First life: upload a graph and edit it, all over TCP.
    let upload_body = "v\tx\tdb\nv\ty\tdb\nv\tz\tdb\nv\tw\tdb\ne\t0\t1\ne\t1\t2\ne\t0\t2\n";
    let (first_search, first_graphs) = {
        let server = Server::open_durable(&dir).unwrap();
        let handle = server.serve_background().unwrap();
        let port = handle.port();
        let (status, body) = http_post(port, "/api/upload?name=tiny", upload_body);
        assert_eq!(status, 200, "{body}");
        // Grow the triangle into a K4: generation 2.
        let edit = r#"{"add":[[0,3],[1,3],[2,3]]}"#;
        let (status, body) = http_post(port, "/api/edit?graph=tiny", edit);
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("generation").and_then(Json::as_f64), Some(2.0));
        assert_eq!(v.get("edges").and_then(Json::as_f64), Some(6.0));
        let (status, search) = http_get(port, "/api/search?graph=tiny&name=x&k=3&algo=acq");
        assert_eq!(status, 200, "{search}");
        let (status, graphs) = http_get(port, "/api/graphs");
        assert_eq!(status, 200);
        (search, graphs)
    };

    // Second life: a fresh server on the same directory recovers the
    // exact state — same generations, byte-identical search response.
    let server = Server::open_durable(&dir).unwrap();
    let handle = server.serve_background().unwrap();
    let port = handle.port();
    let (status, graphs) = http_get(port, "/api/graphs");
    assert_eq!(status, 200);
    assert_eq!(graphs, first_graphs, "recovered registry must match pre-restart registry");
    let v = Json::parse(&graphs).unwrap();
    assert_eq!(v.get("default_graph").and_then(Json::as_str), Some("tiny"));
    assert_eq!(
        v.get("generations").and_then(|g| g.get("tiny")).and_then(Json::as_f64),
        Some(2.0),
        "recovery must land on the edited generation"
    );
    let (status, search) = http_get(port, "/api/search?graph=tiny&name=x&k=3&algo=acq");
    assert_eq!(status, 200, "{search}");
    assert_eq!(search, first_search, "search results must be byte-identical after restart");

    // The recovered server is still writable: the next edit continues
    // the generation sequence instead of restarting it.
    let (status, body) = http_post(port, "/api/edit?graph=tiny", r#"{"remove":[[0,3]]}"#);
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("generation").and_then(Json::as_f64), Some(3.0));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_are_served() {
    let handle = start_server();
    let port = handle.port();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let target = if i % 2 == 0 {
                    "/api/search?name=A&k=2&algo=acq"
                } else {
                    "/api/compare?name=A&k=2&algos=global,acq"
                };
                let (status, _) = http_get(port, target);
                assert_eq!(status, 200);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
