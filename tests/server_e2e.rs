//! End-to-end browser–server test: a real TCP client drives the full
//! Figure 3 stack — upload, suggest, search, compare, profile, SVG —
//! against a background server instance.

use std::io::{Read, Write};
use std::net::TcpStream;

use c_explorer::prelude::*;
use cx_server::{Json, Server};

fn http_get(port: u16, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    read_response(stream)
}

fn http_post(port: u16, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .unwrap();
    read_response(stream)
}

fn read_response(mut stream: TcpStream) -> (u16, String) {
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

fn start_server() -> u16 {
    let engine = Engine::with_graph("fig5", cx_datagen::figure5_graph());
    let server = Server::new(engine);
    server.serve_background().unwrap()
}

#[test]
fn full_stack_over_tcp() {
    let port = start_server();

    // Landing page.
    let (status, html) = http_get(port, "/");
    assert_eq!(status, 200);
    assert!(html.contains("C-Explorer"));

    // Capability discovery.
    let (status, body) = http_get(port, "/api/graphs");
    assert_eq!(status, 200);
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("default_graph").and_then(Json::as_str), Some("fig5"));

    // The paper's worked example through the wire.
    let (status, body) = http_get(port, "/api/search?name=A&k=2&algo=acq");
    assert_eq!(status, 200);
    let v = Json::parse(&body).unwrap();
    let comms = v.get("communities").and_then(Json::as_array).unwrap();
    assert_eq!(comms.len(), 1);
    assert_eq!(comms[0].get("size").and_then(Json::as_f64), Some(3.0));

    // Suggestions.
    let (status, body) = http_get(port, "/api/suggest?q=a&limit=3");
    assert_eq!(status, 200);
    assert!(!Json::parse(&body).unwrap().as_array().unwrap().is_empty());

    // Comparison analysis.
    let (status, body) = http_get(port, "/api/compare?name=A&k=2&algos=global,acq");
    assert_eq!(status, 200);
    let v = Json::parse(&body).unwrap();
    assert_eq!(v.get("rows").and_then(Json::as_array).map(|r| r.len()), Some(2));

    // SVG export.
    let (status, svg) = http_get(port, "/api/svg?name=A&k=2");
    assert_eq!(status, 200);
    assert!(svg.starts_with("<svg"));

    // Upload a new graph, then query it.
    let upload_body = "v\tx\tdb\nv\ty\tdb\nv\tz\tdb\ne\t0\t1\ne\t1\t2\ne\t0\t2\n";
    let (status, body) = http_post(port, "/api/upload?name=tiny", upload_body);
    assert_eq!(status, 200, "{body}");
    let (status, body) = http_get(port, "/api/search?graph=tiny&name=x&k=2&algo=acq");
    assert_eq!(status, 200, "{body}");
    let v = Json::parse(&body).unwrap();
    let comms = v.get("communities").and_then(Json::as_array).unwrap();
    assert_eq!(comms[0].get("size").and_then(Json::as_f64), Some(3.0));

    // Errors come back as JSON with useful statuses.
    let (status, body) = http_get(port, "/api/search?name=nobody");
    assert_eq!(status, 404);
    assert!(Json::parse(&body).unwrap().get("error").is_some());
}

#[test]
fn concurrent_clients_are_served() {
    let port = start_server();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let target = if i % 2 == 0 {
                    "/api/search?name=A&k=2&algo=acq"
                } else {
                    "/api/compare?name=A&k=2&algos=global,acq"
                };
                let (status, _) = http_get(port, target);
                assert_eq!(status, 200);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
