//! End-to-end tests for the `cx` command-line binary: spawn the real
//! executable and check its output, exactly as a user would drive it.

use std::path::PathBuf;
use std::process::Command;

/// Path to the compiled `cx` binary inside the cargo target dir.
fn cx_bin() -> PathBuf {
    // Integration tests live in target/debug/deps; the binary sits one up.
    let mut p = std::env::current_exe().expect("test executable path");
    p.pop();
    if p.ends_with("deps") {
        p.pop();
    }
    p.join(format!("cx{}", std::env::consts::EXE_SUFFIX))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(cx_bin()).args(args).output().expect("spawn cx");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn search_paper_example() {
    let (ok, stdout, stderr) = run(&["search", "fig5", "A", "--k", "2"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("1 community"), "{stdout}");
    assert!(stdout.contains("A, C, D"), "{stdout}");
    assert!(stdout.contains("theme: x, y"), "{stdout}");
}

#[test]
fn stats_reports_core_histogram() {
    let (ok, stdout, _) = run(&["stats", "fig5"]);
    assert!(ok);
    assert!(stdout.contains("|V|=10"));
    assert!(stdout.contains("degeneracy (max core): 3"));
    assert!(stdout.contains("core 3: 4 vertices"));
}

#[test]
fn compare_prints_the_table() {
    let (ok, stdout, _) = run(&["compare", "fig5", "A", "--k", "2", "--algos", "global,acq"]);
    assert!(ok);
    assert!(stdout.contains("Method"));
    assert!(stdout.contains("global"));
    assert!(stdout.contains("CPJ"));
}

#[test]
fn generate_save_roundtrip() {
    let dir = std::env::temp_dir().join("cx_cli_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bin_path = dir.join("tiny.bin");
    let (ok, stdout, stderr) =
        run(&["generate", bin_path.to_str().unwrap(), "--authors", "300", "--seed", "5"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("|V|=300"), "{stdout}");
    // Query the generated snapshot.
    let (ok, stdout, _) = run(&["stats", bin_path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("|V|=300"));
    // Persist a deployment directory.
    let deploy = dir.join("deploy");
    let (ok, _, stderr) = run(&["save", bin_path.to_str().unwrap(), deploy.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(deploy.join("main.graph.bin").exists());
    assert!(deploy.join("main.index.bin").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_fails_with_usage_text() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
    let (ok, _, stderr) = run(&["search", "fig5", "NOBODY"]);
    assert!(!ok);
    assert!(stderr.contains("NOBODY"), "{stderr}");
    let (ok, _, _) = run(&[]);
    assert!(!ok);
}
