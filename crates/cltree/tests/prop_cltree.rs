//! Property tests: CL-tree answers must agree with direct (index-free)
//! computation for every query vertex and every k, on random graphs.
//!
//! Gated behind the non-default `proptest` feature: the build environment
//! is offline, so the `proptest` dev-dependency is not in the manifest.
//! Restore it (and `rand`) before enabling the feature in a networked
//! environment — see DESIGN.md "Offline build policy".
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use cx_cltree::ClTree;
use cx_graph::{AttributedGraph, GraphBuilder, VertexId};
use cx_kcore::CoreDecomposition;

fn arb_graph(max_n: usize) -> impl Strategy<Value = AttributedGraph> {
    (2..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(3 * n));
        let kws = proptest::collection::vec(proptest::collection::vec(0u8..8, 0..4), n);
        (Just(n), edges, kws).prop_map(|(n, edges, kws)| {
            let mut b = GraphBuilder::new();
            for (i, ks) in kws.iter().enumerate() {
                let names: Vec<String> = ks.iter().map(|k| format!("kw{k}")).collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                b.add_vertex(&format!("v{i}"), &refs);
            }
            for (u, v) in edges {
                b.add_edge(VertexId(u), VertexId(v));
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn connected_k_core_matches_decomposition(g in arb_graph(30)) {
        let cd = CoreDecomposition::compute(&g);
        let t = ClTree::build_with(&g, &cd);
        prop_assert_eq!(t.max_core(), cd.max_core());
        for q in g.vertices() {
            for k in 1..=cd.max_core() + 1 {
                let from_tree = t.connected_k_core(q, k);
                let direct = cd.connected_k_core(&g, q, k);
                prop_assert_eq!(
                    from_tree, direct,
                    "mismatch at q=v{} k={}", q.0, k
                );
            }
        }
    }

    #[test]
    fn tree_is_linear_space_vertices_partitioned(g in arb_graph(40)) {
        let t = ClTree::build(&g);
        let mut count = vec![0usize; g.vertex_count()];
        for (_, n) in t.iter_nodes() {
            for &v in &n.vertices {
                count[v.index()] += 1;
            }
            // Children are strictly deeper levels.
            for &c in &n.children {
                prop_assert!(t.node(c).level > n.level);
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
        // Node count can never exceed vertex count + 1 (synthetic root).
        prop_assert!(t.node_count() <= g.vertex_count() + 1);
    }

    #[test]
    fn inverted_lists_match_graph_keywords(g in arb_graph(30)) {
        let t = ClTree::build(&g);
        // For each keyword and k, the indexed k-core keyword vertices must
        // equal a direct scan.
        let cd = CoreDecomposition::compute(&g);
        for (w, _) in g.interner().iter() {
            for q in g.vertices() {
                let k = t.core(q);
                if k == 0 { continue; }
                let from_tree = t.keyword_vertices_in_k_core(q, k, w).unwrap();
                let core = cd.connected_k_core(&g, q, k).unwrap();
                let direct: Vec<VertexId> =
                    core.into_iter().filter(|&v| g.has_keyword(v, w)).collect();
                prop_assert_eq!(from_tree, direct);
            }
        }
    }

    #[test]
    fn parent_links_are_consistent(g in arb_graph(40)) {
        let t = ClTree::build(&g);
        for (id, n) in t.iter_nodes() {
            for &c in &n.children {
                prop_assert_eq!(t.node(c).parent, Some(id));
            }
            if let Some(p) = n.parent {
                prop_assert!(t.node(p).children.contains(&id));
            }
        }
        // Exactly one root.
        let roots = t.iter_nodes().filter(|(_, n)| n.parent.is_none()).count();
        prop_assert_eq!(roots, 1);
    }
}
