//! CL-tree vs. first principles: the index must report the same core
//! numbers as the decomposition it was built from, and every subtree it
//! serves for `(q, k)` must be the connected k-core containing `q` —
//! validated structurally by cx-check's naive invariant checker.

use cx_check::invariants::check_core_numbers;
use cx_check::workload::{graph_matrix, query_workload};
use cx_check::Violation;
use cx_cltree::ClTree;
use cx_graph::Community;
use cx_kcore::CoreDecomposition;

#[test]
fn tree_core_numbers_match_decomposition_and_naive_peel() {
    for case in graph_matrix(&[70, 220], &[6, 13]) {
        let g = &case.graph;
        let tree = ClTree::build(g);
        let decomp = CoreDecomposition::compute(g);
        for v in g.vertices() {
            assert_eq!(tree.core(v), decomp.core(v), "{} v={v:?}", case.name);
        }
        let violations: Vec<Violation> = check_core_numbers(g, &|v| tree.core(v));
        assert!(violations.is_empty(), "{}: {violations:?}", case.name);
        assert_eq!(tree.max_core(), decomp.max_core());
    }
}

#[test]
fn subtree_for_query_is_the_connected_k_core() {
    for case in graph_matrix(&[90], &[8]) {
        let g = &case.graph;
        let tree = ClTree::build(g);
        for qc in query_workload(g, 8, 0xC17) {
            for k in 1..=4 {
                match tree.subtree_root_for(qc.q, k) {
                    Some(node) => {
                        let members = tree.subtree_vertices(node);
                        // Structural invariants: connected, q inside,
                        // min internal degree ≥ k — checked naively.
                        let c = Community::structural(members);
                        let violations =
                            cx_check::check_community(g, &c, &[qc.q], k);
                        assert!(
                            violations.is_empty(),
                            "{} q={:?} k={k}: {violations:?}",
                            case.name,
                            qc.q
                        );
                        // And it matches the direct computation.
                        let direct = tree.connected_k_core(qc.q, k).unwrap();
                        let mut a = c.vertices().to_vec();
                        let mut b = direct;
                        a.sort();
                        b.sort();
                        assert_eq!(a, b, "{} q={:?} k={k}", case.name, qc.q);
                    }
                    None => {
                        // No subtree ⇒ q's core number is below k.
                        assert!(
                            tree.core(qc.q) < k,
                            "{} q={:?} has core {} ≥ {k} but no subtree",
                            case.name,
                            qc.q,
                            tree.core(qc.q)
                        );
                    }
                }
            }
        }
    }
}
