//! Determinism contract of the parallel CL-tree build: the tree's
//! structure — per-node vertex sets, levels, core numbers, keyword
//! reachability — must be identical at every thread count, because the
//! per-component fan-out concatenates subtrees in the deterministic
//! component order and `cx_par` chunking depends only on input length.

use cx_cltree::{ClTree, NodeId};
use cx_datagen::{dblp_like, small_collab_graph, DblpParams};
use cx_graph::AttributedGraph;

/// A structural summary of a tree that is independent of node-id
/// numbering: sorted (level, parent level, sorted vertex list) triples.
fn shape(tree: &ClTree, g: &AttributedGraph) -> Vec<(u32, Option<u32>, Vec<u32>)> {
    let mut out: Vec<(u32, Option<u32>, Vec<u32>)> = (0..tree.node_count())
        .map(|i| {
            let node = tree.node(NodeId(i as u32));
            let mut vs: Vec<u32> = node.vertices.iter().map(|v| v.0).collect();
            vs.sort_unstable();
            (node.level, node.parent.map(|p| tree.node(p).level), vs)
        })
        .collect();
    out.sort();
    assert_eq!(tree.node_count() > 0, g.vertex_count() > 0);
    out
}

fn at_thread_counts(g: &AttributedGraph) {
    std::env::set_var("CX_THREADS", "1");
    cx_par::refresh_threads();
    let base_tree = ClTree::build(g);
    let base = shape(&base_tree, g);
    let base_cores: Vec<u32> = g.vertices().map(|v| base_tree.core(v)).collect();
    for threads in ["2", "8"] {
        std::env::set_var("CX_THREADS", threads);
        cx_par::refresh_threads();
        let tree = ClTree::build(g);
        assert_eq!(shape(&tree, g), base, "tree shape diverged at CX_THREADS={threads}");
        let cores: Vec<u32> = g.vertices().map(|v| tree.core(v)).collect();
        assert_eq!(cores, base_cores, "cores diverged at CX_THREADS={threads}");
    }
    std::env::remove_var("CX_THREADS");
    cx_par::refresh_threads();
}

#[test]
fn small_graph_tree_identical_across_thread_counts() {
    at_thread_counts(&small_collab_graph());
}

#[test]
fn seeded_workloads_identical_across_thread_counts() {
    for n in [1_000usize, 8_000, 25_000] {
        let (g, _) = dblp_like(&DblpParams::scaled(n, 11));
        at_thread_counts(&g);
    }
}

#[test]
fn keyword_queries_identical_across_thread_counts() {
    let (g, _) = dblp_like(&DblpParams::scaled(3_000, 5));
    // Pick a mid-frequency keyword from some vertex.
    let q = g
        .vertices()
        .find(|&v| !g.keywords(v).is_empty())
        .expect("workload has keywords");
    let w = g.keywords(q)[0];
    let probe = |t: &ClTree| -> Vec<Option<Vec<u32>>> {
        (1..=t.max_core())
            .map(|k| {
                t.keyword_vertices_in_k_core(q, k, w).map(|vs| {
                    let mut vs: Vec<u32> = vs.iter().map(|v| v.0).collect();
                    vs.sort_unstable();
                    vs
                })
            })
            .collect()
    };
    std::env::set_var("CX_THREADS", "1");
    cx_par::refresh_threads();
    let base = probe(&ClTree::build(&g));
    for threads in ["2", "8"] {
        std::env::set_var("CX_THREADS", threads);
        cx_par::refresh_threads();
        assert_eq!(
            probe(&ClTree::build(&g)),
            base,
            "keyword reachability diverged at CX_THREADS={threads}"
        );
    }
    std::env::remove_var("CX_THREADS");
    cx_par::refresh_threads();
}
