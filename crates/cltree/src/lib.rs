#![warn(missing_docs)]

//! # cx-cltree — the CL-tree index (Section 3.2 of the paper)
//!
//! The CL-tree ("Core Label tree", from the ACQ paper, PVLDB'16) organises
//! all k-cores of an attributed graph in one tree by exploiting core
//! nestedness: a (k+1)-core is always contained in a k-core. Each tree node
//! represents a connected component of some k-core; the node stores only
//! the vertices whose core number equals the node's level (every vertex
//! lives in exactly one node → linear space), plus an inverted keyword list
//! over those vertices so keyword-constrained queries can collect candidate
//! vertices without touching the graph.
//!
//! Construction is the ACQ paper's bottom-up "advanced" method: process
//! levels from `k_max` down to 0, merging components with an *anchored*
//! union-find (each union-find component remembers the tree node currently
//! representing it). Total cost is near-linear in `n + m`.
//!
//! The two query primitives the ACQ algorithms need:
//!
//! * [`ClTree::connected_k_core`] — the connected k-core containing q, in
//!   output-sensitive time (walk up from q's node, collect a subtree);
//! * [`ClTree::keyword_vertices_in_k_core`] — the vertices of that k-core
//!   carrying a given keyword, via the per-node inverted lists.

pub mod build;
pub mod hierarchy;
pub mod node;
pub mod signature;
pub mod snapshot;
pub mod unionfind;
pub mod update;

pub use build::{ClTree, KeywordWalkStats};
pub use hierarchy::{Expansion, Hierarchy, SupernodeStats};
pub use node::{ClTreeNode, NodeId};
pub use signature::{prune_enabled, refresh_prune, set_prune_enabled, KeywordSignature};
pub use unionfind::UnionFind;
