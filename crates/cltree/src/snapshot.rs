//! CL-tree index persistence.
//!
//! Building the CL-tree is linear, but on very large graphs (the paper's
//! DBLP sample is ~1M vertices) a production deployment builds the index
//! offline once and memory-maps/loads it at server start — the paper's
//! "Indexing (offline)" box in Figure 3. The snapshot stores the tree
//! structure and core numbers; per-node inverted keyword lists are rebuilt
//! from the graph on load (they are derived data and dominate the size).
//!
//! Format (little-endian): magic `CXT1`, vertex count, node count, root
//! id, core numbers, then per node: level, parent(+1, 0 = none), vertex
//! list, child list. Every structural invariant is re-validated on load.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use cx_graph::{AttributedGraph, GraphError, VertexId};

use crate::build::ClTree;
use crate::node::{ClTreeNode, NodeId};
use crate::signature::{compute_signatures, KeywordSignature};

const MAGIC: &[u8; 4] = b"CXT1";

fn put_u32<W: Write>(w: &mut W, x: u32) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn get_u32<R: Read>(r: &mut R) -> Result<u32, GraphError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

impl ClTree {
    /// Writes the index snapshot to `w`.
    pub fn write_snapshot<W: Write>(&self, w: &mut W) -> Result<(), GraphError> {
        let mut w = BufWriter::new(w);
        w.write_all(MAGIC)?;
        put_u32(&mut w, self.core_numbers().len() as u32)?;
        put_u32(&mut w, self.node_count() as u32)?;
        put_u32(&mut w, self.root().0)?;
        for &c in self.core_numbers() {
            put_u32(&mut w, c)?;
        }
        for (_, node) in self.iter_nodes() {
            put_u32(&mut w, node.level)?;
            put_u32(&mut w, node.parent.map_or(0, |p| p.0 + 1))?;
            put_u32(&mut w, node.vertices.len() as u32)?;
            for &v in &node.vertices {
                put_u32(&mut w, v.0)?;
            }
            put_u32(&mut w, node.children.len() as u32)?;
            for &c in &node.children {
                put_u32(&mut w, c.0)?;
            }
        }
        w.flush()?;
        Ok(())
    }

    /// Reads a snapshot written by [`ClTree::write_snapshot`], rebuilding
    /// the inverted keyword lists from `g`. Fails if the snapshot does not
    /// match the graph (vertex count, structural invariants).
    pub fn read_snapshot<R: Read>(g: &AttributedGraph, r: &mut R) -> Result<Self, GraphError> {
        let mut r = BufReader::new(r);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(GraphError::Snapshot("bad CL-tree magic".into()));
        }
        let n = get_u32(&mut r)? as usize;
        if n != g.vertex_count() {
            return Err(GraphError::Snapshot(format!(
                "snapshot is for a {n}-vertex graph, got {}",
                g.vertex_count()
            )));
        }
        let node_count = get_u32(&mut r)? as usize;
        if node_count > n + 1 {
            return Err(GraphError::Snapshot("node count exceeds linear bound".into()));
        }
        let root = NodeId(get_u32(&mut r)?);
        if node_count == 0 || root.index() >= node_count {
            return Err(GraphError::Snapshot("root out of range".into()));
        }
        let mut core = Vec::with_capacity(n);
        for _ in 0..n {
            core.push(get_u32(&mut r)?);
        }
        let mut nodes = Vec::with_capacity(node_count);
        let mut node_of = vec![NodeId(u32::MAX); n];
        for i in 0..node_count {
            let level = get_u32(&mut r)?;
            let parent_raw = get_u32(&mut r)?;
            let parent = if parent_raw == 0 {
                None
            } else {
                let p = NodeId(parent_raw - 1);
                if p.index() >= node_count {
                    return Err(GraphError::Snapshot("parent out of range".into()));
                }
                Some(p)
            };
            let v_len = get_u32(&mut r)? as usize;
            if v_len > n {
                return Err(GraphError::Snapshot("vertex list too long".into()));
            }
            let mut vertices = Vec::with_capacity(v_len);
            for _ in 0..v_len {
                let v = get_u32(&mut r)?;
                if v as usize >= n {
                    return Err(GraphError::Snapshot("vertex id out of range".into()));
                }
                if node_of[v as usize] != NodeId(u32::MAX) {
                    return Err(GraphError::Snapshot("vertex appears in two nodes".into()));
                }
                node_of[v as usize] = NodeId(i as u32);
                // Core number must match the node level.
                if core[v as usize] != level {
                    return Err(GraphError::Snapshot("vertex core != node level".into()));
                }
                vertices.push(VertexId(v));
            }
            let c_len = get_u32(&mut r)? as usize;
            if c_len > node_count {
                return Err(GraphError::Snapshot("child list too long".into()));
            }
            let mut children = Vec::with_capacity(c_len);
            for _ in 0..c_len {
                let c = get_u32(&mut r)?;
                if c as usize >= node_count {
                    return Err(GraphError::Snapshot("child out of range".into()));
                }
                children.push(NodeId(c));
            }
            let mut node = ClTreeNode {
                level,
                parent,
                children,
                vertices,
                inverted: Default::default(),
                signature: KeywordSignature::EMPTY,
            };
            node.index_keywords(|v| g.keywords(v));
            nodes.push(node);
        }
        if node_of.contains(&NodeId(u32::MAX)) {
            return Err(GraphError::Snapshot("some vertex belongs to no node".into()));
        }
        // Parent/child links must agree, and children must sit at strictly
        // higher levels — the nesting invariant the bottom-up signature
        // pass (and every subtree walk) relies on.
        for (i, node) in nodes.iter().enumerate() {
            for &c in &node.children {
                if nodes[c.index()].parent != Some(NodeId(i as u32)) {
                    return Err(GraphError::Snapshot("parent/child mismatch".into()));
                }
                if nodes[c.index()].level <= node.level {
                    return Err(GraphError::Snapshot("child level not above parent".into()));
                }
            }
        }
        let max_core = core.iter().copied().max().unwrap_or(0);
        // Subtree keyword signatures are derived data, rebuilt bottom-up
        // from the freshly re-indexed inverted lists.
        compute_signatures(&mut nodes, u32::MAX);
        Ok(ClTree::from_parts(nodes, root, node_of, core, max_core))
    }

    /// Saves the index snapshot to a file.
    pub fn save_snapshot_file<P: AsRef<Path>>(&self, path: P) -> Result<(), GraphError> {
        let mut f = std::fs::File::create(path)?;
        self.write_snapshot(&mut f)
    }

    /// Loads an index snapshot from a file (see [`ClTree::read_snapshot`]).
    pub fn load_snapshot_file<P: AsRef<Path>>(
        g: &AttributedGraph,
        path: P,
    ) -> Result<Self, GraphError> {
        let mut f = std::fs::File::open(path)?;
        Self::read_snapshot(g, &mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::{dblp_like, figure5_graph, DblpParams};

    fn roundtrip(g: &AttributedGraph) {
        let tree = ClTree::build(g);
        let mut buf = Vec::new();
        tree.write_snapshot(&mut buf).unwrap();
        let loaded = ClTree::read_snapshot(g, &mut buf.as_slice()).unwrap();
        assert_eq!(loaded.node_count(), tree.node_count());
        assert_eq!(loaded.root(), tree.root());
        assert_eq!(loaded.core_numbers(), tree.core_numbers());
        for q in g.vertices() {
            for k in 0..=tree.max_core() {
                assert_eq!(
                    loaded.connected_k_core(q, k),
                    tree.connected_k_core(q, k),
                    "q={q} k={k}"
                );
            }
        }
        // Inverted lists and subtree signatures rebuilt identically.
        for (id, node) in tree.iter_nodes() {
            for (w, _) in g.interner().iter() {
                assert_eq!(
                    loaded.node(id).vertices_with(w),
                    node.vertices_with(w)
                );
            }
            assert_eq!(loaded.node(id).signature, node.signature);
        }
    }

    #[test]
    fn figure5_roundtrip() {
        roundtrip(&figure5_graph());
    }

    #[test]
    fn dblp_roundtrip() {
        let (g, _) = dblp_like(&DblpParams { authors: 500, ..DblpParams::default() });
        roundtrip(&g);
    }

    #[test]
    fn rejects_wrong_graph() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let mut buf = Vec::new();
        tree.write_snapshot(&mut buf).unwrap();
        let (other, _) = dblp_like(&DblpParams { authors: 50, ..DblpParams::default() });
        assert!(ClTree::read_snapshot(&other, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_corruption() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let mut buf = Vec::new();
        tree.write_snapshot(&mut buf).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(ClTree::read_snapshot(&g, &mut bad.as_slice()).is_err());
        // Truncation at every eighth byte boundary must never panic.
        for cut in (4..buf.len()).step_by(8) {
            let mut t = buf.clone();
            t.truncate(cut);
            assert!(ClTree::read_snapshot(&g, &mut t.as_slice()).is_err(), "cut at {cut}");
        }
        // Flip a vertex id deep in the payload: must be caught by one of
        // the structural validations, never accepted silently as valid &
        // different.
        let mut flip = buf.clone();
        let last = flip.len() - 6;
        flip[last] ^= 0x01;
        if let Ok(loaded) = ClTree::read_snapshot(&g, &mut flip.as_slice()) {
            // If it somehow still parses, it must be structurally identical.
            assert_eq!(loaded.core_numbers(), tree.core_numbers());
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cx_cltree_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let path = dir.join("fig5.cxt");
        tree.save_snapshot_file(&path).unwrap();
        let loaded = ClTree::load_snapshot_file(&g, &path).unwrap();
        assert_eq!(loaded.node_count(), tree.node_count());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
