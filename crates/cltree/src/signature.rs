//! Fixed-width keyword signatures for subtree pruning (DESIGN.md §16).
//!
//! Every CL-tree node carries a 256-bit bloom-style signature of the
//! keywords present anywhere in its *subtree* (own inverted lists plus all
//! descendants). A keyword maps to two bit positions; a subtree whose
//! signature is missing either bit provably contains no carrier of that
//! keyword, so the ACQ candidate walk can skip it wholesale. False
//! positives merely descend a subtree that contributes nothing — the
//! answer never changes (no false negatives), which is what the
//! `bitset_prune_differential` oracle in `cx-check` enforces.
//!
//! The module also owns the `CX_PRUNE` toggle. The env var is read once
//! and cached in an atomic (reading the environment allocates, and the
//! query path is required to be allocation-free); tests and oracles flip
//! it programmatically via [`set_prune_enabled`].

use std::sync::atomic::{AtomicU8, Ordering};

use cx_graph::KeywordId;

use crate::node::ClTreeNode;

/// Width of a [`KeywordSignature`] in bits.
pub const SIGNATURE_BITS: usize = 256;
const WORDS: usize = SIGNATURE_BITS / 64;

/// A 256-bit bloom filter over the keyword ids of a CL-tree subtree.
///
/// Two bit positions per keyword (both derived from one `splitmix64`
/// round), OR-merged up the tree. `Copy` and inline in the node — carried
/// nodes in [`crate::ClTree::update`] keep their signature by plain clone,
/// which is sound because a preserved subtree's keyword set is immutable
/// under edge edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeywordSignature([u64; WORDS]);

impl KeywordSignature {
    /// The empty signature (no keywords).
    pub const EMPTY: Self = Self([0; WORDS]);

    /// The two-bit membership mask for one keyword. Computed once per
    /// query keyword, then tested against node signatures with
    /// [`Self::contains_all`].
    #[inline]
    pub fn mask_of(w: KeywordId) -> Self {
        // One splitmix64 finalization round; the low 16 bits give two
        // independent-enough probes into 256 positions.
        let mut x = (w.0 as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let b1 = (x & 255) as usize;
        let b2 = ((x >> 8) & 255) as usize;
        let mut s = [0u64; WORDS];
        s[b1 >> 6] |= 1 << (b1 & 63);
        s[b2 >> 6] |= 1 << (b2 & 63);
        Self(s)
    }

    /// Adds one keyword to the signature.
    #[inline]
    pub fn insert(&mut self, w: KeywordId) {
        self.or(&Self::mask_of(w));
    }

    /// OR-merges another signature into this one (subtree aggregation).
    #[inline]
    pub fn or(&mut self, other: &Self) {
        for i in 0..WORDS {
            self.0[i] |= other.0[i];
        }
    }

    /// `true` iff every bit of `mask` is set — i.e. the subtree *may*
    /// contain the mask's keyword. `false` is a proof of absence.
    #[inline]
    pub fn contains_all(&self, mask: &Self) -> bool {
        (0..WORDS).all(|i| self.0[i] & mask.0[i] == mask.0[i])
    }

    /// `true` iff no bit is set.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// Little-endian byte image, used by `cx-check`'s canonical tree
    /// encoding so the incremental-vs-scratch oracle covers signatures.
    pub fn to_bytes(&self) -> [u8; SIGNATURE_BITS / 8] {
        let mut out = [0u8; SIGNATURE_BITS / 8];
        for (i, w) in self.0.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }
}

/// (Re)computes subtree signatures for every node whose level is
/// `<= up_to_level`, bottom-up. Children sit at strictly higher levels
/// than their parent (a structural CL-tree invariant, validated on
/// snapshot load), so a descending-level sweep sees every child before
/// its parent; children *above* the threshold keep their carried — still
/// valid — signature and are only read.
///
/// Buckets by level instead of sorting: `ClTree::update` calls this with
/// a small threshold on the edit path, and O(n log n) over the whole
/// arena would show up in the edit-latency budget.
pub(crate) fn compute_signatures(nodes: &mut [ClTreeNode], up_to_level: u32) {
    let max_level = nodes.iter().map(|n| n.level).max().unwrap_or(0).min(up_to_level);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize + 1];
    for (i, n) in nodes.iter().enumerate() {
        if n.level <= up_to_level {
            buckets[n.level as usize].push(i as u32);
        }
    }
    for bucket in buckets.iter().rev() {
        for &i in bucket {
            let i = i as usize;
            let mut sig = KeywordSignature::EMPTY;
            for &w in nodes[i].inverted.keys() {
                sig.insert(w);
            }
            for ci in 0..nodes[i].children.len() {
                let c = nodes[i].children[ci];
                sig.or(&nodes[c.index()].signature);
            }
            nodes[i].signature = sig;
        }
    }
}

// --- CX_PRUNE toggle ------------------------------------------------------

const PRUNE_UNINIT: u8 = 0;
const PRUNE_ON: u8 = 1;
const PRUNE_OFF: u8 = 2;

/// Cached `CX_PRUNE` state; `0` = not yet read from the environment.
static PRUNE_STATE: AtomicU8 = AtomicU8::new(PRUNE_UNINIT);

fn read_env() -> u8 {
    match std::env::var("CX_PRUNE") {
        Ok(v) if matches!(v.as_str(), "off" | "0" | "false" | "no") => PRUNE_OFF,
        _ => PRUNE_ON,
    }
}

/// Whether signature pruning (and the lazy-core fast path that rides on
/// it) is enabled. Defaults to on; `CX_PRUNE=off` disables it, which is
/// what the `bitset_prune_differential` oracle compares against.
#[inline]
pub fn prune_enabled() -> bool {
    match PRUNE_STATE.load(Ordering::Relaxed) {
        PRUNE_UNINIT => {
            let s = read_env();
            PRUNE_STATE.store(s, Ordering::Relaxed);
            s == PRUNE_ON
        }
        s => s == PRUNE_ON,
    }
}

/// Programmatic override of the prune toggle (used by oracles and tests).
pub fn set_prune_enabled(on: bool) {
    PRUNE_STATE.store(if on { PRUNE_ON } else { PRUNE_OFF }, Ordering::Relaxed);
}

/// Re-reads `CX_PRUNE` from the environment, discarding any override.
pub fn refresh_prune() {
    PRUNE_STATE.store(read_env(), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_roundtrip_no_false_negatives() {
        // Every inserted keyword must test positive — the soundness half
        // of the bloom contract.
        let mut sig = KeywordSignature::EMPTY;
        for id in (0..10_000u32).step_by(7) {
            sig.insert(KeywordId(id));
        }
        for id in (0..10_000u32).step_by(7) {
            assert!(sig.contains_all(&KeywordSignature::mask_of(KeywordId(id))));
        }
    }

    #[test]
    fn empty_signature_rejects_everything_with_two_probes() {
        let sig = KeywordSignature::EMPTY;
        assert!(sig.is_empty());
        for id in 0..512u32 {
            let mask = KeywordSignature::mask_of(KeywordId(id));
            assert!(!mask.is_empty());
            assert!(!sig.contains_all(&mask));
        }
    }

    #[test]
    fn union_is_commutative_and_monotone() {
        let mut a = KeywordSignature::EMPTY;
        a.insert(KeywordId(3));
        let mut b = KeywordSignature::EMPTY;
        b.insert(KeywordId(99));
        let mut ab = a;
        ab.or(&b);
        let mut ba = b;
        ba.or(&a);
        assert_eq!(ab, ba);
        assert!(ab.contains_all(&KeywordSignature::mask_of(KeywordId(3))));
        assert!(ab.contains_all(&KeywordSignature::mask_of(KeywordId(99))));
    }

    #[test]
    fn sparse_signatures_do_prune() {
        // With a handful of keywords, an unrelated id should almost
        // always miss; require at least a strong majority so a hash
        // regression that saturates the filter gets caught.
        let mut sig = KeywordSignature::EMPTY;
        for id in 0..8u32 {
            sig.insert(KeywordId(id));
        }
        let misses = (1000..2000u32)
            .filter(|&id| !sig.contains_all(&KeywordSignature::mask_of(KeywordId(id))))
            .count();
        assert!(misses > 900, "only {misses}/1000 unrelated keywords pruned");
    }

    #[test]
    fn to_bytes_distinguishes_signatures() {
        let mut a = KeywordSignature::EMPTY;
        a.insert(KeywordId(1));
        let mut b = KeywordSignature::EMPTY;
        b.insert(KeywordId(2));
        assert_ne!(a.to_bytes(), b.to_bytes());
        assert_eq!(KeywordSignature::EMPTY.to_bytes(), [0u8; 32]);
    }

    #[test]
    fn prune_toggle_round_trips() {
        set_prune_enabled(false);
        assert!(!prune_enabled());
        set_prune_enabled(true);
        assert!(prune_enabled());
    }
}
