//! Union-find with path compression and union by size.

/// Disjoint-set forest over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        ra
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure tracks zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.connected(0, 1));
        uf.union(0, 1);
        uf.union(3, 4);
        assert!(uf.connected(0, 1));
        assert!(uf.connected(4, 3));
        assert!(!uf.connected(1, 3));
        assert_eq!(uf.set_size(0), 2);
        uf.union(1, 4);
        assert!(uf.connected(0, 3));
        assert_eq!(uf.set_size(3), 4);
        assert_eq!(uf.set_size(2), 1);
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(3);
        let r1 = uf.union(0, 1);
        let r2 = uf.union(0, 1);
        assert_eq!(r1, r2);
        assert_eq!(uf.set_size(0), 2);
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert!(uf.connected(0, 99));
        assert_eq!(uf.set_size(50), 100);
        assert_eq!(uf.len(), 100);
    }
}
