//! Incremental CL-tree maintenance under edge edits.
//!
//! [`ClTree::update`] produces the index of the post-edit graph by
//! rebuilding only the *changed region* of the tree instead of repeating
//! the full bottom-up construction.
//!
//! ## The level threshold
//!
//! Let `L` be the maximum over:
//!
//! * `min(old_core(u), old_core(v))` for every effectively removed edge,
//! * `min(new_core(u), new_core(v))` for every effectively added edge,
//! * `max(old_core(v), new_core(v))` for every vertex whose core changed.
//!
//! For every `k > L` the old and new k-cores have identical vertex sets
//! (a vertex with a changed core has both cores ≤ L, so it is in neither
//! side's k-core; all others keep their membership) and identical induced
//! edge sets (every changed edge has an endpoint outside the k-core on
//! both sides). The bottom-up construction at levels above `L` therefore
//! makes exactly the same grouping, node-creation and chain-compression
//! decisions on both graphs — so every old node at level > `L` is carried
//! into the new tree verbatim, and only levels `L..=0` are re-swept.
//!
//! The sweep itself only scans edges incident to vertices whose new core
//! is ≤ `L`, which is the CL-tree analogue of the subcore bound the
//! dynamic core maintenance gives: a single edit far from the high cores
//! touches a handful of tree levels near its endpoints' cores.
//!
//! ## Fallback
//!
//! When an edit changes the core number of more than
//! [`ClTree::FALLBACK_CHANGED_FRACTION`] of all vertices, the carried
//! region is small and the sweep approaches a full build anyway — the
//! update falls back to [`ClTree::build_with_cores`] (parallel across
//! components) and bumps the `cx_incremental_fallback_total` counter.

use std::collections::HashMap;

use cx_graph::delta::EdgeDelta;
use cx_graph::{AttributedGraph, VertexId};

use crate::node::{ClTreeNode, NodeId};
use crate::signature::{compute_signatures, KeywordSignature};
use crate::unionfind::UnionFind;
use crate::ClTree;

impl ClTree {
    /// Changed-core fraction above which [`ClTree::update`] abandons the
    /// incremental path and rebuilds from scratch.
    pub const FALLBACK_CHANGED_FRACTION: f64 = 0.25;

    /// Builds the CL-tree of `g` — the post-edit graph `self` was indexed
    /// for, patched by `delta` — reusing every node of `self` at levels
    /// above the edit's reach. `new_cores` must be the core numbers of
    /// `g` (maintained by `cx_kcore::DynamicCore` in the engine).
    ///
    /// The result is structurally identical to `ClTree::build_with_cores
    /// (g, new_cores)` — same nodes, same nesting, same per-node vertex
    /// sets and inverted lists — though node *ids* may be numbered
    /// differently (preserved nodes keep their relative order and come
    /// first). All query entry points are id-agnostic.
    pub fn update(&self, g: &AttributedGraph, delta: &EdgeDelta, new_cores: &[u32]) -> ClTree {
        let _span = cx_obs::span("cltree.update");
        let n = g.vertex_count();
        assert_eq!(self.core_numbers().len(), n, "edits are edge-only: vertex set fixed");
        assert_eq!(new_cores.len(), n, "core vector must cover every vertex");

        let old_cores = self.core_numbers();
        let changed = old_cores.iter().zip(new_cores).filter(|(o, n)| o != n).count();
        if n > 0 && changed as f64 / n as f64 > Self::FALLBACK_CHANGED_FRACTION {
            cx_obs::metrics::inc("cx_incremental_fallback_total");
            return Self::build_with_cores(g, new_cores);
        }

        // The level threshold L (see module docs). A non-empty delta always
        // yields L ≥ 1, because every effective edge has two endpoints of
        // core ≥ 1 on the side where it exists.
        let mut level = 0u32;
        for &(u, v) in &delta.removed {
            level = level.max(old_cores[u.index()].min(old_cores[v.index()]));
        }
        for &(u, v) in &delta.added {
            level = level.max(new_cores[u.index()].min(new_cores[v.index()]));
        }
        for (v, (&o, &nc)) in old_cores.iter().zip(new_cores).enumerate() {
            if o != nc {
                level = level.max(o.max(nc));
                let _ = v;
            }
        }

        // Nothing preserved above L? The sweep would be a full (serial)
        // rebuild — use the parallel builder instead.
        if !self.iter_nodes().any(|(_, node)| node.level > level) {
            return Self::build_with_cores(g, new_cores);
        }

        // ---- Carry the untouched sub-forest (levels > L). ----
        // Preserved nodes keep their relative order; `remap` translates old
        // ids. Children of a preserved node are always at a strictly higher
        // level, hence preserved themselves.
        let mut nodes: Vec<ClTreeNode> = Vec::new();
        let mut remap: Vec<Option<NodeId>> = vec![None; self.node_count()];
        for (old_id, node) in self.iter_nodes() {
            if node.level > level {
                remap[old_id.index()] = Some(NodeId(nodes.len() as u32));
                nodes.push(node.clone());
            }
        }
        let mut tops: Vec<(NodeId, NodeId)> = Vec::new(); // (old id, new id)
        for node in &mut nodes {
            node.children.iter_mut().for_each(|c| *c = remap[c.index()].expect("child preserved"));
            node.parent = node.parent.and_then(|p| remap[p.index()]);
        }
        for (old_id, node) in self.iter_nodes() {
            if node.level > level
                && node.parent.is_none_or(|p| self.node(p).level <= level)
            {
                tops.push((old_id, remap[old_id.index()].unwrap()));
            }
        }

        // ---- Re-sweep levels L..1 with a global anchored union-find. ----
        // Pre-union each carried top's subtree so the union-find starts in
        // exactly the state a fresh build reaches after processing the
        // levels above L: the components of the "min-core > L" edge
        // subgraph are precisely the carried subtrees.
        let mut uf = UnionFind::new(n);
        let mut anchors: HashMap<u32, NodeId> = HashMap::new();
        for &(old_top, new_top) in &tops {
            let verts = self.subtree_vertices(old_top);
            let mut rep = verts[0].0;
            for &v in &verts[1..] {
                rep = uf.union(rep, v.0);
            }
            anchors.insert(uf.find(rep), new_top);
        }

        // Vertices whose node is being rebuilt, grouped by new core.
        let mut levels: Vec<Vec<VertexId>> = vec![Vec::new(); level as usize + 1];
        for v in g.vertices() {
            let c = new_cores[v.index()];
            if c <= level {
                levels[c as usize].push(v);
            }
        }

        for k in (1..=level).rev() {
            let snapshot: Vec<(u32, NodeId)> =
                anchors.iter().map(|(&rep, &nid)| (rep, nid)).collect();
            for &v in &levels[k as usize] {
                for &u in g.neighbors(v) {
                    if new_cores[u.index()] >= k {
                        uf.union(v.0, u.0);
                    }
                }
            }
            let mut child_anchors: HashMap<u32, Vec<NodeId>> = HashMap::new();
            for (rep, nid) in snapshot {
                child_anchors.entry(uf.find(rep)).or_default().push(nid);
            }
            let mut new_vertices: HashMap<u32, Vec<VertexId>> = HashMap::new();
            for &v in &levels[k as usize] {
                new_vertices.entry(uf.find(v.0)).or_default().push(v);
            }
            let mut next_anchors: HashMap<u32, NodeId> = HashMap::new();
            let mut roots: Vec<u32> = child_anchors.keys().copied().collect();
            for &r in new_vertices.keys() {
                if !child_anchors.contains_key(&r) {
                    roots.push(r);
                }
            }
            roots.sort_unstable();
            for root in roots {
                let mut verts = new_vertices.remove(&root).unwrap_or_default();
                let mut kids = child_anchors.remove(&root).unwrap_or_default();
                if verts.is_empty() && kids.len() == 1 {
                    // Chain compression, exactly as in the fresh build.
                    next_anchors.insert(root, kids[0]);
                    continue;
                }
                verts.sort_unstable();
                kids.sort_unstable();
                let nid = NodeId(nodes.len() as u32);
                for &kid in &kids {
                    nodes[kid.index()].parent = Some(nid);
                }
                let mut node = ClTreeNode {
                    level: k,
                    parent: None,
                    children: kids,
                    vertices: verts,
                    inverted: Default::default(),
                    signature: KeywordSignature::EMPTY,
                };
                self.fill_inverted(&mut node, g);
                nodes.push(node);
                next_anchors.insert(root, nid);
            }
            anchors = next_anchors;
        }

        // ---- Level-0 root assembly, as in the fresh build. ----
        let mut isolated: Vec<VertexId> =
            g.vertices().filter(|&v| new_cores[v.index()] == 0).collect();
        let mut top_ids: Vec<NodeId> = anchors.into_values().collect();
        top_ids.sort_unstable();
        let root = if isolated.is_empty() && top_ids.len() == 1 {
            top_ids[0]
        } else {
            let nid = NodeId(nodes.len() as u32);
            for &kid in &top_ids {
                nodes[kid.index()].parent = Some(nid);
            }
            isolated.sort_unstable();
            let mut node = ClTreeNode {
                level: 0,
                parent: None,
                children: top_ids,
                vertices: isolated,
                inverted: Default::default(),
                signature: KeywordSignature::EMPTY,
            };
            self.fill_inverted(&mut node, g);
            nodes.push(node);
            nid
        };

        let mut node_of = vec![NodeId(u32::MAX); n];
        for (i, node) in nodes.iter().enumerate() {
            for &v in &node.vertices {
                node_of[v.index()] = NodeId(i as u32);
            }
        }
        let max_core = new_cores.iter().copied().max().unwrap_or(0);

        // Repair subtree signatures under the same threshold rule: carried
        // nodes (level > L) keep their signature — a preserved subtree's
        // keyword set is immutable under edge edits, so the clone above is
        // already exact — and only the rebuilt levels L..=0 recompute
        // bottom-up, reading the carried children's signatures.
        compute_signatures(&mut nodes, level);

        Self::from_parts(nodes, root, node_of, new_cores.to_vec(), max_core)
    }

    /// Populates a rebuilt node's inverted keyword list, sharing the old
    /// node's `Arc` when a node with the very same vertex list existed at
    /// the same level in `self` (edits never change keyword sets, so an
    /// identical vertex list implies an identical index).
    fn fill_inverted(&self, node: &mut ClTreeNode, g: &AttributedGraph) {
        if let Some(&first) = node.vertices.first() {
            let old = self.node(self.node_of(first));
            if old.level == node.level && old.vertices == node.vertices {
                node.inverted = std::sync::Arc::clone(&old.inverted);
                return;
            }
        }
        node.index_keywords(|v| g.keywords(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;
    use cx_graph::GraphBuilder;
    use cx_kcore::CoreDecomposition;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Applies a raw edit to `g`, recomputes cores from scratch (the
    /// engine uses DynamicCore; correctness there is tested separately),
    /// and returns (new graph, incrementally updated tree, fresh tree).
    fn step(
        g: &AttributedGraph,
        tree: &ClTree,
        add: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> (AttributedGraph, ClTree, ClTree) {
        let delta = g.edge_delta(add, remove).unwrap();
        let g2 = g.apply_delta(&delta);
        let cores = CoreDecomposition::compute(&g2).core_numbers().to_vec();
        let updated = tree.update(&g2, &delta, &cores);
        let fresh = ClTree::build(&g2);
        (g2, updated, fresh)
    }

    /// Id-independent structural equality: recursive canonical encoding of
    /// (level, vertices, inverted, children-as-multiset).
    fn canon(t: &ClTree, id: NodeId) -> String {
        let node = t.node(id);
        let mut kids: Vec<String> = node.children.iter().map(|&c| canon(t, c)).collect();
        kids.sort();
        let mut inv: Vec<_> = node.inverted.iter().map(|(w, vs)| (w.0, vs.clone())).collect();
        inv.sort();
        format!(
            "(l{} v{:?} i{:?} s{:02x?} [{}])",
            node.level,
            node.vertices.iter().map(|x| x.0).collect::<Vec<_>>(),
            inv,
            node.signature.to_bytes(),
            kids.join(",")
        )
    }

    fn assert_equivalent(updated: &ClTree, fresh: &ClTree) {
        assert_eq!(updated.core_numbers(), fresh.core_numbers());
        assert_eq!(updated.max_core(), fresh.max_core());
        assert_eq!(updated.node_count(), fresh.node_count());
        assert_eq!(canon(updated, updated.root()), canon(fresh, fresh.root()));
        // node_of is consistent with the arena.
        for vi in 0..updated.core_numbers().len() {
            let nid = updated.node_of(v(vi as u32));
            assert!(updated.node(nid).vertices.contains(&v(vi as u32)));
        }
    }

    #[test]
    fn removing_a_clique_edge_updates_figure5() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        // Removing (A,B) collapses the 3-core: A..E all land at core 2.
        let (_, updated, fresh) = step(&g, &tree, &[], &[(v(0), v(1))]);
        assert_equivalent(&updated, &fresh);
        assert_eq!(updated.max_core(), 2);
    }

    #[test]
    fn adding_chords_updates_figure5() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        // (G,E) and (F,C) pull F and G into the 2-core.
        let ge = (v(6), v(4));
        let fc = (v(5), v(2));
        let (g2, updated, fresh) = step(&g, &tree, &[ge, fc], &[]);
        assert_equivalent(&updated, &fresh);
        assert_eq!(updated.core(v(5)), 2);
        assert_eq!(updated.core(v(6)), 2);

        // A second incremental step on top of the updated tree.
        let (_, updated2, fresh2) = step(&g2, &updated, &[(v(9), v(7))], &[ge]);
        assert_equivalent(&updated2, &fresh2);
    }

    #[test]
    fn carried_nodes_share_inverted_lists_by_pointer() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        // Toggling H–I only reaches level 1: the {A,B,C,D} level-3 node
        // and the {E} level-2 node must be carried with their keyword
        // indexes shared, not recomputed.
        let delta = g.edge_delta(&[], &[(v(7), v(8))]).unwrap();
        let g2 = g.apply_delta(&delta);
        let cores = CoreDecomposition::compute(&g2).core_numbers().to_vec();
        let updated = tree.update(&g2, &delta, &cores);
        assert_equivalent(&updated, &ClTree::build(&g2));
        let abcd_old = tree.node(tree.node_of(v(0)));
        let abcd_new = updated.node(updated.node_of(v(0)));
        assert!(std::sync::Arc::ptr_eq(&abcd_old.inverted, &abcd_new.inverted));
        let e_old = tree.node(tree.node_of(v(4)));
        let e_new = updated.node(updated.node_of(v(4)));
        assert!(std::sync::Arc::ptr_eq(&e_old.inverted, &e_new.inverted));
        // Carried nodes keep their subtree signature verbatim (repair only
        // re-derives the rebuilt levels).
        assert_eq!(abcd_old.signature, abcd_new.signature);
        assert_eq!(e_old.signature, e_new.signature);
        assert!(!abcd_new.signature.is_empty());
    }

    #[test]
    fn merging_two_separate_cores_without_core_changes() {
        // Two disjoint triangles: connecting them by one edge changes no
        // core number, but the level-1 tree structure must merge — the
        // threshold rule (min new core of the added edge = 2... no: the
        // bridge endpoints keep core 2, so L = 2 and both triangle nodes
        // are rebuilt correctly).
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_vertex(&format!("v{i}"), &["k"]);
        }
        for (x, y) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(v(x), v(y));
        }
        let g = b.build();
        let tree = ClTree::build(&g);
        let (_, updated, fresh) = step(&g, &tree, &[(v(2), v(3))], &[]);
        assert_equivalent(&updated, &fresh);
        // And the reverse: splitting them again.
        let g2 = g.apply_delta(&g.edge_delta(&[(v(2), v(3))], &[]).unwrap());
        let cores2 = CoreDecomposition::compute(&g2).core_numbers().to_vec();
        let t2 = tree.update(&g2, &g.edge_delta(&[(v(2), v(3))], &[]).unwrap(), &cores2);
        let (_, updated3, fresh3) = step(&g2, &t2, &[], &[(v(2), v(3))]);
        assert_equivalent(&updated3, &fresh3);
    }

    #[test]
    fn isolating_and_reconnecting_a_vertex() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        // Strip H of its only edge: H and I join J at core 0.
        let (g2, updated, fresh) = step(&g, &tree, &[], &[(v(7), v(8))]);
        assert_equivalent(&updated, &fresh);
        assert_eq!(updated.core(v(7)), 0);
        // Reconnect J into the big component.
        let (_, updated2, fresh2) = step(&g2, &updated, &[(v(9), v(0))], &[]);
        assert_equivalent(&updated2, &fresh2);
    }

    #[test]
    fn fallback_rebuilds_and_counts() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        // Deleting the whole 4-clique changes 4+ cores out of 10 → > 25%.
        let before = cx_obs::global().counter("cx_incremental_fallback_total").get();
        let clique: Vec<_> =
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)].map(|(a, b)| (v(a), v(b))).into();
        let (_, updated, fresh) = step(&g, &tree, &[], &clique);
        assert_equivalent(&updated, &fresh);
        let after = cx_obs::global().counter("cx_incremental_fallback_total").get();
        assert_eq!(after, before + 1, "fallback must bump the counter");
    }

    #[test]
    fn long_random_script_stays_equivalent_to_fresh_builds() {
        let mut rng = cx_par::rng::Rng64::seed_from_u64(0xC1E);
        let n = 40u32;
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_vertex(&format!("v{i}"), if i % 3 == 0 { &["x", "y"][..] } else { &["y"][..] });
        }
        for _ in 0..70 {
            b.add_edge(v(rng.gen_range(0..n)), v(rng.gen_range(0..n)));
        }
        let mut g = b.build();
        let mut tree = ClTree::build(&g);
        for step_no in 0..120 {
            let mut add = Vec::new();
            let mut remove = Vec::new();
            for _ in 0..rng.gen_range(1..4u32) {
                let e = (v(rng.gen_range(0..n)), v(rng.gen_range(0..n)));
                if rng.gen_bool(0.5) {
                    add.push(e);
                } else {
                    remove.push(e);
                }
            }
            let delta = g.edge_delta(&add, &remove).unwrap();
            let g2 = g.apply_delta(&delta);
            let cores = CoreDecomposition::compute(&g2).core_numbers().to_vec();
            let updated = tree.update(&g2, &delta, &cores);
            let fresh = ClTree::build(&g2);
            assert_eq!(
                canon(&updated, updated.root()),
                canon(&fresh, fresh.root()),
                "divergence at script step {step_no}"
            );
            g = g2;
            tree = updated;
        }
    }
}
