//! CL-tree node structure.

use std::collections::HashMap;
use std::sync::Arc;

use cx_graph::{KeywordId, VertexId};

use crate::signature::KeywordSignature;

/// Index of a node within its [`crate::ClTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize for indexing the tree's node table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One CL-tree node: a connected component of the `level`-core, storing the
/// vertices whose core number equals `level` plus an inverted keyword list
/// over exactly those vertices.
#[derive(Debug, Clone)]
pub struct ClTreeNode {
    /// The k this node's component belongs to.
    pub level: u32,
    /// Parent node (a component of some lower-level core), `None` for the root.
    pub parent: Option<NodeId>,
    /// Child nodes (higher-level core components nested in this one).
    pub children: Vec<NodeId>,
    /// Vertices with core number == `level` in this component, sorted.
    pub vertices: Vec<VertexId>,
    /// Keyword → sorted vertices *of this node* carrying it. `Arc`-shared
    /// so that [`crate::ClTree::update`] can carry an unchanged node's
    /// keyword index into the successor tree without copying it (keyword
    /// sets are immutable under edge edits, so the map is determined by
    /// the vertex list).
    pub inverted: Arc<HashMap<KeywordId, Vec<VertexId>>>,
    /// Bloom-style signature of every keyword in this node's *subtree*
    /// (own inverted lists ∪ all descendants). No false negatives, so a
    /// missing bit proves a keyword's absence and lets query walks skip
    /// the subtree. Maintained by [`crate::signature::compute_signatures`]
    /// at build/update/snapshot-load time; carried nodes keep it by clone.
    pub signature: KeywordSignature,
}

impl ClTreeNode {
    /// Builds the node's inverted list from a keyword accessor.
    pub(crate) fn index_keywords<'a>(
        &mut self,
        keywords_of: impl Fn(VertexId) -> &'a [KeywordId],
    ) {
        let mut map: HashMap<KeywordId, Vec<VertexId>> = HashMap::new();
        for &v in &self.vertices {
            for &w in keywords_of(v) {
                map.entry(w).or_default().push(v);
            }
        }
        // Vertices were iterated in sorted order, so each list is sorted.
        self.inverted = Arc::new(map);
    }

    /// Vertices of this node carrying keyword `w`.
    pub fn vertices_with(&self, w: KeywordId) -> &[VertexId] {
        self.inverted.get(&w).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keywords appearing in this node.
    pub fn keyword_count(&self) -> usize {
        self.inverted.len()
    }

    /// Exact number of this node's own vertices carrying `w` — the
    /// per-node keyword-count summary the verifier's short-circuit sums
    /// during a pruned walk.
    pub fn keyword_support(&self, w: KeywordId) -> usize {
        self.vertices_with(w).len()
    }
}
