//! CL-tree construction (bottom-up, anchored union-find) and queries.
//!
//! Construction is parallel along two axes, both deterministic:
//!
//! * **components** — every connected component owns an independent
//!   subtree, so subtrees are built concurrently on the cx-par pool
//!   (components ordered by smallest vertex id; local node arenas are
//!   concatenated in that order, which fixes the node numbering at any
//!   thread count);
//! * **keyword indexing** — the per-node inverted lists only read the
//!   graph and write their own node, so the final pass runs over disjoint
//!   chunks of the node arena.

use std::collections::HashMap;

use cx_graph::traversal::ConnectedComponents;
use cx_graph::{AttributedGraph, KeywordId, VertexId};
use cx_kcore::CoreDecomposition;

use crate::node::{ClTreeNode, NodeId};
use crate::signature::{compute_signatures, KeywordSignature};
use crate::unionfind::UnionFind;

/// The CL-tree index over one attributed graph. See the crate docs for the
/// structure; build with [`ClTree::build`], query with
/// [`ClTree::connected_k_core`] and the keyword accessors.
#[derive(Debug, Clone)]
pub struct ClTree {
    nodes: Vec<ClTreeNode>,
    root: NodeId,
    /// Vertex → the node whose level equals the vertex's core number.
    node_of: Vec<NodeId>,
    /// Core number per vertex (kept so queries need no separate decomposition).
    core: Vec<u32>,
    max_core: u32,
}

impl ClTree {
    /// Builds the index for `g`: core decomposition, then one bottom-up
    /// sweep over levels `k_max … 1` with an anchored union-find, then a
    /// root assembly step for level 0 (isolated vertices). Near-linear in
    /// `n + m`.
    pub fn build(g: &AttributedGraph) -> Self {
        let cd = CoreDecomposition::compute_par(g);
        Self::build_with(g, &cd)
    }

    /// Like [`ClTree::build`] but reuses an existing core decomposition.
    ///
    /// Subtrees of independent connected components are built in parallel;
    /// see the module docs for the determinism argument.
    pub fn build_with(g: &AttributedGraph, cd: &CoreDecomposition) -> Self {
        Self::build_with_cores(g, cd.core_numbers())
    }

    /// Like [`ClTree::build_with`] but takes the bare core-number vector —
    /// the entry point for callers that maintain core numbers
    /// incrementally (see [`ClTree::update`]) and therefore have no
    /// `CoreDecomposition` to hand. `cores` must be the exact core
    /// numbers of `g`.
    pub fn build_with_cores(g: &AttributedGraph, cores: &[u32]) -> Self {
        let _span = cx_obs::span("cltree.build");
        let n = g.vertex_count();
        assert_eq!(cores.len(), n, "core vector must cover every vertex");
        let core: Vec<u32> = cores.to_vec();
        let max_core = core.iter().copied().max().unwrap_or(0);

        let cc = ConnectedComponents::compute(g);
        let comps = cc.groups();
        // Global vertex id → index within its component, shared read-only
        // by every subtree builder.
        let mut local = vec![0u32; n];
        for comp in &comps {
            for (i, &v) in comp.iter().enumerate() {
                local[v.index()] = i as u32;
            }
        }
        let subtrees: Vec<ComponentSubtree> =
            cx_par::par_map_slice(&comps, |comp| build_component_subtree(g, comp, &core, &local));

        // Concatenate the local arenas in component order, offsetting ids.
        let total: usize = subtrees.iter().map(|s| s.nodes.len()).sum();
        let mut nodes: Vec<ClTreeNode> = Vec::with_capacity(total + 1);
        let mut tops: Vec<NodeId> = Vec::new();
        for sub in subtrees {
            let offset = nodes.len() as u32;
            for mut node in sub.nodes {
                node.parent = node.parent.map(|p| NodeId(p.0 + offset));
                for c in &mut node.children {
                    *c = NodeId(c.0 + offset);
                }
                nodes.push(node);
            }
            if let Some(top) = sub.top {
                tops.push(NodeId(top.0 + offset));
            }
        }

        // Level 0: core-0 vertices are exactly the isolated ones; assemble a
        // single root holding them, with every component's top anchor as a
        // child (matching Figure 5(b), where the root contains J).
        let mut isolated: Vec<VertexId> =
            g.vertices().filter(|&v| core[v.index()] == 0).collect();
        tops.sort_unstable();
        let root = if isolated.is_empty() && tops.len() == 1 {
            tops[0]
        } else {
            let nid = NodeId(nodes.len() as u32);
            for &kid in &tops {
                nodes[kid.index()].parent = Some(nid);
            }
            isolated.sort_unstable();
            nodes.push(ClTreeNode {
                level: 0,
                parent: None,
                children: tops,
                vertices: isolated,
                inverted: Default::default(),
                signature: KeywordSignature::EMPTY,
            });
            nid
        };

        // node_of: every vertex appears in exactly one node.
        let mut node_of = vec![NodeId(u32::MAX); n];
        for (i, node) in nodes.iter().enumerate() {
            for &v in &node.vertices {
                node_of[v.index()] = NodeId(i as u32);
            }
        }

        // Inverted keyword lists: each node only reads the graph and writes
        // itself, so the pass runs over disjoint chunks of the arena.
        cx_par::par_chunks_mut(&mut nodes, 64, |_, chunk| {
            for node in chunk {
                node.index_keywords(|v| g.keywords(v));
            }
        });

        // Subtree keyword signatures, bottom-up over the finished arena.
        compute_signatures(&mut nodes, u32::MAX);

        Self { nodes, root, node_of, core, max_core }
    }

    /// Crate-internal constructor used by snapshot loading — also the
    /// splice point the parallel builder's arena concatenation feeds.
    pub(crate) fn from_parts(
        nodes: Vec<ClTreeNode>,
        root: NodeId,
        node_of: Vec<NodeId>,
        core: Vec<u32>,
        max_core: u32,
    ) -> Self {
        Self { nodes, root, node_of, core, max_core }
    }

    /// The core number of `v`.
    #[inline]
    pub fn core(&self, v: VertexId) -> u32 {
        self.core[v.index()]
    }

    /// Core numbers of every vertex, indexed by vertex id.
    #[inline]
    pub fn core_numbers(&self) -> &[u32] {
        &self.core
    }

    /// The graph's degeneracy (largest non-empty core level).
    #[inline]
    pub fn max_core(&self) -> u32 {
        self.max_core
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> &ClTreeNode {
        &self.nodes[id.index()]
    }

    /// The node holding `v` (level == core(v)).
    pub fn node_of(&self, v: VertexId) -> NodeId {
        self.node_of[v.index()]
    }

    /// The root of the subtree representing the connected k-core containing
    /// `q`: walk up from q's node while the parent still has level ≥ k.
    /// `None` when `core(q) < k` (q is not in any k-core).
    pub fn subtree_root_for(&self, q: VertexId, k: u32) -> Option<NodeId> {
        if q.index() >= self.core.len() || self.core[q.index()] < k {
            return None;
        }
        let mut cur = self.node_of(q);
        while let Some(p) = self.nodes[cur.index()].parent {
            if self.nodes[p.index()].level >= k {
                cur = p;
            } else {
                break;
            }
        }
        Some(cur)
    }

    /// All vertices in the subtree rooted at `id`, sorted.
    pub fn subtree_vertices(&self, id: NodeId) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.subtree_vertices_into(id, &mut Vec::new(), &mut out);
        out
    }

    /// Allocation-free variant of [`ClTree::subtree_vertices`]: the DFS
    /// `stack` and the sorted output are written into caller-provided
    /// buffers (cleared first), so the query hot path can reuse them.
    pub fn subtree_vertices_into(
        &self,
        id: NodeId,
        stack: &mut Vec<NodeId>,
        out: &mut Vec<VertexId>,
    ) {
        out.clear();
        stack.clear();
        stack.push(id);
        while let Some(nid) = stack.pop() {
            let node = &self.nodes[nid.index()];
            out.extend_from_slice(&node.vertices);
            stack.extend_from_slice(&node.children);
        }
        out.sort_unstable();
    }

    /// The connected k-core containing `q` (sorted vertices), via the index.
    pub fn connected_k_core(&self, q: VertexId, k: u32) -> Option<Vec<VertexId>> {
        self.subtree_root_for(q, k).map(|r| self.subtree_vertices(r))
    }

    /// Vertices in the subtree of `id` whose keyword set contains `w`,
    /// sorted — collected from per-node inverted lists without touching
    /// the graph.
    pub fn keyword_vertices_in_subtree(&self, id: NodeId, w: KeywordId) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.keyword_vertices_in_subtree_into(id, w, &mut Vec::new(), &mut out);
        out
    }

    /// Allocation-free variant of [`ClTree::keyword_vertices_in_subtree`]
    /// over caller-provided buffers (cleared first).
    pub fn keyword_vertices_in_subtree_into(
        &self,
        id: NodeId,
        w: KeywordId,
        stack: &mut Vec<NodeId>,
        out: &mut Vec<VertexId>,
    ) {
        out.clear();
        stack.clear();
        stack.push(id);
        while let Some(nid) = stack.pop() {
            let node = &self.nodes[nid.index()];
            out.extend_from_slice(node.vertices_with(w));
            stack.extend_from_slice(&node.children);
        }
        out.sort_unstable();
    }

    /// Signature-pruned variant of
    /// [`ClTree::keyword_vertices_in_subtree_into`]: child subtrees whose
    /// keyword signature is missing either bit of `mask` provably contain
    /// no carrier of `w` and are skipped wholesale. Output is identical to
    /// the unpruned walk (signatures have no false negatives); only the
    /// traversal differs. Checks the cooperative cancel token every
    /// [`CANCEL_CHECK_INTERVAL`] visited nodes so `timeout_ms` deadlines
    /// fire mid-walk on large subtrees; on cancellation the partially
    /// collected (unsorted) output must be discarded by the caller.
    pub fn keyword_vertices_in_subtree_pruned_into(
        &self,
        id: NodeId,
        w: KeywordId,
        mask: &KeywordSignature,
        stack: &mut Vec<NodeId>,
        out: &mut Vec<VertexId>,
    ) -> KeywordWalkStats {
        out.clear();
        stack.clear();
        let mut stats = KeywordWalkStats::default();
        if !self.nodes[id.index()].signature.contains_all(mask) {
            stats.subtrees_pruned = 1;
            return stats;
        }
        stats.signature_hits = 1;
        stack.push(id);
        while let Some(nid) = stack.pop() {
            stats.nodes_visited += 1;
            if stats.nodes_visited & (CANCEL_CHECK_INTERVAL - 1) == 0 && cx_par::task::cancelled()
            {
                stats.cancelled = true;
                return stats;
            }
            let node = &self.nodes[nid.index()];
            out.extend_from_slice(node.vertices_with(w));
            for &c in &node.children {
                if self.nodes[c.index()].signature.contains_all(mask) {
                    stats.signature_hits += 1;
                    stack.push(c);
                } else {
                    stats.subtrees_pruned += 1;
                }
            }
        }
        out.sort_unstable();
        stats
    }

    /// Convenience: vertices carrying `w` within the connected k-core of `q`.
    pub fn keyword_vertices_in_k_core(
        &self,
        q: VertexId,
        k: u32,
        w: KeywordId,
    ) -> Option<Vec<VertexId>> {
        self.subtree_root_for(q, k).map(|r| self.keyword_vertices_in_subtree(r, w))
    }

    /// Occurrence counts of every keyword within the subtree of `id`.
    pub fn keyword_counts_in_subtree(&self, id: NodeId) -> HashMap<KeywordId, usize> {
        let mut counts = HashMap::new();
        let mut stack = vec![id];
        while let Some(nid) = stack.pop() {
            let node = &self.nodes[nid.index()];
            for (&w, vs) in node.inverted.iter() {
                *counts.entry(w).or_insert(0) += vs.len();
            }
            stack.extend_from_slice(&node.children);
        }
        counts
    }

    /// Height of the tree (root counts as 1; 1 for a single-node tree).
    pub fn height(&self) -> usize {
        fn depth(nodes: &[ClTreeNode], id: NodeId) -> usize {
            1 + nodes[id.index()]
                .children
                .iter()
                .map(|&c| depth(nodes, c))
                .max()
                .unwrap_or(0)
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth(&self.nodes, self.root)
        }
    }

    /// Approximate heap footprint of the index in bytes — used by the
    /// linear-space experiment (E6).
    pub fn memory_bytes(&self) -> usize {
        let mut total = self.nodes.capacity() * std::mem::size_of::<ClTreeNode>()
            + self.node_of.len() * std::mem::size_of::<NodeId>()
            + self.core.len() * std::mem::size_of::<u32>();
        for n in &self.nodes {
            total += n.vertices.len() * std::mem::size_of::<VertexId>()
                + n.children.len() * std::mem::size_of::<NodeId>();
            for vs in n.inverted.values() {
                total += vs.len() * std::mem::size_of::<VertexId>()
                    + std::mem::size_of::<KeywordId>()
                    + std::mem::size_of::<usize>();
            }
        }
        total
    }

    /// Iterates all nodes with their ids.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &ClTreeNode)> + '_ {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }
}

/// How many visited nodes a pruned keyword walk processes between
/// cooperative-cancellation checks (power of two; the check is a
/// thread-local read, this just keeps it off the per-node fast path).
pub const CANCEL_CHECK_INTERVAL: u32 = 64;

/// Traversal statistics of one signature-pruned keyword walk, fed into
/// the `cx_acq_subtrees_pruned_total` / `cx_acq_signature_hits_total`
/// metric families by the ACQ verifier.
#[derive(Debug, Default, Clone, Copy)]
pub struct KeywordWalkStats {
    /// Nodes actually visited (vertices collected from).
    pub nodes_visited: u32,
    /// Subtrees skipped because their signature excluded the keyword.
    pub subtrees_pruned: u32,
    /// Signature tests that passed (the subtree was descended into).
    pub signature_hits: u32,
    /// The cooperative cancel token fired mid-walk; `out` is partial and
    /// unsorted and must be discarded.
    pub cancelled: bool,
}

/// One component's bottom-up subtree: a local node arena (ids local to the
/// arena) plus the top anchor — `None` for isolated (core-0) vertices,
/// which the level-0 root assembly picks up directly.
struct ComponentSubtree {
    nodes: Vec<ClTreeNode>,
    top: Option<NodeId>,
}

/// The anchored union-find sweep of the sequential builder, restricted to
/// one connected component. `local` maps global vertex ids to
/// component-local union-find slots. Node numbering inside the arena is
/// deterministic (levels descend; roots sorted by local representative),
/// so the caller's component-ordered concatenation is thread-count
/// independent.
fn build_component_subtree(
    g: &AttributedGraph,
    comp: &[VertexId],
    core: &[u32],
    local: &[u32],
) -> ComponentSubtree {
    let comp_max = comp.iter().map(|&v| core[v.index()]).max().unwrap_or(0);
    if comp_max == 0 {
        // A lone isolated vertex: no arena, handled by the root assembly.
        return ComponentSubtree { nodes: Vec::new(), top: None };
    }
    // Component vertices grouped by core number.
    let mut levels: Vec<Vec<VertexId>> = vec![Vec::new(); comp_max as usize + 1];
    for &v in comp {
        levels[core[v.index()] as usize].push(v);
    }

    let mut nodes: Vec<ClTreeNode> = Vec::new();
    let mut uf = UnionFind::new(comp.len());
    // Current component anchors: local union-find representative → node id.
    let mut anchors: HashMap<u32, NodeId> = HashMap::new();

    for k in (1..=comp_max).rev() {
        // Snapshot anchors before this level's unions change representatives.
        let snapshot: Vec<(u32, NodeId)> =
            anchors.iter().map(|(&rep, &nid)| (rep, nid)).collect();

        // Union every edge from a level-k vertex to a vertex of core ≥ k.
        for &v in &levels[k as usize] {
            for &u in g.neighbors(v) {
                if core[u.index()] >= k {
                    uf.union(local[v.index()], local[u.index()]);
                }
            }
        }

        // Regroup old anchors and the new level-k vertices by new root.
        let mut child_anchors: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for (rep, nid) in snapshot {
            child_anchors.entry(uf.find(rep)).or_default().push(nid);
        }
        let mut new_vertices: HashMap<u32, Vec<VertexId>> = HashMap::new();
        for &v in &levels[k as usize] {
            new_vertices.entry(uf.find(local[v.index()])).or_default().push(v);
        }

        let mut next_anchors: HashMap<u32, NodeId> = HashMap::new();
        let mut roots: Vec<u32> = child_anchors.keys().copied().collect();
        for &r in new_vertices.keys() {
            if !child_anchors.contains_key(&r) {
                roots.push(r);
            }
        }
        // Deterministic node numbering regardless of hash order.
        roots.sort_unstable();
        for root in roots {
            let mut verts = new_vertices.remove(&root).unwrap_or_default();
            let mut kids = child_anchors.remove(&root).unwrap_or_default();
            if verts.is_empty() && kids.len() == 1 {
                // Component unchanged at this level: no node, carry forward.
                next_anchors.insert(root, kids[0]);
                continue;
            }
            verts.sort_unstable();
            kids.sort_unstable();
            let nid = NodeId(nodes.len() as u32);
            for &kid in &kids {
                nodes[kid.index()].parent = Some(nid);
            }
            nodes.push(ClTreeNode {
                level: k,
                parent: None,
                children: kids,
                vertices: verts,
                inverted: Default::default(),
                signature: KeywordSignature::EMPTY,
            });
            next_anchors.insert(root, nid);
        }
        anchors = next_anchors;
    }

    // A connected component with any edge is fully joined at level 1.
    debug_assert_eq!(anchors.len(), 1, "component not fully anchored");
    let top = anchors.into_values().next();
    ComponentSubtree { nodes, top }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;
    use cx_graph::GraphBuilder;

    #[test]
    fn figure5_tree_matches_paper() {
        let g = figure5_graph();
        let t = ClTree::build(&g);
        assert_eq!(t.max_core(), 3);

        let label = |l: &str| g.vertex_by_label(l).unwrap();
        let names = |vs: &[VertexId]| -> Vec<&str> { vs.iter().map(|&v| g.label(v)).collect() };

        // Root is the level-0 node holding exactly J.
        let root = t.node(t.root());
        assert_eq!(root.level, 0);
        assert_eq!(names(&root.vertices), vec!["J"]);
        // Root has two children: the ABCDEFG component (level 1, holding F,G)
        // and the H–I pair (level 1).
        assert_eq!(root.children.len(), 2);
        let kids: Vec<&ClTreeNode> = root.children.iter().map(|&c| t.node(c)).collect();
        assert!(kids.iter().all(|n| n.level == 1));
        let mut kid_vertices: Vec<Vec<&str>> = kids.iter().map(|n| names(&n.vertices)).collect();
        kid_vertices.sort();
        assert_eq!(kid_vertices, vec![vec!["F", "G"], vec!["H", "I"]]);

        // Under {F,G}: level-2 node {E}; under it, level-3 node {A,B,C,D}.
        let fg = kids.iter().find(|n| names(&n.vertices).contains(&"F")).unwrap();
        assert_eq!(fg.children.len(), 1);
        let e_node = t.node(fg.children[0]);
        assert_eq!(e_node.level, 2);
        assert_eq!(names(&e_node.vertices), vec!["E"]);
        assert_eq!(e_node.children.len(), 1);
        let abcd = t.node(e_node.children[0]);
        assert_eq!(abcd.level, 3);
        assert_eq!(names(&abcd.vertices), vec!["A", "B", "C", "D"]);
        assert!(abcd.children.is_empty());

        // Five nodes total, height 4, exactly as in Figure 5(b).
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.height(), 4);

        // Core numbers per the figure's table.
        for (l, k) in [("A", 3), ("B", 3), ("C", 3), ("D", 3), ("E", 2), ("F", 1), ("G", 1), ("H", 1), ("I", 1), ("J", 0)] {
            assert_eq!(t.core(label(l)), k, "core of {l}");
        }
    }

    #[test]
    fn figure5_connected_k_cores() {
        let g = figure5_graph();
        let t = ClTree::build(&g);
        let label = |l: &str| g.vertex_by_label(l).unwrap();
        let names = |vs: Vec<VertexId>| -> Vec<String> {
            vs.into_iter().map(|v| g.label(v).to_owned()).collect()
        };

        assert_eq!(names(t.connected_k_core(label("A"), 3).unwrap()), ["A", "B", "C", "D"]);
        assert_eq!(
            names(t.connected_k_core(label("A"), 2).unwrap()),
            ["A", "B", "C", "D", "E"]
        );
        assert_eq!(
            names(t.connected_k_core(label("A"), 1).unwrap()),
            ["A", "B", "C", "D", "E", "F", "G"]
        );
        assert_eq!(names(t.connected_k_core(label("H"), 1).unwrap()), ["H", "I"]);
        assert!(t.connected_k_core(label("E"), 3).is_none());
        assert!(t.connected_k_core(label("J"), 1).is_none());
        // k = 0 from any vertex reaches the whole graph through the root.
        assert_eq!(t.connected_k_core(label("J"), 0).unwrap().len(), 10);
    }

    #[test]
    fn figure5_inverted_lists() {
        let g = figure5_graph();
        let t = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let x = g.interner().get("x").unwrap();
        let y = g.interner().get("y").unwrap();
        let w = g.interner().get("w").unwrap();

        // In the 2-core of A ({A,B,C,D,E}): x carried by A,B,C,D; w only by A.
        let xs = t.keyword_vertices_in_k_core(a, 2, x).unwrap();
        assert_eq!(xs.len(), 4);
        let ws = t.keyword_vertices_in_k_core(a, 2, w).unwrap();
        assert_eq!(ws, vec![a]);
        // Keyword counts over the 3-core subtree.
        let root3 = t.subtree_root_for(a, 3).unwrap();
        let counts = t.keyword_counts_in_subtree(root3);
        assert_eq!(counts.get(&x), Some(&4));
        assert_eq!(counts.get(&y), Some(&3)); // A, C, D
    }

    #[test]
    fn two_disjoint_triangles_get_empty_root() {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for (x, y) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(VertexId(x), VertexId(y));
        }
        let t = ClTree::build(&b.build());
        let root = t.node(t.root());
        assert_eq!(root.level, 0);
        assert!(root.vertices.is_empty());
        assert_eq!(root.children.len(), 2);
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn single_component_root_is_top_anchor() {
        // A triangle alone: one node at level 2, which IS the root.
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for (x, y) in [(0, 1), (1, 2), (0, 2)] {
            b.add_edge(VertexId(x), VertexId(y));
        }
        let t = ClTree::build(&b.build());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.node(t.root()).level, 2);
        assert_eq!(t.height(), 1);
        assert_eq!(t.connected_k_core(VertexId(0), 2).unwrap().len(), 3);
        assert_eq!(t.connected_k_core(VertexId(0), 1).unwrap().len(), 3);
    }

    #[test]
    fn empty_graph_builds_a_root() {
        let t = ClTree::build(&GraphBuilder::new().build());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.max_core(), 0);
        assert_eq!(t.height(), 1);
        assert!(t.node(t.root()).vertices.is_empty());
    }

    #[test]
    fn level_skipping_chain_is_compressed() {
        // K5 (4-core) plus a path attached: levels 4 and 1 exist, 2-3 are
        // skipped — the walk-up still answers k=2 and k=3 correctly.
        let mut b = GraphBuilder::new();
        for i in 0..8 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.add_edge(VertexId(i), VertexId(j));
            }
        }
        b.add_edge(VertexId(4), VertexId(5));
        b.add_edge(VertexId(5), VertexId(6));
        b.add_edge(VertexId(6), VertexId(7));
        let g = b.build();
        let t = ClTree::build(&g);
        let k5: Vec<VertexId> = (0..5).map(VertexId).collect();
        assert_eq!(t.connected_k_core(VertexId(0), 4).unwrap(), k5);
        assert_eq!(t.connected_k_core(VertexId(0), 3).unwrap(), k5);
        assert_eq!(t.connected_k_core(VertexId(0), 2).unwrap(), k5);
        assert_eq!(t.connected_k_core(VertexId(0), 1).unwrap().len(), 8);
        // No nodes exist at level 2 or 3.
        assert!(t.iter_nodes().all(|(_, n)| n.level != 2 && n.level != 3));
    }

    #[test]
    fn every_vertex_lives_in_exactly_one_node() {
        let g = figure5_graph();
        let t = ClTree::build(&g);
        let mut seen = vec![0usize; g.vertex_count()];
        for (_, n) in t.iter_nodes() {
            for &v in &n.vertices {
                seen[v.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "vertex node multiplicity {seen:?}");
        // node_of agrees with the node listing.
        for v in g.vertices() {
            let nid = t.node_of(v);
            assert!(t.node(nid).vertices.contains(&v));
            assert_eq!(t.node(nid).level, t.core(v));
        }
    }

    #[test]
    fn memory_is_reported() {
        let g = figure5_graph();
        let t = ClTree::build(&g);
        assert!(t.memory_bytes() > 0);
    }

    #[test]
    fn signatures_cover_exactly_the_subtree_keywords() {
        let g = figure5_graph();
        let t = ClTree::build(&g);
        for (id, node) in t.iter_nodes() {
            let counts = t.keyword_counts_in_subtree(id);
            // Soundness: every keyword present in the subtree tests positive.
            for &w in counts.keys() {
                assert!(
                    node.signature.contains_all(&KeywordSignature::mask_of(w)),
                    "keyword {w:?} missing from signature of node {id:?}"
                );
            }
            // A leaf with no keywords has an empty signature.
            if counts.is_empty() {
                assert!(node.signature.is_empty());
            }
        }
    }

    #[test]
    fn pruned_walk_matches_plain_walk_and_prunes() {
        // Two K4s joined through a degree-2 middle vertex: the 3-core has
        // two components (the K4s), children of the level-2 {m} node.
        // Keyword "a" lives only in the left K4, so its walk must prune
        // the right subtree and still return the identical carrier list.
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_vertex(&format!("l{i}"), &["a", "common"]);
        }
        for i in 0..4 {
            b.add_vertex(&format!("r{i}"), &["b", "common"]);
        }
        b.add_vertex("m", &["common"]);
        for base in [0u32, 4] {
            for x in 0..4u32 {
                for y in (x + 1)..4 {
                    b.add_edge(VertexId(base + x), VertexId(base + y));
                }
            }
        }
        b.add_edge(VertexId(0), VertexId(8));
        b.add_edge(VertexId(4), VertexId(8));
        let g = b.build();
        let t = ClTree::build(&g);
        assert_eq!(t.core(VertexId(8)), 2);
        assert_eq!(t.node(t.subtree_root_for(VertexId(0), 1).unwrap()).children.len(), 2);
        let root1 = t.subtree_root_for(VertexId(0), 1).unwrap();
        let (mut stack, mut plain, mut pruned) = (Vec::new(), Vec::new(), Vec::new());
        let mut total_pruned = 0;
        for name in ["a", "b", "common", "absent-everywhere"] {
            let Some(w) = g.interner().get(name) else {
                continue;
            };
            t.keyword_vertices_in_subtree_into(root1, w, &mut stack, &mut plain);
            let stats = t.keyword_vertices_in_subtree_pruned_into(
                root1,
                w,
                &KeywordSignature::mask_of(w),
                &mut stack,
                &mut pruned,
            );
            assert_eq!(plain, pruned, "pruned walk diverged for {name}");
            assert!(!stats.cancelled);
            total_pruned += stats.subtrees_pruned;
        }
        assert!(total_pruned >= 2, "expected the opposite triangle to be pruned");
    }
}
