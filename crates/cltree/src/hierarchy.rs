//! Multi-resolution hierarchy derived from the CL-tree.
//!
//! At paper scale (10⁶ vertices) no client can render the raw graph, and
//! even a single community can be too large for a first look. This module
//! turns the CL-tree into a browsable **summary hierarchy**: every tree
//! node doubles as a *supernode* standing for its whole subtree, carrying
//! aggregated statistics (subtree size, edge counts, degree stats, top
//! keywords), and a *level-k view* of the graph shows the connected
//! components of the k-core as at most one supernode each. Clients start
//! coarse and drill down by expanding one supernode at a time.
//!
//! ## Edge ownership
//!
//! The crucial structural fact (a direct consequence of core laminarity):
//! **two distinct supernodes of the same level never share an edge.** An
//! edge `{u, v}` with `core(u) ≤ core(v)` lies inside the
//! `core(u)`-core, so both endpoints sit in the *same* connected
//! component of it — which is exactly the CL-tree node of `u`. Hence
//! `node_of(u)` is an ancestor-or-self of `node_of(v)`, and we say the
//! edge is **owned** by the shallower node `node_of(u)`. Every owned edge
//! has at least one endpoint *resident* in its owner.
//!
//! This gives the hierarchy clean semantics with zero double counting:
//!
//! * a level-k view has no inter-supernode edges at all (components!);
//! * expanding a supernode `P` reveals its resident vertices, its child
//!   supernodes, the resident–resident edges owned by `P`, and weighted
//!   links from each resident into the child subtrees — nothing else;
//! * recursively expanding everything therefore reproduces the exact
//!   vertex set and edge multiset, which `cx-check` verifies as an
//!   oracle.

use std::collections::HashMap;

use cx_graph::{AttributedGraph, KeywordId, VertexId};

use crate::build::ClTree;
use crate::node::NodeId;

/// How many top keywords each supernode keeps.
pub const TOP_KEYWORDS: usize = 8;

/// Aggregated statistics for one supernode (one CL-tree node standing for
/// its whole subtree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupernodeStats {
    /// The CL-tree level (k of the k-core component).
    pub level: u32,
    /// Parent supernode, `None` for the root.
    pub parent: Option<NodeId>,
    /// Vertices resident in this node (core number == level).
    pub residents: u32,
    /// Total vertices in the subtree (this supernode's "size").
    pub subtree_vertices: u32,
    /// Edges owned by this node (see module docs on ownership).
    pub owned_edges: u64,
    /// Total edges with both endpoints inside the subtree.
    pub subtree_edges: u64,
    /// Sum of graph degrees over subtree vertices.
    pub sum_degree: u64,
    /// Maximum graph degree over subtree vertices.
    pub max_degree: u32,
    /// Up to [`TOP_KEYWORDS`] most frequent keywords in the subtree,
    /// `(keyword, occurrence count)`, count-descending then id-ascending.
    pub top_keywords: Vec<(KeywordId, u32)>,
}

/// The expansion of one supernode: what a client sees after clicking it.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// The expanded supernode.
    pub node: NodeId,
    /// Listed resident vertices, ascending by id. When the node has more
    /// residents than the cap, the highest-degree ones are listed.
    pub residents: Vec<VertexId>,
    /// True when residents were dropped to meet the cap.
    pub truncated: bool,
    /// Child supernodes, in tree order.
    pub children: Vec<NodeId>,
    /// Resident–resident edges among *listed* residents.
    pub internal_edges: Vec<(VertexId, VertexId)>,
    /// Weighted links `(resident, child supernode, #edges)` from listed
    /// residents into child subtrees, sorted by `(resident, child)`.
    pub child_links: Vec<(VertexId, NodeId, u32)>,
}

/// The summary hierarchy: per-supernode aggregates over one `(graph,
/// CL-tree)` pair. Node ids are the tree's [`NodeId`]s, so tree queries
/// and hierarchy stats compose directly.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    stats: Vec<SupernodeStats>,
    max_level: u32,
}

impl Hierarchy {
    /// Builds the hierarchy for `g` and its CL-tree: one O(m) edge
    ///-ownership scan plus one post-order aggregation sweep.
    pub fn build(g: &AttributedGraph, tree: &ClTree) -> Self {
        Self::build_reusing(g, tree, None)
    }

    /// Rebuilds aggregates after an incremental [`ClTree::update`],
    /// reusing the expensive per-subtree keyword merge for every subtree
    /// the update carried over unchanged (detected through the `Arc`
    /// identity of the nodes' inverted lists — shared exactly when a
    /// node's `(level, vertices)` survived). Degree and edge columns are
    /// always recomputed: an edge edit changes degrees even where core
    /// numbers, and hence the tree, did not move.
    pub fn update(
        g: &AttributedGraph,
        tree: &ClTree,
        prev_tree: &ClTree,
        prev: &Hierarchy,
    ) -> Self {
        Self::build_reusing(g, tree, Some((prev_tree, prev)))
    }

    fn build_reusing(
        g: &AttributedGraph,
        tree: &ClTree,
        prev: Option<(&ClTree, &Hierarchy)>,
    ) -> Self {
        let _span = cx_obs::span("cltree.hierarchy.build");
        let nn = tree.node_count();
        let mut stats: Vec<SupernodeStats> = tree
            .iter_nodes()
            .map(|(_, n)| SupernodeStats {
                level: n.level,
                parent: n.parent,
                residents: n.vertices.len() as u32,
                subtree_vertices: 0,
                owned_edges: 0,
                subtree_edges: 0,
                sum_degree: 0,
                max_degree: 0,
                top_keywords: Vec::new(),
            })
            .collect();

        // Edge-ownership scan: every undirected edge counted once at the
        // node of its smaller-core endpoint (see module docs).
        for v in g.vertices() {
            let cv = tree.core(v);
            for &u in g.neighbors(v) {
                let cu = tree.core(u);
                // Count once: strictly smaller core owns outright; on a
                // core tie both endpoints share a node, so take v < u.
                if cv < cu || (cv == cu && v < u) {
                    stats[tree.node_of(v).index()].owned_edges += 1;
                }
            }
        }

        // Which old subtree, if any, is carried over verbatim — keyed by
        // the Arc pointer of the node's inverted list.
        let reuse = prev.map(|(pt, ph)| PreservedSubtrees::scan(tree, pt, ph));

        // Post-order sweep: children before parents. An explicit stack
        // keeps us safe on adversarially deep trees.
        let order = post_order(tree);
        let mut kw: Vec<HashMap<KeywordId, u32>> = vec![HashMap::new(); nn];
        for &nid in &order {
            let node = tree.node(nid);
            let i = nid.index();

            let mut sub_v = node.vertices.len() as u64;
            let mut sub_e = stats[i].owned_edges;
            let mut sum_d = 0u64;
            let mut max_d = 0u32;
            for &v in &node.vertices {
                let d = g.degree(v) as u64;
                sum_d += d;
                max_d = max_d.max(d as u32);
            }
            for &c in &node.children {
                let cs = &stats[c.index()];
                sub_v += cs.subtree_vertices as u64;
                sub_e += cs.subtree_edges;
                sum_d += cs.sum_degree;
                max_d = max_d.max(cs.max_degree);
            }
            stats[i].subtree_vertices = sub_v as u32;
            stats[i].subtree_edges = sub_e;
            stats[i].sum_degree = sum_d;
            stats[i].max_degree = max_d;

            if let Some(preserved) = reuse.as_ref().and_then(|r| r.old_of(nid)) {
                // Whole subtree carried over: take the old top keywords
                // and skip the merge below it entirely (children maps are
                // empty because they were skipped the same way).
                stats[i].top_keywords = preserved.clone();
                continue;
            }
            // Merge children's subtree keyword counts into this node's,
            // largest map first to bound rehashing.
            let mut acc = std::mem::take(&mut kw[i]);
            for (&w, vs) in node.inverted.iter() {
                *acc.entry(w).or_insert(0) += vs.len() as u32;
            }
            for &c in &node.children {
                let child = std::mem::take(&mut kw[c.index()]);
                let (mut big, small) = if child.len() > acc.len() { (child, acc) } else { (acc, child) };
                for (w, n) in small {
                    *big.entry(w).or_insert(0) += n;
                }
                acc = big;
            }
            stats[i].top_keywords = top_k(&acc);
            kw[i] = acc;
        }

        Self { stats, max_level: tree.max_core() }
    }

    /// The deepest level at which any supernode exists.
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Number of supernodes (== CL-tree nodes).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.stats.len()
    }

    /// Aggregates of one supernode.
    #[inline]
    pub fn stats(&self, id: NodeId) -> &SupernodeStats {
        &self.stats[id.index()]
    }

    /// The supernodes of the level-`k` view: the maximal subtrees of
    /// level ≥ k, i.e. the connected components of the k-core (for k = 0,
    /// the single root). Ordered by subtree size descending, then id —
    /// so callers can take a prefix as "the N largest communities".
    pub fn level_nodes(&self, k: u32) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .stats
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.level >= k
                    && match s.parent {
                        None => true,
                        Some(p) => self.stats[p.index()].level < k,
                    }
            })
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        out.sort_unstable_by_key(|&id| {
            (u32::MAX - self.stats[id.index()].subtree_vertices, id.0)
        });
        out
    }

    /// Expands supernode `id`: listed residents (all of them, or the
    /// `max_residents` highest-degree ones), child supernodes, owned
    /// resident–resident edges, and weighted resident→child links. See
    /// the module docs for why this is the complete edge picture.
    pub fn expand(
        &self,
        g: &AttributedGraph,
        tree: &ClTree,
        id: NodeId,
        max_residents: usize,
    ) -> Expansion {
        let node = tree.node(id);
        let level = node.level;

        let truncated = node.vertices.len() > max_residents;
        let mut residents: Vec<VertexId> = if truncated {
            let mut by_degree: Vec<VertexId> = node.vertices.clone();
            by_degree.sort_unstable_by_key(|&v| (usize::MAX - g.degree(v), v.0));
            by_degree.truncate(max_residents);
            by_degree.sort_unstable();
            by_degree
        } else {
            node.vertices.clone()
        };
        residents.dedup();

        let listed: std::collections::HashSet<VertexId> = residents.iter().copied().collect();
        let mut internal_edges = Vec::new();
        let mut links: HashMap<(VertexId, NodeId), u32> = HashMap::new();
        for &u in &residents {
            for &v in g.neighbors(u) {
                let cv = tree.core(v);
                if cv < level {
                    continue; // owned by an ancestor's view
                }
                if tree.node_of(v) == id {
                    if u < v && listed.contains(&v) {
                        internal_edges.push((u, v));
                    }
                    continue;
                }
                // v lives strictly below: attribute the edge to the child
                // subtree containing it.
                let child = child_containing(tree, id, v);
                *links.entry((u, child)).or_insert(0) += 1;
            }
        }
        internal_edges.sort_unstable();
        let mut child_links: Vec<(VertexId, NodeId, u32)> =
            links.into_iter().map(|((u, c), w)| (u, c, w)).collect();
        child_links.sort_unstable_by_key(|&(u, c, _)| (u, c));

        Expansion {
            node: id,
            residents,
            truncated,
            children: node.children.clone(),
            internal_edges,
            child_links,
        }
    }

    /// All edges owned by supernode `id`, as explicit vertex pairs. Each
    /// graph edge is owned by exactly one node, so concatenating this
    /// over all nodes reproduces the exact edge multiset — the
    /// reconstruction oracle in `cx-check` relies on this.
    pub fn owned_edge_list(
        &self,
        g: &AttributedGraph,
        tree: &ClTree,
        id: NodeId,
    ) -> Vec<(VertexId, VertexId)> {
        let node = tree.node(id);
        let level = node.level;
        let mut out = Vec::new();
        for &u in &node.vertices {
            for &v in g.neighbors(u) {
                let cv = tree.core(v);
                if cv > level || (cv == level && u < v) {
                    out.push((u.min(v), u.max(v)));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.stats.capacity() * size_of::<SupernodeStats>()
            + self
                .stats
                .iter()
                .map(|s| s.top_keywords.len() * size_of::<(KeywordId, u32)>())
                .sum::<usize>()
    }
}

/// The child of `p` whose subtree contains `v`. Panics if `p` is not a
/// proper ancestor of `v`'s node — callers establish that via the edge
/// -ownership argument.
fn child_containing(tree: &ClTree, p: NodeId, v: VertexId) -> NodeId {
    let mut cur = tree.node_of(v);
    loop {
        match tree.node(cur).parent {
            Some(parent) if parent == p => return cur,
            Some(parent) => cur = parent,
            None => panic!("vertex {v:?} is not below supernode {p:?}"),
        }
    }
}

/// Children-before-parents ordering of all tree nodes, iteratively.
fn post_order(tree: &ClTree) -> Vec<NodeId> {
    let mut order = Vec::with_capacity(tree.node_count());
    let mut stack = vec![tree.root()];
    // Reverse-DFS trick: pre-order with children pushed left-to-right,
    // then reversed, yields a valid post-order.
    while let Some(nid) = stack.pop() {
        order.push(nid);
        stack.extend_from_slice(&tree.node(nid).children);
    }
    order.reverse();
    order
}

/// The top-[`TOP_KEYWORDS`] entries by `(count desc, keyword id asc)`.
fn top_k(counts: &HashMap<KeywordId, u32>) -> Vec<(KeywordId, u32)> {
    let mut all: Vec<(KeywordId, u32)> = counts.iter().map(|(&w, &c)| (w, c)).collect();
    all.sort_unstable_by_key(|&(w, c)| (u32::MAX - c, w));
    all.truncate(TOP_KEYWORDS);
    all
}

/// For [`Hierarchy::update`]: which new nodes root a subtree carried over
/// verbatim from the previous tree, mapped to the old top-keyword lists.
struct PreservedSubtrees {
    /// New node id → old node's `top_keywords`, for fully preserved subtrees.
    preserved: HashMap<NodeId, Vec<(KeywordId, u32)>>,
}

impl PreservedSubtrees {
    fn scan(tree: &ClTree, prev_tree: &ClTree, prev: &Hierarchy) -> Self {
        // Old inverted-list Arc pointer → old node id. Sharing happens
        // exactly when ClTree::update carried the node.
        let mut old_by_ptr: HashMap<*const (), NodeId> = HashMap::new();
        for (oid, onode) in prev_tree.iter_nodes() {
            old_by_ptr.insert(std::sync::Arc::as_ptr(&onode.inverted) as *const (), oid);
        }
        // Bottom-up: a subtree is preserved when its root shares its
        // inverted Arc with old node `o` AND its children's subtrees are
        // preserved AND they map exactly onto o's children.
        let mut map_of: HashMap<NodeId, NodeId> = HashMap::new(); // new → old
        let mut preserved = HashMap::new();
        for nid in post_order(tree) {
            let node = tree.node(nid);
            let Some(&old) =
                old_by_ptr.get(&(std::sync::Arc::as_ptr(&node.inverted) as *const ()))
            else {
                continue;
            };
            let mut kids_old: Vec<NodeId> = Vec::with_capacity(node.children.len());
            if !node.children.iter().all(|c| {
                map_of.get(c).map(|&o| kids_old.push(o)).is_some()
            }) {
                continue;
            }
            kids_old.sort_unstable();
            let mut expect: Vec<NodeId> = prev_tree.node(old).children.clone();
            expect.sort_unstable();
            if kids_old != expect {
                continue;
            }
            map_of.insert(nid, old);
            preserved.insert(nid, prev.stats(old).top_keywords.clone());
        }
        Self { preserved }
    }

    fn old_of(&self, nid: NodeId) -> Option<&Vec<(KeywordId, u32)>> {
        self.preserved.get(&nid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;
    use cx_graph::GraphBuilder;

    fn edge_multiset(g: &AttributedGraph) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::new();
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                if v < u {
                    out.push((v, u));
                }
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn figure5_aggregates() {
        let g = figure5_graph();
        let t = ClTree::build(&g);
        let h = Hierarchy::build(&g, &t);
        assert_eq!(h.node_count(), t.node_count());
        assert_eq!(h.max_level(), 3);

        // Root covers everything.
        let root = h.stats(t.root());
        assert_eq!(root.subtree_vertices as usize, g.vertex_count());
        assert_eq!(root.subtree_edges as usize, g.edge_count());

        // The {A,B,C,D} node is a K4: 4 vertices, 6 owned edges.
        let a = g.vertex_by_label("A").unwrap();
        let abcd = t.node_of(a);
        let s = h.stats(abcd);
        assert_eq!(s.level, 3);
        assert_eq!(s.residents, 4);
        assert_eq!(s.subtree_vertices, 4);
        assert_eq!(s.owned_edges, 6);
        assert_eq!(s.subtree_edges, 6);
        assert!(!s.top_keywords.is_empty());
        // x is carried by A,B,C,D — the top keyword of that subtree.
        let x = g.interner().get("x").unwrap();
        assert_eq!(s.top_keywords[0], (x, 4));
    }

    #[test]
    fn ownership_partitions_the_edge_multiset() {
        let g = figure5_graph();
        let t = ClTree::build(&g);
        let h = Hierarchy::build(&g, &t);
        let mut owned = Vec::new();
        let mut owned_total = 0u64;
        for (id, _) in t.iter_nodes() {
            owned.extend(h.owned_edge_list(&g, &t, id));
            owned_total += h.stats(id).owned_edges;
        }
        owned.sort_unstable();
        assert_eq!(owned, edge_multiset(&g));
        assert_eq!(owned_total as usize, g.edge_count());
    }

    #[test]
    fn level_views_are_kcore_components() {
        let g = figure5_graph();
        let t = ClTree::build(&g);
        let h = Hierarchy::build(&g, &t);

        // Level 0: exactly the root.
        assert_eq!(h.level_nodes(0), vec![t.root()]);
        // Level 1: two components — ABCDEFG (7 vertices) and HI (2).
        let l1 = h.level_nodes(1);
        assert_eq!(l1.len(), 2);
        let sizes: Vec<u32> = l1.iter().map(|&n| h.stats(n).subtree_vertices).collect();
        assert_eq!(sizes, vec![7, 2]); // size-descending order
        // Level 3: the K4 alone.
        let l3 = h.level_nodes(3);
        assert_eq!(l3.len(), 1);
        assert_eq!(h.stats(l3[0]).subtree_vertices, 4);
        // Beyond max level: nothing.
        assert!(h.level_nodes(4).is_empty());
    }

    #[test]
    fn expansion_reveals_residents_children_and_links() {
        let g = figure5_graph();
        let t = ClTree::build(&g);
        let h = Hierarchy::build(&g, &t);
        let label = |l: &str| g.vertex_by_label(l).unwrap();

        // Expand the level-2 node {E}: one resident, one child (K4), and
        // E's two edges into the K4 (E–C, E–D per Figure 5) as one
        // weighted link.
        let e_node = t.node_of(label("E"));
        let ex = h.expand(&g, &t, e_node, 100);
        assert_eq!(ex.residents, vec![label("E")]);
        assert!(!ex.truncated);
        assert_eq!(ex.children.len(), 1);
        assert!(ex.internal_edges.is_empty());
        assert_eq!(ex.child_links.len(), 1);
        let (u, c, w) = ex.child_links[0];
        assert_eq!(u, label("E"));
        assert_eq!(c, ex.children[0]);
        assert_eq!(w as usize, {
            // E's neighbours inside the K4.
            g.neighbors(label("E")).iter().filter(|&&v| t.core(v) == 3).count()
        });
    }

    #[test]
    fn expansion_truncates_by_degree() {
        let g = figure5_graph();
        let t = ClTree::build(&g);
        let h = Hierarchy::build(&g, &t);
        let a = g.vertex_by_label("A").unwrap();
        let abcd = t.node_of(a);
        let ex = h.expand(&g, &t, abcd, 2);
        assert!(ex.truncated);
        assert_eq!(ex.residents.len(), 2);
        // Internal edges only among listed residents.
        assert!(ex.internal_edges.iter().all(|(u, v)| {
            ex.residents.contains(u) && ex.residents.contains(v)
        }));
    }

    #[test]
    fn update_reuses_preserved_subtree_keywords() {
        let g = figure5_graph();
        let t = ClTree::build(&g);
        let h = Hierarchy::build(&g, &t);
        // Rebuild the tree via update with an empty delta → everything
        // preserved; the hierarchy must come out identical.
        let delta = cx_graph::EdgeDelta::default();
        let g2 = g.apply_delta(&delta);
        let cores = t.core_numbers().to_vec();
        let t2 = t.update(&g2, &delta, &cores);
        let h2 = Hierarchy::update(&g2, &t2, &t, &h);
        assert_eq!(h2.node_count(), h.node_count());
        for (id, _) in t2.iter_nodes() {
            assert_eq!(h2.stats(id).subtree_vertices, h.stats(id).subtree_vertices);
            assert_eq!(h2.stats(id).top_keywords, h.stats(id).top_keywords);
        }
    }

    #[test]
    fn update_after_real_edit_matches_fresh_build() {
        let g = figure5_graph();
        let t = ClTree::build(&g);
        let h = Hierarchy::build(&g, &t);
        // Connect H to E: changes components at level ≥ 1.
        let e = g.vertex_by_label("E").unwrap();
        let hv = g.vertex_by_label("H").unwrap();
        let delta = g.edge_delta(&[(e, hv)], &[]).unwrap();
        let g2 = g.apply_delta(&delta);
        let cores2 = cx_kcore::CoreDecomposition::compute_par(&g2);
        let t2 = ClTree::build_with(&g2, &cores2);
        let h_inc = Hierarchy::update(&g2, &t2, &t, &h);
        let h_fresh = Hierarchy::build(&g2, &t2);
        for (id, _) in t2.iter_nodes() {
            assert_eq!(h_inc.stats(id), h_fresh.stats(id), "stats diverge at {id:?}");
        }
    }

    #[test]
    fn isolated_vertices_live_at_the_root() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_vertex(&format!("v{i}"), &["kw"]);
        }
        b.add_edge(VertexId(0), VertexId(1));
        // v2, v3 isolated.
        let g = b.build();
        let t = ClTree::build(&g);
        let h = Hierarchy::build(&g, &t);
        let root = h.stats(t.root());
        assert_eq!(root.subtree_vertices, 4);
        assert_eq!(root.subtree_edges, 1);
        let ex = h.expand(&g, &t, t.root(), 10);
        assert_eq!(ex.residents.len(), 2); // v2, v3 resident at level 0
        assert_eq!(h.max_level(), 1);
    }
}
