//! Core-decomposition differential: the optimized (and parallel) peeling
//! in cx-kcore against the naive fixpoint reference inside cx-check.

use cx_check::invariants::check_core_numbers;
use cx_check::oracle::thread_differential;
use cx_check::workload::graph_matrix;
use cx_kcore::CoreDecomposition;

#[test]
fn sequential_and_parallel_decomposition_match_naive_peel() {
    for case in graph_matrix(&[80, 250], &[2, 9]) {
        let g = &case.graph;
        let seq = CoreDecomposition::compute(g);
        let par = CoreDecomposition::compute_par(g);
        for (label, d) in [("seq", &seq), ("par", &par)] {
            let violations = check_core_numbers(g, &|v| d.core(v));
            assert!(violations.is_empty(), "{} [{label}]: {violations:?}", case.name);
        }
        assert_eq!(seq.max_core(), par.max_core(), "{}", case.name);
    }
}

#[test]
fn decomposition_is_thread_independent() {
    for case in graph_matrix(&[200], &[4]) {
        let g = &case.graph;
        let mismatches = thread_differential(&case.name, &[1, 2, 8], || {
            let d = CoreDecomposition::compute_par(g);
            let cores: Vec<String> =
                g.vertices().map(|v| d.core(v).to_string()).collect();
            cores.join(",")
        });
        assert!(mismatches.is_empty(), "{mismatches:?}");
    }
}
