//! Large-graph property test for `DynamicCore`: a 10k+-vertex seeded
//! dblp_like graph run through 200-step insert/delete edit scripts,
//! cross-checked against a from-scratch peel.
//!
//! The proptest-based checks in `prop_kcore.rs` are feature-gated off in
//! offline builds, so this is a plain seeded test: deterministic, no
//! external dependencies, and sized so a debug build finishes in seconds
//! (the full recompute runs every few steps, not every step).

use cx_datagen::{dblp_like, DblpParams};
use cx_graph::{GraphBuilder, VertexId};
use cx_kcore::{CoreDecomposition, DynamicCore};
use cx_par::rng::Rng64;

const VERTICES: usize = 10_000;
const STEPS: usize = 200;
/// Full-recompute cadence: every step would be O(steps · (n + m)) in a
/// debug build; every 10th step still catches any drift within the
/// script while keeping the test under a few seconds.
const CHECK_EVERY: usize = 10;

/// Reference peel over the dynamic structure's current edge set.
fn recompute(dc: &DynamicCore, edges: &[(VertexId, VertexId)]) -> Vec<u32> {
    let mut b = GraphBuilder::with_capacity(dc.vertex_count(), edges.len());
    for i in 0..dc.vertex_count() {
        b.add_vertex(&format!("v{i}"), &[]);
    }
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    CoreDecomposition::compute(&b.build()).core_numbers().to_vec()
}

fn run_script(seed: u64) {
    let (g, _areas) = dblp_like(&DblpParams::scaled(VERTICES, seed));
    assert!(g.vertex_count() >= VERTICES, "scaled generator must hit the floor");
    let mut dc = DynamicCore::from_graph(&g);
    let n = g.vertex_count() as u32;
    let mut rng = Rng64::seed_from_u64(seed ^ 0xD1F);

    // Mutable mirror of the current edge set so deletes target real edges
    // and the reference rebuild is cheap to assemble.
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();

    for step in 0..STEPS {
        // ~60% inserts, ~40% removes, so the graph slowly densifies and
        // both cascade directions get exercised against the same regions.
        if rng.gen_bool(0.6) || edges.is_empty() {
            let u = VertexId(rng.gen_range(0..n));
            let v = VertexId(rng.gen_range(0..n));
            if dc.insert_edge(u, v) {
                edges.push(if u < v { (u, v) } else { (v, u) });
            }
        } else {
            let idx = rng.gen_range(0..edges.len());
            let (u, v) = edges.swap_remove(idx);
            assert!(dc.remove_edge(u, v), "mirror said edge {u}-{v} exists");
        }
        if step % CHECK_EVERY == CHECK_EVERY - 1 {
            assert_eq!(
                dc.core_numbers(),
                recompute(&dc, &edges).as_slice(),
                "core drift at step {step} (seed {seed})"
            );
        }
    }
    // Final exact check regardless of cadence.
    assert_eq!(dc.core_numbers(), recompute(&dc, &edges).as_slice(), "final (seed {seed})");
}

#[test]
fn dynamic_core_tracks_200_step_script_on_10k_graph_seed7() {
    run_script(7);
}

#[test]
fn dynamic_core_tracks_200_step_script_on_10k_graph_seed21() {
    run_script(21);
}
