//! Property tests: the optimised decompositions agree with naive
//! reference implementations on random graphs.
//!
//! Gated behind the non-default `proptest` feature: the build environment
//! is offline, so the `proptest` dev-dependency is not in the manifest.
//! Restore it (and `rand`) before enabling the feature in a networked
//! environment — see DESIGN.md "Offline build policy".
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use cx_graph::{AttributedGraph, GraphBuilder, VertexId};
use cx_kcore::{k_core_of_subset, CoreDecomposition, TrussDecomposition};

fn arb_graph(max_n: usize) -> impl Strategy<Value = AttributedGraph> {
    (2..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..(3 * n)).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new();
                for i in 0..n {
                    b.add_vertex(&format!("v{i}"), &[]);
                }
                for (u, v) in edges {
                    b.add_edge(VertexId(u), VertexId(v));
                }
                b.build()
            },
        )
    })
}

/// Reference: repeatedly delete vertices with degree < k until stable; a
/// vertex's core number is the largest k for which it survives.
fn naive_core_numbers(g: &AttributedGraph) -> Vec<u32> {
    let n = g.vertex_count();
    let mut core = vec![0u32; n];
    let max_k = g.max_degree() as u32;
    for k in 1..=max_k {
        let mut alive = vec![true; n];
        loop {
            let mut changed = false;
            for v in g.vertices() {
                if alive[v.index()] {
                    let d = g.neighbors(v).iter().filter(|&&u| alive[u.index()]).count();
                    if (d as u32) < k {
                        alive[v.index()] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for v in 0..n {
            if alive[v] {
                core[v] = k;
            }
        }
    }
    core
}

/// Reference truss: repeatedly delete edges in < (k-2) triangles.
fn naive_truss_of(g: &AttributedGraph, u: VertexId, v: VertexId) -> u32 {
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let mut k = 2u32;
    loop {
        // Try to sustain a (k+1)-truss: peel edges with < (k-1) triangles.
        let mut alive = edges.clone();
        loop {
            let has = |set: &[(VertexId, VertexId)], a: VertexId, b: VertexId| {
                let key = if a < b { (a, b) } else { (b, a) };
                set.contains(&key)
            };
            let before = alive.len();
            let snapshot = alive.clone();
            alive.retain(|&(a, b)| {
                let mut tri = 0;
                for w in g.vertices() {
                    if w != a && w != b && has(&snapshot, a, w) && has(&snapshot, b, w) {
                        tri += 1;
                    }
                }
                tri >= (k + 1).saturating_sub(2)
            });
            if alive.len() == before {
                break;
            }
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if alive.contains(&key) {
            k += 1;
            edges = alive;
        } else {
            return k;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bz_matches_naive_core_numbers(g in arb_graph(20)) {
        let cd = CoreDecomposition::compute(&g);
        let expect = naive_core_numbers(&g);
        prop_assert_eq!(cd.core_numbers(), expect.as_slice());
    }

    #[test]
    fn k_core_vertices_have_min_degree_k_and_are_maximal(g in arb_graph(25)) {
        let cd = CoreDecomposition::compute(&g);
        for k in 0..=cd.max_core() {
            let core = cd.k_core_vertices(k);
            let inset: std::collections::HashSet<_> = core.iter().copied().collect();
            for &v in &core {
                let d = g.neighbors(v).iter().filter(|u| inset.contains(u)).count();
                prop_assert!(d >= k as usize, "v{} has degree {} < {} in H_{}", v.0, d, k, k);
            }
        }
        // Nesting: H_{k+1} ⊆ H_k.
        for k in 0..cd.max_core() {
            let hk: std::collections::HashSet<_> = cd.k_core_vertices(k).into_iter().collect();
            for v in cd.k_core_vertices(k + 1) {
                prop_assert!(hk.contains(&v));
            }
        }
    }

    #[test]
    fn subset_core_on_full_graph_matches_decomposition(g in arb_graph(25), k in 0u32..5) {
        let all: Vec<VertexId> = g.vertices().collect();
        let sub = k_core_of_subset(&g, &all, k);
        let cd = CoreDecomposition::compute(&g);
        prop_assert_eq!(sub, cd.k_core_vertices(k));
    }

    #[test]
    fn truss_matches_naive_on_tiny_graphs(g in arb_graph(9)) {
        let td = TrussDecomposition::compute(&g);
        for (u, v) in g.edges() {
            let fast = td.truss_of(u, v).unwrap();
            let slow = naive_truss_of(&g, u, v);
            prop_assert_eq!(fast, slow, "edge ({},{})", u.0, v.0);
        }
    }

    #[test]
    fn truss_bounded_by_core_plus_one(g in arb_graph(20)) {
        // Classical bound: truss(e) ≤ min(core(u), core(v)) + 1... use the
        // weaker safe direction: truss(e) - 2 ≤ degree bound via cores.
        let cd = CoreDecomposition::compute(&g);
        let td = TrussDecomposition::compute(&g);
        for (u, v) in g.edges() {
            let t = td.truss_of(u, v).unwrap();
            let bound = cd.core(u).min(cd.core(v)) + 1;
            prop_assert!(t <= bound, "truss {} > core bound {}", t, bound);
        }
    }
}

/// Random edit scripts: after every insertion/deletion the incremental
/// core numbers must equal a from-scratch decomposition.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn dynamic_core_matches_recompute(
        n in 3usize..15,
        script in proptest::collection::vec((0u32..15, 0u32..15, any::<bool>()), 1..60),
    ) {
        use cx_kcore::DynamicCore;
        let mut dc = DynamicCore::with_vertices(n);
        for (a, b, insert) in script {
            let (a, b) = (VertexId(a % n as u32), VertexId(b % n as u32));
            if insert {
                dc.insert_edge(a, b);
            } else {
                dc.remove_edge(a, b);
            }
            // Reference recompute on the same edge set.
            let mut builder = GraphBuilder::new();
            for i in 0..n {
                builder.add_vertex(&format!("v{i}"), &[]);
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    if dc.has_edge(VertexId(i as u32), VertexId(j as u32)) {
                        builder.add_edge(VertexId(i as u32), VertexId(j as u32));
                    }
                }
            }
            let expect = CoreDecomposition::compute(&builder.build());
            prop_assert_eq!(
                dc.core_numbers(),
                expect.core_numbers(),
                "divergence after {} ({}, {})",
                if insert { "insert" } else { "remove" }, a.0, b.0
            );
        }
    }
}
