//! Determinism contract of the cx-par parallel paths: core numbers,
//! peeling-derived quantities, and triangle counts must be *identical*
//! at every thread count. The chunking in `cx_par` depends only on the
//! input length and partial results are combined in chunk order, so this
//! holds exactly (not just statistically).

use cx_datagen::{dblp_like, DblpParams};
use cx_graph::AttributedGraph;
use cx_kcore::truss::{triangle_count, TrussDecomposition};
use cx_kcore::CoreDecomposition;

fn graphs() -> Vec<AttributedGraph> {
    [1_000usize, 8_000, 25_000]
        .iter()
        .map(|&n| dblp_like(&DblpParams::scaled(n, 11)).0)
        .collect()
}

/// Runs `f` once per thread count and asserts all outputs are equal.
fn at_thread_counts<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    std::env::set_var("CX_THREADS", "1");
    cx_par::refresh_threads();
    let base = f();
    for threads in ["2", "8"] {
        std::env::set_var("CX_THREADS", threads);
        cx_par::refresh_threads();
        assert_eq!(f(), base, "diverged at CX_THREADS={threads}");
    }
    std::env::remove_var("CX_THREADS");
    cx_par::refresh_threads();
}

#[test]
fn core_numbers_identical_across_thread_counts() {
    for g in graphs() {
        at_thread_counts(|| CoreDecomposition::compute(&g).core_numbers().to_vec());
        at_thread_counts(|| CoreDecomposition::compute_par(&g).core_numbers().to_vec());
    }
}

#[test]
fn parallel_and_sequential_decompositions_agree() {
    for g in graphs() {
        let seq = CoreDecomposition::compute(&g);
        let par = CoreDecomposition::compute_par(&g);
        assert_eq!(seq.core_numbers(), par.core_numbers());
        assert_eq!(seq.max_core(), par.max_core());
        assert_eq!(seq.histogram(), par.histogram());
    }
}

#[test]
fn triangle_counts_identical_across_thread_counts() {
    for g in graphs() {
        at_thread_counts(|| triangle_count(&g));
    }
}

#[test]
fn truss_values_identical_across_thread_counts() {
    let (g, _) = dblp_like(&DblpParams::scaled(2_000, 11));
    at_thread_counts(|| {
        let t = TrussDecomposition::compute(&g);
        let per_edge: Vec<u32> = g
            .edges()
            .map(|(u, v)| t.truss_of(u, v).expect("edge has a truss value"))
            .collect();
        (t.max_truss(), per_edge)
    });
}
