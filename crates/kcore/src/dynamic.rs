//! Incremental core-number maintenance under edge insertions/deletions —
//! the streaming k-core decomposition of Sariyüce et al. (PVLDB 2013).
//!
//! The demo paper positions C-Explorer over evolving social networks
//! (new co-authorships appear continuously) and cites dynamic community
//! maintenance as the motivation behind Huang et al.'s dynamic k-truss.
//! This module keeps the core numbers — the input to the CL-tree — up to
//! date in time proportional to the *affected subcore*, instead of
//! re-peeling the whole graph per edit.
//!
//! Key facts the algorithm rests on: inserting one edge can raise core
//! numbers by **at most 1**, and only for vertices in the *subcore* of the
//! edge's lower endpoint (vertices with the same core number K reachable
//! through core-K vertices); deleting one edge can lower core numbers by
//! at most 1, within the same region.

use std::collections::VecDeque;

use cx_graph::{AttributedGraph, VertexId};

/// A mutable graph whose core numbers are maintained incrementally.
///
/// Seed it from an [`AttributedGraph`] (or empty), then apply
/// [`DynamicCore::insert_edge`] / [`DynamicCore::remove_edge`];
/// [`DynamicCore::core`] is always equal to what a from-scratch
/// decomposition of the current edge set would produce (property-tested
/// against exactly that).
#[derive(Debug, Clone)]
pub struct DynamicCore {
    adj: Vec<Vec<u32>>,
    core: Vec<u32>,
}

impl DynamicCore {
    /// Seeds from an existing graph: adjacency copy + one full peel.
    pub fn from_graph(g: &AttributedGraph) -> Self {
        let adj: Vec<Vec<u32>> =
            g.vertices().map(|v| g.neighbors(v).iter().map(|u| u.0).collect()).collect();
        let core = crate::decomposition::CoreDecomposition::compute(g).core_numbers().to_vec();
        Self { adj, core }
    }

    /// Seeds from a graph whose core numbers are already known, skipping
    /// the peel. `cores` must be the exact core numbers of `g` (as
    /// produced by a prior decomposition of the same edge set) — the
    /// engine uses this to warm its per-graph maintenance state from a
    /// published snapshot without re-peeling.
    pub fn from_graph_with_cores(g: &AttributedGraph, cores: &[u32]) -> Self {
        assert_eq!(cores.len(), g.vertex_count(), "core vector must cover every vertex");
        let adj: Vec<Vec<u32>> =
            g.vertices().map(|v| g.neighbors(v).iter().map(|u| u.0).collect()).collect();
        Self { adj, core: cores.to_vec() }
    }

    /// An edgeless graph with `n` vertices (all cores 0).
    pub fn with_vertices(n: usize) -> Self {
        Self { adj: vec![Vec::new(); n], core: vec![0; n] }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Current core number of `v`.
    pub fn core(&self, v: VertexId) -> u32 {
        self.core[v.index()]
    }

    /// All current core numbers, indexed by vertex.
    pub fn core_numbers(&self) -> &[u32] {
        &self.core
    }

    /// Adds a new isolated vertex, returning its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.adj.push(Vec::new());
        self.core.push(0);
        VertexId(self.adj.len() as u32 - 1)
    }

    /// Whether the undirected edge currently exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u.index() < self.adj.len() && self.adj[u.index()].contains(&v.0)
    }

    /// Inserts the undirected edge `{u, v}` and updates core numbers.
    /// Returns true if the edge was new. Self-loops and duplicates are
    /// ignored.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || u.index() >= self.adj.len() || v.index() >= self.adj.len() {
            return false;
        }
        if self.has_edge(u, v) {
            return false;
        }
        self.adj[u.index()].push(v.0);
        self.adj[v.index()].push(u.0);

        // Only vertices with core == K (the smaller endpoint core) can rise.
        let k = self.core[u.index()].min(self.core[v.index()]);
        let roots: Vec<u32> = [u, v]
            .into_iter()
            .filter(|w| self.core[w.index()] == k)
            .map(|w| w.0)
            .collect();

        // Candidate set: the subcore — core-K vertices reachable from the
        // root(s) through core-K vertices.
        let n = self.adj.len();
        let mut in_sub = vec![false; n];
        let mut subcore = Vec::new();
        let mut queue: VecDeque<u32> = VecDeque::new();
        for r in roots {
            if !in_sub[r as usize] {
                in_sub[r as usize] = true;
                queue.push_back(r);
            }
        }
        while let Some(w) = queue.pop_front() {
            subcore.push(w);
            for &x in &self.adj[w as usize] {
                if self.core[x as usize] == k && !in_sub[x as usize] {
                    in_sub[x as usize] = true;
                    queue.push_back(x);
                }
            }
        }

        // cd(w): neighbours that could support w at level K+1 — those with
        // core > K, or core == K and still candidates.
        let mut cd = vec![0u32; n];
        for &w in &subcore {
            cd[w as usize] = self.adj[w as usize]
                .iter()
                .filter(|&&x| self.core[x as usize] > k || in_sub[x as usize])
                .count() as u32;
        }
        // Peel candidates that cannot reach degree K+1.
        let mut evict: VecDeque<u32> =
            subcore.iter().copied().filter(|&w| cd[w as usize] <= k).collect();
        while let Some(w) = evict.pop_front() {
            if !in_sub[w as usize] {
                continue;
            }
            in_sub[w as usize] = false;
            for &x in &self.adj[w as usize] {
                if in_sub[x as usize] {
                    cd[x as usize] -= 1;
                    if cd[x as usize] == k {
                        evict.push_back(x);
                    }
                }
            }
        }
        // Survivors rise to K+1.
        for &w in &subcore {
            if in_sub[w as usize] {
                self.core[w as usize] = k + 1;
            }
        }
        true
    }

    /// Removes the undirected edge `{u, v}` and updates core numbers.
    /// Returns true if the edge existed.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.has_edge(u, v) {
            return false;
        }
        self.adj[u.index()].retain(|&x| x != v.0);
        self.adj[v.index()].retain(|&x| x != u.0);

        let k = self.core[u.index()].min(self.core[v.index()]);
        // Vertices with core == K near the affected endpoints may drop to
        // K-1. Start from the endpoints whose core is K and cascade: a
        // core-K vertex drops when fewer than K of its neighbours have
        // (effective) core ≥ K.
        let n = self.adj.len();
        let mut cd = vec![u32::MAX; n]; // lazily computed for visited core-K vertices
        let eff_core = |core: &[u32], x: u32| core[x as usize];

        let mut queue: VecDeque<u32> = VecDeque::new();
        let mut queued = vec![false; n];
        for w in [u.0, v.0] {
            if self.core[w as usize] == k && !queued[w as usize] {
                queued[w as usize] = true;
                queue.push_back(w);
            }
        }
        while let Some(w) = queue.pop_front() {
            if self.core[w as usize] != k {
                continue;
            }
            if cd[w as usize] == u32::MAX {
                cd[w as usize] = self.adj[w as usize]
                    .iter()
                    .filter(|&&x| eff_core(&self.core, x) >= k)
                    .count() as u32;
            }
            if cd[w as usize] < k {
                // w drops; its core-K neighbours lose a supporter.
                self.core[w as usize] = k.saturating_sub(1);
                for &x in &self.adj[w as usize] {
                    if self.core[x as usize] == k {
                        if cd[x as usize] == u32::MAX {
                            cd[x as usize] = self.adj[x as usize]
                                .iter()
                                .filter(|&&y| eff_core(&self.core, y) >= k)
                                .count() as u32;
                        } else {
                            cd[x as usize] = cd[x as usize].saturating_sub(1);
                        }
                        if !queued[x as usize] || cd[x as usize] < k {
                            queued[x as usize] = true;
                            queue.push_back(x);
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Reference: full recompute on the current adjacency.
    fn recompute(dc: &DynamicCore) -> Vec<u32> {
        let mut b = GraphBuilder::new();
        for i in 0..dc.vertex_count() {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for (i, ns) in dc.adj.iter().enumerate() {
            for &j in ns {
                if (i as u32) < j {
                    b.add_edge(v(i as u32), v(j));
                }
            }
        }
        crate::decomposition::CoreDecomposition::compute(&b.build()).core_numbers().to_vec()
    }

    #[test]
    fn building_a_triangle_incrementally() {
        let mut dc = DynamicCore::with_vertices(3);
        assert!(dc.insert_edge(v(0), v(1)));
        assert_eq!(dc.core_numbers(), &[1, 1, 0]);
        assert!(dc.insert_edge(v(1), v(2)));
        assert_eq!(dc.core_numbers(), &[1, 1, 1]);
        assert!(dc.insert_edge(v(0), v(2)));
        assert_eq!(dc.core_numbers(), &[2, 2, 2]);
        assert_eq!(dc.edge_count(), 3);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut dc = DynamicCore::with_vertices(2);
        assert!(dc.insert_edge(v(0), v(1)));
        assert!(!dc.insert_edge(v(0), v(1)));
        assert!(!dc.insert_edge(v(1), v(0)));
        assert!(!dc.insert_edge(v(0), v(0)));
        assert!(!dc.insert_edge(v(0), v(9)));
        assert_eq!(dc.edge_count(), 1);
    }

    #[test]
    fn removing_a_clique_edge_drops_cores() {
        // K4: all cores 3; removing one edge drops everyone to 2.
        let mut dc = DynamicCore::with_vertices(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                dc.insert_edge(v(i), v(j));
            }
        }
        assert_eq!(dc.core_numbers(), &[3, 3, 3, 3]);
        assert!(dc.remove_edge(v(0), v(1)));
        assert_eq!(dc.core_numbers(), recompute(&dc).as_slice());
        assert_eq!(dc.core_numbers(), &[2, 2, 2, 2]);
        assert!(!dc.remove_edge(v(0), v(1)));
    }

    #[test]
    fn insertion_only_affects_subcore() {
        // Two triangles joined by a path; adding a chord to one triangle
        // must not disturb the other.
        let mut dc = DynamicCore::with_vertices(7);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (4, 5), (5, 6), (4, 6), (2, 3), (3, 4)] {
            dc.insert_edge(v(a), v(b));
        }
        assert_eq!(dc.core_numbers(), recompute(&dc).as_slice());
        let before_far = dc.core(v(5));
        dc.insert_edge(v(0), v(3));
        assert_eq!(dc.core_numbers(), recompute(&dc).as_slice());
        assert_eq!(dc.core(v(5)), before_far);
    }

    #[test]
    fn from_graph_matches_decomposition() {
        let g = cx_datagen::figure5_graph();
        let dc = DynamicCore::from_graph(&g);
        let cd = crate::decomposition::CoreDecomposition::compute(&g);
        assert_eq!(dc.core_numbers(), cd.core_numbers());
        assert_eq!(dc.edge_count(), g.edge_count());
    }

    #[test]
    fn from_graph_with_cores_skips_the_peel_but_behaves_identically() {
        let g = cx_datagen::figure5_graph();
        let cd = crate::decomposition::CoreDecomposition::compute(&g);
        let mut warm = DynamicCore::from_graph_with_cores(&g, cd.core_numbers());
        let mut cold = DynamicCore::from_graph(&g);
        assert_eq!(warm.core_numbers(), cold.core_numbers());
        assert_eq!(warm.edge_count(), cold.edge_count());
        // Both stay in lockstep (and correct) through the same edits.
        for (a, b) in [(0, 1), (4, 2), (5, 6)] {
            warm.remove_edge(v(a), v(b));
            cold.remove_edge(v(a), v(b));
            warm.insert_edge(v(a), v(b));
            cold.insert_edge(v(a), v(b));
            assert_eq!(warm.core_numbers(), cold.core_numbers());
            assert_eq!(warm.core_numbers(), recompute(&warm).as_slice());
        }
    }

    #[test]
    fn grow_figure5_from_scratch_and_tear_down() {
        let g = cx_datagen::figure5_graph();
        let mut dc = DynamicCore::with_vertices(g.vertex_count());
        let edges: Vec<_> = g.edges().collect();
        for &(a, b) in &edges {
            dc.insert_edge(a, b);
            assert_eq!(dc.core_numbers(), recompute(&dc).as_slice(), "after +({a},{b})");
        }
        let cd = crate::decomposition::CoreDecomposition::compute(&g);
        assert_eq!(dc.core_numbers(), cd.core_numbers());
        // Tear down in reverse.
        for &(a, b) in edges.iter().rev() {
            dc.remove_edge(a, b);
            assert_eq!(dc.core_numbers(), recompute(&dc).as_slice(), "after -({a},{b})");
        }
        assert!(dc.core_numbers().iter().all(|&c| c == 0));
    }

    #[test]
    fn add_vertex_extends_graph() {
        let mut dc = DynamicCore::with_vertices(1);
        let nv = dc.add_vertex();
        assert_eq!(nv, v(1));
        assert_eq!(dc.vertex_count(), 2);
        dc.insert_edge(v(0), nv);
        assert_eq!(dc.core_numbers(), &[1, 1]);
    }
}
