//! Reusable, epoch-cleared buffers for subset peeling — the query
//! hot path's allocation-free replacement for [`crate::subset`]'s
//! per-call `VertexSet`/`Vec` machinery.
//!
//! ACQ verifies dozens of candidate keyword sets per query, and every
//! verification used to allocate (and zero) three graph-sized buffers:
//! the membership mask, the induced-degree array and the BFS visited
//! mask. [`PeelScratch`] keeps all three alive across calls and clears
//! them in O(1) by bumping an epoch stamp instead of touching memory, so
//! a steady-state verification costs O(|members| + induced edges) with
//! zero heap allocations.
//!
//! The buffers are `AtomicU32` so the same storage serves both the
//! serial path (relaxed loads/stores compile to plain memory ops) and
//! the level-synchronous **frontier-parallel** path used for large
//! member sets: peeling claims a newly-dead vertex exactly once via
//! `fetch_sub` observing the old degree equal to `k`, and BFS claims a
//! newly-visited vertex via an atomic `swap` on its epoch stamp. Both
//! claims are unique regardless of thread interleaving and the final
//! vertex *set* of every phase is thread-count independent (the k-core
//! is unique and output is sorted), preserving the workspace determinism
//! contract.

use std::sync::atomic::{AtomicU32, Ordering::Relaxed};

use cx_graph::{AttributedGraph, VertexId};

/// Default member-set size below which the frontier loops stay serial:
/// the parallel path pays per-level `std::thread::scope` spawns (and
/// their allocations), which only amortise over jumbo member sets —
/// whole-graph subset peels, not per-query keyword cores. Keeping
/// typical query verifications serial also keeps them allocation-free
/// at every `CX_THREADS` setting, which `ci.sh` asserts. Tunable per
/// scratch via [`PeelScratch::set_parallel_threshold`].
pub const PAR_MEMBER_THRESHOLD: usize = 65_536;

/// Frontier size below which one level is processed serially even when
/// the overall peel runs in parallel mode.
const PAR_LEVEL_THRESHOLD: usize = 2048;

/// Reusable peel + BFS state, sized lazily to the largest graph seen.
///
/// Cleared per call by epoch bump (O(1)); allocates only when a larger
/// graph than any previous call requires growing the stamp arrays.
pub struct PeelScratch {
    /// Alive stamp: `mark[v] == epoch` ⇔ v currently alive.
    mark: Vec<AtomicU32>,
    /// Visited stamp for the component BFS.
    seen: Vec<AtomicU32>,
    /// Induced degree of each alive vertex.
    deg: Vec<AtomicU32>,
    /// Current epoch; stamps from earlier epochs read as "unset".
    epoch: u32,
    /// Current frontier (newly-dead vertices / current BFS level).
    frontier: Vec<VertexId>,
    /// Next frontier, swapped with `frontier` level by level.
    next: Vec<VertexId>,
    /// Member-set size at which frontier sweeps go parallel.
    par_threshold: usize,
}

impl Default for PeelScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl PeelScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            mark: Vec::new(),
            seen: Vec::new(),
            deg: Vec::new(),
            epoch: 0,
            frontier: Vec::new(),
            next: Vec::new(),
            par_threshold: PAR_MEMBER_THRESHOLD,
        }
    }

    /// Overrides the member-set size at which frontier sweeps go
    /// parallel (default [`PAR_MEMBER_THRESHOLD`]). Lower it to force
    /// the parallel path in tests, or raise it to pin a scratch serial.
    /// The result set is identical either way.
    pub fn set_parallel_threshold(&mut self, members: usize) {
        self.par_threshold = members.max(1);
    }

    /// Starts a fresh call over a graph with `n` vertices: grows buffers
    /// if needed and advances the epoch (wrapping resets all stamps).
    fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize_with(n, || AtomicU32::new(0));
            self.seen.resize_with(n, || AtomicU32::new(0));
            self.deg.resize_with(n, || AtomicU32::new(0));
        }
        if self.epoch == u32::MAX {
            for m in &self.mark {
                m.store(0, Relaxed);
            }
            for s in &self.seen {
                s.store(0, Relaxed);
            }
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// The connected k-core containing `q` within the subgraph induced by
    /// `members`, written sorted into `out`. Returns `false` (with `out`
    /// cleared) when `q` is peeled away or not in `members`.
    ///
    /// Allocation-free in steady state; duplicates in `members` are
    /// tolerated. For member sets of at least the parallel threshold
    /// ([`PAR_MEMBER_THRESHOLD`] unless overridden) and
    /// `cx_par::num_threads() > 1`, the peel and BFS run as
    /// level-synchronous parallel frontier sweeps (that path allocates
    /// for thread scopes and per-chunk buffers).
    pub fn connected_k_core_containing_into(
        &mut self,
        g: &AttributedGraph,
        members: &[VertexId],
        q: VertexId,
        k: u32,
        out: &mut Vec<VertexId>,
    ) -> bool {
        out.clear();
        let n = g.vertex_count();
        if q.index() >= n {
            return false;
        }
        // A k-core needs at least k+1 vertices (every member has k
        // neighbours inside), so undersized member sets cannot contain one.
        if k > 0 && members.len() <= k as usize {
            return false;
        }
        self.begin(n);
        let parallel = members.len() >= self.par_threshold && cx_par::num_threads() > 1;
        let epoch = self.epoch;

        // Mark membership, then induced degrees (idempotent stores, so
        // both phases parallelise over member chunks race-free).
        par_for(parallel, members.len(), |i| {
            self.mark[members[i].index()].store(epoch, Relaxed);
        });
        if self.mark[q.index()].load(Relaxed) != epoch {
            return false;
        }
        par_for(parallel, members.len(), |i| {
            let v = members[i];
            let d = g
                .neighbors(v)
                .iter()
                .filter(|u| self.mark[u.index()].load(Relaxed) == epoch)
                .count() as u32;
            self.deg[v.index()].store(d, Relaxed);
        });

        // Initial frontier: claim every under-degree member by killing
        // its mark (the claim dedups repeated `members` entries).
        let mut frontier = std::mem::take(&mut self.frontier);
        let mut next = std::mem::take(&mut self.next);
        frontier.clear();
        collect_level(parallel, members.len(), &mut frontier, |i, local| {
            let v = members[i];
            if self.deg[v.index()].load(Relaxed) < k
                && self.mark[v.index()].swap(0, Relaxed) == epoch
            {
                local.push(v);
            }
        });

        // Level-synchronous peel: each dead vertex decrements its alive
        // neighbours; the decrement observing `old == k` uniquely claims
        // the neighbour as newly dead.
        while !frontier.is_empty() {
            next.clear();
            let level = &frontier;
            collect_level(parallel, level.len(), &mut next, |i, local| {
                for &u in g.neighbors(level[i]) {
                    if self.mark[u.index()].load(Relaxed) == epoch
                        && self.deg[u.index()].fetch_sub(1, Relaxed) == k
                    {
                        self.mark[u.index()].store(0, Relaxed);
                        local.push(u);
                    }
                }
            });
            std::mem::swap(&mut frontier, &mut next);
        }

        let survived = self.mark[q.index()].load(Relaxed) == epoch;
        if survived {
            // Component BFS from q: an atomic swap on the visited stamp
            // claims each vertex exactly once.
            self.seen[q.index()].store(epoch, Relaxed);
            frontier.clear();
            frontier.push(q);
            out.push(q);
            while !frontier.is_empty() {
                next.clear();
                let level = &frontier;
                collect_level(parallel, level.len(), &mut next, |i, local| {
                    for &u in g.neighbors(level[i]) {
                        if self.mark[u.index()].load(Relaxed) == epoch
                            && self.seen[u.index()].swap(epoch, Relaxed) != epoch
                        {
                            local.push(u);
                        }
                    }
                });
                out.extend_from_slice(&next);
                std::mem::swap(&mut frontier, &mut next);
            }
            out.sort_unstable();
        }
        self.frontier = frontier;
        self.next = next;
        survived
    }

    /// The maximal k-core of the subgraph induced by `members` (no
    /// connectivity filter), written sorted into `out`. The scratch
    /// counterpart of [`crate::subset::k_core_of_subset`].
    pub fn k_core_of_subset_into(
        &mut self,
        g: &AttributedGraph,
        members: &[VertexId],
        k: u32,
        out: &mut Vec<VertexId>,
    ) -> usize {
        out.clear();
        self.begin(g.vertex_count());
        let epoch = self.epoch;
        for &v in members {
            self.mark[v.index()].store(epoch, Relaxed);
        }
        for &v in members {
            let d = g
                .neighbors(v)
                .iter()
                .filter(|u| self.mark[u.index()].load(Relaxed) == epoch)
                .count() as u32;
            self.deg[v.index()].store(d, Relaxed);
        }
        let mut frontier = std::mem::take(&mut self.frontier);
        let next = std::mem::take(&mut self.next);
        frontier.clear();
        for &v in members {
            if self.deg[v.index()].load(Relaxed) < k
                && self.mark[v.index()].swap(0, Relaxed) == epoch
            {
                frontier.push(v);
            }
        }
        while let Some(v) = frontier.pop() {
            for &u in g.neighbors(v) {
                if self.mark[u.index()].load(Relaxed) == epoch
                    && self.deg[u.index()].fetch_sub(1, Relaxed) == k
                {
                    self.mark[u.index()].store(0, Relaxed);
                    frontier.push(u);
                }
            }
        }
        for &v in members {
            if self.mark[v.index()].swap(0, Relaxed) == epoch {
                out.push(v);
            }
        }
        out.sort_unstable();
        self.frontier = frontier;
        self.next = next;
        out.len()
    }
}

/// Runs `f(i)` for `0..len`, on parallel chunk workers when `parallel`.
/// Side effects must be idempotent or per-index disjoint.
fn par_for(parallel: bool, len: usize, f: impl Fn(usize) + Sync) {
    if parallel && len >= PAR_LEVEL_THRESHOLD {
        cx_par::par_reduce(len, |r| r.for_each(&f), |(), ()| ());
    } else {
        (0..len).for_each(f);
    }
}

/// Runs `f(i, &mut local)` for `0..len` collecting pushed vertices into
/// `out` — serially in index order, or over parallel chunks combined in
/// ascending chunk order. `f` must claim each pushed vertex atomically
/// so the output *set* is deterministic; order within `out` may vary
/// across runs in parallel mode (consumers sort or treat it as a set).
fn collect_level(
    parallel: bool,
    len: usize,
    out: &mut Vec<VertexId>,
    f: impl Fn(usize, &mut Vec<VertexId>) + Sync,
) {
    if parallel && len >= PAR_LEVEL_THRESHOLD {
        let parts = cx_par::par_reduce(
            len,
            |r| {
                let mut local = Vec::new();
                r.for_each(|i| f(i, &mut local));
                vec![local]
            },
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        for part in parts.into_iter().flatten() {
            out.extend_from_slice(&part);
        }
    } else {
        for i in 0..len {
            f(i, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subset::{connected_k_core_containing, k_core_of_subset};
    use cx_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// K4 on 0-3, pendant 4 attached to 0, plus disjoint triangle 5-7.
    fn fixture() -> AttributedGraph {
        let mut b = GraphBuilder::new();
        for i in 0..8 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for (a, c) in
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4), (5, 6), (6, 7), (5, 7)]
        {
            b.add_edge(v(a), v(c));
        }
        b.build()
    }

    #[test]
    fn scratch_matches_allocating_path_on_fixture() {
        let g = fixture();
        let all: Vec<VertexId> = g.vertices().collect();
        let mut s = PeelScratch::new();
        let mut out = Vec::new();
        for k in 0..=5 {
            for &q in &all {
                let want = connected_k_core_containing(&g, &all, q, k);
                let got = s.connected_k_core_containing_into(&g, &all, q, k, &mut out);
                assert_eq!(got, want.is_some(), "q={q} k={k}");
                if let Some(w) = want {
                    assert_eq!(out, w, "q={q} k={k}");
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_across_calls_and_graphs() {
        let g = fixture();
        let all: Vec<VertexId> = g.vertices().collect();
        let mut s = PeelScratch::new();
        let mut out = Vec::new();
        // Repeated reuse on one graph must not leak state across epochs.
        for _ in 0..3 {
            assert!(s.connected_k_core_containing_into(&g, &all, v(1), 2, &mut out));
            assert_eq!(out, vec![v(0), v(1), v(2), v(3)]);
            assert!(!s.connected_k_core_containing_into(&g, &all, v(4), 2, &mut out));
            assert!(out.is_empty());
        }
        // A smaller graph after a bigger one reuses the same buffers.
        let mut b = GraphBuilder::new();
        for i in 0..3 {
            b.add_vertex(&format!("t{i}"), &[]);
        }
        b.add_edge(v(0), v(1));
        b.add_edge(v(1), v(2));
        b.add_edge(v(0), v(2));
        let t = b.build();
        let tri: Vec<VertexId> = t.vertices().collect();
        assert!(s.connected_k_core_containing_into(&t, &tri, v(0), 2, &mut out));
        assert_eq!(out, tri);
    }

    #[test]
    fn duplicates_and_missing_query_vertex() {
        let g = fixture();
        let mut s = PeelScratch::new();
        let mut out = Vec::new();
        let dups = [v(0), v(1), v(2), v(3), v(0), v(3)];
        assert!(s.connected_k_core_containing_into(&g, &dups, v(0), 3, &mut out));
        assert_eq!(out, vec![v(0), v(1), v(2), v(3)]);
        // q absent from members, or out of range entirely.
        assert!(!s.connected_k_core_containing_into(&g, &[v(1), v(2)], v(0), 0, &mut out));
        assert!(!s.connected_k_core_containing_into(&g, &[v(1)], v(99), 0, &mut out));
    }

    #[test]
    fn subset_core_into_matches_allocating_path() {
        let g = fixture();
        let all: Vec<VertexId> = g.vertices().collect();
        let mut s = PeelScratch::new();
        let mut out = Vec::new();
        for k in 0..=4 {
            s.k_core_of_subset_into(&g, &all, k, &mut out);
            assert_eq!(out, k_core_of_subset(&g, &all, k), "k={k}");
        }
        s.k_core_of_subset_into(&g, &[v(4), v(6)], 0, &mut out);
        assert_eq!(out, vec![v(4), v(6)]);
    }

    /// The parallel frontier path (forced by lowering the per-scratch
    /// threshold) agrees with the serial path.
    #[test]
    fn parallel_frontier_matches_serial_on_large_graph() {
        // Ring of K4 blocks: 3000 blocks x 4 vertices = 12000 members.
        let blocks = 3_000u32;
        let mut b = GraphBuilder::new();
        for i in 0..blocks * 4 {
            b.add_vertex(&format!("r{i}"), &[]);
        }
        for blk in 0..blocks {
            let base = blk * 4;
            for a in 0..4u32 {
                for c in (a + 1)..4 {
                    b.add_edge(v(base + a), v(base + c));
                }
            }
            // Chain blocks into one component via a single bridge edge.
            let nxt = ((blk + 1) % blocks) * 4;
            b.add_edge(v(base), v(nxt));
        }
        let g = b.build();
        let all: Vec<VertexId> = g.vertices().collect();

        let serial = connected_k_core_containing(&g, &all, v(0), 3).unwrap();
        let old = std::env::var("CX_THREADS").ok();
        std::env::set_var("CX_THREADS", "4");
        cx_par::refresh_threads();
        let mut s = PeelScratch::new();
        s.set_parallel_threshold(1024);
        assert!(all.len() >= 1024);
        let mut out = Vec::new();
        assert!(s.connected_k_core_containing_into(&g, &all, v(0), 3, &mut out));
        match old {
            Some(t) => std::env::set_var("CX_THREADS", t),
            None => std::env::remove_var("CX_THREADS"),
        }
        cx_par::refresh_threads();
        assert_eq!(out, serial);
    }
}
