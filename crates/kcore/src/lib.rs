#![warn(missing_docs)]

//! # cx-kcore — core & truss decomposition primitives
//!
//! The structure-cohesiveness machinery every community-retrieval algorithm
//! in C-Explorer rests on:
//!
//! * [`CoreDecomposition`] — Batagelj–Zaversnik bucket peeling; computes the
//!   core number of every vertex in O(n + m). The k-core `H_k` is the
//!   largest subgraph in which every vertex has degree ≥ k; cores are nested
//!   (`H_{k+1} ⊆ H_k`), the property the CL-tree index is built on.
//! * [`subset`] — peeling restricted to a vertex subset: the maximal k-core
//!   of an induced subgraph, and the connected k-core containing a query
//!   vertex. This is the verification step ACQ runs per candidate keyword
//!   set, and the local check used by the `Local` algorithm.
//! * [`scratch`] — the same subset peeling against reusable epoch-cleared
//!   buffers ([`PeelScratch`]): zero heap allocations per steady-state
//!   verification, with a level-synchronous frontier-parallel path for
//!   large member sets. The ACQ query hot path runs on this.
//! * [`truss`] — triangle counting, truss decomposition and the
//!   triangle-connected k-truss community search of Huang et al.
//!   (SIGMOD'14), the alternative cohesiveness measure the paper cites.

pub mod decomposition;
pub mod dynamic;
pub mod scratch;
pub mod subset;
pub mod truss;

pub use decomposition::CoreDecomposition;
pub use dynamic::DynamicCore;
pub use scratch::PeelScratch;
pub use subset::{connected_k_core_containing, k_core_of_subset};
pub use truss::{truss_communities, TrussDecomposition};
