//! Whole-graph core decomposition (Batagelj–Zaversnik, 2003).
//!
//! The peel itself is inherently sequential (each removal changes the
//! degrees the next step sees), but the O(n) setup — degree scan and the
//! bucket histogram — runs on the cx-par pool, and [`CoreDecomposition::compute_par`]
//! peels independent connected components concurrently. Both variants
//! produce identical core numbers at any `CX_THREADS` value.

use cx_graph::traversal::ConnectedComponents;
use cx_graph::{AttributedGraph, VertexId};

/// Core numbers for every vertex of a graph, plus derived queries.
///
/// The *core number* `core(v)` is the largest k such that v belongs to the
/// k-core `H_k`. Computed by bucket peeling in O(n + m).
#[derive(Debug, Clone)]
pub struct CoreDecomposition {
    core: Vec<u32>,
    /// Vertices sorted by core number ascending — the peeling (degeneracy)
    /// order; `order[i]` was the i-th vertex removed.
    order: Vec<VertexId>,
    max_core: u32,
}

impl CoreDecomposition {
    /// Runs the decomposition on `g`.
    pub fn compute(g: &AttributedGraph) -> Self {
        let _span = cx_obs::span("kcore.peel");
        let n = g.vertex_count();
        if n == 0 {
            return Self { core: Vec::new(), order: Vec::new(), max_core: 0 };
        }
        // Degree scan in parallel; exact and order-free, so thread count
        // cannot change the result.
        let mut deg: Vec<usize> =
            cx_par::par_map_indexed(n, |v| g.degree(VertexId(v as u32)));
        let max_deg = cx_par::par_reduce(
            n,
            |r| r.clone().map(|v| deg[v]).max().unwrap_or(0),
            usize::max,
        )
        .unwrap();

        // Bucket sort vertices by degree: per-chunk histograms combined by
        // element-wise addition (exact for integers in any order).
        let mut bin = cx_par::par_reduce(
            n,
            |r| {
                let mut h = vec![0usize; max_deg + 2];
                for v in r {
                    h[deg[v]] += 1;
                }
                h
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        )
        .unwrap();
        let mut start = 0usize;
        for b in bin.iter_mut() {
            let count = *b;
            *b = start;
            start += count;
        }
        // pos[v] = index of v in vert; vert = vertices sorted by current degree.
        let mut vert = vec![0u32; n];
        let mut pos = vec![0usize; n];
        {
            let mut cursor = bin.clone();
            for v in 0..n {
                pos[v] = cursor[deg[v]];
                vert[pos[v]] = v as u32;
                cursor[deg[v]] += 1;
            }
        }

        let mut core = vec![0u32; n];
        let mut order = Vec::with_capacity(n);
        for i in 0..n {
            // Request-deadline checkpoint (see cx_par::task): a cancelled
            // run's partial core numbers never escape — the scope owner
            // discards the result — so bailing mid-peel is safe.
            if i & 0xFFF == 0 && i != 0 && cx_par::task::cancelled() {
                break;
            }
            let v = vert[i] as usize;
            core[v] = deg[v] as u32;
            order.push(VertexId(v as u32));
            for &u in g.neighbors(VertexId(v as u32)) {
                let u = u.index();
                if deg[u] > deg[v] {
                    // Move u to the front of its degree bucket, then shift
                    // the bucket boundary: u's degree drops by one.
                    let du = deg[u];
                    let pu = pos[u];
                    let pw = bin[du];
                    let w = vert[pw] as usize;
                    if u != w {
                        vert.swap(pu, pw);
                        pos[u] = pw;
                        pos[w] = pu;
                    }
                    bin[du] += 1;
                    deg[u] -= 1;
                }
            }
        }
        let max_core = core.iter().copied().max().unwrap_or(0);
        Self { core, order, max_core }
    }

    /// Parallel per-component decomposition: peels each connected component
    /// independently on the cx-par pool. Core numbers are identical to
    /// [`CoreDecomposition::compute`] (a k-core never spans components);
    /// the peeling order is a deterministic merge of the per-component
    /// orders by core number, so the monotonicity invariant holds and the
    /// result is independent of the thread count.
    pub fn compute_par(g: &AttributedGraph) -> Self {
        let _span = cx_obs::span("kcore.decompose-par");
        let n = g.vertex_count();
        if n == 0 {
            return Self { core: Vec::new(), order: Vec::new(), max_core: 0 };
        }
        let cc = ConnectedComponents::compute(g);
        if cc.count == 1 {
            return Self::compute(g);
        }
        let comps = cc.groups();
        // Global vertex id → index within its component.
        let mut local = vec![0u32; n];
        for comp in &comps {
            for (i, &v) in comp.iter().enumerate() {
                local[v.index()] = i as u32;
            }
        }
        let peeled: Vec<(Vec<u32>, Vec<VertexId>)> =
            cx_par::par_map_slice(&comps, |comp| peel_component(g, comp, &local));

        let mut core = vec![0u32; n];
        for (comp, (cores, _)) in comps.iter().zip(&peeled) {
            for (&v, &c) in comp.iter().zip(cores) {
                core[v.index()] = c;
            }
        }
        let max_core = core.iter().copied().max().unwrap_or(0);
        // Merge per-component peel orders into one globally monotone order:
        // bucket by core number, components in their deterministic order.
        let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_core as usize + 1];
        for (_, comp_order) in &peeled {
            for &v in comp_order {
                buckets[core[v.index()] as usize].push(v);
            }
        }
        let mut order = Vec::with_capacity(n);
        for b in buckets {
            order.extend(b);
        }
        Self { core, order, max_core }
    }

    /// The core number of `v`.
    #[inline]
    pub fn core(&self, v: VertexId) -> u32 {
        self.core[v.index()]
    }

    /// Core numbers indexed by vertex id.
    #[inline]
    pub fn core_numbers(&self) -> &[u32] {
        &self.core
    }

    /// The degeneracy of the graph: the largest k with a non-empty k-core.
    #[inline]
    pub fn max_core(&self) -> u32 {
        self.max_core
    }

    /// The peeling order (vertices sorted by core number ascending). The
    /// reverse of this order is a degeneracy ordering.
    #[inline]
    pub fn peeling_order(&self) -> &[VertexId] {
        &self.order
    }

    /// All vertices of the k-core `H_k` (those with core number ≥ k),
    /// sorted by id. `H_0` is every vertex.
    pub fn k_core_vertices(&self, k: u32) -> Vec<VertexId> {
        (0..self.core.len())
            .filter(|&v| self.core[v] >= k)
            .map(|v| VertexId(v as u32))
            .collect()
    }

    /// The connected component of `q` inside `H_k`, or `None` when
    /// `core(q) < k`. This is exactly the k-ĉore containing q from
    /// Sozio–Gionis, and the subtree root lookup the CL-tree accelerates.
    pub fn connected_k_core(&self, g: &AttributedGraph, q: VertexId, k: u32) -> Option<Vec<VertexId>> {
        if q.index() >= self.core.len() || self.core[q.index()] < k {
            return None;
        }
        let mut out =
            cx_graph::traversal::bfs_filtered(g, q, |v| self.core[v.index()] >= k);
        out.sort_unstable();
        Some(out)
    }

    /// Histogram of core numbers: `hist[k]` = number of vertices with
    /// core number exactly k.
    pub fn histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.max_core as usize + 1];
        if self.core.is_empty() {
            return h;
        }
        for &c in &self.core {
            h[c as usize] += 1;
        }
        h
    }
}

/// Batagelj–Zaversnik peel restricted to one connected component.
/// `local` maps global vertex ids to component-local indices. Returns the
/// core number per component-local index plus the component's peel order
/// (as global ids). Edges never leave a component, so the global degree is
/// also the within-component degree.
fn peel_component(
    g: &AttributedGraph,
    comp: &[VertexId],
    local: &[u32],
) -> (Vec<u32>, Vec<VertexId>) {
    let n = comp.len();
    let mut deg: Vec<usize> = comp.iter().map(|&v| g.degree(v)).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0);

    let mut bin = vec![0usize; max_deg + 2];
    for &d in &deg {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut vert = vec![0u32; n];
    let mut pos = vec![0usize; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            pos[v] = cursor[deg[v]];
            vert[pos[v]] = v as u32;
            cursor[deg[v]] += 1;
        }
    }

    let mut core = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    for i in 0..n {
        let v = vert[i] as usize;
        core[v] = deg[v] as u32;
        order.push(comp[v]);
        for &gu in g.neighbors(comp[v]) {
            let u = local[gu.index()] as usize;
            if deg[u] > deg[v] {
                let du = deg[u];
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw] as usize;
                if u != w {
                    vert.swap(pu, pw);
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    (core, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// The paper's Figure 5(a) graph: vertices A..J (0..9), 11 edges.
    /// Core numbers: A,B,C,D → 3? No — Fig 5(b): level 3 holds {A,B,C,D},
    /// level 2 {E}, level 1 {F,G,H,I}, level 0 {J}.
    fn figure5_graph() -> AttributedGraph {
        let mut b = GraphBuilder::new();
        for name in ["A", "B", "C", "D", "E", "F", "G", "H", "I", "J"] {
            b.add_vertex(name, &[]);
        }
        // A,B,C,D form a 4-clique minus one edge? They must be a 3-core:
        // every vertex needs degree ≥ 3 inside, so it is the full K4.
        let edges = [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), // K4 on A,B,C,D
            (1, 4), (2, 4),                                 // E tied to B,C → 2-core
            (4, 5), (5, 6), (4, 6),                         // triangle E,F,G... see below
        ];
        for (a, c) in edges {
            b.add_edge(v(a), v(c));
        }
        b.build()
    }

    #[test]
    fn k4_with_appendages_core_numbers() {
        let g = figure5_graph();
        let cd = CoreDecomposition::compute(&g);
        for i in 0..4 {
            assert_eq!(cd.core(v(i)), 3, "K4 member {i}");
        }
        // E participates in K4-adjacent edges and the E,F,G triangle → 2.
        assert_eq!(cd.core(v(4)), 2);
        assert_eq!(cd.core(v(5)), 2);
        assert_eq!(cd.core(v(6)), 2);
        // H, I, J were never connected here → 0.
        assert_eq!(cd.core(v(9)), 0);
        assert_eq!(cd.max_core(), 3);
    }

    #[test]
    fn empty_and_singleton() {
        let g = GraphBuilder::new().build();
        let cd = CoreDecomposition::compute(&g);
        assert_eq!(cd.max_core(), 0);
        assert!(cd.k_core_vertices(0).is_empty());

        let mut b = GraphBuilder::new();
        b.add_vertex("x", &[]);
        let cd = CoreDecomposition::compute(&b.build());
        assert_eq!(cd.core(v(0)), 0);
        assert_eq!(cd.k_core_vertices(0), vec![v(0)]);
        assert!(cd.k_core_vertices(1).is_empty());
    }

    #[test]
    fn path_graph_is_1_core() {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_vertex(&format!("p{i}"), &[]);
        }
        for i in 0..4u32 {
            b.add_edge(v(i), v(i + 1));
        }
        let cd = CoreDecomposition::compute(&b.build());
        for i in 0..5 {
            assert_eq!(cd.core(v(i)), 1);
        }
        assert_eq!(cd.max_core(), 1);
        assert_eq!(cd.histogram(), vec![0, 5]);
    }

    #[test]
    fn cycle_is_2_core_pendant_is_1() {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_vertex(&format!("c{i}"), &[]);
        }
        for i in 0..4u32 {
            b.add_edge(v(i), v((i + 1) % 4));
        }
        b.add_edge(v(0), v(4)); // pendant
        let cd = CoreDecomposition::compute(&b.build());
        assert_eq!(cd.core(v(0)), 2);
        assert_eq!(cd.core(v(4)), 1);
        assert_eq!(cd.k_core_vertices(2), vec![v(0), v(1), v(2), v(3)]);
    }

    #[test]
    fn connected_k_core_respects_components() {
        // Two disjoint triangles.
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_vertex(&format!("t{i}"), &[]);
        }
        for (a, c) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(v(a), v(c));
        }
        let g = b.build();
        let cd = CoreDecomposition::compute(&g);
        let c0 = cd.connected_k_core(&g, v(0), 2).unwrap();
        assert_eq!(c0, vec![v(0), v(1), v(2)]);
        let c3 = cd.connected_k_core(&g, v(3), 2).unwrap();
        assert_eq!(c3, vec![v(3), v(4), v(5)]);
        assert!(cd.connected_k_core(&g, v(0), 3).is_none());
    }

    #[test]
    fn peeling_order_is_nondecreasing_in_core_number() {
        let g = figure5_graph();
        let cd = CoreDecomposition::compute(&g);
        let cores: Vec<u32> = cd.peeling_order().iter().map(|&u| cd.core(u)).collect();
        assert!(cores.windows(2).all(|w| w[0] <= w[1]), "order {cores:?} not monotone");
        assert_eq!(cd.peeling_order().len(), g.vertex_count());
    }

    #[test]
    fn compute_par_matches_sequential_on_multi_component_graph() {
        let g = figure5_graph(); // 4 components: the big one, H, I, J
        let a = CoreDecomposition::compute(&g);
        let b = CoreDecomposition::compute_par(&g);
        assert_eq!(a.core_numbers(), b.core_numbers());
        assert_eq!(a.max_core(), b.max_core());
        assert_eq!(b.peeling_order().len(), g.vertex_count());
        let cores: Vec<u32> = b.peeling_order().iter().map(|&u| b.core(u)).collect();
        assert!(cores.windows(2).all(|w| w[0] <= w[1]), "par order not monotone");
        // Empty graph hits the early return.
        assert_eq!(CoreDecomposition::compute_par(&GraphBuilder::new().build()).max_core(), 0);
    }

    #[test]
    fn histogram_sums_to_vertex_count() {
        let g = figure5_graph();
        let cd = CoreDecomposition::compute(&g);
        assert_eq!(cd.histogram().iter().sum::<usize>(), g.vertex_count());
    }
}
