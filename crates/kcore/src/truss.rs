//! Triangle counting, truss decomposition and k-truss community search.
//!
//! The k-truss is the cohesiveness measure of Huang et al. (SIGMOD'14),
//! cited by the C-Explorer paper as an alternative to minimum degree: a
//! k-truss is a subgraph in which every edge closes at least k−2
//! triangles. A *k-truss community* of a query vertex q is a maximal set
//! of truss-≥k edges reachable from q through shared triangles
//! ("triangle connectivity"), which gives communities with strong local
//! overlap and no free-rider vertices.

use std::collections::HashMap;

use cx_graph::{AttributedGraph, Community, VertexId};

/// Truss numbers for every edge of a graph.
#[derive(Debug, Clone)]
pub struct TrussDecomposition {
    /// Edge list, each as `(u, v)` with `u < v`, in graph edge order.
    edges: Vec<(VertexId, VertexId)>,
    /// `truss[e]` for edge id `e` (≥ 2 for every edge).
    truss: Vec<u32>,
    /// Lookup from the ordered vertex pair to the edge id.
    index: HashMap<(u32, u32), u32>,
    max_truss: u32,
}

impl TrussDecomposition {
    /// Runs the decomposition on `g`. O(m^1.5) triangle enumeration plus
    /// bucket peeling over edges.
    pub fn compute(g: &AttributedGraph) -> Self {
        let _span = cx_obs::span("ktruss.peel");
        let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
        let m = edges.len();
        let mut index = HashMap::with_capacity(m);
        for (i, &(u, v)) in edges.iter().enumerate() {
            index.insert((u.0, v.0), i as u32);
        }
        // Support initialization — the O(m·d) scan that dominates the
        // decomposition — fans out per edge on the cx-par pool; each entry
        // is an independent sorted-merge intersection.
        let support: Vec<u32> =
            cx_par::par_map_slice(&edges, |&(u, v)| common_neighbor_count(g, u, v));

        // Bucket peeling on edges by support.
        let max_sup = support.iter().copied().max().unwrap_or(0) as usize;
        let mut bin = vec![0usize; max_sup + 2];
        for &s in &support {
            bin[s as usize] += 1;
        }
        let mut start = 0usize;
        for b in bin.iter_mut() {
            let c = *b;
            *b = start;
            start += c;
        }
        let mut sorted = vec![0u32; m];
        let mut pos = vec![0usize; m];
        {
            let mut cursor = bin.clone();
            for e in 0..m {
                pos[e] = cursor[support[e] as usize];
                sorted[pos[e]] = e as u32;
                cursor[support[e] as usize] += 1;
            }
        }

        let mut truss = vec![2u32; m];
        let mut removed = vec![false; m];
        let mut cur_support = support.clone();
        let lookup = |index: &HashMap<(u32, u32), u32>, a: VertexId, b: VertexId| -> Option<u32> {
            let key = if a < b { (a.0, b.0) } else { (b.0, a.0) };
            index.get(&key).copied()
        };
        for i in 0..m {
            let e = sorted[i] as usize;
            let s = cur_support[e];
            truss[e] = s + 2;
            removed[e] = true;
            let (u, v) = edges[e];
            // Decrement the support of both other edges of each surviving
            // triangle through (u, v).
            let (a, b) = if g.degree(u) <= g.degree(v) { (u, v) } else { (v, u) };
            for &w in g.neighbors(a) {
                if w == b {
                    continue;
                }
                let (Some(e1), Some(e2)) = (lookup(&index, a, w), lookup(&index, b, w)) else {
                    continue;
                };
                let (e1, e2) = (e1 as usize, e2 as usize);
                if removed[e1] || removed[e2] {
                    continue;
                }
                for other in [e1, e2] {
                    if cur_support[other] > s {
                        // Move `other` down one support bucket (mirrors the
                        // Batagelj–Zaversnik vertex version, on edges).
                        let so = cur_support[other] as usize;
                        let po = pos[other];
                        let pw = bin[so].max(i + 1);
                        let w_e = sorted[pw] as usize;
                        if other != w_e {
                            sorted.swap(po, pw);
                            pos[other] = pw;
                            pos[w_e] = po;
                        }
                        bin[so] = pw + 1;
                        cur_support[other] -= 1;
                    }
                }
            }
        }
        let max_truss = truss.iter().copied().max().unwrap_or(2);
        Self { edges, truss, index, max_truss }
    }

    /// Truss number of the edge `{u, v}`, or `None` when absent.
    pub fn truss_of(&self, u: VertexId, v: VertexId) -> Option<u32> {
        let key = if u < v { (u.0, v.0) } else { (v.0, u.0) };
        self.index.get(&key).map(|&e| self.truss[e as usize])
    }

    /// Largest k with a non-empty k-truss (2 when the graph has edges but
    /// no triangles; 0 for an edgeless graph).
    pub fn max_truss(&self) -> u32 {
        if self.edges.is_empty() {
            0
        } else {
            self.max_truss
        }
    }

    /// Number of edges with truss number ≥ k.
    pub fn edges_at_least(&self, k: u32) -> usize {
        self.truss.iter().filter(|&&t| t >= k).count()
    }

    fn edge_id(&self, u: VertexId, v: VertexId) -> Option<u32> {
        let key = if u < v { (u.0, v.0) } else { (v.0, u.0) };
        self.index.get(&key).copied()
    }
}

/// Number of common neighbours of `u` and `v` (sorted-merge).
pub fn common_neighbor_count(g: &AttributedGraph, u: VertexId, v: VertexId) -> u32 {
    let (a, b) = (g.neighbors(u), g.neighbors(v));
    let (mut i, mut j, mut n) = (0, 0, 0u32);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Total number of triangles in `g`. The per-edge intersection counts are
/// summed with cx-par's ordered reduce, so the result (an exact integer
/// sum) is identical at any thread count.
pub fn triangle_count(g: &AttributedGraph) -> usize {
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    cx_par::par_reduce(
        edges.len(),
        |r| r.map(|i| common_neighbor_count(g, edges[i].0, edges[i].1) as usize).sum::<usize>(),
        |a, b| a + b,
    )
    .unwrap_or(0)
        / 3
}

/// The k-truss communities of `q`: one [`Community`] per triangle-connected
/// component of truss-≥k edges that touches q. Sorted by size descending.
pub fn truss_communities(
    g: &AttributedGraph,
    td: &TrussDecomposition,
    q: VertexId,
    k: u32,
) -> Vec<Community> {
    if !g.contains(q) {
        return Vec::new();
    }
    let mut visited = vec![false; td.edges.len()];
    let mut out = Vec::new();
    for &v in g.neighbors(q) {
        let Some(seed) = td.edge_id(q, v) else { continue };
        let seed = seed as usize;
        if visited[seed] || td.truss[seed] < k {
            continue;
        }
        // BFS over triangle connectivity among truss-≥k edges.
        let mut stack = vec![seed];
        visited[seed] = true;
        let mut members = std::collections::BTreeSet::new();
        while let Some(e) = stack.pop() {
            let (a, b) = td.edges[e];
            members.insert(a);
            members.insert(b);
            let (x, y) = if g.degree(a) <= g.degree(b) { (a, b) } else { (b, a) };
            for &w in g.neighbors(x) {
                if w == y {
                    continue;
                }
                let (Some(e1), Some(e2)) = (td.edge_id(x, w), td.edge_id(y, w)) else {
                    continue;
                };
                let (e1, e2) = (e1 as usize, e2 as usize);
                if td.truss[e1] < k || td.truss[e2] < k {
                    continue;
                }
                for other in [e1, e2] {
                    if !visited[other] {
                        visited[other] = true;
                        stack.push(other);
                    }
                }
            }
        }
        out.push(Community::structural(members.into_iter().collect()));
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn k4() -> AttributedGraph {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_edge(v(i), v(j));
            }
        }
        b.build()
    }

    #[test]
    fn k4_every_edge_truss_4() {
        let g = k4();
        let td = TrussDecomposition::compute(&g);
        for (u, w) in g.edges() {
            assert_eq!(td.truss_of(u, w), Some(4));
        }
        assert_eq!(td.max_truss(), 4);
        assert_eq!(td.edges_at_least(4), 6);
        assert_eq!(triangle_count(&g), 4);
    }

    #[test]
    fn triangle_free_graph_truss_2() {
        // 4-cycle: no triangles, every edge truss 2.
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for i in 0..4u32 {
            b.add_edge(v(i), v((i + 1) % 4));
        }
        let g = b.build();
        let td = TrussDecomposition::compute(&g);
        assert_eq!(td.max_truss(), 2);
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(td.truss_of(v(0), v(1)), Some(2));
        assert_eq!(td.truss_of(v(0), v(2)), None);
    }

    #[test]
    fn pendant_triangle_on_k4() {
        // K4 plus triangle (3,4,5): K4 edges truss 4, triangle edges truss 3.
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_edge(v(i), v(j));
            }
        }
        b.add_edge(v(3), v(4));
        b.add_edge(v(4), v(5));
        b.add_edge(v(3), v(5));
        let g = b.build();
        let td = TrussDecomposition::compute(&g);
        assert_eq!(td.truss_of(v(0), v(1)), Some(4));
        assert_eq!(td.truss_of(v(4), v(5)), Some(3));
        assert_eq!(td.truss_of(v(3), v(4)), Some(3));
    }

    #[test]
    fn truss_community_separates_triangle_connected_parts() {
        // Two K4s sharing a single vertex 3 (bowtie of cliques): 4-truss
        // communities of vertex 3 are the two K4s separately (edges of one
        // K4 cannot reach the other through shared triangles).
        let mut b = GraphBuilder::new();
        for i in 0..7 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for quad in [[0u32, 1, 2, 3], [3, 4, 5, 6]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_edge(v(quad[i]), v(quad[j]));
                }
            }
        }
        let g = b.build();
        let td = TrussDecomposition::compute(&g);
        let comms = truss_communities(&g, &td, v(3), 4);
        assert_eq!(comms.len(), 2);
        assert_eq!(comms[0].len(), 4);
        assert_eq!(comms[1].len(), 4);
        assert!(comms.iter().all(|c| c.contains(v(3))));
        // A non-cut vertex sees only its own clique.
        let comms0 = truss_communities(&g, &td, v(0), 4);
        assert_eq!(comms0.len(), 1);
        assert_eq!(comms0[0].vertices(), &[v(0), v(1), v(2), v(3)]);
    }

    #[test]
    fn no_community_when_k_exceeds_truss() {
        let g = k4();
        let td = TrussDecomposition::compute(&g);
        assert!(truss_communities(&g, &td, v(0), 5).is_empty());
        assert!(truss_communities(&g, &td, v(99), 3).is_empty());
    }

    #[test]
    fn empty_graph_decomposition() {
        let g = GraphBuilder::new().build();
        let td = TrussDecomposition::compute(&g);
        assert_eq!(td.max_truss(), 0);
        assert_eq!(td.edges_at_least(2), 0);
    }
}
