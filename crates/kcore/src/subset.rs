//! Peeling restricted to a vertex subset.
//!
//! ACQ verifies a candidate keyword set `S'` by taking the vertices that
//! carry all of `S'`, computing the maximal k-core of the *induced*
//! subgraph, and keeping q's connected component. `Local` uses the same
//! primitive on its candidate set. Both need peeling that never touches
//! vertices outside the subset — cost O(Σ_{v∈subset} deg_G(v)), independent
//! of graph size.

use std::collections::VecDeque;

use cx_graph::{AttributedGraph, VertexId, VertexSet};

/// The maximal k-core of the subgraph of `g` induced by `members`
/// (duplicates tolerated), as a sorted vertex list. Empty when no vertex
/// survives.
pub fn k_core_of_subset(g: &AttributedGraph, members: &[VertexId], k: u32) -> Vec<VertexId> {
    let mut alive = VertexSet::with_capacity(g.vertex_count());
    for &v in members {
        alive.insert(v);
    }
    peel_to_k_core(g, &mut alive, k);
    alive.to_sorted_vec()
}

/// In-place variant: removes vertices from `alive` until every remaining
/// vertex has ≥ k neighbours inside `alive`.
pub fn peel_to_k_core(g: &AttributedGraph, alive: &mut VertexSet, k: u32) {
    let k = k as usize;
    // Degree of each member within the subset.
    let members: Vec<VertexId> = alive.iter().collect();
    let mut deg = vec![0usize; g.vertex_count()];
    for &v in &members {
        deg[v.index()] = g.neighbors(v).iter().filter(|&&u| alive.contains(u)).count();
    }
    let mut queue: VecDeque<VertexId> =
        members.iter().copied().filter(|&v| deg[v.index()] < k).collect();
    while let Some(v) = queue.pop_front() {
        if !alive.remove(v) {
            continue; // already peeled via another path
        }
        for &u in g.neighbors(v) {
            if alive.contains(u) {
                deg[u.index()] -= 1;
                if deg[u.index()] + 1 == k {
                    queue.push_back(u);
                }
            }
        }
    }
}

/// The connected k-core containing `q` within the subgraph of `g` induced
/// by `members`: peel to the maximal k-core, then keep q's component.
/// Returns `None` when q itself is peeled away (or not in `members`).
pub fn connected_k_core_containing(
    g: &AttributedGraph,
    members: &[VertexId],
    q: VertexId,
    k: u32,
) -> Option<Vec<VertexId>> {
    let mut alive = VertexSet::with_capacity(g.vertex_count());
    for &v in members {
        alive.insert(v);
    }
    if !alive.contains(q) {
        return None;
    }
    peel_to_k_core(g, &mut alive, k);
    if !alive.contains(q) {
        return None;
    }
    let mut out = cx_graph::traversal::bfs_filtered(g, q, |v| alive.contains(v));
    out.sort_unstable();
    Some(out)
}

/// Like [`connected_k_core_containing`] but requires the component to
/// contain *all* query vertices `qs` (the paper's multi-vertex ACQ
/// variant). Returns `None` if any query vertex is peeled or the query
/// vertices end up in different components.
pub fn connected_k_core_containing_all(
    g: &AttributedGraph,
    members: &[VertexId],
    qs: &[VertexId],
    k: u32,
) -> Option<Vec<VertexId>> {
    let &first = qs.first()?;
    let mut alive = VertexSet::with_capacity(g.vertex_count());
    for &v in members {
        alive.insert(v);
    }
    if qs.iter().any(|&q| !alive.contains(q)) {
        return None;
    }
    peel_to_k_core(g, &mut alive, k);
    if qs.iter().any(|&q| !alive.contains(q)) {
        return None;
    }
    let comp = cx_graph::traversal::bfs_filtered(g, first, |v| alive.contains(v));
    let in_comp = VertexSet::from_iter(g.vertex_count(), comp.iter().copied());
    if qs.iter().any(|&q| !in_comp.contains(q)) {
        return None;
    }
    let mut out = comp;
    out.sort_unstable();
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// K4 on 0-3, pendant 4 attached to 0, plus disjoint triangle 5-7.
    fn fixture() -> AttributedGraph {
        let mut b = GraphBuilder::new();
        for i in 0..8 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for (a, c) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4), (5, 6), (6, 7), (5, 7)] {
            b.add_edge(v(a), v(c));
        }
        b.build()
    }

    #[test]
    fn subset_core_peels_pendant() {
        let g = fixture();
        let all: Vec<VertexId> = g.vertices().collect();
        assert_eq!(k_core_of_subset(&g, &all, 3), vec![v(0), v(1), v(2), v(3)]);
        assert_eq!(k_core_of_subset(&g, &all, 2).len(), 7); // K4 + triangle
        assert_eq!(k_core_of_subset(&g, &all, 4), Vec::<VertexId>::new());
    }

    #[test]
    fn subset_core_ignores_outside_edges() {
        let g = fixture();
        // Take only 3 of the K4's vertices: induced triangle → max core 2.
        let sub = [v(0), v(1), v(2)];
        assert_eq!(k_core_of_subset(&g, &sub, 2), vec![v(0), v(1), v(2)]);
        assert!(k_core_of_subset(&g, &sub, 3).is_empty());
    }

    #[test]
    fn cascade_peeling_removes_chains() {
        // Path 0-1-2-3: 2-core is empty; peeling must cascade fully.
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_vertex(&format!("p{i}"), &[]);
        }
        for i in 0..3u32 {
            b.add_edge(v(i), v(i + 1));
        }
        let g = b.build();
        let all: Vec<VertexId> = g.vertices().collect();
        assert!(k_core_of_subset(&g, &all, 2).is_empty());
        assert_eq!(k_core_of_subset(&g, &all, 1).len(), 4);
    }

    #[test]
    fn connected_core_keeps_only_query_component() {
        let g = fixture();
        let all: Vec<VertexId> = g.vertices().collect();
        // 2-core has two components (K4 and the triangle); q picks one.
        let c = connected_k_core_containing(&g, &all, v(6), 2).unwrap();
        assert_eq!(c, vec![v(5), v(6), v(7)]);
        let c = connected_k_core_containing(&g, &all, v(1), 2).unwrap();
        assert_eq!(c, vec![v(0), v(1), v(2), v(3)]);
    }

    #[test]
    fn query_vertex_peeled_returns_none() {
        let g = fixture();
        let all: Vec<VertexId> = g.vertices().collect();
        assert!(connected_k_core_containing(&g, &all, v(4), 2).is_none());
        assert!(connected_k_core_containing(&g, &all, v(0), 5).is_none());
        // q not even in the subset.
        assert!(connected_k_core_containing(&g, &[v(1), v(2)], v(0), 0).is_none());
    }

    #[test]
    fn multi_vertex_requires_same_component() {
        let g = fixture();
        let all: Vec<VertexId> = g.vertices().collect();
        let c = connected_k_core_containing_all(&g, &all, &[v(0), v(3)], 2).unwrap();
        assert_eq!(c, vec![v(0), v(1), v(2), v(3)]);
        // Different 2-core components → None.
        assert!(connected_k_core_containing_all(&g, &all, &[v(0), v(5)], 2).is_none());
        // Empty query set → None.
        assert!(connected_k_core_containing_all(&g, &all, &[], 2).is_none());
        // One query vertex peeled → None.
        assert!(connected_k_core_containing_all(&g, &all, &[v(0), v(4)], 2).is_none());
    }

    #[test]
    fn k_zero_keeps_isolated_members() {
        let g = fixture();
        let got = k_core_of_subset(&g, &[v(4), v(6)], 0);
        assert_eq!(got, vec![v(4), v(6)]);
        // With k=0, q alone is its own component.
        assert_eq!(connected_k_core_containing(&g, &[v(4)], v(4), 0).unwrap(), vec![v(4)]);
    }
}
