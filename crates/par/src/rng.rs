//! Seeded PRNG for the workspace, replacing the `rand` crate.
//!
//! [`Rng64`] is xoshiro256++ (Blackman & Vigna, 2019) seeded through
//! splitmix64, which is the same construction `rand_xoshiro` uses. The
//! API mirrors the subset of `rand` the workspace needs — `seed_from_u64`,
//! `gen`, `gen_range`, `gen_bool`, and slice `shuffle` — so call sites
//! keep their shape. Streams are fully determined by the seed; nothing
//! here reads OS entropy, which keeps datagen and the algorithms
//! reproducible in tests and benchmarks.
//!
//! Note the streams are *not* the same as `rand::StdRng`'s (different
//! algorithm), so seeded outputs changed once when the workspace switched.
//! All workspace tests assert properties, not literal draws, so this is
//! invisible outside the commit that introduced it.

/// Splitmix64 step — used to expand a 64-bit seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator with a rand-compatible method surface.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Deterministically seeds the generator from a single `u64`
    /// (splitmix64 expansion, matching `rand_xoshiro`'s convention).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper bits of [`next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample of type `T` (see [`Sample`] for the types provided).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range` (see [`SampleRange`] implementations).
    /// Panics on an empty range, matching `rand`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Uniform integer in `[0, bound)` by Lemire's multiply-shift with
    /// rejection — unbiased for every bound.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // threshold = 2^64 mod bound, computed without u128 division by zero
        // concerns: (0 - bound) % bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Types [`Rng64::gen`] can sample uniformly.
pub trait Sample {
    /// Draws one uniform value.
    fn sample(rng: &mut Rng64) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut Rng64) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut Rng64) -> u32 {
        rng.next_u32()
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut Rng64) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample(rng: &mut Rng64) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for bool {
    fn sample(rng: &mut Rng64) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng64::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from(self, rng: &mut Rng64) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut Rng64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

int_range_impl!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u: f64 = rng.gen();
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from(self, rng: &mut Rng64) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u: f32 = rng.gen();
        self.start + u * (self.end - self.start)
    }
}

/// Fisher–Yates shuffle, available on slices as `data.shuffle(&mut rng)`
/// (mirrors `rand::seq::SliceRandom`).
pub trait Shuffle {
    /// Uniformly permutes the elements in place.
    fn shuffle(&mut self, rng: &mut Rng64);
}

impl<T> Shuffle for [T] {
    fn shuffle(&mut self, rng: &mut Rng64) {
        for i in (1..self.len()).rev() {
            let j = rng.bounded_u64(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_xoshiro256pp_vector() {
        // Reference: xoshiro256++ from state [1, 2, 3, 4] (Vigna's C code).
        let mut rng = Rng64 { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng64::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng64::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..=5);
            assert!(y <= 5);
            let f = rng.gen_range(-2.5f64..1.5);
            assert!((-2.5..1.5).contains(&f));
        }
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut rng = Rng64::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of Uniform[0,1) over 10k draws is ~0.5 ± 0.01 w.h.p.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng64::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
        let mut rng = Rng64::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let mut rng = Rng64::seed_from_u64(11);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut data: Vec<usize> = (0..100).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With 100 elements an identity shuffle is astronomically unlikely.
        assert_ne!(data, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_is_unbiased_enough() {
        // Coarse chi-square-ish sanity check over 10 buckets.
        let mut rng = Rng64::seed_from_u64(13);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "bucket count {c}");
        }
    }
}
