//! MPMC job queue and fixed worker pool.
//!
//! [`channel`] is an unbounded multi-producer multi-consumer channel built
//! on `Mutex<VecDeque>` + `Condvar`; receivers block until an item arrives
//! or every sender has been dropped. [`WorkerPool`] layers a fixed set of
//! long-lived worker threads on top, giving the HTTP server a bounded
//! execution context: under load, connections queue instead of spawning
//! one OS thread each.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    cond: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
}

/// Sending half of an MPMC [`channel`]. Cloning adds a producer; the
/// channel closes once all clones are dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of an MPMC [`channel`]. Cloning adds a consumer;
/// each item is delivered to exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Creates an unbounded MPMC channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1 }),
        cond: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueues `item` and wakes one blocked receiver. Fails only when
    /// every [`Receiver`] has been dropped.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        // Two Arcs per live endpoint pair; if only senders hold the Arc,
        // count == senders and no receiver can ever drain the queue.
        let senders = self.shared.inner.lock().expect("cx-par channel poisoned").senders;
        if Arc::strong_count(&self.shared) <= senders {
            return Err(SendError(item));
        }
        let mut inner = self.shared.inner.lock().expect("cx-par channel poisoned");
        inner.queue.push_back(item);
        drop(inner);
        self.shared.cond.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        // Clone the Arc before bumping `senders` so `senders` never
        // exceeds the number of live sender Arcs — `send`'s closed-check
        // relies on that invariant.
        let shared = Arc::clone(&self.shared);
        shared.inner.lock().expect("cx-par channel poisoned").senders += 1;
        Sender { shared }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("cx-par channel poisoned");
        inner.senders -= 1;
        let closed = inner.senders == 0;
        drop(inner);
        if closed {
            // Wake every blocked receiver so they observe the close.
            self.shared.cond.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until an item is available or the channel is closed
    /// (all senders dropped and the queue drained). Returns `None` on close.
    pub fn recv(&self) -> Option<T> {
        let mut inner = self.shared.inner.lock().expect("cx-par channel poisoned");
        loop {
            if let Some(item) = inner.queue.pop_front() {
                return Some(item);
            }
            if inner.senders == 0 {
                return None;
            }
            inner = self.shared.cond.wait(inner).expect("cx-par channel poisoned");
        }
    }

    /// Non-blocking receive: `None` when the queue is currently empty
    /// (whether or not the channel is closed).
    pub fn try_recv(&self) -> Option<T> {
        self.shared.inner.lock().expect("cx-par channel poisoned").queue.pop_front()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed pool of worker threads executing queued jobs.
///
/// Jobs run in submission order (picked up by whichever worker frees up
/// first). Dropping the pool closes the queue, lets the workers drain the
/// remaining jobs, and joins them.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` (at least 1) threads, each named `name-<i>`.
    pub fn new(name: &str, workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let handles = (0..workers)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Some(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn cx-par worker thread")
            })
            .collect();
        WorkerPool { tx: Some(tx), handles }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Queues `job` for execution on the next free worker.
    ///
    /// Instrumented: bumps `cx_par_tasks_total{state="submitted"}` and the
    /// `cx_par_queue_depth` gauge on submit; the wrapper decrements the
    /// gauge when the job is picked up and counts it completed afterwards.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        cx_obs::metrics::inc("cx_par_tasks_total{state=\"submitted\"}");
        cx_obs::metrics::gauge_add("cx_par_queue_depth", 1);
        self.tx
            .as_ref()
            .expect("worker pool already shut down")
            .send(Box::new(move || {
                cx_obs::metrics::gauge_add("cx_par_queue_depth", -1);
                job();
                cx_obs::metrics::inc("cx_par_tasks_total{state=\"completed\"}");
            }))
            .unwrap_or_else(|_| unreachable!("workers hold receivers until tx drops"));
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.tx.take();
        for h in self.handles.drain(..) {
            // A worker that panicked already aborted its job; don't
            // propagate during drop.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn channel_delivers_in_order_single_consumer() {
        let (tx, rx) = channel();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_returns_none_after_all_senders_drop() {
        let (tx, rx) = channel::<u8>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_fails_when_no_receivers() {
        let (tx, rx) = channel::<u8>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn multi_consumer_splits_work() {
        let (tx, rx) = channel();
        let counter = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    while rx.recv().is_some() {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn pool_runs_all_jobs_and_joins_on_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new("test", 4);
            assert_eq!(pool.workers(), 4);
            for _ in 0..256 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // drop waits for the queue to drain
        assert_eq!(counter.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn pool_clamps_to_one_worker() {
        let pool = WorkerPool::new("solo", 0);
        assert_eq!(pool.workers(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }
}
