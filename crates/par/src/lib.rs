#![warn(missing_docs)]

//! # cx-par — dependency-free parallel execution toolkit
//!
//! The build environment is offline, so this crate implements on plain
//! `std` what rayon/crossbeam would otherwise provide:
//!
//! * [`par_map_indexed`] — map an index range to a `Vec<R>` in input order;
//! * [`par_chunks_mut`] — run a closure over disjoint mutable chunks;
//! * [`par_reduce`] — the deterministic reduce-combine primitive: map
//!   fixed chunks to partials, combine partials in ascending chunk order;
//! * [`queue`] — an MPMC channel plus [`queue::WorkerPool`] for the
//!   HTTP server's fixed worker pool;
//! * [`rng`] — the workspace's seeded PRNG (xoshiro256++), replacing the
//!   `rand` dependency;
//! * [`task`] — cooperative cancellation tokens (request deadlines) and
//!   progress reporting for long-running algorithm runs.
//!
//! ## Determinism contract
//!
//! Every helper here produces output that is **independent of the thread
//! count**:
//!
//! * chunk boundaries are a function of the input length only (never of
//!   `CX_THREADS` or `available_parallelism`), so the same partials are
//!   produced no matter how many workers exist;
//! * partials are combined in ascending chunk order, so even
//!   non-associative-in-practice operations (floating-point sums) give
//!   bit-identical results at any thread count;
//! * [`par_map_indexed`] assembles chunk outputs in index order.
//!
//! Threads come from [`std::thread::scope`], so closures may borrow from
//! the caller's stack. The worker count is `CX_THREADS` when set (any
//! value ≥ 1), else [`std::thread::available_parallelism`].

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod queue;
pub mod rng;
pub mod task;

/// The number of worker threads parallel helpers use: the `CX_THREADS`
/// environment variable when set to an integer ≥ 1, otherwise
/// [`std::thread::available_parallelism`] (1 if that fails).
///
/// The resolved value is cached (reading an env var allocates, and this
/// is called on query hot paths that must be allocation-free). Code that
/// changes `CX_THREADS` at runtime — tests, benchmarks, differential
/// oracles — must call [`refresh_threads`] afterwards for the change to
/// take effect.
pub fn num_threads() -> usize {
    match THREADS_CACHE.load(Ordering::Relaxed) {
        0 => {
            let n = read_env_threads();
            THREADS_CACHE.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Invalidates the [`num_threads`] cache so the next call re-reads
/// `CX_THREADS`. Call after setting or removing the variable in-process.
pub fn refresh_threads() {
    THREADS_CACHE.store(0, Ordering::Relaxed);
}

/// Cached worker count; 0 means "not yet resolved".
static THREADS_CACHE: AtomicUsize = AtomicUsize::new(0);

fn read_env_threads() -> usize {
    match std::env::var("CX_THREADS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Deterministic chunk size for an input of `len` items: a function of
/// `len` only (never of the thread count), so partial results and their
/// combine order are identical at any `CX_THREADS`.
///
/// Small inputs get one chunk (no threading overhead); large inputs get
/// enough chunks that dynamic scheduling load-balances well.
pub fn chunk_size(len: usize) -> usize {
    // ≥ 256 chunks for big inputs, chunks of ≥ 1024 items otherwise.
    (len / 256).max(1024)
}

/// The chunk ranges [`par_reduce`] and friends iterate, exposed so tests
/// and sequential reference paths can mirror the exact partition.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    let mut out = Vec::with_capacity(len.div_ceil(chunk));
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// Runs `work(chunk_index)` for every chunk index in `0..chunks` on up to
/// [`num_threads`] scoped workers, collecting `(chunk_index, R)` pairs.
/// Returns the results sorted by chunk index.
fn run_chunked<R: Send>(
    chunks: usize,
    work: &(impl Fn(usize) -> R + Sync),
) -> Vec<(usize, R)> {
    let threads = num_threads().min(chunks).max(1);
    if threads == 1 {
        return (0..chunks).map(|c| (c, work(c))).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= chunks {
                            break;
                        }
                        local.push((c, work(c)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("cx-par worker panicked")).collect()
    });
    let mut merged: Vec<(usize, R)> = results.drain(..).flatten().collect();
    merged.sort_by_key(|&(c, _)| c);
    merged
}

/// Maps `0..n` to a `Vec<R>` in index order, computing chunks of indices
/// on parallel workers. Equivalent to `(0..n).map(f).collect()` — and
/// bit-identical to it at every thread count.
pub fn par_map_indexed<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let chunk = chunk_size(n);
    if n <= chunk || num_threads() == 1 {
        return (0..n).map(f).collect();
    }
    let ranges = chunk_ranges(n, chunk);
    let parts = run_chunked(ranges.len(), &|c| ranges[c].clone().map(&f).collect::<Vec<R>>());
    let mut out = Vec::with_capacity(n);
    for (_, part) in parts {
        out.extend(part);
    }
    out
}

/// Maps a slice to a `Vec<R>` in input order (see [`par_map_indexed`]).
pub fn par_map_slice<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Maps `0..n` to a `Vec<R>` in index order with **one task per index**.
///
/// [`par_map_indexed`] batches indices into ≥1024-element chunks, which
/// deliberately serialises small inputs — the right call when each item
/// is cheap. This is the complement for *coarse-grained* items (e.g. one
/// community query each, as in the server's `search_batch`): every index
/// is its own unit of work, pulled dynamically by up to [`num_threads`]
/// scoped workers. Output is assembled in index order, so results are
/// independent of the thread count like every other helper here.
pub fn par_map_tasks<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if n <= 1 || num_threads() == 1 {
        return (0..n).map(f).collect();
    }
    run_chunked(n, &f).into_iter().map(|(_, r)| r).collect()
}

/// Runs `f(start_offset, chunk)` over disjoint mutable chunks of `data`
/// (each `chunk_len` long except possibly the last) on parallel workers.
///
/// `start_offset` is the index of `chunk[0]` within `data`, so closures
/// can correlate chunk elements with other per-index state.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "chunk size must be positive");
    let n = data.len();
    if n == 0 {
        return;
    }
    if n <= chunk_len || num_threads() == 1 {
        f(0, data);
        return;
    }
    let chunks: Vec<(usize, &mut [T])> = {
        let mut offset = 0usize;
        data.chunks_mut(chunk_len)
            .map(|c| {
                let pair = (offset, c);
                offset += pair.1.len();
                pair
            })
            .collect()
    };
    let threads = num_threads().min(chunks.len());
    let work = std::sync::Mutex::new(chunks.into_iter());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let item = work.lock().expect("cx-par queue poisoned").next();
                match item {
                    Some((offset, chunk)) => f(offset, chunk),
                    None => break,
                }
            });
        }
    });
}

/// The deterministic reduce-combine primitive: maps every fixed-size chunk
/// range of `0..n` to a partial with `map`, then folds the partials in
/// ascending chunk order with `combine`. Returns `None` when `n == 0`.
///
/// Because the chunk partition depends only on `n` and the combine order
/// is fixed, the result is bit-identical at every thread count — even for
/// floating-point accumulation.
pub fn par_reduce<A: Send>(
    n: usize,
    map: impl Fn(Range<usize>) -> A + Sync,
    combine: impl Fn(A, A) -> A,
) -> Option<A> {
    if n == 0 {
        return None;
    }
    let ranges = chunk_ranges(n, chunk_size(n));
    if ranges.len() == 1 || num_threads() == 1 {
        return ranges.into_iter().map(map).reduce(combine);
    }
    let parts = run_chunked(ranges.len(), &|c| map(ranges[c].clone()));
    parts.into_iter().map(|(_, a)| a).reduce(combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_threads<R>(n: &str, f: impl FnOnce() -> R) -> R {
        let old = std::env::var("CX_THREADS").ok();
        std::env::set_var("CX_THREADS", n);
        refresh_threads();
        let out = f();
        match old {
            Some(v) => std::env::set_var("CX_THREADS", v),
            None => std::env::remove_var("CX_THREADS"),
        }
        refresh_threads();
        out
    }

    #[test]
    fn num_threads_respects_env() {
        assert_eq!(with_threads("3", num_threads), 3);
        assert_eq!(with_threads("1", num_threads), 1);
        // Garbage falls back to the hardware default (≥ 1).
        assert!(with_threads("zero", num_threads) >= 1);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        let rs = chunk_ranges(10_000, 1024);
        assert_eq!(rs.first().unwrap().start, 0);
        assert_eq!(rs.last().unwrap().end, 10_000);
        let total: usize = rs.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10_000);
        for w in rs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert!(chunk_ranges(0, 16).is_empty());
    }

    #[test]
    fn map_indexed_matches_sequential_at_any_thread_count() {
        let n = 50_000;
        let expect: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(2654435761)).collect();
        for t in ["1", "2", "8"] {
            let got = with_threads(t, || {
                par_map_indexed(n, |i| (i as u64).wrapping_mul(2654435761))
            });
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn chunks_mut_touches_every_element_once() {
        let n = 30_000;
        for t in ["1", "2", "8"] {
            let mut data = vec![0u32; n];
            with_threads(t, || {
                par_chunks_mut(&mut data, 1024, |offset, chunk| {
                    for (i, x) in chunk.iter_mut().enumerate() {
                        *x += (offset + i) as u32 + 1;
                    }
                });
            });
            assert!(data.iter().enumerate().all(|(i, &x)| x == i as u32 + 1), "threads={t}");
        }
    }

    #[test]
    fn reduce_is_bit_identical_for_floats_across_thread_counts() {
        let n = 100_000;
        let val = |i: usize| ((i as f64) * 0.37).sin() / 7.0;
        let map = |r: Range<usize>| r.map(val).sum::<f64>();
        let r1 = with_threads("1", || par_reduce(n, map, |a, b| a + b)).unwrap();
        let r2 = with_threads("2", || par_reduce(n, map, |a, b| a + b)).unwrap();
        let r8 = with_threads("8", || par_reduce(n, map, |a, b| a + b)).unwrap();
        assert_eq!(r1.to_bits(), r2.to_bits());
        assert_eq!(r1.to_bits(), r8.to_bits());
    }

    #[test]
    fn reduce_empty_is_none() {
        assert!(par_reduce(0, |r| r.len(), |a, b| a + b).is_none());
    }

    #[test]
    fn map_tasks_orders_results_at_any_thread_count() {
        // Small n (below the chunking threshold) must still come back in
        // index order, and identically at every thread count.
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for t in ["1", "2", "8"] {
            let got = with_threads(t, || par_map_tasks(37, |i| i * i));
            assert_eq!(got, expect, "threads={t}");
        }
        assert!(par_map_tasks(0, |i| i).is_empty());
    }

    #[test]
    fn map_slice_borrows() {
        let items: Vec<String> = (0..5000).map(|i| format!("x{i}")).collect();
        let lens = par_map_slice(&items, |s| s.len());
        assert_eq!(lens.len(), 5000);
        assert_eq!(lens[0], 2);
        assert_eq!(lens[4999], 5);
    }
}
