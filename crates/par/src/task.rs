//! Cooperative cancellation and progress reporting for long-running work.
//!
//! The serving layer attaches a per-request deadline (`timeout_ms` in the
//! API) and needs algorithm code — the ACQ candidate walk, the k-core
//! peel, Louvain's local-moving sweeps — to notice expiry *while running*
//! instead of burning a worker to completion. Threading an explicit token
//! through every algorithm signature would churn the whole workspace, so
//! the token rides a thread-local instead:
//!
//! * the request handler builds a [`CancelToken`] and runs the engine call
//!   inside [`scope`];
//! * hot loops call [`cancelled`] every few thousand iterations (a
//!   thread-local read plus, when a deadline is armed, one `Instant::now`)
//!   and bail out early with whatever partial state they have;
//! * the caller that installed the token re-checks it after the algorithm
//!   returns and maps expiry to a typed `deadline_exceeded` error, so a
//!   partial result can never leak to a client or a cache.
//!
//! [`progress`] is the same idea for Server-Sent-Events streaming: a
//! detection algorithm reports coarse phase/step counters, and whatever
//! sink the scope installed forwards them (the HTTP layer frames them as
//! SSE `progress` events). With no scope installed both helpers are a
//! thread-local read — the zero-alloc query hot path is unaffected.
//!
//! The thread-local deliberately does **not** propagate into `cx-par`
//! worker threads: checkpoints live in the sequential control loops of
//! each algorithm, which is where wall-clock time accumulates.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cheaply clonable cancellation handle: an optional wall-clock deadline
/// plus a manual flag (set on client disconnect). The default token
/// ([`CancelToken::none`]) can never cancel and costs nothing to check.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<TokenInner>>,
}

struct TokenInner {
    deadline: Option<Instant>,
    flag: AtomicBool,
}

impl CancelToken {
    /// A token that never cancels — the default for untimed callers.
    pub fn none() -> Self {
        Self { inner: None }
    }

    /// A token that expires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// A token that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            inner: Some(Arc::new(TokenInner {
                deadline: Some(deadline),
                flag: AtomicBool::new(false),
            })),
        }
    }

    /// A manual token with no deadline: cancels only via [`CancelToken::cancel`]
    /// (e.g. when a streaming client disconnects).
    pub fn manual() -> Self {
        Self {
            inner: Some(Arc::new(TokenInner { deadline: None, flag: AtomicBool::new(false) })),
        }
    }

    /// Trips the manual flag. No-op on [`CancelToken::none`].
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Relaxed);
        }
    }

    /// True when the flag is tripped or the deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Relaxed)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Whether this token can ever cancel (i.e. is not [`CancelToken::none`]).
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// The armed deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "CancelToken::none"),
            Some(i) => f
                .debug_struct("CancelToken")
                .field("deadline", &i.deadline)
                .field("cancelled", &i.flag.load(Ordering::Relaxed))
                .finish(),
        }
    }
}

/// A progress callback: `(phase, done, total)`. `total` may be 0 when the
/// amount of work is unknown up front.
pub type ProgressFn = dyn Fn(&str, u64, u64) + Send + Sync;

struct TaskScope {
    token: CancelToken,
    progress: Option<Arc<ProgressFn>>,
}

thread_local! {
    static CURRENT: RefCell<Vec<TaskScope>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with `token` (and optionally a progress sink) installed as the
/// current thread's task scope. Scopes nest; the innermost wins. The scope
/// is popped on the way out even if `f` panics.
pub fn scope<R>(
    token: &CancelToken,
    progress: Option<Arc<ProgressFn>>,
    f: impl FnOnce() -> R,
) -> R {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            CURRENT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
    CURRENT.with(|c| {
        c.borrow_mut().push(TaskScope { token: token.clone(), progress });
    });
    let _pop = Pop;
    f()
}

/// True when the innermost installed token has cancelled. Cheap when no
/// scope is installed (one thread-local read), so hot loops can afford a
/// periodic call; loops that bail on `true` must leave only private state
/// behind — the scope owner discards the partial result.
pub fn cancelled() -> bool {
    CURRENT.with(|c| match c.borrow().last() {
        None => false,
        Some(s) => s.token.is_cancelled(),
    })
}

/// Reports coarse progress to the installed sink, if any. `phase` labels
/// the unit of work (e.g. `"louvain.sweep"`).
pub fn progress(phase: &str, done: u64, total: u64) {
    CURRENT.with(|c| {
        if let Some(sink) = c.borrow().last().and_then(|s| s.progress.clone()) {
            sink(phase, done, total);
        }
    });
}

/// True when any scope is installed on this thread (tests / diagnostics).
pub fn in_scope() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn none_token_never_cancels() {
        let t = CancelToken::none();
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(!t.is_armed());
        assert!(!cancelled());
    }

    #[test]
    fn deadline_token_expires() {
        let t = CancelToken::with_timeout(Duration::from_millis(5));
        assert!(!t.is_cancelled());
        std::thread::sleep(Duration::from_millis(10));
        assert!(t.is_cancelled());
    }

    #[test]
    fn manual_cancel_shows_through_clones_and_scope() {
        let t = CancelToken::manual();
        let handle = t.clone();
        scope(&t, None, || {
            assert!(!cancelled());
            handle.cancel();
            assert!(cancelled());
        });
        assert!(!cancelled(), "scope must pop on exit");
    }

    #[test]
    fn scopes_nest_innermost_wins() {
        let outer = CancelToken::manual();
        let inner = CancelToken::manual();
        outer.cancel();
        scope(&outer, None, || {
            assert!(cancelled());
            scope(&inner, None, || {
                assert!(!cancelled(), "inner un-cancelled token shadows outer");
            });
            assert!(cancelled());
        });
    }

    #[test]
    fn progress_reaches_installed_sink() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let sink: Arc<ProgressFn> = Arc::new(move |phase, done, total| {
            assert_eq!(phase, "unit");
            assert_eq!((done, total), (3, 10));
            h.fetch_add(1, Ordering::Relaxed);
        });
        progress("unit", 3, 10); // no scope: dropped
        scope(&CancelToken::none(), Some(sink), || {
            progress("unit", 3, 10);
        });
        progress("unit", 3, 10); // popped again
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scope_pops_on_panic() {
        let t = CancelToken::manual();
        t.cancel();
        let r = std::panic::catch_unwind(|| {
            scope(&t, None, || panic!("boom"));
        });
        assert!(r.is_err());
        assert!(!in_scope(), "panicked scope must still pop");
    }
}
