//! Process-wide metrics registry: counters, gauges, fixed-bucket latency
//! histograms, and the Prometheus text exposition behind `GET /metrics`.
//!
//! Metric identity is the full sample name including any labels, e.g.
//! `cx_http_requests_total{class="2xx"}` — the registry is a flat map from
//! that string to an atomic cell, so recording never allocates beyond the
//! first registration of a name. Families (the part before `{`) group the
//! `# TYPE` lines in the exposition.
//!
//! Durations are recorded in **microseconds** (`*_us` names); this keeps
//! everything integer-atomic and dependency-free. Histograms use one fixed
//! log-spaced bound ladder from 10µs to 10s, wide enough for both a cache
//! hit and a cold Girvan–Newman detection.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depth, pool occupancy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The shared bucket ladder (upper bounds, in microseconds). Log-spaced
/// 10µs … 10s; the final implicit bucket is +Inf.
pub const BUCKET_BOUNDS_US: &[u64] = &[
    10,
    25,
    50,
    100,
    250,
    500,
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
];

/// A fixed-bucket histogram of microsecond durations with quantile
/// estimation by linear interpolation inside the bucket.
#[derive(Debug)]
pub struct Histogram {
    /// `buckets[i]` counts observations ≤ `BUCKET_BOUNDS_US[i]`; the last
    /// extra slot is the +Inf bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram over [`BUCKET_BOUNDS_US`].
    pub fn new() -> Self {
        Self {
            buckets: (0..=BUCKET_BOUNDS_US.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one duration in microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US.partition_point(|&b| b < us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (0 < q ≤ 1) in microseconds by linear
    /// interpolation within the containing bucket. Returns `None` when
    /// empty. Observations beyond the last finite bound clamp to it.
    pub fn quantile_us(&self, q: f64) -> Option<f64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let target = (q * count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let in_bucket = b.load(Ordering::Relaxed);
            if cum + in_bucket >= target {
                let lower = if i == 0 { 0 } else { BUCKET_BOUNDS_US[i - 1] } as f64;
                let upper = match BUCKET_BOUNDS_US.get(i) {
                    Some(&u) => u as f64,
                    None => return Some(lower), // +Inf bucket: clamp
                };
                let frac = (target - cum) as f64 / in_bucket as f64;
                return Some(lower + frac * (upper - lower));
            }
            cum += in_bucket;
        }
        Some(*BUCKET_BOUNDS_US.last().unwrap() as f64)
    }

    /// Cumulative bucket counts paired with their upper bounds, ending
    /// with the +Inf bucket (`None`). Used by the exposition.
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        let mut cum = 0u64;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                cum += b.load(Ordering::Relaxed);
                (BUCKET_BOUNDS_US.get(i).copied(), cum)
            })
            .collect()
    }
}

/// The metrics registry: name → atomic cell, one map per kind.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock().expect("metrics registry poisoned");
        match m.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                m.insert(name.to_owned(), Arc::clone(&c));
                c
            }
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.gauges.lock().expect("metrics registry poisoned");
        match m.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                m.insert(name.to_owned(), Arc::clone(&g));
                g
            }
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.histograms.lock().expect("metrics registry poisoned");
        match m.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                m.insert(name.to_owned(), Arc::clone(&h));
                h
            }
        }
    }

    /// Serialises every metric into the Prometheus text exposition format
    /// (version 0.0.4). Counters and gauges emit one sample each;
    /// histograms emit `_bucket`/`_sum`/`_count` plus `_p50`/`_p95`/`_p99`
    /// gauge families with the estimated quantiles.
    pub fn prometheus_text(&self) -> String {
        fn type_line(out: &mut String, last_family: &mut String, name: &str, kind: &str) {
            let family = family_of(name);
            if family != last_family {
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                *last_family = family.to_owned();
            }
        }
        let mut out = String::new();
        let mut last_family = String::new();
        {
            let counters = self.counters.lock().expect("metrics registry poisoned");
            for (name, c) in counters.iter() {
                type_line(&mut out, &mut last_family, name, "counter");
                out.push_str(&format!("{name} {}\n", c.get()));
            }
        }
        last_family.clear();
        {
            let gauges = self.gauges.lock().expect("metrics registry poisoned");
            for (name, g) in gauges.iter() {
                type_line(&mut out, &mut last_family, name, "gauge");
                out.push_str(&format!("{name} {}\n", g.get()));
            }
        }
        {
            let hists = self.histograms.lock().expect("metrics registry poisoned");
            for (name, h) in hists.iter() {
                let (family, labels) = split_labels(name);
                out.push_str(&format!("# TYPE {family} histogram\n"));
                for (bound, cum) in h.cumulative_buckets() {
                    let le = match bound {
                        Some(b) => b.to_string(),
                        None => "+Inf".to_owned(),
                    };
                    out.push_str(&format!(
                        "{family}_bucket{{{}le=\"{le}\"}} {cum}\n",
                        if labels.is_empty() { String::new() } else { format!("{labels},") }
                    ));
                }
                let suffix =
                    if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
                out.push_str(&format!("{family}_sum{suffix} {}\n", h.sum_us()));
                out.push_str(&format!("{family}_count{suffix} {}\n", h.count()));
                for (q, tag) in [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")] {
                    if let Some(v) = h.quantile_us(q) {
                        out.push_str(&format!("{family}_{tag}{suffix} {v:.1}\n"));
                    }
                }
            }
        }
        out
    }
}

/// The family name: everything before the label block.
fn family_of(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Splits `family{labels}` into `(family, labels)` (labels without braces).
fn split_labels(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((f, rest)) => (f, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    }
}

/// The process-wide registry every instrumented crate records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---- gated convenience helpers (the instrumentation call sites) --------

/// Adds 1 to the global counter `name` (no-op when disabled).
pub fn inc(name: &str) {
    if crate::enabled() {
        global().counter(name).inc();
    }
}

/// Adds `n` to the global counter `name` (no-op when disabled).
pub fn add(name: &str, n: u64) {
    if crate::enabled() {
        global().counter(name).add(n);
    }
}

/// Adds `delta` to the global gauge `name` (no-op when disabled).
pub fn gauge_add(name: &str, delta: i64) {
    if crate::enabled() {
        global().gauge(name).add(delta);
    }
}

/// Sets the global gauge `name` (no-op when disabled).
pub fn gauge_set(name: &str, value: i64) {
    if crate::enabled() {
        global().gauge(name).set(value);
    }
}

/// Records `us` into the global histogram `name` (no-op when disabled).
pub fn observe_us(name: &str, us: u64) {
    if crate::enabled() {
        global().histogram(name).observe_us(us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        r.counter("c").inc();
        r.counter("c").add(4);
        assert_eq!(r.counter("c").get(), 5);
        r.gauge("g").add(3);
        r.gauge("g").add(-1);
        assert_eq!(r.gauge("g").get(), 2);
        r.gauge("g").set(-7);
        assert_eq!(r.gauge("g").get(), -7);
    }

    #[test]
    fn histogram_counts_into_correct_buckets() {
        let h = Histogram::new();
        h.observe_us(1); // ≤ 10
        h.observe_us(10); // ≤ 10 (bounds are inclusive)
        h.observe_us(11); // ≤ 25
        h.observe_us(20_000_000); // +Inf
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_us(), 20_000_022);
        let cum = h.cumulative_buckets();
        assert_eq!(cum[0], (Some(10), 2));
        assert_eq!(cum[1], (Some(25), 3));
        // Last (None) bucket is cumulative over everything.
        assert_eq!(cum.last().unwrap(), &(None, 4));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        // 100 observations uniformly at 30µs: all land in the (25, 50]
        // bucket; every quantile interpolates inside it.
        for _ in 0..100 {
            h.observe_us(30);
        }
        let p50 = h.quantile_us(0.5).unwrap();
        let p95 = h.quantile_us(0.95).unwrap();
        let p99 = h.quantile_us(0.99).unwrap();
        assert!((25.0..=50.0).contains(&p50), "p50={p50}");
        assert!(p50 < p95 && p95 < p99, "p50={p50} p95={p95} p99={p99}");
        assert!((p50 - 37.5).abs() < 1.0, "midpoint-ish, got {p50}");
    }

    #[test]
    fn quantiles_across_buckets_are_monotone() {
        let h = Histogram::new();
        // Half fast (40µs), half slow (40ms): p50 in the fast bucket,
        // p95/p99 in the slow one.
        for _ in 0..50 {
            h.observe_us(40);
        }
        for _ in 0..50 {
            h.observe_us(40_000);
        }
        let p50 = h.quantile_us(0.5).unwrap();
        let p95 = h.quantile_us(0.95).unwrap();
        assert!(p50 <= 50.0, "p50={p50}");
        assert!(p95 > 25_000.0, "p95={p95}");
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert!(Histogram::new().quantile_us(0.5).is_none());
    }

    #[test]
    fn overflow_bucket_clamps_to_last_bound() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.observe_us(99_000_000);
        }
        assert_eq!(h.quantile_us(0.5).unwrap(), 10_000_000.0);
    }

    #[test]
    fn exposition_is_prometheus_shaped() {
        let r = Registry::new();
        r.counter("cx_test_total{class=\"2xx\"}").add(3);
        r.counter("cx_test_total{class=\"4xx\"}").add(1);
        r.gauge("cx_test_depth").set(5);
        r.histogram("cx_test_duration_us").observe_us(120);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE cx_test_total counter"));
        // One TYPE line per family, not per labelled sample.
        assert_eq!(text.matches("# TYPE cx_test_total counter").count(), 1);
        assert!(text.contains("cx_test_total{class=\"2xx\"} 3"));
        assert!(text.contains("cx_test_total{class=\"4xx\"} 1"));
        assert!(text.contains("# TYPE cx_test_depth gauge"));
        assert!(text.contains("cx_test_depth 5"));
        assert!(text.contains("# TYPE cx_test_duration_us histogram"));
        assert!(text.contains("cx_test_duration_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("cx_test_duration_us_count 1"));
        assert!(text.contains("cx_test_duration_us_sum 120"));
        assert!(text.contains("cx_test_duration_us_p50"));
    }

    #[test]
    fn labelled_histogram_merges_labels_with_le() {
        let r = Registry::new();
        r.histogram("cx_route_us{route=\"/api/v1/search\"}").observe_us(100);
        let text = r.prometheus_text();
        assert!(
            text.contains("cx_route_us_bucket{route=\"/api/v1/search\",le=\"100\"} 1"),
            "{text}"
        );
        assert!(text.contains("cx_route_us_count{route=\"/api/v1/search\"} 1"));
    }

    #[test]
    fn registry_returns_same_cell_for_same_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
    }
}
