//! Request tracing: request id → ordered span tree with wall-clock
//! timings, recorded into a bounded ring buffer.
//!
//! The HTTP layer calls [`begin_request`] when a request arrives; every
//! instrumented layer below it (routing, engine, index, algorithms) opens
//! a [`span`] whose guard records the span's duration on drop. Spans
//! opened on the request's thread while its trace is active attach to the
//! trace as a tree (parent = the innermost open span); spans opened with
//! no active trace — engine calls from tests, index builds at startup,
//! work shipped to `cx-par` worker threads — still feed the per-span-name
//! latency histograms (`cx_span_duration_us{span="..."}`), they just don't
//! appear in a request's tree.
//!
//! Completed traces land in a process-wide ring buffer holding the most
//! recent [`TRACE_CAPACITY`] requests, queryable by request id via
//! [`get_trace`] (the `GET /api/v1/trace` endpoint).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How many completed request traces the ring buffer retains.
pub const TRACE_CAPACITY: usize = 256;

/// One completed span within a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, dot-namespaced by layer (`http.request`, `engine.search`,
    /// `acq.dec`, …).
    pub name: String,
    /// Index of the parent span within the trace, `None` for the root.
    pub parent: Option<u32>,
    /// Start offset from the beginning of the request, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration, in microseconds.
    pub dur_us: u64,
}

/// A completed request trace: the spans in creation order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The request id the trace was recorded under.
    pub request_id: String,
    /// Spans in the order they were opened (parents before children).
    pub spans: Vec<SpanRecord>,
}

struct ActiveTrace {
    request_id: String,
    t0: Instant,
    spans: Vec<SpanRecord>,
    /// Indices of currently open spans, innermost last.
    stack: Vec<u32>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

fn ring() -> &'static Mutex<VecDeque<Trace>> {
    static RING: OnceLock<Mutex<VecDeque<Trace>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(TRACE_CAPACITY)))
}

/// A fresh process-unique request id (`r` + monotone hex counter).
pub fn next_request_id() -> String {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    format!("r{:08x}", NEXT.fetch_add(1, Ordering::Relaxed))
}

/// Starts recording a trace for `request_id` on this thread. The returned
/// guard finishes the trace on drop, moving it into the ring buffer. When
/// observability is disabled (or a trace is somehow already active on the
/// thread), the guard is inert.
pub fn begin_request(request_id: &str) -> RequestGuard {
    if !crate::enabled() {
        return RequestGuard { armed: false };
    }
    let armed = ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        if a.is_some() {
            return false; // nested begin: keep the outer trace
        }
        *a = Some(ActiveTrace {
            request_id: request_id.to_owned(),
            t0: Instant::now(),
            spans: Vec::with_capacity(8),
            stack: Vec::with_capacity(4),
        });
        true
    });
    RequestGuard { armed }
}

/// Guard returned by [`begin_request`]; completes the trace on drop.
pub struct RequestGuard {
    armed: bool,
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let done = ACTIVE.with(|a| a.borrow_mut().take());
        if let Some(t) = done {
            let trace = Trace { request_id: t.request_id, spans: t.spans };
            let mut ring = ring().lock().expect("trace ring poisoned");
            if ring.len() >= TRACE_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(trace);
        }
    }
}

/// Opens a span named `name`. The guard records the duration on drop:
/// always into the `cx_span_duration_us{span="<name>"}` histogram, and —
/// when a trace is active on this thread — as a node in the trace's span
/// tree. A full no-op when observability is disabled.
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { name: String::new(), start: None, idx: None };
    }
    let start = Instant::now();
    let idx = ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let t = a.as_mut()?;
        let idx = t.spans.len() as u32;
        t.spans.push(SpanRecord {
            name: name.to_owned(),
            parent: t.stack.last().copied(),
            start_us: t.t0.elapsed().as_micros() as u64,
            dur_us: 0,
        });
        t.stack.push(idx);
        Some(idx)
    });
    SpanGuard { name: name.to_owned(), start: Some(start), idx }
}

/// Guard for an open span; see [`span`].
pub struct SpanGuard {
    name: String,
    start: Option<Instant>,
    idx: Option<u32>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_us = start.elapsed().as_micros() as u64;
        crate::metrics::observe_us(&format!("cx_span_duration_us{{span=\"{}\"}}", self.name), dur_us);
        if let Some(idx) = self.idx {
            ACTIVE.with(|a| {
                let mut a = a.borrow_mut();
                if let Some(t) = a.as_mut() {
                    if let Some(s) = t.spans.get_mut(idx as usize) {
                        s.dur_us = dur_us;
                    }
                    // Pop this span (and anything leaked above it).
                    while let Some(&top) = t.stack.last() {
                        t.stack.pop();
                        if top == idx {
                            break;
                        }
                    }
                }
            });
        }
    }
}

/// Looks up a completed trace by request id (most recent first).
pub fn get_trace(request_id: &str) -> Option<Trace> {
    let ring = ring().lock().expect("trace ring poisoned");
    ring.iter().rev().find(|t| t.request_id == request_id).cloned()
}

/// Number of traces currently retained.
pub fn trace_count() -> usize {
    ring().lock().expect("trace ring poisoned").len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_build_a_tree_and_land_in_the_ring() {
        let _l = crate::test_lock();
        crate::set_enabled(true);
        let id = next_request_id();
        {
            let _req = begin_request(&id);
            let _outer = span("http.request");
            {
                let _route = span("route./api/v1/search");
                let _engine = span("engine.search");
            }
            let _sibling = span("route.after");
        }
        let t = get_trace(&id).expect("trace must be recorded");
        assert_eq!(t.spans.len(), 4);
        assert_eq!(t.spans[0].name, "http.request");
        assert_eq!(t.spans[0].parent, None);
        assert_eq!(t.spans[1].name, "route./api/v1/search");
        assert_eq!(t.spans[1].parent, Some(0));
        assert_eq!(t.spans[2].name, "engine.search");
        assert_eq!(t.spans[2].parent, Some(1));
        // After the inner scope closed, the next span's parent is the root.
        assert_eq!(t.spans[3].parent, Some(0));
    }

    #[test]
    fn span_without_active_trace_is_harmless() {
        let _l = crate::test_lock();
        crate::set_enabled(true);
        let before = trace_count();
        {
            let _s = span("orphan.work");
        }
        assert_eq!(trace_count(), before, "no trace may be created by a bare span");
        // But the duration histogram did record it.
        assert!(
            crate::global()
                .histogram("cx_span_duration_us{span=\"orphan.work\"}")
                .count()
                >= 1
        );
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = crate::test_lock();
        crate::set_enabled(false);
        let id = next_request_id();
        {
            let _req = begin_request(&id);
            let _s = span("x");
        }
        crate::set_enabled(true);
        assert!(get_trace(&id).is_none());
    }

    #[test]
    fn ring_buffer_is_bounded_and_evicts_oldest() {
        let _l = crate::test_lock();
        crate::set_enabled(true);
        let first = next_request_id();
        {
            let _r = begin_request(&first);
        }
        for _ in 0..TRACE_CAPACITY {
            let id = next_request_id();
            let _r = begin_request(&id);
        }
        assert_eq!(trace_count(), TRACE_CAPACITY);
        assert!(get_trace(&first).is_none(), "oldest trace must have been evicted");
    }

    #[test]
    fn request_ids_are_unique() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        assert!(a.starts_with('r'));
    }
}
