#![warn(missing_docs)]

//! # cx-obs — dependency-free observability
//!
//! The production north star is a server that handles heavy traffic, and
//! that requires seeing inside it at runtime: request latency, cache hit
//! rates, pool utilisation, per-stage algorithm cost. This crate is the
//! workspace's observability layer, built on plain `std` like everything
//! else:
//!
//! * [`metrics`] — a process-wide registry of atomic [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s and fixed-bucket latency [`metrics::Histogram`]s
//!   (with p50/p95/p99 export), serialised on demand into the Prometheus
//!   text exposition format for `GET /metrics`;
//! * [`trace`] — lightweight request tracing: each HTTP request gets a
//!   request id and an ordered span tree (`http.request` → `route.*` →
//!   `engine.*` → algorithm spans) with wall-clock timings, recorded into
//!   a bounded ring buffer and served by `GET /api/v1/trace`.
//!
//! ## Overhead and the kill switch
//!
//! Every recording helper is gated on [`enabled`], a single relaxed atomic
//! load. Setting `CX_OBS=off` (or `0` / `false`) before the first metric
//! is recorded turns the whole subsystem into no-ops, which is how the
//! `obs_overhead` bench bounds the instrumentation cost of the search hot
//! path. [`set_enabled`] flips the gate at runtime (used by benches and
//! tests; traces and metrics recorded earlier stay readable).
//!
//! ## Who depends on this
//!
//! `cx-obs` itself depends on nothing, so every crate on the query path —
//! `cx-kcore`, `cx-cltree`, `cx-acq`, `cx-explorer`, `cx-server`,
//! `cx-par` — can record into the same process-wide registry without
//! dependency cycles.

use std::sync::atomic::{AtomicU8, Ordering};

pub mod metrics;
pub mod trace;

pub use metrics::global;
pub use trace::span;

/// Tri-state gate: 0 = not yet resolved from the environment, 1 = on,
/// 2 = off.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether observability recording is active. Resolved lazily from the
/// `CX_OBS` environment variable (`off` / `0` / `false` disable it; the
/// default is on), then cached — the hot-path cost is one relaxed load.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let off = matches!(
                std::env::var("CX_OBS").ok().as_deref().map(str::trim),
                Some("off") | Some("0") | Some("false")
            );
            STATE.store(if off { 2 } else { 1 }, Ordering::Relaxed);
            !off
        }
    }
}

/// Overrides the gate at runtime, bypassing `CX_OBS`. Used by the
/// `obs_overhead` bench to time the same process with and without
/// instrumentation, and by tests.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Tests that flip the global gate or read global state must not
/// interleave; they all hold this lock.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_overrides() {
        let _l = test_lock();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
