//! Property-based tests for the graph substrate: builder invariants,
//! set-algebra laws, and persistence round-trips on random graphs.
//!
//! Gated behind the non-default `proptest` feature: the build environment
//! is offline, so the `proptest` dev-dependency is not in the manifest.
//! Restore it (and `rand`) before enabling the feature in a networked
//! environment — see DESIGN.md "Offline build policy".
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use cx_graph::keywords::{contains_all, intersect_sorted, intersection_size, jaccard};
use cx_graph::traversal::{bfs, ConnectedComponents};
use cx_graph::{AttributedGraph, GraphBuilder, KeywordId, VertexId, VertexSet};

/// Strategy: a random attributed graph with up to `max_n` vertices.
fn arb_graph(max_n: usize) -> impl Strategy<Value = AttributedGraph> {
    (1..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(4 * n));
        let kws = proptest::collection::vec(proptest::collection::vec(0u8..12, 0..6), n);
        (Just(n), edges, kws).prop_map(|(n, edges, kws)| {
            let mut b = GraphBuilder::new();
            for (i, ks) in kws.iter().enumerate() {
                let names: Vec<String> = ks.iter().map(|k| format!("kw{k}")).collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                b.add_vertex(&format!("v{i}"), &refs);
            }
            for (u, v) in edges {
                b.add_edge(VertexId(u), VertexId(v));
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_produces_simple_symmetric_sorted_graph(g in arb_graph(40)) {
        for u in g.vertices() {
            let ns = g.neighbors(u);
            // strictly sorted => no duplicates
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            // no self loops
            prop_assert!(!ns.contains(&u));
            // symmetry
            for &v in ns {
                prop_assert!(g.neighbors(v).contains(&u));
            }
        }
        // handshake lemma
        let degsum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.edge_count());
    }

    #[test]
    fn keyword_sets_sorted_and_within_vocab(g in arb_graph(40)) {
        for v in g.vertices() {
            let ws = g.keywords(v);
            prop_assert!(ws.windows(2).all(|w| w[0] < w[1]));
            for &w in ws {
                prop_assert!(g.interner().name(w).is_some());
            }
        }
    }

    #[test]
    fn text_roundtrip_preserves_graph(g in arb_graph(30)) {
        let mut buf = Vec::new();
        cx_graph::io::write_text(&g, &mut buf).unwrap();
        let g2 = cx_graph::io::read_text(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(g.vertex_count(), g2.vertex_count());
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        for v in g.vertices() {
            prop_assert_eq!(g.label(v), g2.label(v));
            prop_assert_eq!(g.neighbors(v), g2.neighbors(v));
            prop_assert_eq!(
                g.keyword_names(g.keywords(v)),
                g2.keyword_names(g2.keywords(v))
            );
        }
    }

    #[test]
    fn snapshot_roundtrip_preserves_graph(g in arb_graph(30)) {
        let mut buf = Vec::new();
        cx_graph::io::write_snapshot(&g, &mut buf).unwrap();
        let g2 = cx_graph::io::read_snapshot(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(g.vertex_count(), g2.vertex_count());
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        for v in g.vertices() {
            prop_assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn components_partition_vertices_and_agree_with_bfs(g in arb_graph(40)) {
        let cc = ConnectedComponents::compute(&g);
        let groups = cc.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.vertex_count());
        // BFS from any vertex reaches exactly its group.
        for grp in &groups {
            let reach = bfs(&g, grp[0]);
            let mut reach_sorted = reach.clone();
            reach_sorted.sort_unstable();
            prop_assert_eq!(&reach_sorted, grp);
        }
    }

    #[test]
    fn vertexset_models_hashset(ops in proptest::collection::vec((0u32..20, any::<bool>()), 0..100)) {
        let mut s = VertexSet::with_capacity(20);
        let mut model = std::collections::HashSet::new();
        for (v, add) in ops {
            let v = VertexId(v);
            if add {
                prop_assert_eq!(s.insert(v), model.insert(v));
            } else {
                prop_assert_eq!(s.remove(v), model.remove(&v));
            }
            prop_assert_eq!(s.len(), model.len());
        }
        let mut expect: Vec<_> = model.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(s.to_sorted_vec(), expect);
    }

    #[test]
    fn intersect_sorted_is_correct_set_intersection(
        a in proptest::collection::btree_set(0u32..30, 0..15),
        b in proptest::collection::btree_set(0u32..30, 0..15),
    ) {
        let av: Vec<KeywordId> = a.iter().map(|&x| KeywordId(x)).collect();
        let bv: Vec<KeywordId> = b.iter().map(|&x| KeywordId(x)).collect();
        let expect: Vec<KeywordId> = a.intersection(&b).map(|&x| KeywordId(x)).collect();
        prop_assert_eq!(intersect_sorted(&av, &bv), expect.clone());
        prop_assert_eq!(intersection_size(&av, &bv), expect.len());
        prop_assert_eq!(contains_all(&av, &bv), expect.len() == bv.len());
        // Jaccard symmetry and bounds.
        let j1 = jaccard(&av, &bv);
        let j2 = jaccard(&bv, &av);
        prop_assert!((j1 - j2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&j1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The text parser is total: arbitrary input returns Ok or Err,
    /// never panics, and anything it accepts builds a valid graph.
    #[test]
    fn text_parser_is_total(input in "\\PC{0,120}") {
        if let Ok(g) = cx_graph::io::read_text(&mut input.as_bytes()) {
            // Accepted graphs satisfy the builder invariants.
            let degsum: usize = g.vertices().map(|v| g.degree(v)).sum();
            prop_assert_eq!(degsum, 2 * g.edge_count());
        }
    }

    /// Line-shaped garbage exercises the record parser specifically.
    #[test]
    fn text_parser_fuzzy_records(
        lines in proptest::collection::vec("(v|e|x)\\t[a-z0-9\\t,]{0,16}", 0..10)
    ) {
        let input = lines.join("\n");
        let _ = cx_graph::io::read_text(&mut input.as_bytes());
    }

    /// The binary snapshot reader is total on arbitrary bytes.
    #[test]
    fn snapshot_reader_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = cx_graph::io::read_snapshot(&mut bytes.as_slice());
    }
}
