//! The immutable CSR attributed graph.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::GraphError;
use crate::keywords::{KeywordId, KeywordInterner};

/// The integer type of CSR offsets: `u32` rather than `usize`, halving
/// the per-vertex offset columns on 64-bit hosts. A graph is limited to
/// `u32::MAX` directed adjacency slots (~2.1B undirected edges) and
/// `u32::MAX` keyword slots — far beyond the paper-scale workload (1M
/// vertices / 3.4M edges) this substrate is sized for.
pub type CsrOffset = u32;

/// A dense vertex identifier, valid for the graph that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The id as a usize, for indexing per-vertex arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An immutable, undirected attributed graph `G(V, E)` in CSR form.
///
/// Every vertex `v` has:
/// * a display label (author name in the paper's DBLP deployment),
/// * a strictly sorted keyword set `W(v)` of interned [`KeywordId`]s,
/// * a strictly sorted neighbour list (no self-loops, no parallel edges).
///
/// Construct with [`crate::GraphBuilder`]; load/save with [`crate::io`].
#[derive(Debug, Clone)]
pub struct AttributedGraph {
    // CSR adjacency: neighbours of v are adj[adj_off[v] .. adj_off[v+1]].
    // These two are the only columns an edge edit touches, so they stay
    // plain vectors; everything below is `Arc`-shared so that
    // [`Self::apply_delta`] can produce a patched graph without copying
    // keywords, labels, or the interner.
    pub(crate) adj_off: Vec<CsrOffset>,
    pub(crate) adj: Vec<VertexId>,
    // CSR keyword sets: W(v) = kws[kw_off[v] .. kw_off[v+1]].
    pub(crate) kw_off: Arc<Vec<CsrOffset>>,
    pub(crate) kws: Arc<Vec<KeywordId>>,
    pub(crate) labels: Arc<Vec<String>>,
    pub(crate) label_index: Arc<HashMap<String, VertexId>>,
    pub(crate) interner: Arc<KeywordInterner>,
}

impl AttributedGraph {
    /// Number of vertices `|V|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adj.len() / 2
    }

    /// Iterates all vertex ids `0..|V|`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_count() as u32).map(VertexId)
    }

    /// Returns true if `v` is a valid vertex of this graph.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        v.index() < self.vertex_count()
    }

    /// Validates a vertex id, returning a descriptive error when out of range.
    pub fn check_vertex(&self, v: VertexId) -> Result<(), GraphError> {
        if self.contains(v) {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange { vertex: v.0, vertex_count: self.vertex_count() })
        }
    }

    /// The sorted neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[self.adj_off[v.index()] as usize..self.adj_off[v.index() + 1] as usize]
    }

    /// Degree of `v` in the full graph (`deg_G(v)` in the paper).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.adj_off[v.index() + 1] - self.adj_off[v.index()]) as usize
    }

    /// Whether the undirected edge `{u, v}` exists (binary search, O(log d)).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.contains(u) || !self.contains(v) {
            return false;
        }
        // Search the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates every undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// The keyword set `W(v)`, strictly sorted.
    #[inline]
    pub fn keywords(&self, v: VertexId) -> &[KeywordId] {
        &self.kws[self.kw_off[v.index()] as usize..self.kw_off[v.index() + 1] as usize]
    }

    /// Whether `W(v)` contains keyword `w` (binary search).
    pub fn has_keyword(&self, v: VertexId, w: KeywordId) -> bool {
        self.keywords(v).binary_search(&w).is_ok()
    }

    /// The display label of `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> &str {
        &self.labels[v.index()]
    }

    /// Looks a vertex up by its exact label.
    pub fn vertex_by_label(&self, label: &str) -> Option<VertexId> {
        self.label_index.get(label).copied()
    }

    /// Like [`Self::vertex_by_label`] but returns a descriptive error.
    pub fn require_label(&self, label: &str) -> Result<VertexId, GraphError> {
        self.vertex_by_label(label).ok_or_else(|| GraphError::UnknownLabel(label.to_owned()))
    }

    /// Case-insensitive label search returning all matches (the UI's
    /// name box is case-insensitive: "jim gray" finds "Jim Gray").
    pub fn search_label(&self, query: &str) -> Vec<VertexId> {
        let q = query.to_lowercase();
        let mut hits: Vec<VertexId> = self
            .vertices()
            .filter(|&v| self.label(v).to_lowercase().contains(&q))
            .collect();
        // Exact (case-insensitive) matches first, then by degree descending so
        // prominent vertices rank first, then by id for determinism.
        hits.sort_by_key(|&v| {
            (self.label(v).to_lowercase() != q, usize::MAX - self.degree(v), v.0)
        });
        hits
    }

    /// Like [`Self::search_label`] but keeps only the `top` best-ranked
    /// matches (same total order) and reports the total match count — a
    /// bounded partial selection, O(n log top), so paging the name box at
    /// a million vertices never materialises a million-entry hit list.
    pub fn search_label_top(&self, query: &str, top: usize) -> (Vec<VertexId>, usize) {
        let q = query.to_lowercase();
        let mut total = 0usize;
        // Max-heap keeps the *worst* retained rank on top, so each new
        // candidate compares against the cutoff in O(1).
        let mut heap: std::collections::BinaryHeap<(bool, usize, u32)> =
            std::collections::BinaryHeap::with_capacity(top + 1);
        for v in self.vertices() {
            let label = self.label(v).to_lowercase();
            if !label.contains(&q) {
                continue;
            }
            total += 1;
            if top == 0 {
                continue;
            }
            let rank = (label != q, usize::MAX - self.degree(v), v.0);
            if heap.len() < top {
                heap.push(rank);
            } else if let Some(mut worst) = heap.peek_mut() {
                if rank < *worst {
                    *worst = rank;
                }
            }
        }
        let best = heap.into_sorted_vec().into_iter().map(|(_, _, id)| VertexId(id)).collect();
        (best, total)
    }

    /// The keyword interner mapping ids to strings.
    #[inline]
    pub fn interner(&self) -> &KeywordInterner {
        &self.interner
    }

    /// Resolves keyword ids to display strings (skipping foreign ids).
    pub fn keyword_names(&self, ids: &[KeywordId]) -> Vec<String> {
        self.interner.names(ids).map(str::to_owned).collect()
    }

    /// Total number of distinct keywords in the graph.
    pub fn keyword_count(&self) -> usize {
        self.interner.len()
    }

    /// Degrees of all vertices, as a vector indexed by vertex id.
    pub fn degrees(&self) -> Vec<usize> {
        self.vertices().map(|v| self.degree(v)).collect()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether `self` and `other` share the same attribute columns
    /// (keywords, labels, interner) by pointer identity. True exactly when
    /// one graph was derived from the other via [`Self::apply_delta`];
    /// independently built graphs never share.
    pub fn shares_attributes_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.kw_off, &other.kw_off)
            && Arc::ptr_eq(&self.kws, &other.kws)
            && Arc::ptr_eq(&self.labels, &other.labels)
            && Arc::ptr_eq(&self.label_index, &other.label_index)
            && Arc::ptr_eq(&self.interner, &other.interner)
    }

    /// Approximate heap footprint in bytes (CSR arrays + labels), used by the
    /// index-size experiments.
    pub fn memory_bytes(&self) -> usize {
        self.adj_off.len() * std::mem::size_of::<CsrOffset>()
            + self.adj.len() * std::mem::size_of::<VertexId>()
            + self.kw_off.len() * std::mem::size_of::<CsrOffset>()
            + self.kws.len() * std::mem::size_of::<KeywordId>()
            + self.labels.iter().map(|l| l.len() + std::mem::size_of::<String>()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    use super::*;

    /// Builds the small triangle-plus-pendant fixture:
    /// a—b, b—c, a—c, c—d.
    fn fixture() -> AttributedGraph {
        let mut b = GraphBuilder::new();
        let va = b.add_vertex("a", &["x", "y"]);
        let vb = b.add_vertex("b", &["x"]);
        let vc = b.add_vertex("c", &["y", "z"]);
        let vd = b.add_vertex("d", &[]);
        b.add_edge(va, vb);
        b.add_edge(vb, vc);
        b.add_edge(va, vc);
        b.add_edge(vc, vd);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = fixture();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.degree(VertexId(2)), 3);
        assert_eq!(g.degree(VertexId(3)), 1);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.degrees(), vec![2, 2, 3, 1]);
    }

    #[test]
    fn neighbors_are_sorted_and_symmetric() {
        let g = fixture();
        for u in g.vertices() {
            let ns = g.neighbors(u);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted adjacency for {u}");
            for &v in ns {
                assert!(g.neighbors(v).contains(&u), "missing reverse edge {v}->{u}");
            }
        }
    }

    #[test]
    fn has_edge_both_directions_and_misses() {
        let g = fixture();
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(3)));
        assert!(!g.has_edge(VertexId(0), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(42)));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = fixture();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), g.edge_count());
        for (u, v) in &es {
            assert!(u < v);
        }
    }

    #[test]
    fn keyword_lookup() {
        let g = fixture();
        let x = g.interner().get("x").unwrap();
        let z = g.interner().get("z").unwrap();
        assert!(g.has_keyword(VertexId(0), x));
        assert!(!g.has_keyword(VertexId(0), z));
        assert!(g.keywords(VertexId(3)).is_empty());
        assert_eq!(g.keyword_count(), 3);
        assert_eq!(g.keyword_names(g.keywords(VertexId(0))), vec!["x", "y"]);
    }

    #[test]
    fn label_lookup_and_search() {
        let g = fixture();
        assert_eq!(g.vertex_by_label("c"), Some(VertexId(2)));
        assert_eq!(g.vertex_by_label("zz"), None);
        assert!(g.require_label("zz").is_err());
        assert_eq!(g.search_label("C"), vec![VertexId(2)]);
    }

    #[test]
    fn search_label_ranks_exact_match_then_degree() {
        let mut b = GraphBuilder::new();
        let gray = b.add_vertex("Jim Gray", &[]);
        let grayson = b.add_vertex("Jim Grayson", &[]);
        let other = b.add_vertex("Hub", &[]);
        // Grayson gets higher degree than Gray.
        b.add_edge(grayson, other);
        let g = b.build();
        let hits = g.search_label("jim gray");
        assert_eq!(hits, vec![gray, grayson]);
    }

    #[test]
    fn search_label_top_matches_full_sort() {
        let mut b = GraphBuilder::new();
        let hub = b.add_vertex("hub", &[]);
        for i in 0..40 {
            let v = b.add_vertex(&format!("author-{i}"), &[]);
            // Varying degrees so the rank order is nontrivial.
            if i % 3 == 0 {
                b.add_edge(v, hub);
            }
        }
        let g = b.build();
        let full = g.search_label("author-1");
        for top in [0, 1, 3, full.len(), full.len() + 5] {
            let (best, total) = g.search_label_top("author-1", top);
            assert_eq!(total, full.len(), "total at top={top}");
            assert_eq!(best, full[..top.min(full.len())], "prefix at top={top}");
        }
        // Exact match outranks higher-degree prefix matches.
        let (best, _) = g.search_label_top("author-1", 1);
        assert_eq!(g.label(best[0]), "author-1");
    }

    #[test]
    fn check_vertex_bounds() {
        let g = fixture();
        assert!(g.check_vertex(VertexId(3)).is_ok());
        assert!(g.check_vertex(VertexId(4)).is_err());
    }

    #[test]
    fn memory_bytes_is_positive_and_monotone() {
        let g = fixture();
        let small = g.memory_bytes();
        assert!(small > 0);
        let mut b = GraphBuilder::new();
        for i in 0..100 {
            b.add_vertex(&format!("v{i}"), &["k"]);
        }
        for i in 0..99u32 {
            b.add_edge(VertexId(i), VertexId(i + 1));
        }
        assert!(b.build().memory_bytes() > small);
    }
}
