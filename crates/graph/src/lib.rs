#![warn(missing_docs)]

//! # cx-graph — attributed graph substrate for C-Explorer
//!
//! This crate provides the storage layer every community-retrieval (CR)
//! algorithm in the workspace runs on: an immutable, CSR-packed, undirected
//! **attributed graph** in which every vertex carries a display label (e.g.
//! an author name) and a set of interned keywords, exactly as in the
//! C-Explorer paper (VLDB'17) and the underlying ACQ paper (PVLDB'16).
//!
//! The main types are:
//!
//! * [`AttributedGraph`] — the immutable graph: sorted CSR adjacency,
//!   per-vertex keyword sets, label↔vertex lookup.
//! * [`GraphBuilder`] — the only way to construct a graph; deduplicates
//!   edges, drops self-loops, sorts adjacency and keyword lists.
//! * [`KeywordInterner`] / [`KeywordId`] — string interning so keyword sets
//!   are small sorted integer slices and set intersection is a merge.
//! * [`Community`] — a retrieved community: member vertices plus the
//!   keywords its members share (the "theme" in the paper's UI).
//! * [`VertexSet`] — a dense membership mask reused across algorithms for
//!   O(1) `contains` during induced-subgraph work.
//! * [`Subgraph`] — a materialised induced subgraph with local ids and a
//!   mapping back to the parent graph.
//!
//! Text and binary persistence formats live in [`io`]; traversal helpers
//! (BFS, connected components) in [`traversal`]; summary statistics in
//! [`stats`].
//!
//! ```
//! use cx_graph::{GraphBuilder, VertexId};
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_vertex("alice", &["db", "ml"]);
//! let c = b.add_vertex("carol", &["db"]);
//! b.add_edge(a, c);
//! let g = b.build();
//! assert_eq!(g.vertex_count(), 2);
//! assert_eq!(g.degree(a), 1);
//! assert!(g.vertex_by_label("carol").is_some());
//! ```

pub mod builder;
pub mod community;
pub mod delta;
pub mod error;
pub mod graph;
pub mod inverted;
pub mod io;
pub mod keywords;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod vertexset;

pub use builder::GraphBuilder;
pub use community::Community;
pub use delta::EdgeDelta;
pub use error::GraphError;
pub use graph::{AttributedGraph, CsrOffset, VertexId};
pub use inverted::InvertedIndex;
pub use keywords::{KeywordId, KeywordInterner};
pub use stats::{DegreeStats, GraphStats};
pub use subgraph::Subgraph;
pub use vertexset::VertexSet;
