//! Materialised induced subgraphs.
//!
//! Several algorithms (Local's candidate-set core check, ACQ's keyword-core
//! verification, the layout engine) need to run graph algorithms on a small
//! piece of a large graph. [`Subgraph`] copies the induced adjacency into a
//! compact structure with *local* ids `0..n'` and keeps the mapping back to
//! the parent's [`VertexId`]s.

use std::collections::HashMap;

use crate::graph::{AttributedGraph, VertexId};

/// An induced subgraph with local vertex ids and a back-mapping.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// `local_to_global[i]` is the parent vertex of local vertex `i`.
    local_to_global: Vec<VertexId>,
    global_to_local: HashMap<VertexId, u32>,
    adj_off: Vec<u32>,
    adj: Vec<u32>,
}

impl Subgraph {
    /// Builds the subgraph of `g` induced by `members` (duplicates ignored;
    /// membership order defines local ids after dedup+sort).
    pub fn induced(g: &AttributedGraph, members: &[VertexId]) -> Self {
        let mut sorted: Vec<VertexId> = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let global_to_local: HashMap<VertexId, u32> =
            sorted.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();

        let n = sorted.len();
        let mut adj_off: Vec<u32> = Vec::with_capacity(n + 1);
        adj_off.push(0);
        let mut adj = Vec::new();
        for &v in &sorted {
            for &u in g.neighbors(v) {
                if let Some(&lu) = global_to_local.get(&u) {
                    adj.push(lu);
                }
            }
            adj_off.push(adj.len() as u32);
        }
        Self { local_to_global: sorted, global_to_local, adj_off, adj }
    }

    /// Number of local vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.local_to_global.len()
    }

    /// Number of undirected edges inside the subgraph.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.adj.len() / 2
    }

    /// Local neighbours of local vertex `i`.
    #[inline]
    pub fn neighbors(&self, i: u32) -> &[u32] {
        &self.adj[self.adj_off[i as usize] as usize..self.adj_off[i as usize + 1] as usize]
    }

    /// Degree of local vertex `i` inside the subgraph.
    #[inline]
    pub fn degree(&self, i: u32) -> usize {
        (self.adj_off[i as usize + 1] - self.adj_off[i as usize]) as usize
    }

    /// The parent vertex of local vertex `i`.
    #[inline]
    pub fn global(&self, i: u32) -> VertexId {
        self.local_to_global[i as usize]
    }

    /// The local id of a parent vertex, if it is a member.
    pub fn local(&self, v: VertexId) -> Option<u32> {
        self.global_to_local.get(&v).copied()
    }

    /// All members as parent vertex ids (sorted).
    pub fn members(&self) -> &[VertexId] {
        &self.local_to_global
    }

    /// Maps a set of local ids back to sorted parent ids.
    pub fn to_global(&self, locals: &[u32]) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = locals.iter().map(|&i| self.global(i)).collect();
        out.sort_unstable();
        out
    }

    /// Connected component of the local vertex `start`, as local ids.
    pub fn component_of(&self, start: u32) -> Vec<u32> {
        let mut seen = vec![false; self.vertex_count()];
        let mut stack = vec![start];
        let mut out = Vec::new();
        seen[start as usize] = true;
        while let Some(u) = stack.pop() {
            out.push(u);
            for &v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// 5-cycle 0-1-2-3-4-0 plus chord 1-3.
    fn cycle5() -> AttributedGraph {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for i in 0..5u32 {
            b.add_edge(v(i), v((i + 1) % 5));
        }
        b.add_edge(v(1), v(3));
        b.build()
    }

    #[test]
    fn induced_keeps_only_internal_edges() {
        let g = cycle5();
        let s = Subgraph::induced(&g, &[v(0), v(1), v(3)]);
        assert_eq!(s.vertex_count(), 3);
        // Internal edges: 0-1 and 1-3 (0-3 is not an edge of the cycle+chord).
        assert_eq!(s.edge_count(), 2);
        let l1 = s.local(v(1)).unwrap();
        assert_eq!(s.degree(l1), 2);
        assert_eq!(s.local(v(2)), None);
    }

    #[test]
    fn duplicates_in_members_are_ignored() {
        let g = cycle5();
        let s = Subgraph::induced(&g, &[v(2), v(2), v(3)]);
        assert_eq!(s.vertex_count(), 2);
        assert_eq!(s.edge_count(), 1);
    }

    #[test]
    fn global_local_roundtrip() {
        let g = cycle5();
        let s = Subgraph::induced(&g, &[v(4), v(0), v(2)]);
        for i in 0..s.vertex_count() as u32 {
            assert_eq!(s.local(s.global(i)), Some(i));
        }
        assert_eq!(s.members(), &[v(0), v(2), v(4)]);
        assert_eq!(s.to_global(&[0, 2]), vec![v(0), v(4)]);
    }

    #[test]
    fn component_of_disconnected_piece() {
        let g = cycle5();
        // {0, 2, 3}: edges 2-3 only; 0 is isolated inside.
        let s = Subgraph::induced(&g, &[v(0), v(2), v(3)]);
        let c0 = s.component_of(s.local(v(0)).unwrap());
        assert_eq!(c0.len(), 1);
        let c23 = s.component_of(s.local(v(2)).unwrap());
        assert_eq!(c23.len(), 2);
    }

    #[test]
    fn empty_members_gives_empty_subgraph() {
        let g = cycle5();
        let s = Subgraph::induced(&g, &[]);
        assert_eq!(s.vertex_count(), 0);
        assert_eq!(s.edge_count(), 0);
    }
}
