//! The community value type exchanged between algorithms, metrics, the
//! engine and the server.

use crate::graph::{AttributedGraph, VertexId};
use crate::keywords::KeywordId;

/// A retrieved community: a set of member vertices of some
/// [`AttributedGraph`], plus the keywords all members share — the
/// community's *theme* in the paper's UI (empty for purely structural
/// methods like Global/Local/CODICIL).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Community {
    /// Member vertices, strictly sorted by id.
    vertices: Vec<VertexId>,
    /// Keywords shared by every member (`L(Gq, S)` for ACQ), sorted.
    shared_keywords: Vec<KeywordId>,
}

impl Community {
    /// Creates a community from members and shared keywords; both lists are
    /// sorted and deduplicated.
    pub fn new(mut vertices: Vec<VertexId>, mut shared_keywords: Vec<KeywordId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        shared_keywords.sort_unstable();
        shared_keywords.dedup();
        Self { vertices, shared_keywords }
    }

    /// A community with no keyword theme (structural methods).
    pub fn structural(vertices: Vec<VertexId>) -> Self {
        Self::new(vertices, Vec::new())
    }

    /// The sorted member vertices.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// The sorted shared keywords (the theme).
    #[inline]
    pub fn shared_keywords(&self) -> &[KeywordId] {
        &self.shared_keywords
    }

    /// Number of member vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the community has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// O(log n) membership test.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// Number of internal edges of the community in `g` (both endpoints are
    /// members). O(sum of member degrees).
    pub fn internal_edge_count(&self, g: &AttributedGraph) -> usize {
        let mut m = 0;
        for &u in &self.vertices {
            for &v in g.neighbors(u) {
                if u < v && self.contains(v) {
                    m += 1;
                }
            }
        }
        m
    }

    /// Average internal degree `2·m_in / n`, the "Degree" column in the
    /// paper's Figure 6(a) statistics table. 0 for the empty community.
    pub fn average_internal_degree(&self, g: &AttributedGraph) -> f64 {
        if self.vertices.is_empty() {
            return 0.0;
        }
        2.0 * self.internal_edge_count(g) as f64 / self.vertices.len() as f64
    }

    /// Minimum internal degree over the members — the structure-cohesiveness
    /// value a k-core community guarantees to be ≥ k.
    pub fn min_internal_degree(&self, g: &AttributedGraph) -> usize {
        self.vertices
            .iter()
            .map(|&u| g.neighbors(u).iter().filter(|&&v| self.contains(v)).count())
            .min()
            .unwrap_or(0)
    }

    /// Member labels, resolved through `g`, in member order.
    pub fn labels<'g>(&self, g: &'g AttributedGraph) -> Vec<&'g str> {
        self.vertices.iter().map(|&v| g.label(v)).collect()
    }

    /// Theme keyword strings, resolved through `g`.
    pub fn theme(&self, g: &AttributedGraph) -> Vec<String> {
        g.keyword_names(&self.shared_keywords)
    }

    /// Jaccard similarity between the member sets of two communities.
    pub fn vertex_jaccard(&self, other: &Community) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 0.0;
        }
        let mut inter = 0usize;
        let (mut i, mut j) = (0, 0);
        while i < self.vertices.len() && j < other.vertices.len() {
            match self.vertices[i].cmp(&other.vertices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = self.vertices.len() + other.vertices.len() - inter;
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn triangle_plus_tail() -> AttributedGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("a", &["x"]);
        let c = b.add_vertex("b", &["x"]);
        let d = b.add_vertex("c", &["x"]);
        let e = b.add_vertex("d", &[]);
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.add_edge(a, d);
        b.add_edge(d, e);
        b.build()
    }

    #[test]
    fn new_sorts_and_dedups() {
        let c = Community::new(vec![v(3), v(1), v(3)], vec![KeywordId(2), KeywordId(0)]);
        assert_eq!(c.vertices(), &[v(1), v(3)]);
        assert_eq!(c.shared_keywords(), &[KeywordId(0), KeywordId(2)]);
        assert_eq!(c.len(), 2);
        assert!(c.contains(v(1)));
        assert!(!c.contains(v(2)));
    }

    #[test]
    fn internal_edges_and_degrees_on_triangle() {
        let g = triangle_plus_tail();
        let c = Community::structural(vec![v(0), v(1), v(2)]);
        assert_eq!(c.internal_edge_count(&g), 3);
        assert!((c.average_internal_degree(&g) - 2.0).abs() < 1e-12);
        assert_eq!(c.min_internal_degree(&g), 2);
        // Adding the pendant drops the minimum internal degree to 1.
        let c2 = Community::structural(vec![v(0), v(1), v(2), v(3)]);
        assert_eq!(c2.internal_edge_count(&g), 4);
        assert_eq!(c2.min_internal_degree(&g), 1);
    }

    #[test]
    fn empty_community_degenerate_values() {
        let g = triangle_plus_tail();
        let c = Community::structural(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.average_internal_degree(&g), 0.0);
        assert_eq!(c.min_internal_degree(&g), 0);
        assert_eq!(c.vertex_jaccard(&c), 0.0);
    }

    #[test]
    fn vertex_jaccard_overlap() {
        let a = Community::structural(vec![v(0), v(1), v(2)]);
        let b = Community::structural(vec![v(1), v(2), v(3)]);
        assert!((a.vertex_jaccard(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.vertex_jaccard(&a), 1.0);
    }

    #[test]
    fn labels_and_theme_resolve() {
        let g = triangle_plus_tail();
        let x = g.interner().get("x").unwrap();
        let c = Community::new(vec![v(0), v(2)], vec![x]);
        assert_eq!(c.labels(&g), vec!["a", "c"]);
        assert_eq!(c.theme(&g), vec!["x"]);
    }
}
