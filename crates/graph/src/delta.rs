//! Batch edge-delta application: patch the CSR adjacency of an
//! [`AttributedGraph`] without rebuilding its attribute columns.
//!
//! [`AttributedGraph::edge_delta`] validates and coalesces a raw batch of
//! insertions/deletions into an [`EdgeDelta`] whose `added`/`removed` sets
//! are disjoint and *effective* (every added edge is absent from the base
//! graph, every removed edge present). [`AttributedGraph::apply_delta`]
//! then produces the successor graph by splicing only the adjacency
//! arrays; keywords, labels and the interner are shared with the base
//! graph via `Arc`, so an edit costs O(n + m) memcpy for the adjacency
//! plus O(Δ log Δ) for the patch — never a re-intern or label re-parse.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::error::GraphError;
use crate::graph::{AttributedGraph, VertexId};

/// A coalesced, validated batch of edge edits against a specific base
/// graph. Produced by [`AttributedGraph::edge_delta`]; consumed by
/// [`AttributedGraph::apply_delta`].
///
/// Semantics: the successor edge set is `(E \ removed) ∪ added`. When the
/// same edge appears in both the raw add and remove lists, the addition
/// wins (the edit "ends with the edge present"), matching how the engine
/// coalesces a queued batch. Self-loops and duplicates in the raw lists
/// are dropped during coalescing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Normalised `(u, v)` with `u < v`, strictly sorted, each absent
    /// from the base graph.
    pub added: Vec<(VertexId, VertexId)>,
    /// Normalised `(u, v)` with `u < v`, strictly sorted, each present
    /// in the base graph; disjoint from `added`.
    pub removed: Vec<(VertexId, VertexId)>,
}

impl EdgeDelta {
    /// True when the delta changes nothing (every requested edit was a
    /// structural no-op).
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Number of effective edge changes.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Every distinct vertex incident to an effective change.
    pub fn touched_vertices(&self) -> Vec<VertexId> {
        let mut vs: Vec<VertexId> = self
            .added
            .iter()
            .chain(&self.removed)
            .flat_map(|&(u, v)| [u, v])
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

impl AttributedGraph {
    /// Validates and coalesces a raw edit batch into an [`EdgeDelta`].
    ///
    /// Errors (without any side effect) if any endpoint is out of range.
    /// Self-loops are dropped, endpoint order is normalised to `u < v`,
    /// duplicates are deduplicated, an edge in both lists resolves to
    /// "present afterwards" (add wins), and edits that would not change
    /// the edge set are filtered out.
    pub fn edge_delta(
        &self,
        add: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> Result<EdgeDelta, GraphError> {
        for &(u, v) in add.iter().chain(remove) {
            self.check_vertex(u)?;
            self.check_vertex(v)?;
        }
        let norm = |(u, v): (VertexId, VertexId)| if u < v { (u, v) } else { (v, u) };
        let add_set: HashSet<_> =
            add.iter().copied().filter(|&(u, v)| u != v).map(norm).collect();
        let remove_set: HashSet<_> =
            remove.iter().copied().filter(|&(u, v)| u != v).map(norm).collect();
        let mut added: Vec<_> =
            add_set.iter().copied().filter(|&(u, v)| !self.has_edge(u, v)).collect();
        let mut removed: Vec<_> = remove_set
            .into_iter()
            .filter(|e| !add_set.contains(e))
            .filter(|&(u, v)| self.has_edge(u, v))
            .collect();
        added.sort_unstable();
        removed.sort_unstable();
        Ok(EdgeDelta { added, removed })
    }

    /// Produces the successor graph `(V, (E \ removed) ∪ added)` by
    /// patching the CSR adjacency. Attribute columns (keyword CSR,
    /// labels, label index, interner) are shared with `self` by `Arc` —
    /// see [`Self::shares_attributes_with`].
    ///
    /// `delta` must come from [`Self::edge_delta`] on this same graph
    /// (checked with debug assertions).
    pub fn apply_delta(&self, delta: &EdgeDelta) -> AttributedGraph {
        let n = self.vertex_count();
        // Per-vertex patch lists; only touched vertices get an entry, so
        // untouched adjacency rows fall through to a straight memcpy.
        let mut ins_of: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        let mut del_of: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        for &(u, v) in &delta.added {
            debug_assert!(u < v, "delta edges must be normalised");
            debug_assert!(!self.has_edge(u, v), "added edge already present");
            ins_of.entry(u).or_default().push(v);
            ins_of.entry(v).or_default().push(u);
        }
        for &(u, v) in &delta.removed {
            debug_assert!(u < v, "delta edges must be normalised");
            debug_assert!(self.has_edge(u, v), "removed edge absent");
            del_of.entry(u).or_default().push(v);
            del_of.entry(v).or_default().push(u);
        }

        let new_len = self.adj.len() + 2 * delta.added.len() - 2 * delta.removed.len();
        let mut adj = Vec::with_capacity(new_len);
        let mut adj_off: Vec<u32> = Vec::with_capacity(n + 1);
        adj_off.push(0);
        for vi in 0..n {
            let v = VertexId(vi as u32);
            let old = self.neighbors(v);
            let del = del_of.get(&v).map_or(&[][..], Vec::as_slice);
            match ins_of.get_mut(&v) {
                None if del.is_empty() => adj.extend_from_slice(old),
                ins => {
                    let ins = ins.map_or(&[][..], |list| {
                        list.sort_unstable();
                        &list[..]
                    });
                    // Sorted merge of (old \ del) with the insertions.
                    let mut i = 0;
                    for &w in old {
                        if del.contains(&w) {
                            continue;
                        }
                        while i < ins.len() && ins[i] < w {
                            adj.push(ins[i]);
                            i += 1;
                        }
                        adj.push(w);
                    }
                    adj.extend_from_slice(&ins[i..]);
                }
            }
            adj_off.push(adj.len() as u32);
        }
        debug_assert_eq!(adj.len(), new_len);

        AttributedGraph {
            adj_off,
            adj,
            kw_off: Arc::clone(&self.kw_off),
            kws: Arc::clone(&self.kws),
            labels: Arc::clone(&self.labels),
            label_index: Arc::clone(&self.label_index),
            interner: Arc::clone(&self.interner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Triangle plus pendant: a—b, b—c, a—c, c—d.
    fn fixture() -> AttributedGraph {
        let mut b = GraphBuilder::new();
        let va = b.add_vertex("a", &["x", "y"]);
        let vb = b.add_vertex("b", &["x"]);
        let vc = b.add_vertex("c", &["y", "z"]);
        let vd = b.add_vertex("d", &[]);
        b.add_edge(va, vb);
        b.add_edge(vb, vc);
        b.add_edge(va, vc);
        b.add_edge(vc, vd);
        b.build()
    }

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Full invariant sweep: sorted symmetric adjacency, consistent offsets.
    fn assert_csr_invariants(g: &AttributedGraph) {
        assert_eq!(g.adj_off.len(), g.vertex_count() + 1);
        assert_eq!(*g.adj_off.last().unwrap() as usize, g.adj.len());
        for u in g.vertices() {
            let ns = g.neighbors(u);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted/duplicate adjacency at {u}");
            for &w in ns {
                assert_ne!(w, u, "self-loop at {u}");
                assert!(g.neighbors(w).contains(&u), "asymmetric edge {u}-{w}");
            }
        }
    }

    #[test]
    fn insert_and_remove_roundtrip() {
        let g = fixture();
        let d = g.edge_delta(&[(v(0), v(3))], &[(v(1), v(2))]).unwrap();
        assert_eq!(d.added, vec![(v(0), v(3))]);
        assert_eq!(d.removed, vec![(v(1), v(2))]);
        let g2 = g.apply_delta(&d);
        assert_csr_invariants(&g2);
        assert_eq!(g2.edge_count(), 4);
        assert!(g2.has_edge(v(0), v(3)));
        assert!(!g2.has_edge(v(1), v(2)));
        // Base graph untouched.
        assert!(!g.has_edge(v(0), v(3)));
        assert!(g.has_edge(v(1), v(2)));
    }

    #[test]
    fn attributes_are_shared_not_copied() {
        let g = fixture();
        let d = g.edge_delta(&[(v(0), v(3))], &[]).unwrap();
        let g2 = g.apply_delta(&d);
        assert!(g2.shares_attributes_with(&g));
        assert_eq!(g2.label(v(2)), "c");
        assert_eq!(g2.vertex_by_label("d"), Some(v(3)));
        assert_eq!(g2.keyword_names(g2.keywords(v(0))), vec!["x", "y"]);
        assert_eq!(g2.keyword_count(), g.keyword_count());
        // Independently built graphs never share.
        assert!(!fixture().shares_attributes_with(&g));
    }

    #[test]
    fn coalescing_add_wins_and_noops_are_filtered() {
        let g = fixture();
        // (0,1) exists: adding it is a no-op; removing AND adding keeps it.
        // (0,3) absent: removing it is a no-op.
        let d = g
            .edge_delta(
                &[(v(0), v(1)), (v(1), v(0)), (v(2), v(2))],
                &[(v(0), v(1)), (v(0), v(3))],
            )
            .unwrap();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        let g2 = g.apply_delta(&d);
        assert_eq!(g2.edge_count(), g.edge_count());
        assert!(g2.has_edge(v(0), v(1)));
    }

    #[test]
    fn add_wins_when_edge_absent_from_base() {
        let g = fixture();
        let d = g.edge_delta(&[(v(0), v(3))], &[(v(3), v(0))]).unwrap();
        assert_eq!(d.added, vec![(v(0), v(3))]);
        assert!(d.removed.is_empty());
        assert!(g.apply_delta(&d).has_edge(v(0), v(3)));
    }

    #[test]
    fn out_of_range_vertex_rejected_before_any_effect() {
        let g = fixture();
        assert!(g.edge_delta(&[(v(0), v(9))], &[]).is_err());
        assert!(g.edge_delta(&[], &[(v(9), v(0))]).is_err());
    }

    #[test]
    fn touched_vertices_dedup_sorted() {
        let g = fixture();
        let d = g.edge_delta(&[(v(3), v(0))], &[(v(2), v(0))]).unwrap();
        assert_eq!(d.touched_vertices(), vec![v(0), v(2), v(3)]);
    }

    #[test]
    fn delta_matches_from_scratch_rebuild_on_seeded_graphs() {
        // Deterministic xorshift so the test needs no rng dependency.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 60u32;
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_vertex(&format!("v{i}"), &["k"]);
        }
        let mut edges: HashSet<(VertexId, VertexId)> = HashSet::new();
        for _ in 0..150 {
            let (a, c) = (v(rng() as u32 % n), v(rng() as u32 % n));
            if a != c {
                let e = if a < c { (a, c) } else { (c, a) };
                if edges.insert(e) {
                    b.add_edge(e.0, e.1);
                }
            }
        }
        let mut g = b.build();

        for _ in 0..40 {
            // Random raw batch: up to 4 adds + 4 removes, may overlap.
            let mut add = Vec::new();
            let mut remove = Vec::new();
            for _ in 0..(rng() % 4 + 1) {
                add.push((v(rng() as u32 % n), v(rng() as u32 % n)));
            }
            let edge_list: Vec<_> = g.edges().collect();
            for _ in 0..(rng() % 4 + 1) {
                if !edge_list.is_empty() {
                    remove.push(edge_list[rng() as usize % edge_list.len()]);
                }
            }
            let d = g.edge_delta(&add, &remove).unwrap();
            let g2 = g.apply_delta(&d);
            assert_csr_invariants(&g2);

            // From-scratch rebuild with the same coalesced semantics.
            let removed: HashSet<_> = d.removed.iter().copied().collect();
            let mut fresh = GraphBuilder::new();
            for i in 0..n {
                fresh.add_vertex(&format!("v{i}"), &["k"]);
            }
            for e in g.edges().filter(|e| !removed.contains(e)).chain(d.added.iter().copied()) {
                fresh.add_edge(e.0, e.1);
            }
            let expect = fresh.build();
            assert_eq!(g2.edge_count(), expect.edge_count());
            for u in g2.vertices() {
                assert_eq!(g2.neighbors(u), expect.neighbors(u), "adjacency differs at {u}");
            }
            g = g2;
        }
    }
}
