//! Global inverted keyword index: keyword → sorted posting list of vertices.
//!
//! The CL-tree stores *per-node* inverted lists; this module provides the
//! whole-graph index used by CODICIL's content-neighbour candidate
//! generation and by the ACQ `Basic` baseline (which has no CL-tree).

use crate::graph::{AttributedGraph, VertexId};
use crate::keywords::KeywordId;

/// Keyword → sorted list of vertices whose `W(v)` contains the keyword.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    postings: Vec<Vec<VertexId>>,
}

impl InvertedIndex {
    /// Builds the index over every vertex of `g`. O(Σ|W(v)|).
    pub fn build(g: &AttributedGraph) -> Self {
        let mut postings = vec![Vec::new(); g.keyword_count()];
        for v in g.vertices() {
            for &w in g.keywords(v) {
                postings[w.index()].push(v);
            }
        }
        // Vertices are visited in id order, so each posting list is sorted.
        Self { postings }
    }

    /// The sorted posting list for `w`; empty for foreign ids.
    pub fn posting(&self, w: KeywordId) -> &[VertexId] {
        self.postings.get(w.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Document frequency: number of vertices carrying `w`.
    pub fn frequency(&self, w: KeywordId) -> usize {
        self.posting(w).len()
    }

    /// Number of keywords indexed.
    pub fn keyword_count(&self) -> usize {
        self.postings.len()
    }

    /// Intersects the posting lists of all of `ws` (vertices carrying every
    /// keyword). Returns all vertices when `ws` is empty.
    pub fn vertices_with_all(&self, g: &AttributedGraph, ws: &[KeywordId]) -> Vec<VertexId> {
        if ws.is_empty() {
            return g.vertices().collect();
        }
        // Start from the rarest keyword to keep the working set small.
        let mut order: Vec<KeywordId> = ws.to_vec();
        order.sort_by_key(|&w| self.frequency(w));
        let mut acc: Vec<VertexId> = self.posting(order[0]).to_vec();
        for &w in &order[1..] {
            let p = self.posting(w);
            let mut out = Vec::with_capacity(acc.len().min(p.len()));
            let (mut i, mut j) = (0, 0);
            while i < acc.len() && j < p.len() {
                match acc[i].cmp(&p[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(acc[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            acc = out;
            if acc.is_empty() {
                break;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> AttributedGraph {
        let mut b = GraphBuilder::new();
        b.add_vertex("a", &["x", "y"]);
        b.add_vertex("b", &["x"]);
        b.add_vertex("c", &["y", "z"]);
        b.add_vertex("d", &["x", "y", "z"]);
        b.build()
    }

    #[test]
    fn postings_are_sorted_and_complete() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        let x = g.interner().get("x").unwrap();
        let p = idx.posting(x);
        assert_eq!(p, &[VertexId(0), VertexId(1), VertexId(3)]);
        assert!(p.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(idx.frequency(x), 3);
        assert_eq!(idx.keyword_count(), 3);
    }

    #[test]
    fn foreign_keyword_has_empty_posting() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        assert!(idx.posting(KeywordId(99)).is_empty());
        assert_eq!(idx.frequency(KeywordId(99)), 0);
    }

    #[test]
    fn vertices_with_all_intersects() {
        let g = sample();
        let idx = InvertedIndex::build(&g);
        let x = g.interner().get("x").unwrap();
        let y = g.interner().get("y").unwrap();
        let z = g.interner().get("z").unwrap();
        assert_eq!(idx.vertices_with_all(&g, &[x, y]), vec![VertexId(0), VertexId(3)]);
        assert_eq!(idx.vertices_with_all(&g, &[x, y, z]), vec![VertexId(3)]);
        assert_eq!(idx.vertices_with_all(&g, &[]).len(), 4);
    }

    #[test]
    fn empty_intersection_short_circuits() {
        let mut b = GraphBuilder::new();
        b.add_vertex("a", &["p"]);
        b.add_vertex("b", &["q"]);
        let g = b.build();
        let idx = InvertedIndex::build(&g);
        let p = g.interner().get("p").unwrap();
        let q = g.interner().get("q").unwrap();
        assert!(idx.vertices_with_all(&g, &[p, q]).is_empty());
    }
}
