//! Dense vertex membership sets.
//!
//! Community-search algorithms repeatedly ask "is `v` in the current
//! candidate set?" while peeling or expanding. [`VertexSet`] pairs a dense
//! position index (O(1) membership and removal via swap-remove) with a
//! member list (cheap iteration), sized to the host graph once and reusable
//! across queries via [`VertexSet::clear`].

use crate::graph::VertexId;

const ABSENT: u32 = u32::MAX;

/// A set of vertices of one graph: O(1) insert/remove/contains, O(len)
/// iteration. Iteration order is unspecified (members are kept in a
/// swap-removed list); use [`VertexSet::to_sorted_vec`] for canonical order.
#[derive(Debug, Clone)]
pub struct VertexSet {
    /// `pos[v] == ABSENT` when absent, else index of `v` in `items`.
    pos: Vec<u32>,
    items: Vec<VertexId>,
}

impl VertexSet {
    /// Creates an empty set able to hold vertices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { pos: vec![ABSENT; capacity], items: Vec::new() }
    }

    /// Builds a set from an iterator of vertices (duplicates ignored).
    pub fn from_iter<I: IntoIterator<Item = VertexId>>(capacity: usize, iter: I) -> Self {
        let mut s = Self::with_capacity(capacity);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// Inserts `v`; returns true if it was newly added.
    ///
    /// Panics if `v` exceeds the capacity the set was created with.
    #[inline]
    pub fn insert(&mut self, v: VertexId) -> bool {
        if self.pos[v.index()] != ABSENT {
            return false;
        }
        self.pos[v.index()] = self.items.len() as u32;
        self.items.push(v);
        true
    }

    /// Removes `v` in O(1) via swap-remove; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, v: VertexId) -> bool {
        if v.index() >= self.pos.len() {
            return false;
        }
        let p = self.pos[v.index()];
        if p == ABSENT {
            return false;
        }
        let last = *self.items.last().expect("non-empty when a member exists");
        self.items.swap_remove(p as usize);
        if last != v {
            self.pos[last.index()] = p;
        }
        self.pos[v.index()] = ABSENT;
        true
    }

    /// O(1) membership test; vertices beyond capacity are "absent".
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        v.index() < self.pos.len() && self.pos[v.index()] != ABSENT
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates current members (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.items.iter().copied()
    }

    /// Members as a sorted vector (the canonical community representation).
    pub fn to_sorted_vec(&self) -> Vec<VertexId> {
        let mut v = self.items.clone();
        v.sort_unstable();
        v
    }

    /// Empties the set, keeping capacity.
    pub fn clear(&mut self) {
        for &v in &self.items {
            self.pos[v.index()] = ABSENT;
        }
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = VertexSet::with_capacity(10);
        assert!(s.insert(v(3)));
        assert!(!s.insert(v(3)));
        assert!(s.contains(v(3)));
        assert!(!s.contains(v(4)));
        assert!(s.remove(v(3)));
        assert!(!s.remove(v(3)));
        assert!(!s.contains(v(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn out_of_capacity_contains_is_false_not_panic() {
        let mut s = VertexSet::with_capacity(2);
        assert!(!s.contains(v(99)));
        assert!(!s.remove(v(99)));
        s.insert(v(1));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn reinsert_after_remove_iterates_once() {
        let mut s = VertexSet::with_capacity(5);
        s.insert(v(1));
        s.insert(v(2));
        s.remove(v(1));
        s.insert(v(1));
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(s.to_sorted_vec(), vec![v(1), v(2)]);
    }

    #[test]
    fn swap_remove_keeps_positions_consistent() {
        let mut s = VertexSet::from_iter(10, (0..6).map(v));
        s.remove(v(0)); // forces the last member into slot 0
        for i in 1..6 {
            assert!(s.contains(v(i)), "lost member {i} after swap-remove");
        }
        assert_eq!(s.len(), 5);
        s.remove(v(5));
        assert_eq!(s.to_sorted_vec(), vec![v(1), v(2), v(3), v(4)]);
    }

    #[test]
    fn remove_last_member_is_safe() {
        let mut s = VertexSet::with_capacity(3);
        s.insert(v(2));
        assert!(s.remove(v(2)));
        assert!(s.is_empty());
        s.insert(v(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn clear_resets_and_is_reusable() {
        let mut s = VertexSet::from_iter(8, [v(0), v(5), v(5)]);
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(v(0)));
        s.insert(v(7));
        assert_eq!(s.to_sorted_vec(), vec![v(7)]);
    }

    #[test]
    fn to_sorted_vec_sorts_insertion_order() {
        let s = VertexSet::from_iter(10, [v(9), v(2), v(7)]);
        assert_eq!(s.to_sorted_vec(), vec![v(2), v(7), v(9)]);
    }
}
