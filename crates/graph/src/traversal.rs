//! Breadth-first traversal, connectivity and distance helpers.

use std::collections::VecDeque;

use crate::graph::{AttributedGraph, VertexId};

/// BFS from `start`, visiting every vertex in its connected component.
/// Returns visited vertices in BFS order.
pub fn bfs(g: &AttributedGraph, start: VertexId) -> Vec<VertexId> {
    bfs_filtered(g, start, |_| true)
}

/// BFS restricted to vertices accepted by `keep` (the start must be
/// accepted too, otherwise the result is empty).
pub fn bfs_filtered<F: Fn(VertexId) -> bool>(
    g: &AttributedGraph,
    start: VertexId,
    keep: F,
) -> Vec<VertexId> {
    if !g.contains(start) || !keep(start) {
        return Vec::new();
    }
    let mut seen = vec![false; g.vertex_count()];
    let mut order = Vec::new();
    let mut q = VecDeque::new();
    seen[start.index()] = true;
    q.push_back(start);
    while let Some(u) = q.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if !seen[v.index()] && keep(v) {
                seen[v.index()] = true;
                q.push_back(v);
            }
        }
    }
    order
}

/// Single-source shortest-path (hop) distances; `usize::MAX` marks
/// unreachable vertices.
pub fn bfs_distances(g: &AttributedGraph, start: VertexId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.vertex_count()];
    if !g.contains(start) {
        return dist;
    }
    dist[start.index()] = 0;
    let mut q = VecDeque::new();
    q.push_back(start);
    while let Some(u) = q.pop_front() {
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Labels every vertex with a component id in `0..component_count`.
#[derive(Debug, Clone)]
pub struct ConnectedComponents {
    /// Component id per vertex.
    pub component: Vec<usize>,
    /// Number of components.
    pub count: usize,
}

impl ConnectedComponents {
    /// Computes connected components of the whole graph.
    pub fn compute(g: &AttributedGraph) -> Self {
        let n = g.vertex_count();
        let mut component = vec![usize::MAX; n];
        let mut count = 0;
        for s in g.vertices() {
            if component[s.index()] != usize::MAX {
                continue;
            }
            let mut q = VecDeque::new();
            component[s.index()] = count;
            q.push_back(s);
            while let Some(u) = q.pop_front() {
                for &v in g.neighbors(u) {
                    if component[v.index()] == usize::MAX {
                        component[v.index()] = count;
                        q.push_back(v);
                    }
                }
            }
            count += 1;
        }
        Self { component, count }
    }

    /// Whether two vertices lie in the same component.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.component[u.index()] == self.component[v.index()]
    }

    /// The members of each component, sorted within each component.
    pub fn groups(&self) -> Vec<Vec<VertexId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (i, &c) in self.component.iter().enumerate() {
            groups[c].push(VertexId(i as u32));
        }
        groups
    }
}

/// True if `g` is connected (the empty graph counts as connected).
pub fn is_connected(g: &AttributedGraph) -> bool {
    if g.vertex_count() == 0 {
        return true;
    }
    bfs(g, VertexId(0)).len() == g.vertex_count()
}

/// Eccentricity-based diameter of the subgraph induced by `members`
/// (exact, runs one BFS per member — intended for community-sized inputs).
/// Returns `None` if the induced subgraph is empty or disconnected.
pub fn induced_diameter(g: &AttributedGraph, members: &[VertexId]) -> Option<usize> {
    if members.is_empty() {
        return None;
    }
    let mut mask = vec![false; g.vertex_count()];
    for &v in members {
        mask[v.index()] = true;
    }
    let mut diameter = 0;
    for &s in members {
        // BFS within the induced subgraph.
        let mut dist = vec![usize::MAX; g.vertex_count()];
        let mut q = VecDeque::new();
        dist[s.index()] = 0;
        q.push_back(s);
        let mut reached = 0usize;
        while let Some(u) = q.pop_front() {
            reached += 1;
            for &v in g.neighbors(u) {
                if mask[v.index()] && dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    q.push_back(v);
                }
            }
        }
        if reached != members.len() {
            return None; // disconnected
        }
        let ecc = members.iter().map(|&v| dist[v.index()]).max().unwrap();
        diameter = diameter.max(ecc);
    }
    Some(diameter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Path 0-1-2 plus isolated pair 3-4 and singleton 5.
    fn two_components() -> AttributedGraph {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        b.add_edge(v(0), v(1));
        b.add_edge(v(1), v(2));
        b.add_edge(v(3), v(4));
        b.build()
    }

    #[test]
    fn bfs_covers_component_only() {
        let g = two_components();
        let order = bfs(&g, v(0));
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], v(0));
        assert!(order.contains(&v(2)));
        assert!(!order.contains(&v(3)));
    }

    #[test]
    fn bfs_filtered_respects_predicate() {
        let g = two_components();
        // Exclude the middle of the path: only the start survives.
        let order = bfs_filtered(&g, v(0), |u| u != v(1));
        assert_eq!(order, vec![v(0)]);
        // Excluded start yields nothing.
        assert!(bfs_filtered(&g, v(0), |u| u != v(0)).is_empty());
    }

    #[test]
    fn bfs_distances_unreachable_is_max() {
        let g = two_components();
        let d = bfs_distances(&g, v(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], usize::MAX);
        assert_eq!(d[5], usize::MAX);
    }

    #[test]
    fn components_counts_and_groups() {
        let g = two_components();
        let cc = ConnectedComponents::compute(&g);
        assert_eq!(cc.count, 3);
        assert!(cc.connected(v(0), v(2)));
        assert!(!cc.connected(v(0), v(3)));
        let groups = cc.groups();
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 6);
        assert!(groups.iter().any(|c| c == &vec![v(5)]));
    }

    #[test]
    fn is_connected_detects() {
        let g = two_components();
        assert!(!is_connected(&g));
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("a", &[]);
        let c = b.add_vertex("b", &[]);
        b.add_edge(a, c);
        assert!(is_connected(&b.build()));
        assert!(is_connected(&GraphBuilder::new().build()));
    }

    #[test]
    fn induced_diameter_on_path_and_disconnected() {
        let g = two_components();
        assert_eq!(induced_diameter(&g, &[v(0), v(1), v(2)]), Some(2));
        assert_eq!(induced_diameter(&g, &[v(0), v(2)]), None, "induced pair is disconnected");
        assert_eq!(induced_diameter(&g, &[]), None);
        assert_eq!(induced_diameter(&g, &[v(5)]), Some(0));
    }
}
