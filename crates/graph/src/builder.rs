//! Mutable construction of [`AttributedGraph`]s.

use std::collections::HashMap;
use std::sync::Arc;

use crate::graph::{AttributedGraph, VertexId};
use crate::keywords::KeywordInterner;
use crate::GraphError;

/// Accumulates vertices, keywords and edges, then packs them into an
/// immutable CSR [`AttributedGraph`].
///
/// The builder is forgiving: duplicate edges and self-loops are silently
/// dropped at [`GraphBuilder::build`] time, keyword lists are deduplicated
/// and sorted, and edges may reference vertices added later (they are
/// validated at build time). Duplicate labels are allowed by default — the
/// label index keeps the first occurrence — but can be rejected with
/// [`GraphBuilder::deny_duplicate_labels`].
#[derive(Debug, Default)]
pub struct GraphBuilder {
    labels: Vec<String>,
    keyword_sets: Vec<Vec<crate::KeywordId>>,
    edges: Vec<(VertexId, VertexId)>,
    interner: KeywordInterner,
    label_index: HashMap<String, VertexId>,
    deny_dup_labels: bool,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity hints for vertices and edges.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        Self {
            labels: Vec::with_capacity(vertices),
            keyword_sets: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
            ..Self::default()
        }
    }

    /// Makes [`Self::try_add_vertex`] reject labels that already exist.
    pub fn deny_duplicate_labels(mut self) -> Self {
        self.deny_dup_labels = true;
        self
    }

    /// Adds a vertex with a label and keyword strings, returning its id.
    ///
    /// Panics only if more than `u32::MAX` vertices are added.
    pub fn add_vertex(&mut self, label: &str, keywords: &[&str]) -> VertexId {
        self.try_add_vertex(label, keywords).expect("duplicate label rejected")
    }

    /// Fallible vertex addition; errors on a duplicate label when the builder
    /// was configured with [`Self::deny_duplicate_labels`].
    pub fn try_add_vertex(
        &mut self,
        label: &str,
        keywords: &[&str],
    ) -> Result<VertexId, GraphError> {
        if self.deny_dup_labels && self.label_index.contains_key(label) {
            return Err(GraphError::DuplicateLabel(label.to_owned()));
        }
        let id = VertexId(u32::try_from(self.labels.len()).expect("vertex count exceeds u32"));
        self.labels.push(label.to_owned());
        let mut kws: Vec<_> = keywords.iter().map(|k| self.interner.intern(k)).collect();
        kws.sort_unstable();
        kws.dedup();
        self.keyword_sets.push(kws);
        self.label_index.entry(label.to_owned()).or_insert(id);
        Ok(id)
    }

    /// Appends extra keywords to an existing vertex.
    pub fn add_keywords(&mut self, v: VertexId, keywords: &[&str]) -> Result<(), GraphError> {
        let set = self.keyword_sets.get_mut(v.index()).ok_or(GraphError::VertexOutOfRange {
            vertex: v.0,
            vertex_count: self.labels.len(),
        })?;
        for k in keywords {
            set.push(self.interner.intern(k));
        }
        set.sort_unstable();
        set.dedup();
        Ok(())
    }

    /// Records an undirected edge; order of endpoints is irrelevant.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edge records added so far (before dedup).
    pub fn edge_records(&self) -> usize {
        self.edges.len()
    }

    /// Packs everything into an immutable graph.
    ///
    /// Panics if any recorded edge references a vertex that was never added;
    /// use [`Self::try_build`] for the checked form.
    pub fn build(self) -> AttributedGraph {
        self.try_build().expect("edge references unknown vertex")
    }

    /// Checked build: validates edge endpoints, deduplicates edges, drops
    /// self-loops, and sorts all adjacency and keyword lists.
    pub fn try_build(self) -> Result<AttributedGraph, GraphError> {
        let n = self.labels.len();
        for &(u, v) in &self.edges {
            for w in [u, v] {
                if w.index() >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: w.0, vertex_count: n });
                }
            }
        }

        // Normalise, drop self-loops, dedup.
        let mut norm: Vec<(VertexId, VertexId)> = self
            .edges
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        norm.sort_unstable();
        norm.dedup();

        // Degree counting then CSR fill (both directions). Offsets are
        // u32 (see [`crate::CsrOffset`]): reject graphs whose directed
        // slot count would overflow instead of silently wrapping.
        if norm.len() > (u32::MAX / 2) as usize {
            return Err(GraphError::Capacity(format!(
                "{} edges exceed the u32 CSR offset space",
                norm.len()
            )));
        }
        let mut deg = vec![0u32; n];
        for &(u, v) in &norm {
            deg[u.index()] += 1;
            deg[v.index()] += 1;
        }
        let mut adj_off: Vec<u32> = Vec::with_capacity(n + 1);
        adj_off.push(0);
        for d in &deg {
            adj_off.push(adj_off.last().unwrap() + d);
        }
        let mut cursor = adj_off[..n].to_vec();
        let mut adj = vec![VertexId(0); adj_off[n] as usize];
        for &(u, v) in &norm {
            adj[cursor[u.index()] as usize] = v;
            cursor[u.index()] += 1;
            adj[cursor[v.index()] as usize] = u;
            cursor[v.index()] += 1;
        }
        // Per-vertex adjacency sort (norm order already gives sorted lists for
        // the "forward" fills but not the reverse ones).
        for v in 0..n {
            adj[adj_off[v] as usize..adj_off[v + 1] as usize].sort_unstable();
        }

        // Keyword CSR.
        let mut kw_off: Vec<u32> = Vec::with_capacity(n + 1);
        kw_off.push(0);
        let mut kws = Vec::new();
        for set in &self.keyword_sets {
            kws.extend_from_slice(set);
            let end = u32::try_from(kws.len()).map_err(|_| {
                GraphError::Capacity("keyword slots exceed the u32 CSR offset space".into())
            })?;
            kw_off.push(end);
        }

        Ok(AttributedGraph {
            adj_off,
            adj,
            kw_off: Arc::new(kw_off),
            kws: Arc::new(kws),
            labels: Arc::new(self.labels),
            label_index: Arc::new(self.label_index),
            interner: Arc::new(self.interner),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_edges_and_drops_self_loops() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("u", &[]);
        let v = b.add_vertex("v", &[]);
        b.add_edge(u, v);
        b.add_edge(v, u);
        b.add_edge(u, v);
        b.add_edge(u, u);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(u), 1);
        assert_eq!(g.degree(v), 1);
    }

    #[test]
    fn keyword_sets_are_sorted_and_deduped() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex("v", &["z", "a", "z", "m"]);
        let g = b.build();
        let names = g.keyword_names(g.keywords(v));
        let mut sorted = names.clone();
        sorted.sort();
        // Ids are in intern order, but the set itself must be strictly sorted by id.
        assert_eq!(g.keywords(v).len(), 3);
        assert!(g.keywords(v).windows(2).all(|w| w[0] < w[1]));
        assert_eq!(names.len(), 3);
        assert_eq!(sorted, vec!["a", "m", "z"]);
    }

    #[test]
    fn add_keywords_extends_existing_vertex() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex("v", &["a"]);
        b.add_keywords(v, &["b", "a"]).unwrap();
        assert!(b.add_keywords(VertexId(9), &["x"]).is_err());
        let g = b.build();
        assert_eq!(g.keywords(v).len(), 2);
    }

    #[test]
    fn try_build_rejects_dangling_edges() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("u", &[]);
        b.add_edge(u, VertexId(7));
        assert!(matches!(b.try_build(), Err(GraphError::VertexOutOfRange { vertex: 7, .. })));
    }

    #[test]
    fn duplicate_labels_allowed_by_default_first_wins() {
        let mut b = GraphBuilder::new();
        let first = b.add_vertex("dup", &[]);
        let _second = b.add_vertex("dup", &[]);
        let g = b.build();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.vertex_by_label("dup"), Some(first));
    }

    #[test]
    fn deny_duplicate_labels_rejects() {
        let mut b = GraphBuilder::new().deny_duplicate_labels();
        b.try_add_vertex("dup", &[]).unwrap();
        assert!(matches!(b.try_add_vertex("dup", &[]), Err(GraphError::DuplicateLabel(_))));
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(10, 10);
        let u = b.add_vertex("u", &["k"]);
        let v = b.add_vertex("v", &[]);
        b.add_edge(u, v);
        assert_eq!(b.vertex_count(), 2);
        assert_eq!(b.edge_records(), 1);
        assert_eq!(b.build().edge_count(), 1);
    }
}
