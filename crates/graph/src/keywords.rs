//! Keyword interning.
//!
//! Attributed-graph algorithms (ACQ, CODICIL, the CPJ/CMF metrics) work with
//! per-vertex keyword *sets* and do a great deal of set intersection. Interning
//! every keyword string to a dense [`KeywordId`] makes a keyword set a small
//! sorted `&[KeywordId]`, so intersections are linear merges over integers and
//! inverted lists are `Vec<VertexId>` per id.

use std::collections::HashMap;

/// A dense, interned keyword identifier.
///
/// Ids are assigned in first-seen order by a [`KeywordInterner`] and are only
/// meaningful together with the interner (or graph) that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeywordId(pub u32);

impl KeywordId {
    /// The id as a usize, for indexing inverted lists.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for KeywordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kw#{}", self.0)
    }
}

/// Bidirectional map between keyword strings and dense [`KeywordId`]s.
#[derive(Debug, Default, Clone)]
pub struct KeywordInterner {
    by_name: HashMap<String, KeywordId>,
    names: Vec<String>,
}

impl KeywordInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its existing id if already present.
    pub fn intern(&mut self, name: &str) -> KeywordId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = KeywordId(
            u32::try_from(self.names.len()).expect("more than u32::MAX distinct keywords"),
        );
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned keyword without inserting.
    pub fn get(&self, name: &str) -> Option<KeywordId> {
        self.by_name.get(name).copied()
    }

    /// Returns the string for `id`, or `None` if the id was produced by a
    /// different interner.
    pub fn name(&self, id: KeywordId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Resolves a slice of ids to their names, skipping foreign ids.
    pub fn names<'a>(&'a self, ids: &'a [KeywordId]) -> impl Iterator<Item = &'a str> + 'a {
        ids.iter().filter_map(|&id| self.name(id))
    }

    /// Number of distinct keywords interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no keyword has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (KeywordId(i as u32), n.as_str()))
    }
}

/// Intersects two sorted keyword slices into a new sorted vector.
///
/// Both inputs must be strictly sorted (as produced by
/// [`crate::GraphBuilder`]); the output is then strictly sorted too.
pub fn intersect_sorted(a: &[KeywordId], b: &[KeywordId]) -> Vec<KeywordId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_sorted_into(a, b, &mut out);
    out
}

/// Intersects two sorted keyword slices into a caller-provided buffer
/// (cleared first) — the reusable-scratch variant of
/// [`intersect_sorted`], allocation-free once the buffer has capacity.
pub fn intersect_sorted_into(a: &[KeywordId], b: &[KeywordId], out: &mut Vec<KeywordId>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Size of the intersection of two sorted keyword slices, without allocating.
pub fn intersection_size(a: &[KeywordId], b: &[KeywordId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard similarity of two sorted keyword slices; 0 when both are empty.
///
/// This is the pairwise similarity underlying the paper's CPJ metric.
pub fn jaccard(a: &[KeywordId], b: &[KeywordId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Returns true if sorted slice `hay` contains every element of sorted `needles`.
pub fn contains_all(hay: &[KeywordId], needles: &[KeywordId]) -> bool {
    intersection_size(hay, needles) == needles.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<KeywordId> {
        v.iter().map(|&i| KeywordId(i)).collect()
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut it = KeywordInterner::new();
        let a = it.intern("data");
        let b = it.intern("system");
        let a2 = it.intern("data");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a, KeywordId(0));
        assert_eq!(b, KeywordId(1));
        assert_eq!(it.len(), 2);
        assert_eq!(it.name(a), Some("data"));
        assert_eq!(it.get("system"), Some(b));
        assert_eq!(it.get("missing"), None);
    }

    #[test]
    fn name_of_foreign_id_is_none() {
        let it = KeywordInterner::new();
        assert_eq!(it.name(KeywordId(5)), None);
        assert!(it.is_empty());
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut it = KeywordInterner::new();
        it.intern("x");
        it.intern("y");
        let pairs: Vec<_> = it.iter().collect();
        assert_eq!(pairs, vec![(KeywordId(0), "x"), (KeywordId(1), "y")]);
    }

    #[test]
    fn intersect_sorted_basics() {
        assert_eq!(intersect_sorted(&ids(&[0, 2, 4]), &ids(&[1, 2, 3, 4])), ids(&[2, 4]));
        assert_eq!(intersect_sorted(&ids(&[]), &ids(&[1])), ids(&[]));
        assert_eq!(intersect_sorted(&ids(&[7]), &ids(&[7])), ids(&[7]));
        assert_eq!(intersection_size(&ids(&[0, 2, 4]), &ids(&[1, 2, 3, 4])), 2);
    }

    #[test]
    fn jaccard_matches_hand_computation() {
        // |{2,4}| / |{0,1,2,3,4}| = 2/5
        let j = jaccard(&ids(&[0, 2, 4]), &ids(&[1, 2, 3, 4]));
        assert!((j - 0.4).abs() < 1e-12);
        assert_eq!(jaccard(&[], &[]), 0.0);
        assert_eq!(jaccard(&ids(&[1]), &ids(&[1])), 1.0);
        assert_eq!(jaccard(&ids(&[1]), &ids(&[2])), 0.0);
    }

    #[test]
    fn contains_all_subset_semantics() {
        assert!(contains_all(&ids(&[1, 3, 5]), &ids(&[3, 5])));
        assert!(contains_all(&ids(&[1, 3, 5]), &ids(&[])));
        assert!(!contains_all(&ids(&[1, 3, 5]), &ids(&[2])));
        assert!(!contains_all(&ids(&[]), &ids(&[1])));
    }
}
