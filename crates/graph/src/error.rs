//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced while constructing, loading or persisting graphs.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex id referenced an index outside the graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices the graph actually has.
        vertex_count: usize,
    },
    /// A vertex label was looked up but does not exist in the graph.
    UnknownLabel(String),
    /// A duplicate label was added to a builder configured to reject them.
    DuplicateLabel(String),
    /// A text file could not be parsed; carries line number and message.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// What went wrong on that line.
        message: String,
    },
    /// The binary snapshot was malformed or from an unknown version.
    Snapshot(String),
    /// The graph exceeds a substrate capacity bound (e.g. the u32 CSR
    /// offset space).
    Capacity(String),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, vertex_count } => {
                write!(f, "vertex id {vertex} out of range (graph has {vertex_count} vertices)")
            }
            GraphError::UnknownLabel(l) => write!(f, "no vertex labelled {l:?}"),
            GraphError::DuplicateLabel(l) => write!(f, "duplicate vertex label {l:?}"),
            GraphError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            GraphError::Snapshot(m) => write!(f, "invalid graph snapshot: {m}"),
            GraphError::Capacity(m) => write!(f, "graph capacity exceeded: {m}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = GraphError::VertexOutOfRange { vertex: 9, vertex_count: 3 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("3 vertices"));
        assert!(GraphError::UnknownLabel("jim gray".into()).to_string().contains("jim gray"));
        assert!(GraphError::Parse { line: 7, message: "bad edge".into() }
            .to_string()
            .contains("line 7"));
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = GraphError::from(io);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
