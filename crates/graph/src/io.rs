//! Persistence: a line-oriented text format (what the paper's `upload` API
//! accepts) and a compact binary snapshot for large generated graphs.
//!
//! # Text format
//!
//! One record per line, tab-separated, `#` starts a comment:
//!
//! ```text
//! # vertices first, then edges
//! v\t<label>\t<kw1,kw2,...>     (keyword field may be empty)
//! e\t<u>\t<v>                   (0-based indices in vertex declaration order)
//! ```
//!
//! # Binary snapshot
//!
//! Little-endian: magic `CXG1`, then `n`, `m2` (directed slot count),
//! CSR offsets/adjacency, keyword CSR, interner strings, labels, each
//! string as `u32 len + bytes`.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{AttributedGraph, VertexId};

const MAGIC: &[u8; 4] = b"CXG1";

/// Writes `g` in the text format to `w`.
pub fn write_text<W: Write>(g: &AttributedGraph, w: &mut W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "# c-explorer attributed graph: {} vertices, {} edges", g.vertex_count(), g.edge_count())?;
    for v in g.vertices() {
        let kws = g.keyword_names(g.keywords(v)).join(",");
        writeln!(w, "v\t{}\t{}", g.label(v), kws)?;
    }
    for (u, v) in g.edges() {
        writeln!(w, "e\t{}\t{}", u.0, v.0)?;
    }
    w.flush()?;
    Ok(())
}

/// Parses the text format from `r`.
pub fn read_text<R: Read>(r: &mut R) -> Result<AttributedGraph, GraphError> {
    let reader = BufReader::new(r);
    let mut b = GraphBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.splitn(3, '\t');
        let kind = parts.next().unwrap_or("");
        match kind {
            "v" => {
                let label = parts.next().ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    message: "vertex line missing label".into(),
                })?;
                let kw_field = parts.next().unwrap_or("");
                let kws: Vec<&str> =
                    kw_field.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
                b.add_vertex(label, &kws);
            }
            "e" => {
                let parse = |field: Option<&str>| -> Result<VertexId, GraphError> {
                    let s = field.ok_or_else(|| GraphError::Parse {
                        line: lineno,
                        message: "edge line missing endpoint".into(),
                    })?;
                    s.trim().parse::<u32>().map(VertexId).map_err(|_| GraphError::Parse {
                        line: lineno,
                        message: format!("invalid vertex index {s:?}"),
                    })
                };
                let u = parse(parts.next())?;
                let v = parse(parts.next())?;
                b.add_edge(u, v);
            }
            other => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("unknown record type {other:?}"),
                })
            }
        }
    }
    b.try_build()
}

/// Loads a text-format graph from a file path.
pub fn load_text_file<P: AsRef<Path>>(path: P) -> Result<AttributedGraph, GraphError> {
    let mut f = std::fs::File::open(path)?;
    read_text(&mut f)
}

/// Saves a graph in the text format to a file path.
pub fn save_text_file<P: AsRef<Path>>(g: &AttributedGraph, path: P) -> Result<(), GraphError> {
    let mut f = std::fs::File::create(path)?;
    write_text(g, &mut f)
}

fn put_u32<W: Write>(w: &mut W, x: u32) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn put_str<W: Write>(w: &mut W, s: &str) -> std::io::Result<()> {
    put_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn get_u32<R: Read>(r: &mut R) -> Result<u32, GraphError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn get_str<R: Read>(r: &mut R) -> Result<String, GraphError> {
    let len = get_u32(r)? as usize;
    if len > 1 << 24 {
        return Err(GraphError::Snapshot(format!("unreasonable string length {len}")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| GraphError::Snapshot("non-utf8 string".into()))
}

/// Writes the binary snapshot of `g` to `w`.
pub fn write_snapshot<W: Write>(g: &AttributedGraph, w: &mut W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    let n = g.vertex_count();
    put_u32(&mut w, n as u32)?;
    put_u32(&mut w, g.adj.len() as u32)?;
    for v in g.vertices() {
        put_u32(&mut w, g.degree(v) as u32)?;
    }
    for &u in &g.adj {
        put_u32(&mut w, u.0)?;
    }
    put_u32(&mut w, g.kws.len() as u32)?;
    for v in g.vertices() {
        put_u32(&mut w, g.keywords(v).len() as u32)?;
    }
    for &k in g.kws.iter() {
        put_u32(&mut w, k.0)?;
    }
    put_u32(&mut w, g.interner.len() as u32)?;
    for (_, name) in g.interner.iter() {
        put_str(&mut w, name)?;
    }
    for v in g.vertices() {
        put_str(&mut w, g.label(v))?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a binary snapshot. The adjacency and keyword data is revalidated
/// through [`GraphBuilder`], so a corrupted snapshot cannot produce an
/// inconsistent graph.
pub fn read_snapshot<R: Read>(r: &mut R) -> Result<AttributedGraph, GraphError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Snapshot("bad magic".into()));
    }
    let n = get_u32(&mut r)? as usize;
    let m2 = get_u32(&mut r)? as usize;
    let mut degs = Vec::with_capacity(n);
    for _ in 0..n {
        degs.push(get_u32(&mut r)? as usize);
    }
    if degs.iter().sum::<usize>() != m2 {
        return Err(GraphError::Snapshot("degree sum mismatch".into()));
    }
    let mut adj = Vec::with_capacity(m2);
    for _ in 0..m2 {
        adj.push(get_u32(&mut r)?);
    }
    let kw_total = get_u32(&mut r)? as usize;
    let mut kw_counts = Vec::with_capacity(n);
    for _ in 0..n {
        kw_counts.push(get_u32(&mut r)? as usize);
    }
    if kw_counts.iter().sum::<usize>() != kw_total {
        return Err(GraphError::Snapshot("keyword count mismatch".into()));
    }
    let mut kw_ids = Vec::with_capacity(kw_total);
    for _ in 0..kw_total {
        kw_ids.push(get_u32(&mut r)?);
    }
    let vocab_len = get_u32(&mut r)? as usize;
    let mut vocab = Vec::with_capacity(vocab_len);
    for _ in 0..vocab_len {
        vocab.push(get_str(&mut r)?);
    }
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(get_str(&mut r)?);
    }

    // Rebuild through the builder for validation.
    let mut b = GraphBuilder::with_capacity(n, m2 / 2);
    let mut kw_cursor = 0usize;
    for i in 0..n {
        let kws: Vec<&str> = kw_ids[kw_cursor..kw_cursor + kw_counts[i]]
            .iter()
            .map(|&id| {
                vocab
                    .get(id as usize)
                    .map(String::as_str)
                    .ok_or_else(|| GraphError::Snapshot(format!("keyword id {id} out of vocab")))
            })
            .collect::<Result<_, _>>()?;
        kw_cursor += kw_counts[i];
        b.add_vertex(&labels[i], &kws);
    }
    let mut adj_cursor = 0usize;
    for (i, &d) in degs.iter().enumerate() {
        for &u in &adj[adj_cursor..adj_cursor + d] {
            let (a, c) = (i as u32, u);
            if a < c {
                b.add_edge(VertexId(a), VertexId(c));
            }
        }
        adj_cursor += d;
    }
    b.try_build()
}

/// Loads a binary snapshot from a file path.
pub fn load_snapshot_file<P: AsRef<Path>>(path: P) -> Result<AttributedGraph, GraphError> {
    let mut f = std::fs::File::open(path)?;
    read_snapshot(&mut f)
}

/// Saves a binary snapshot to a file path.
pub fn save_snapshot_file<P: AsRef<Path>>(g: &AttributedGraph, path: P) -> Result<(), GraphError> {
    let mut f = std::fs::File::create(path)?;
    write_snapshot(g, &mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> AttributedGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex("Jim Gray", &["transaction", "data"]);
        let c = b.add_vertex("Michael Stonebraker", &["data", "column"]);
        let d = b.add_vertex("solo", &[]);
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.build()
    }

    fn assert_same(a: &AttributedGraph, b: &AttributedGraph) {
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for v in a.vertices() {
            assert_eq!(a.label(v), b.label(v));
            assert_eq!(a.keyword_names(a.keywords(v)), b.keyword_names(b.keywords(v)));
            assert_eq!(a.neighbors(v), b.neighbors(v));
        }
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let g2 = read_text(&mut buf.as_slice()).unwrap();
        assert_same(&g, &g2);
    }

    #[test]
    fn text_parses_comments_blank_lines_and_empty_keywords() {
        let txt = "# comment\n\nv\talice\t\nv\tbob\tdb, ml\ne\t0\t1\n";
        let g = read_text(&mut txt.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.keywords(VertexId(0)).is_empty());
        assert_eq!(g.keywords(VertexId(1)).len(), 2);
        assert_eq!(g.keyword_names(g.keywords(VertexId(1))), vec!["db", "ml"]);
    }

    #[test]
    fn text_errors_carry_line_numbers() {
        let bad_type = "v\ta\t\nq\t0\t1\n";
        match read_text(&mut bad_type.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let bad_idx = "v\ta\t\ne\tzero\t0\n";
        assert!(matches!(read_text(&mut bad_idx.as_bytes()), Err(GraphError::Parse { line: 2, .. })));
        let dangling = "v\ta\t\ne\t0\t9\n";
        assert!(matches!(
            read_text(&mut dangling.as_bytes()),
            Err(GraphError::VertexOutOfRange { vertex: 9, .. })
        ));
    }

    #[test]
    fn snapshot_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        let g2 = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_same(&g, &g2);
    }

    #[test]
    fn snapshot_rejects_bad_magic_and_truncation() {
        assert!(matches!(read_snapshot(&mut &b"NOPE"[..]), Err(GraphError::Snapshot(_))));
        let g = sample();
        let mut buf = Vec::new();
        write_snapshot(&g, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_snapshot(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip_via_tempdir() {
        let dir = std::env::temp_dir().join("cx_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();
        let tpath = dir.join("g.txt");
        let spath = dir.join("g.bin");
        save_text_file(&g, &tpath).unwrap();
        save_snapshot_file(&g, &spath).unwrap();
        assert_same(&g, &load_text_file(&tpath).unwrap());
        assert_same(&g, &load_snapshot_file(&spath).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
