//! Whole-graph summary statistics (the "Statistics" part of the paper's
//! comparison-analysis facilities).

use crate::graph::AttributedGraph;
use crate::traversal::ConnectedComponents;

/// Degree distribution summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree over all vertices (0 for the empty graph).
    pub min: usize,
    /// Maximum degree over all vertices.
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Median degree.
    pub median: f64,
}

impl DegreeStats {
    /// Computes degree statistics for `g`.
    pub fn compute(g: &AttributedGraph) -> Self {
        let mut degs = g.degrees();
        if degs.is_empty() {
            return Self { min: 0, max: 0, mean: 0.0, median: 0.0 };
        }
        degs.sort_unstable();
        let n = degs.len();
        let median = if n % 2 == 1 {
            degs[n / 2] as f64
        } else {
            (degs[n / 2 - 1] + degs[n / 2]) as f64 / 2.0
        };
        Self {
            min: degs[0],
            max: degs[n - 1],
            mean: degs.iter().sum::<usize>() as f64 / n as f64,
            median,
        }
    }
}

/// Top-level statistics of an attributed graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Number of connected components.
    pub components: usize,
    /// Distinct keywords in the vocabulary.
    pub keywords: usize,
    /// Average keywords per vertex.
    pub avg_keywords_per_vertex: f64,
    /// Degree distribution summary.
    pub degrees: DegreeStats,
}

impl GraphStats {
    /// Computes all statistics in O(n + m).
    pub fn compute(g: &AttributedGraph) -> Self {
        let n = g.vertex_count();
        let total_kws: usize = g.vertices().map(|v| g.keywords(v).len()).sum();
        Self {
            vertices: n,
            edges: g.edge_count(),
            components: ConnectedComponents::compute(g).count,
            keywords: g.keyword_count(),
            avg_keywords_per_vertex: if n == 0 { 0.0 } else { total_kws as f64 / n as f64 },
            degrees: DegreeStats::compute(g),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} components={} keywords={} kw/vertex={:.2} degree[min={} mean={:.2} median={:.1} max={}]",
            self.vertices,
            self.edges,
            self.components,
            self.keywords,
            self.avg_keywords_per_vertex,
            self.degrees.min,
            self.degrees.mean,
            self.degrees.median,
            self.degrees.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, VertexId};

    #[test]
    fn stats_on_small_graph() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_vertex(&format!("v{i}"), &["k", &format!("u{i}")]);
        }
        // Star centred on 0 → degrees [3,1,1,1].
        for i in 1..4u32 {
            b.add_edge(VertexId(0), VertexId(i));
        }
        let g = b.build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.components, 1);
        assert_eq!(s.keywords, 5); // "k" plus four unique
        assert!((s.avg_keywords_per_vertex - 2.0).abs() < 1e-12);
        assert_eq!(s.degrees.min, 1);
        assert_eq!(s.degrees.max, 3);
        assert!((s.degrees.mean - 1.5).abs() < 1e-12);
        assert!((s.degrees.median - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = GraphBuilder::new().build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.degrees, DegreeStats { min: 0, max: 0, mean: 0.0, median: 0.0 });
        assert_eq!(s.avg_keywords_per_vertex, 0.0);
    }

    #[test]
    fn median_even_count() {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        // Path: degrees [1, 2, 2, 1] → median 1.5.
        b.add_edge(VertexId(0), VertexId(1));
        b.add_edge(VertexId(1), VertexId(2));
        b.add_edge(VertexId(2), VertexId(3));
        let s = GraphStats::compute(&b.build());
        assert!((s.degrees.median - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let mut b = GraphBuilder::new();
        b.add_vertex("a", &["x"]);
        let s = GraphStats::compute(&b.build());
        let txt = s.to_string();
        assert!(txt.contains("|V|=1"));
        assert!(txt.contains("keywords=1"));
    }
}
