#![warn(missing_docs)]

//! # cx-acq — attributed community (ACQ) search
//!
//! Implements Problem 1 of the paper: given an attributed graph `G`, a
//! query vertex `q`, an integer `k` and a keyword set `S ⊆ W(q)`, return
//! the subgraphs `Gq` that (1) are connected and contain q, (2) have every
//! vertex with degree ≥ k inside `Gq` (structure cohesiveness), and
//! (3) maximise the number of keywords of `S` shared by *every* vertex
//! (keyword cohesiveness, `L(Gq, S)`).
//!
//! Four query strategies are provided, matching the paper's Section 3.2:
//!
//! * [`AcqStrategy::Basic`] — the strawman: enumerate every subset of `S`
//!   from largest to smallest with no index and no pruning; exponential in
//!   `|S|`, kept as the baseline the paper argues against.
//! * [`AcqStrategy::IncS`] — incremental small→large: verify singletons,
//!   then grow candidate sets level by level with apriori joins (a set is
//!   a candidate only if all its subsets verified).
//! * [`AcqStrategy::IncT`] — incremental with a set-enumeration tree:
//!   depth-first extension of verified prefixes, sharing the intersection
//!   and peeling work along the prefix (a failing prefix prunes its whole
//!   subtree by anti-monotonicity).
//! * [`AcqStrategy::Dec`] — decremental large→small: after single-keyword
//!   pruning, examine subsets from size `|S|` downward and stop at the
//!   first size with a hit. Generally the fastest (what C-Explorer runs in
//!   production), because realistic communities share most of the query's
//!   keywords so the answer sits near the top of the lattice.
//!
//! All strategies except `Basic` run against the [`cx_cltree::ClTree`]
//! index. A multi-query-vertex variant ([`multi::acq_multi`]) implements
//! the paper's `Q`-set extension.

pub mod basic;
pub mod dec;
pub mod inc;
pub mod multi;
pub mod profile;
pub mod scratch;
pub mod verify;

use cx_cltree::ClTree;
use cx_graph::{AttributedGraph, Community, KeywordId, VertexId};

pub use scratch::{QueryAnswer, QueryScratch};

/// Which ACQ query algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcqStrategy {
    /// Index-free exhaustive enumeration (baseline).
    Basic,
    /// Incremental, small→large candidate sets (apriori joins).
    IncS,
    /// Incremental, set-enumeration tree with shared verification.
    IncT,
    /// Decremental, large→small candidate sets (the system default).
    Dec,
}

impl AcqStrategy {
    /// All strategies, in the order the paper lists them.
    pub const ALL: [AcqStrategy; 4] =
        [AcqStrategy::Basic, AcqStrategy::IncS, AcqStrategy::IncT, AcqStrategy::Dec];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AcqStrategy::Basic => "Basic",
            AcqStrategy::IncS => "Inc-S",
            AcqStrategy::IncT => "Inc-T",
            AcqStrategy::Dec => "Dec",
        }
    }
}

/// Options for an ACQ query.
#[derive(Debug, Clone)]
pub struct AcqOptions {
    /// Minimum degree k every community member must have inside the
    /// community (the "Structure: degree ≥ k" box in the UI).
    pub k: u32,
    /// The query keyword set `S`. Keywords not in `W(q)` are dropped, per
    /// the problem definition (`S ⊆ W(q)`). When empty, all of `W(q)` is
    /// used — the UI's default of preselecting the author's keywords.
    pub keywords: Vec<KeywordId>,
    /// Safety valve: stop after this many candidate verifications
    /// (0 = unlimited). `Basic` on a large `S` needs this.
    pub max_candidates: usize,
}

impl AcqOptions {
    /// Options with minimum degree `k` and `S = W(q)`.
    pub fn with_k(k: u32) -> Self {
        Self { k, keywords: Vec::new(), max_candidates: 0 }
    }

    /// Sets an explicit keyword set `S`.
    pub fn keywords(mut self, kws: Vec<KeywordId>) -> Self {
        self.keywords = kws;
        self
    }

    /// Sets the candidate-verification budget.
    pub fn max_candidates(mut self, cap: usize) -> Self {
        self.max_candidates = cap;
        self
    }
}

/// Outcome of an ACQ query: the communities plus work counters used by the
/// efficiency experiments (E7).
#[derive(Debug, Clone)]
pub struct AcqResult {
    /// The attributed communities, each sharing the maximal keyword set;
    /// deduplicated by member set, largest first.
    pub communities: Vec<Community>,
    /// Size of the maximal shared keyword set (0 when the answer fell back
    /// to the plain k-core).
    pub shared_keyword_count: usize,
    /// Number of candidate keyword sets verified (keyword walks plus
    /// intersect/peel runs; near-free neighbour-mask rejects excluded).
    pub candidates_verified: usize,
    /// True when the candidate budget was exhausted before completion.
    pub truncated: bool,
}

impl AcqResult {
    /// An empty result (q not in any k-core).
    pub fn empty() -> Self {
        Self {
            communities: Vec::new(),
            shared_keyword_count: 0,
            candidates_verified: 0,
            truncated: false,
        }
    }
}

/// Runs an ACQ query with the chosen strategy.
///
/// `tree` is consulted by every strategy except `Basic`. Returns an empty
/// result (not an error) when `q` does not belong to any connected k-core
/// — the paper's UI simply shows "no community".
pub fn acq(
    g: &AttributedGraph,
    tree: &ClTree,
    q: VertexId,
    opts: &AcqOptions,
    strategy: AcqStrategy,
) -> AcqResult {
    scratch::with_pooled(|scratch, answer| {
        acq_with_scratch(g, tree, q, opts, strategy, scratch, answer);
        answer.to_result()
    })
}

/// Runs an ACQ query against caller-managed execution state.
///
/// This is the allocation-free entry: with a warmed `scratch`/`out` pair
/// the `Dec` strategy performs no heap allocation, and the answer can be
/// read directly from `out` without materialising owned vectors. [`acq`]
/// wraps this with a per-thread pooled scratch; benchmarks and batch
/// executors call it directly.
pub fn acq_with_scratch(
    g: &AttributedGraph,
    tree: &ClTree,
    q: VertexId,
    opts: &AcqOptions,
    strategy: AcqStrategy,
    scratch: &mut QueryScratch,
    out: &mut QueryAnswer,
) {
    if !g.contains(q) {
        out.clear();
        return;
    }
    let _span = cx_obs::span(match strategy {
        AcqStrategy::Basic => "acq.basic",
        AcqStrategy::IncS => "acq.inc-s",
        AcqStrategy::IncT => "acq.inc-t",
        AcqStrategy::Dec => "acq.dec",
    });
    // Pruning stats accumulate in the scratch during the walk phase and
    // are flushed once per query — `Basic` builds no Verifier, so reset
    // here to keep a preceding indexed query's counts from leaking.
    scratch.verify.stat_subtrees_pruned = 0;
    scratch.verify.stat_signature_hits = 0;
    match strategy {
        AcqStrategy::Basic => basic::run_scratch(g, q, opts, scratch, out),
        AcqStrategy::IncS => inc::run_inc_s_scratch(g, tree, q, opts, scratch, out),
        AcqStrategy::IncT => inc::run_inc_t_scratch(g, tree, q, opts, scratch, out),
        AcqStrategy::Dec => dec::run_scratch(g, tree, q, opts, scratch, out),
    }
    cx_obs::metrics::add("cx_acq_subtrees_pruned_total", scratch.verify.stat_subtrees_pruned);
    cx_obs::metrics::add("cx_acq_signature_hits_total", scratch.verify.stat_signature_hits);
    cx_obs::metrics::observe_us("cx_acq_candidates_verified", out.candidates_verified as u64);
}

/// The effective query keyword set: explicit `S` filtered to `W(q)`, or
/// all of `W(q)` when no explicit set was given. Sorted, deduplicated.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn effective_keywords(
    g: &AttributedGraph,
    q: VertexId,
    opts: &AcqOptions,
) -> Vec<KeywordId> {
    let mut s = Vec::new();
    effective_keywords_into(g, q, opts, &mut s);
    s
}

/// [`effective_keywords`] into a reusable buffer (cleared first).
pub(crate) fn effective_keywords_into(
    g: &AttributedGraph,
    q: VertexId,
    opts: &AcqOptions,
    out: &mut Vec<KeywordId>,
) {
    out.clear();
    let wq = g.keywords(q);
    if opts.keywords.is_empty() {
        out.extend_from_slice(wq);
    } else {
        out.extend(opts.keywords.iter().copied().filter(|&w| wq.binary_search(&w).is_ok()));
        out.sort_unstable();
        out.dedup();
    }
}

/// Builds the final communities from verified raw answers: dedup by member
/// set and attach the *actual* shared keyword set `L(Gq, S)`.
pub(crate) fn finalize(
    g: &AttributedGraph,
    s: &[KeywordId],
    raw: Vec<Vec<VertexId>>,
) -> Vec<Community> {
    let mut seen: Vec<Vec<VertexId>> = Vec::new();
    let mut out = Vec::new();
    for members in raw {
        if seen.contains(&members) {
            continue;
        }
        // L = ∩_{v∈Gq} (W(v) ∩ S)
        let mut shared: Vec<KeywordId> = s.to_vec();
        for &v in &members {
            shared = cx_graph::keywords::intersect_sorted(&shared, g.keywords(v));
            if shared.is_empty() {
                break;
            }
        }
        out.push(Community::new(members.clone(), shared));
        seen.push(members);
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;

    /// The paper's worked example: q=A, k=2, S={w,x,y} → community
    /// {A, C, D} sharing {x, y} — for every strategy.
    #[test]
    fn paper_example_all_strategies() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let q = g.vertex_by_label("A").unwrap();
        let s: Vec<KeywordId> =
            ["w", "x", "y"].iter().map(|n| g.interner().get(n).unwrap()).collect();
        for strat in AcqStrategy::ALL {
            let res = acq(&g, &tree, q, &AcqOptions::with_k(2).keywords(s.clone()), strat);
            assert_eq!(res.communities.len(), 1, "{}", strat.name());
            let c = &res.communities[0];
            let labels: Vec<&str> = c.vertices().iter().map(|&v| g.label(v)).collect();
            assert_eq!(labels, vec!["A", "C", "D"], "{}", strat.name());
            let mut theme = c.theme(&g);
            theme.sort();
            assert_eq!(theme, vec!["x", "y"], "{}", strat.name());
            assert_eq!(res.shared_keyword_count, 2, "{}", strat.name());
        }
    }

    #[test]
    fn default_s_is_wq() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let q = g.vertex_by_label("A").unwrap();
        // W(A) = {w,x,y}: same answer as the explicit paper example.
        for strat in AcqStrategy::ALL {
            let res = acq(&g, &tree, q, &AcqOptions::with_k(2), strat);
            assert_eq!(res.communities.len(), 1);
            assert_eq!(res.communities[0].len(), 3);
        }
    }

    #[test]
    fn foreign_keywords_are_dropped_from_s() {
        let g = figure5_graph();
        let q = g.vertex_by_label("A").unwrap();
        let z = g.interner().get("z").unwrap(); // not in W(A)
        let x = g.interner().get("x").unwrap();
        let s = effective_keywords(&g, q, &AcqOptions::with_k(2).keywords(vec![z, x, x]));
        assert_eq!(s, vec![x]);
    }

    #[test]
    fn unreachable_query_vertex_gives_empty() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let j = g.vertex_by_label("J").unwrap(); // isolated, core 0
        for strat in AcqStrategy::ALL {
            let res = acq(&g, &tree, j, &AcqOptions::with_k(1), strat);
            assert!(res.communities.is_empty(), "{}", strat.name());
        }
        // Out-of-range vertex id.
        let res = acq(&g, &tree, VertexId(99), &AcqOptions::with_k(1), AcqStrategy::Dec);
        assert!(res.communities.is_empty());
    }

    #[test]
    fn k_too_large_gives_empty() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let q = g.vertex_by_label("A").unwrap();
        for strat in AcqStrategy::ALL {
            let res = acq(&g, &tree, q, &AcqOptions::with_k(4), strat);
            assert!(res.communities.is_empty(), "{}", strat.name());
        }
    }

    /// When no keyword subset survives, the answer degrades to the plain
    /// connected k-core (keyword cohesiveness 0) rather than nothing.
    #[test]
    fn fallback_to_plain_core_when_keywords_fail() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        // Query H with k=1: W(H)={y,z}; I (H's only neighbour) carries
        // neither y nor z, so no keyword subset yields a 1-core with H.
        let h = g.vertex_by_label("H").unwrap();
        for strat in AcqStrategy::ALL {
            let res = acq(&g, &tree, h, &AcqOptions::with_k(1), strat);
            assert_eq!(res.shared_keyword_count, 0, "{}", strat.name());
            assert_eq!(res.communities.len(), 1, "{}", strat.name());
            let labels: Vec<&str> =
                res.communities[0].vertices().iter().map(|&v| g.label(v)).collect();
            assert_eq!(labels, vec!["H", "I"], "{}", strat.name());
        }
    }

    /// All four strategies must agree on arbitrary queries over Figure 5.
    #[test]
    fn strategies_agree_on_figure5_everywhere() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        for q in g.vertices() {
            for k in 1..=3 {
                let opts = AcqOptions::with_k(k);
                let reference = acq(&g, &tree, q, &opts, AcqStrategy::Dec);
                for strat in [AcqStrategy::Basic, AcqStrategy::IncS, AcqStrategy::IncT] {
                    let res = acq(&g, &tree, q, &opts, strat);
                    assert_eq!(
                        res.shared_keyword_count, reference.shared_keyword_count,
                        "L size mismatch {} vs Dec at q={q} k={k}", strat.name()
                    );
                    assert_eq!(
                        res.communities, reference.communities,
                        "communities mismatch {} vs Dec at q={q} k={k}", strat.name()
                    );
                }
            }
        }
    }
}
