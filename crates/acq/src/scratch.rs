//! Reusable per-query execution state — the zero-allocation hot path.
//!
//! A steady-state ACQ query over a warmed [`QueryScratch`] performs **zero
//! heap allocations**: every buffer the Dec strategy touches (the CL-tree
//! walk stack, the candidate-core and keyword-list buffers, the peel
//! marks, the combination cursor, the hit accumulator, and the final
//! answer itself) lives in the scratch or in the caller's
//! [`QueryAnswer`] and is cleared by `Vec::clear`/epoch bump rather than
//! reallocated. Capacities grow monotonically to the workload's high-water
//! mark during warmup and then stay put — verified by the counting global
//! allocator in `cx-bench`'s `query_hotpath` binary.
//!
//! The public entry [`crate::acq`] draws a scratch from a thread-local
//! pool (one per engine worker thread), so callers get the fast path
//! without managing buffers; [`crate::acq_with_scratch`] exposes the
//! scratch-resident answer for benchmarks and batch executors that want
//! to avoid even the final copy-out.

use std::cell::RefCell;

use cx_cltree::NodeId;
use cx_graph::{AttributedGraph, Community, KeywordId, VertexId};
use cx_kcore::PeelScratch;

use crate::AcqResult;

/// Buffers for [`crate::verify::Verifier`]: the per-query verification
/// context (q's k-core, cached keyword lists, peel state).
pub(crate) struct VerifyScratch {
    /// Subset-peel state (epoch-cleared dense buffers).
    pub peel: PeelScratch,
    /// CL-tree DFS stack.
    pub stack: Vec<NodeId>,
    /// Vertices of the connected k-core containing q (sorted).
    pub core: Vec<VertexId>,
    /// Surviving keywords of S, sorted by id.
    pub alive: Vec<KeywordId>,
    /// Flattened single-keyword vertex lists: list `i` is
    /// `lists_data[lists_off[i]..lists_off[i + 1]]`.
    pub lists_data: Vec<VertexId>,
    pub lists_off: Vec<usize>,
    /// Intersection accumulator and its ping-pong partner.
    pub acc: Vec<VertexId>,
    pub tmp: Vec<VertexId>,
    /// Raw keyword-list buffer during verifier construction.
    pub kw_list: Vec<VertexId>,
    /// Output of the most recent peel.
    pub peeled: Vec<VertexId>,
    /// Per-neighbour-of-q keyword bitmasks over the query set S (bit `j`
    /// set iff `s[j] ∈ W(u)`), powering the exact-count candidate
    /// short-circuit: a k-core community keeps deg(q) ≥ k inside, so a
    /// candidate with fewer than k carrier neighbours can never verify.
    pub nbr_mask: Vec<u64>,
    /// For each surviving keyword `alive[i]`, its bit position in S (and
    /// in `nbr_mask`).
    pub alive_spos: Vec<u32>,
    /// Subtrees skipped by signature pruning during this query, flushed
    /// to `cx_acq_subtrees_pruned_total` once per query.
    pub stat_subtrees_pruned: u64,
    /// Signature tests that passed (subtree descended), flushed to
    /// `cx_acq_signature_hits_total` once per query.
    pub stat_signature_hits: u64,
}

impl VerifyScratch {
    fn new() -> Self {
        Self {
            peel: PeelScratch::new(),
            stack: Vec::new(),
            core: Vec::new(),
            alive: Vec::new(),
            lists_data: Vec::new(),
            lists_off: Vec::new(),
            acc: Vec::new(),
            tmp: Vec::new(),
            kw_list: Vec::new(),
            peeled: Vec::new(),
            nbr_mask: Vec::new(),
            alive_spos: Vec::new(),
            stat_subtrees_pruned: 0,
            stat_signature_hits: 0,
        }
    }
}

/// Buffers for the strategy drivers (Dec/Inc/Basic bookkeeping).
pub(crate) struct StratScratch {
    /// Effective query keyword set S.
    pub s: Vec<KeywordId>,
    /// Current keyword-subset combination (indices into `alive`).
    pub idxs: Vec<usize>,
    /// Flattened verified hits awaiting finalize: hit `i` is
    /// `hits_data[hits_off[i]..hits_off[i + 1]]`.
    pub hits_data: Vec<VertexId>,
    pub hits_off: Vec<usize>,
    /// Inc-T's stack of peeled prefix cores, flattened per depth.
    pub prefix_data: Vec<VertexId>,
    /// Finalize ordering buffer (indices of deduplicated hits).
    pub order: Vec<usize>,
    /// Shared-keyword accumulator and its ping-pong partner.
    pub shared_a: Vec<KeywordId>,
    pub shared_b: Vec<KeywordId>,
}

impl StratScratch {
    fn new() -> Self {
        Self {
            s: Vec::new(),
            idxs: Vec::new(),
            hits_data: Vec::new(),
            hits_off: Vec::new(),
            prefix_data: Vec::new(),
            order: Vec::new(),
            shared_a: Vec::new(),
            shared_b: Vec::new(),
        }
    }

    /// Drops all recorded hits (keeps capacity).
    pub fn clear_hits(&mut self) {
        self.hits_data.clear();
        self.hits_off.clear();
        self.hits_off.push(0);
    }

    /// Number of recorded hits.
    pub fn hit_count(&self) -> usize {
        self.hits_off.len().saturating_sub(1)
    }

    /// Records one verified member list.
    pub fn push_hit(&mut self, members: &[VertexId]) {
        self.hits_data.extend_from_slice(members);
        self.hits_off.push(self.hits_data.len());
    }
}

/// Reusable execution state for one ACQ query stream: peel buffers,
/// verifier caches and strategy bookkeeping, all cleared in O(1) between
/// queries. Create once (or let [`crate::acq`] pool one per thread) and
/// reuse; buffers grow to the workload high-water mark and then every
/// further query is allocation-free.
pub struct QueryScratch {
    pub(crate) verify: VerifyScratch,
    pub(crate) strat: StratScratch,
}

impl Default for QueryScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self { verify: VerifyScratch::new(), strat: StratScratch::new() }
    }
}

/// A scratch-resident ACQ answer: communities stored as flattened sorted
/// member and shared-keyword slices, reusable across queries without
/// reallocating. [`QueryAnswer::to_result`] copies out an owned
/// [`AcqResult`] for callers that need one.
pub struct QueryAnswer {
    members: Vec<VertexId>,
    m_off: Vec<usize>,
    shared: Vec<KeywordId>,
    s_off: Vec<usize>,
    /// Size of the maximal shared keyword set (0 on plain-core fallback).
    pub shared_keyword_count: usize,
    /// Number of candidate keyword sets verified (keyword walks plus
    /// intersect/peel runs; near-free neighbour-mask rejects excluded).
    pub candidates_verified: usize,
    /// True when the candidate budget was exhausted before completion.
    pub truncated: bool,
}

impl Default for QueryAnswer {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryAnswer {
    /// An empty answer; buffers grow on first use.
    pub fn new() -> Self {
        let mut a = Self {
            members: Vec::new(),
            m_off: Vec::new(),
            shared: Vec::new(),
            s_off: Vec::new(),
            shared_keyword_count: 0,
            candidates_verified: 0,
            truncated: false,
        };
        a.clear();
        a
    }

    /// Resets to "no communities" (keeps capacity).
    pub fn clear(&mut self) {
        self.members.clear();
        self.m_off.clear();
        self.m_off.push(0);
        self.shared.clear();
        self.s_off.clear();
        self.s_off.push(0);
        self.shared_keyword_count = 0;
        self.candidates_verified = 0;
        self.truncated = false;
    }

    /// Number of communities in the answer.
    pub fn community_count(&self) -> usize {
        self.m_off.len() - 1
    }

    /// Sorted member vertices of community `i`.
    pub fn members(&self, i: usize) -> &[VertexId] {
        &self.members[self.m_off[i]..self.m_off[i + 1]]
    }

    /// Sorted shared keywords (`L`) of community `i`.
    pub fn shared(&self, i: usize) -> &[KeywordId] {
        &self.shared[self.s_off[i]..self.s_off[i + 1]]
    }

    /// Appends one community (members sorted, shared sorted).
    pub(crate) fn push_community(&mut self, members: &[VertexId], shared: &[KeywordId]) {
        self.members.extend_from_slice(members);
        self.m_off.push(self.members.len());
        self.shared.extend_from_slice(shared);
        self.s_off.push(self.shared.len());
    }

    /// Copies the answer out into an owned [`AcqResult`].
    pub fn to_result(&self) -> AcqResult {
        let communities = (0..self.community_count())
            .map(|i| Community::new(self.members(i).to_vec(), self.shared(i).to_vec()))
            .collect();
        AcqResult {
            communities,
            shared_keyword_count: self.shared_keyword_count,
            candidates_verified: self.candidates_verified,
            truncated: self.truncated,
        }
    }
}

/// Builds the final answer from the recorded hits: dedup by member set
/// (first occurrence wins), compute each community's actual shared
/// keyword set `L = S ∩ ⋂_{v} W(v)`, order largest-first (stable), and
/// write into `out` — the scratch-resident equivalent of
/// [`crate::finalize`], allocation-free in steady state.
///
/// When `use_s` is false the shared sets are empty (the plain-core
/// fallback, `L = ∅`).
pub(crate) fn finalize_into(
    g: &AttributedGraph,
    strat: &mut StratScratch,
    use_s: bool,
    out: &mut QueryAnswer,
) {
    let hits_data = &strat.hits_data;
    let hits_off = &strat.hits_off;
    let order = &mut strat.order;
    let hit = |i: usize| &hits_data[hits_off[i]..hits_off[i + 1]];

    // Dedup by member set, keeping first occurrences in insertion order.
    order.clear();
    'hits: for i in 0..hits_off.len().saturating_sub(1) {
        for &j in order.iter() {
            if hit(j) == hit(i) {
                continue 'hits;
            }
        }
        order.push(i);
    }
    // Stable insertion sort, largest community first — `slice::sort` is
    // stable but allocates, so order the handful of hits by hand.
    for i in 1..order.len() {
        let mut j = i;
        while j > 0 && hit(order[j - 1]).len() < hit(order[j]).len() {
            order.swap(j - 1, j);
            j -= 1;
        }
    }

    let s: &[KeywordId] = if use_s { &strat.s } else { &[] };
    for &i in order.iter() {
        let members = hit(i);
        // L = ∩_{v∈Gq} (W(v) ∩ S)
        strat.shared_a.clear();
        strat.shared_a.extend_from_slice(s);
        for &v in members {
            cx_graph::keywords::intersect_sorted_into(
                &strat.shared_a,
                g.keywords(v),
                &mut strat.shared_b,
            );
            std::mem::swap(&mut strat.shared_a, &mut strat.shared_b);
            if strat.shared_a.is_empty() {
                break;
            }
        }
        out.push_community(members, &strat.shared_a);
    }
}

thread_local! {
    static POOL: RefCell<(QueryScratch, QueryAnswer)> =
        RefCell::new((QueryScratch::new(), QueryAnswer::new()));
}

/// Runs `f` with this thread's pooled scratch + answer pair. Falls back
/// to a fresh pair under reentrancy (a query issued from inside a query
/// callback), which allocates but stays correct.
pub(crate) fn with_pooled<R>(f: impl FnOnce(&mut QueryScratch, &mut QueryAnswer) -> R) -> R {
    POOL.with(|cell| match cell.try_borrow_mut() {
        Ok(mut pair) => {
            let (scratch, answer) = &mut *pair;
            f(scratch, answer)
        }
        Err(_) => f(&mut QueryScratch::new(), &mut QueryAnswer::new()),
    })
}
