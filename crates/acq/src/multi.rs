//! The multi-query-vertex ACQ variant (Section 3.2): given a *set* `Q` of
//! query vertices, find connected subgraphs containing all of `Q` with
//! minimum degree ≥ k and a maximal shared keyword set.
//!
//! The UI exposes this via the "+" icon next to the name box — e.g. query
//! two co-authors jointly to find the community they share.

use cx_cltree::ClTree;
use cx_graph::{AttributedGraph, KeywordId, VertexId};
use cx_kcore::subset::connected_k_core_containing_all;

use crate::dec::next_combination;
use crate::{AcqOptions, AcqResult};

/// Runs the multi-vertex query with a Dec-style (large→small) sweep.
///
/// The default keyword set is `∩_{q∈Q} W(q)` — a keyword can only be
/// shared by the whole community if every query vertex carries it.
/// Returns an empty result when `Q` is empty, any vertex is invalid, or
/// the query vertices do not share a connected k-core.
pub fn acq_multi(
    g: &AttributedGraph,
    tree: &ClTree,
    qs: &[VertexId],
    opts: &AcqOptions,
) -> AcqResult {
    if qs.is_empty() || qs.iter().any(|&q| !g.contains(q)) {
        return AcqResult::empty();
    }
    let _span = cx_obs::span("acq.multi");
    let q0 = qs[0];
    // All query vertices must live in the same connected k-core.
    let Some(subtree) = tree.subtree_root_for(q0, opts.k) else {
        return AcqResult::empty();
    };
    let core = tree.subtree_vertices(subtree);
    if qs.iter().any(|&q| core.binary_search(&q).is_err()) {
        return AcqResult::empty();
    }

    // S defaults to the common keywords of all query vertices; an explicit
    // S is filtered down to that intersection.
    let mut common: Vec<KeywordId> = g.keywords(q0).to_vec();
    for &q in &qs[1..] {
        common = cx_graph::keywords::intersect_sorted(&common, g.keywords(q));
    }
    let s: Vec<KeywordId> = if opts.keywords.is_empty() {
        common
    } else {
        let mut s: Vec<KeywordId> = opts
            .keywords
            .iter()
            .copied()
            .filter(|w| common.binary_search(w).is_ok())
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    };

    let mut verified = 0usize;
    let mut truncated = false;
    let budget = opts.max_candidates;

    // Singleton pruning within the shared k-core.
    let mut alive: Vec<KeywordId> = Vec::new();
    let mut lists: Vec<Vec<VertexId>> = Vec::new();
    for &w in &s {
        let members = tree.keyword_vertices_in_subtree(subtree, w);
        verified += 1;
        if connected_k_core_containing_all(g, &members, qs, opts.k).is_some() {
            alive.push(w);
            lists.push(members);
        }
    }

    let n = alive.len();
    for size in (1..=n).rev() {
        let mut hits: Vec<Vec<VertexId>> = Vec::new();
        let mut idxs: Vec<usize> = (0..size).collect();
        loop {
            if budget > 0 && verified >= budget {
                truncated = true;
                break;
            }
            let mut members = lists[idxs[0]].clone();
            for &i in &idxs[1..] {
                members = crate::verify::intersect_sorted_vertices(&members, &lists[i]);
            }
            verified += 1;
            if let Some(c) = connected_k_core_containing_all(g, &members, qs, opts.k) {
                hits.push(c);
            }
            if !next_combination(&mut idxs, n) {
                break;
            }
        }
        if !hits.is_empty() {
            return AcqResult {
                communities: crate::finalize(g, &s, hits),
                shared_keyword_count: size,
                candidates_verified: verified,
                truncated,
            };
        }
        if truncated {
            break;
        }
    }

    // Fallback: the plain connected k-core containing all of Q.
    match connected_k_core_containing_all(g, &core, qs, opts.k) {
        Some(plain) => AcqResult {
            communities: crate::finalize(g, &[], vec![plain]),
            shared_keyword_count: 0,
            candidates_verified: verified,
            truncated,
        },
        None => AcqResult::empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{acq, AcqStrategy};
    use cx_datagen::figure5_graph;

    #[test]
    fn multi_with_single_vertex_matches_dec() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        for q in g.vertices() {
            for k in 1..=3 {
                let opts = AcqOptions::with_k(k);
                let single = acq(&g, &tree, q, &opts, AcqStrategy::Dec);
                let multi = acq_multi(&g, &tree, &[q], &opts);
                assert_eq!(single.communities, multi.communities, "q={q} k={k}");
                assert_eq!(
                    single.shared_keyword_count, multi.shared_keyword_count,
                    "q={q} k={k}"
                );
            }
        }
    }

    #[test]
    fn joint_query_on_figure5() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let d = g.vertex_by_label("D").unwrap();
        // W(A) ∩ W(D) = {x, y}; both are in the K4. The joint community is
        // {A, C, D} sharing {x, y}.
        let res = acq_multi(&g, &tree, &[a, d], &AcqOptions::with_k(2));
        assert_eq!(res.shared_keyword_count, 2);
        assert_eq!(res.communities.len(), 1);
        let labels: Vec<&str> =
            res.communities[0].vertices().iter().map(|&v| g.label(v)).collect();
        assert_eq!(labels, vec!["A", "C", "D"]);
    }

    #[test]
    fn disjoint_query_vertices_yield_empty() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let h = g.vertex_by_label("H").unwrap();
        let res = acq_multi(&g, &tree, &[a, h], &AcqOptions::with_k(1));
        assert!(res.communities.is_empty());
    }

    #[test]
    fn no_common_keywords_falls_back_to_plain_core() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let b = g.vertex_by_label("B").unwrap(); // W(B) = {x}
        let e = g.vertex_by_label("E").unwrap(); // W(E) = {y, z}
        // No common keyword, but B and E share the 2-core {A,B,C,D,E}.
        let res = acq_multi(&g, &tree, &[b, e], &AcqOptions::with_k(2));
        assert_eq!(res.shared_keyword_count, 0);
        assert_eq!(res.communities.len(), 1);
        assert_eq!(res.communities[0].len(), 5);
    }

    #[test]
    fn empty_and_invalid_queries() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        assert!(acq_multi(&g, &tree, &[], &AcqOptions::with_k(1)).communities.is_empty());
        assert!(acq_multi(&g, &tree, &[VertexId(99)], &AcqOptions::with_k(1))
            .communities
            .is_empty());
    }
}
