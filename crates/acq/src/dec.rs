//! The decremental query algorithm `Dec` — C-Explorer's engine default.
//!
//! After single-keyword pruning, candidate keyword sets are examined from
//! size `|S|` *downward*. The first size with a verified candidate is the
//! maximal keyword cohesiveness, so the search stops there; on realistic
//! queries (community members share most of the query author's keywords)
//! this touches only the top of the subset lattice, which is why the paper
//! picks Dec for the system.
//!
//! Dec is the strategy the engine serves, so it is held to the strictest
//! hot-path contract: with a warmed [`QueryScratch`] it performs **zero**
//! heap allocations per query (asserted by `query_hotpath --smoke` in CI).

use cx_cltree::ClTree;
use cx_graph::{AttributedGraph, VertexId};

use crate::scratch::{finalize_into, QueryAnswer, QueryScratch};
use crate::verify::Verifier;
use crate::{AcqOptions, AcqResult};

/// Runs `Dec` into a caller-provided scratch and answer.
pub(crate) fn run_scratch(
    g: &AttributedGraph,
    tree: &ClTree,
    q: VertexId,
    opts: &AcqOptions,
    scratch: &mut QueryScratch,
    out: &mut QueryAnswer,
) {
    out.clear();
    let QueryScratch { verify: vs, strat } = scratch;
    crate::effective_keywords_into(g, q, opts, &mut strat.s);
    let Some(mut verifier) = Verifier::new(g, tree, q, opts.k, &strat.s, vs) else {
        return;
    };
    let n = verifier.alive_count();
    // With pruning on, sizes above the neighbour-mask popcount bound are
    // provably hitless — start the downward sweep below them. On the
    // legacy path the cap equals `n` and the sweep is unchanged.
    let top = verifier.max_candidate_size();
    let budget = opts.max_candidates;
    // The deadline may already have fired inside the verifier's pruned
    // keyword walks; treat it like budget truncation (the engine discards
    // cancelled answers).
    let mut truncated = verifier.cancelled;

    for size in (1..=top).rev() {
        if truncated {
            break;
        }
        strat.clear_hits();
        strat.idxs.clear();
        strat.idxs.extend(0..size);
        loop {
            if budget > 0 && verifier.examined >= budget {
                truncated = true;
                break;
            }
            // Request-deadline checkpoint: each iteration runs a full subset
            // peel, so one thread-local read per candidate is noise. Bailing
            // reuses the budget-truncation path; the scope owner (the engine)
            // discards the partial answer and reports `deadline_exceeded`.
            if cx_par::task::cancelled() {
                truncated = true;
                break;
            }
            if verifier.verify_idxs(&strat.idxs) {
                let (hits_data, hits_off) = (&mut strat.hits_data, &mut strat.hits_off);
                hits_data.extend_from_slice(verifier.peeled());
                hits_off.push(hits_data.len());
            }
            if !next_combination(&mut strat.idxs, n) {
                break;
            }
        }
        if strat.hit_count() > 0 {
            out.shared_keyword_count = size;
            out.candidates_verified = verifier.verified;
            out.truncated = truncated;
            let t = crate::profile::timer();
            finalize_into(g, strat, true, out);
            crate::profile::add_expand(t);
            return;
        }
        if truncated {
            break;
        }
    }

    // No keyword subset verified: fall back to the plain connected k-core.
    strat.clear_hits();
    strat.hits_data.extend_from_slice(verifier.core());
    strat.hits_off.push(strat.hits_data.len());
    out.shared_keyword_count = 0;
    out.candidates_verified = verifier.verified;
    out.truncated = truncated;
    let t = crate::profile::timer();
    finalize_into(g, strat, false, out);
    crate::profile::add_expand(t);
}

/// Runs `Dec` with a one-off scratch, returning an owned result.
pub fn run(g: &AttributedGraph, tree: &ClTree, q: VertexId, opts: &AcqOptions) -> AcqResult {
    let mut scratch = QueryScratch::new();
    let mut out = QueryAnswer::new();
    run_scratch(g, tree, q, opts, &mut scratch, &mut out);
    out.to_result()
}

/// Advances `idxs` to the next size-|idxs| combination of `0..n` in
/// lexicographic order; returns false after the last one.
pub(crate) fn next_combination(idxs: &mut [usize], n: usize) -> bool {
    let k = idxs.len();
    if k == 0 {
        return false;
    }
    let mut i = k;
    while i > 0 {
        i -= 1;
        if idxs[i] != i + n - k {
            idxs[i] += 1;
            for j in i + 1..k {
                idxs[j] = idxs[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinations_enumerate_lexicographically() {
        let mut idxs = vec![0, 1];
        let mut all = vec![idxs.clone()];
        while next_combination(&mut idxs, 4) {
            all.push(idxs.clone());
        }
        assert_eq!(all, vec![
            vec![0, 1], vec![0, 2], vec![0, 3],
            vec![1, 2], vec![1, 3], vec![2, 3],
        ]);
    }

    #[test]
    fn single_element_combinations() {
        let mut idxs = vec![0];
        let mut count = 1;
        while next_combination(&mut idxs, 5) {
            count += 1;
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn full_size_combination_is_unique() {
        let mut idxs = vec![0, 1, 2];
        assert!(!next_combination(&mut idxs, 3));
    }

    #[test]
    fn empty_combination_terminates() {
        let mut idxs: Vec<usize> = vec![];
        assert!(!next_combination(&mut idxs, 3));
    }
}
