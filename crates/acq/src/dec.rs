//! The decremental query algorithm `Dec` — C-Explorer's engine default.
//!
//! After single-keyword pruning, candidate keyword sets are examined from
//! size `|S|` *downward*. The first size with a verified candidate is the
//! maximal keyword cohesiveness, so the search stops there; on realistic
//! queries (community members share most of the query author's keywords)
//! this touches only the top of the subset lattice, which is why the paper
//! picks Dec for the system.

use cx_cltree::ClTree;
use cx_graph::{AttributedGraph, VertexId};

use crate::verify::Verifier;
use crate::{AcqOptions, AcqResult};

/// Runs `Dec`.
pub fn run(g: &AttributedGraph, tree: &ClTree, q: VertexId, opts: &AcqOptions) -> AcqResult {
    let s = crate::effective_keywords(g, q, opts);
    let Some(mut verifier) = Verifier::new(g, tree, q, opts.k, &s) else {
        return AcqResult::empty();
    };
    let n = verifier.alive.len();
    let budget = opts.max_candidates;
    let mut truncated = false;

    for size in (1..=n).rev() {
        let mut hits: Vec<Vec<VertexId>> = Vec::new();
        let mut idxs: Vec<usize> = (0..size).collect();
        loop {
            if budget > 0 && verifier.verified >= budget {
                truncated = true;
                break;
            }
            if let Some(members) = verifier.verify(&idxs) {
                hits.push(members);
            }
            if !next_combination(&mut idxs, n) {
                break;
            }
        }
        if !hits.is_empty() {
            let shared = size;
            let communities = crate::finalize(g, &s, hits);
            return AcqResult {
                communities,
                shared_keyword_count: shared,
                candidates_verified: verifier.verified,
                truncated,
            };
        }
        if truncated {
            break;
        }
    }

    // No keyword subset verified: fall back to the plain connected k-core.
    let plain = verifier.plain_core();
    AcqResult {
        communities: crate::finalize(g, &[], vec![plain]),
        shared_keyword_count: 0,
        candidates_verified: verifier.verified,
        truncated,
    }
}

/// Advances `idxs` to the next size-|idxs| combination of `0..n` in
/// lexicographic order; returns false after the last one.
pub(crate) fn next_combination(idxs: &mut [usize], n: usize) -> bool {
    let k = idxs.len();
    if k == 0 {
        return false;
    }
    let mut i = k;
    while i > 0 {
        i -= 1;
        if idxs[i] != i + n - k {
            idxs[i] += 1;
            for j in i + 1..k {
                idxs[j] = idxs[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinations_enumerate_lexicographically() {
        let mut idxs = vec![0, 1];
        let mut all = vec![idxs.clone()];
        while next_combination(&mut idxs, 4) {
            all.push(idxs.clone());
        }
        assert_eq!(all, vec![
            vec![0, 1], vec![0, 2], vec![0, 3],
            vec![1, 2], vec![1, 3], vec![2, 3],
        ]);
    }

    #[test]
    fn single_element_combinations() {
        let mut idxs = vec![0];
        let mut count = 1;
        while next_combination(&mut idxs, 5) {
            count += 1;
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn full_size_combination_is_unique() {
        let mut idxs = vec![0, 1, 2];
        assert!(!next_combination(&mut idxs, 3));
    }

    #[test]
    fn empty_combination_terminates() {
        let mut idxs: Vec<usize> = vec![];
        assert!(!next_combination(&mut idxs, 3));
    }
}
