//! The incremental query algorithms `Inc-S` and `Inc-T`.
//!
//! Both examine candidate keyword sets from *small to large*. `Inc-S`
//! proceeds level by level with apriori candidate generation; `Inc-T`
//! walks a set-enumeration tree depth-first, sharing the intersected and
//! peeled vertex set of each verified prefix with all of its extensions
//! (and pruning a failing prefix's entire subtree, which is sound because
//! keyword-cores shrink as keywords are added).

use std::collections::HashSet;

use cx_cltree::ClTree;
use cx_graph::{AttributedGraph, VertexId};

use crate::verify::{intersect_sorted_vertices, Verifier};
use crate::{AcqOptions, AcqResult};

/// Runs `Inc-S` (level-wise apriori).
pub fn run_inc_s(g: &AttributedGraph, tree: &ClTree, q: VertexId, opts: &AcqOptions) -> AcqResult {
    let s = crate::effective_keywords(g, q, opts);
    let Some(mut verifier) = Verifier::new(g, tree, q, opts.k, &s) else {
        return AcqResult::empty();
    };
    let n = verifier.alive.len();
    let budget = opts.max_candidates;
    let mut truncated = false;

    // Level 1: every surviving singleton, re-verified to capture its core.
    let mut level_sets: Vec<Vec<usize>> = Vec::new();
    let mut best_hits: Vec<Vec<VertexId>> = Vec::new();
    for i in 0..n {
        if budget > 0 && verifier.verified >= budget {
            truncated = true;
            break;
        }
        if let Some(core) = verifier.verify(&[i]) {
            level_sets.push(vec![i]);
            best_hits.push(core);
        }
    }

    if level_sets.is_empty() {
        let plain = verifier.plain_core();
        return AcqResult {
            communities: crate::finalize(g, &[], vec![plain]),
            shared_keyword_count: 0,
            candidates_verified: verifier.verified,
            truncated,
        };
    }

    let mut size = 1usize;
    while !truncated {
        // Apriori join: combine sets sharing their first (size-1) elements.
        let prev: HashSet<Vec<usize>> = level_sets.iter().cloned().collect();
        let mut next_sets: Vec<Vec<usize>> = Vec::new();
        let mut next_hits: Vec<Vec<VertexId>> = Vec::new();
        'outer: for a in 0..level_sets.len() {
            for b in (a + 1)..level_sets.len() {
                if budget > 0 && verifier.verified >= budget {
                    truncated = true;
                    break 'outer;
                }
                let (sa, sb) = (&level_sets[a], &level_sets[b]);
                if sa[..size - 1] != sb[..size - 1] {
                    continue;
                }
                let mut cand = sa.clone();
                cand.push(sb[size - 1]);
                cand.sort_unstable();
                // All size-subsets must be verified successes.
                let mut sub = cand.clone();
                let all_present = (0..cand.len()).all(|drop| {
                    sub.clone_from(&cand);
                    sub.remove(drop);
                    prev.contains(&sub)
                });
                if !all_present {
                    continue;
                }
                if let Some(core) = verifier.verify(&cand) {
                    next_sets.push(cand);
                    next_hits.push(core);
                }
            }
        }
        if next_sets.is_empty() {
            break;
        }
        size += 1;
        level_sets = next_sets;
        best_hits = next_hits;
    }

    AcqResult {
        communities: crate::finalize(g, &s, best_hits),
        shared_keyword_count: size,
        candidates_verified: verifier.verified,
        truncated,
    }
}

/// Runs `Inc-T` (set-enumeration tree, shared prefix verification).
pub fn run_inc_t(g: &AttributedGraph, tree: &ClTree, q: VertexId, opts: &AcqOptions) -> AcqResult {
    let s = crate::effective_keywords(g, q, opts);
    let Some(mut verifier) = Verifier::new(g, tree, q, opts.k, &s) else {
        return AcqResult::empty();
    };
    let n = verifier.alive.len();
    let budget = opts.max_candidates;

    struct Dfs {
        best_size: usize,
        best_hits: Vec<Vec<VertexId>>,
        truncated: bool,
        budget: usize,
    }
    let mut state =
        Dfs { best_size: 0, best_hits: Vec::new(), truncated: false, budget };

    fn dfs(
        verifier: &mut Verifier<'_>,
        prefix_core: &[VertexId],
        start: usize,
        depth: usize,
        n: usize,
        state: &mut Dfs,
    ) {
        for i in start..n {
            if state.budget > 0 && verifier.verified >= state.budget {
                state.truncated = true;
                return;
            }
            // Extend the prefix with keyword i: its keyword-core is inside
            // the prefix's peeled core intersected with i's carriers.
            let members = intersect_sorted_vertices(prefix_core, verifier.list(i));
            if let Some(core) = verifier.peel(&members) {
                let size = depth + 1;
                if size > state.best_size {
                    state.best_size = size;
                    state.best_hits.clear();
                }
                if size == state.best_size {
                    state.best_hits.push(core.clone());
                }
                dfs(verifier, &core, i + 1, size, n, state);
                if state.truncated {
                    return;
                }
            }
            // A failing extension prunes its subtree (anti-monotone).
        }
    }

    let root_core = verifier.plain_core();
    dfs(&mut verifier, &root_core, 0, 0, n, &mut state);

    if state.best_size == 0 {
        return AcqResult {
            communities: crate::finalize(g, &[], vec![root_core]),
            shared_keyword_count: 0,
            candidates_verified: verifier.verified,
            truncated: state.truncated,
        };
    }
    AcqResult {
        communities: crate::finalize(g, &s, state.best_hits),
        shared_keyword_count: state.best_size,
        candidates_verified: verifier.verified,
        truncated: state.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::small_collab_graph;

    /// Inc-S and Inc-T agree with each other on the collab fixture for a
    /// sweep of queries (full cross-strategy agreement is covered by the
    /// crate-level and property tests).
    #[test]
    fn inc_variants_agree_on_collab_graph() {
        let g = small_collab_graph();
        let tree = ClTree::build(&g);
        for q in g.vertices() {
            for k in 1..=4 {
                let opts = AcqOptions::with_k(k);
                let a = run_inc_s(&g, &tree, q, &opts);
                let b = run_inc_t(&g, &tree, q, &opts);
                assert_eq!(a.shared_keyword_count, b.shared_keyword_count, "q={q} k={k}");
                assert_eq!(a.communities, b.communities, "q={q} k={k}");
            }
        }
    }

    /// Inc-T explores at most as many candidates as Inc-S (shared prefixes
    /// + subtree pruning can only help).
    #[test]
    fn inc_t_verifies_no_more_than_inc_s() {
        let g = small_collab_graph();
        let tree = ClTree::build(&g);
        let q = g.vertex_by_label("db-author-0").unwrap();
        let opts = AcqOptions::with_k(3);
        let a = run_inc_s(&g, &tree, q, &opts);
        let b = run_inc_t(&g, &tree, q, &opts);
        assert!(
            b.candidates_verified <= a.candidates_verified,
            "Inc-T {} > Inc-S {}",
            b.candidates_verified,
            a.candidates_verified
        );
    }

    #[test]
    fn budget_truncates_cleanly() {
        let g = small_collab_graph();
        let tree = ClTree::build(&g);
        let q = g.vertex_by_label("db-author-0").unwrap();
        let opts = AcqOptions::with_k(2).max_candidates(3);
        for run in [run_inc_s, run_inc_t] {
            let res = run(&g, &tree, q, &opts);
            assert!(res.truncated);
            assert!(res.candidates_verified <= 4); // 3 + the in-flight one
        }
    }
}
