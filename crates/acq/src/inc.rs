//! The incremental query algorithms `Inc-S` and `Inc-T`.
//!
//! Both examine candidate keyword sets from *small to large*. `Inc-S`
//! proceeds level by level with apriori candidate generation; `Inc-T`
//! walks a set-enumeration tree depth-first, sharing the intersected and
//! peeled vertex set of each verified prefix with all of its extensions
//! (and pruning a failing prefix's entire subtree, which is sound because
//! keyword-cores shrink as keywords are added).
//!
//! Both run their peeling against the reusable scratch. `Inc-T` keeps its
//! prefix cores on a flattened stack in the scratch and is allocation-free
//! in steady state; `Inc-S` retains small per-level bookkeeping
//! allocations (the apriori join's candidate-set table), which is
//! acceptable because the engine's hot path is `Dec`.

use std::collections::HashSet;

use cx_cltree::ClTree;
use cx_graph::{AttributedGraph, VertexId};

use crate::scratch::{finalize_into, QueryAnswer, QueryScratch, StratScratch};
use crate::verify::Verifier;
use crate::{AcqOptions, AcqResult};

/// Runs `Inc-S` (level-wise apriori) into a caller-provided scratch.
pub(crate) fn run_inc_s_scratch(
    g: &AttributedGraph,
    tree: &ClTree,
    q: VertexId,
    opts: &AcqOptions,
    scratch: &mut QueryScratch,
    out: &mut QueryAnswer,
) {
    out.clear();
    let QueryScratch { verify: vs, strat } = scratch;
    crate::effective_keywords_into(g, q, opts, &mut strat.s);
    let Some(mut verifier) = Verifier::new(g, tree, q, opts.k, &strat.s, vs) else {
        return;
    };
    let n = verifier.alive_count();
    let budget = opts.max_candidates;
    // A deadline that fired inside the verifier's pruned walks truncates
    // immediately, same as budget exhaustion.
    let mut truncated = verifier.cancelled;

    // Level 1: every surviving singleton, re-verified to capture its core.
    let mut level_sets: Vec<Vec<usize>> = Vec::new();
    strat.clear_hits();
    for i in 0..n {
        if truncated || (budget > 0 && verifier.examined >= budget) {
            truncated = true;
            break;
        }
        if verifier.verify_idxs(&[i]) {
            level_sets.push(vec![i]);
            strat.push_hit(verifier.peeled());
        }
    }

    if level_sets.is_empty() {
        strat.clear_hits();
        strat.push_hit(verifier.core());
        out.shared_keyword_count = 0;
        out.candidates_verified = verifier.verified;
        out.truncated = truncated;
        finalize_into(g, strat, false, out);
        return;
    }

    let mut size = 1usize;
    while !truncated {
        // Apriori join: combine sets sharing their first (size-1) elements.
        let prev: HashSet<Vec<usize>> = level_sets.iter().cloned().collect();
        let mut next_sets: Vec<Vec<usize>> = Vec::new();
        let mut next_hits: Vec<Vec<VertexId>> = Vec::new();
        'outer: for a in 0..level_sets.len() {
            for b in (a + 1)..level_sets.len() {
                if budget > 0 && verifier.examined >= budget {
                    truncated = true;
                    break 'outer;
                }
                let (sa, sb) = (&level_sets[a], &level_sets[b]);
                if sa[..size - 1] != sb[..size - 1] {
                    continue;
                }
                let mut cand = sa.clone();
                cand.push(sb[size - 1]);
                cand.sort_unstable();
                // All size-subsets must be verified successes.
                let mut sub = cand.clone();
                let all_present = (0..cand.len()).all(|drop| {
                    sub.clone_from(&cand);
                    sub.remove(drop);
                    prev.contains(&sub)
                });
                if !all_present {
                    continue;
                }
                if verifier.verify_idxs(&cand) {
                    next_sets.push(cand);
                    next_hits.push(verifier.peeled().to_vec());
                }
            }
        }
        if next_sets.is_empty() {
            break;
        }
        size += 1;
        level_sets = next_sets;
        strat.clear_hits();
        for hit in &next_hits {
            strat.push_hit(hit);
        }
    }

    out.shared_keyword_count = size;
    out.candidates_verified = verifier.verified;
    out.truncated = truncated;
    finalize_into(g, strat, true, out);
}

/// Runs `Inc-S` with a one-off scratch, returning an owned result.
pub fn run_inc_s(g: &AttributedGraph, tree: &ClTree, q: VertexId, opts: &AcqOptions) -> AcqResult {
    let mut scratch = QueryScratch::new();
    let mut out = QueryAnswer::new();
    run_inc_s_scratch(g, tree, q, opts, &mut scratch, &mut out);
    out.to_result()
}

/// Depth-first state for `Inc-T`; best hits accumulate in the strategy
/// scratch's flattened hit buffers.
struct Dfs {
    best_size: usize,
    truncated: bool,
    budget: usize,
}

/// One set-enumeration-tree expansion: extend the prefix core stored at
/// `prefix_data[lo..hi]` on the scratch's flattened prefix stack with each
/// keyword `i ≥ start`, recursing on verified extensions.
fn dfs(
    verifier: &mut Verifier<'_>,
    strat: &mut StratScratch,
    lo: usize,
    hi: usize,
    start: usize,
    depth: usize,
    n: usize,
    state: &mut Dfs,
) {
    for i in start..n {
        if state.budget > 0 && verifier.examined >= state.budget {
            state.truncated = true;
            return;
        }
        // Extend the prefix with keyword i: its keyword-core is inside
        // the prefix's peeled core intersected with i's carriers.
        if verifier.verify_prefix_extend(&strat.prefix_data[lo..hi], i) {
            let size = depth + 1;
            if size > state.best_size {
                state.best_size = size;
                strat.clear_hits();
            }
            if size == state.best_size {
                strat.push_hit(verifier.peeled());
            }
            // Push the peeled core onto the prefix stack and recurse.
            let child_lo = strat.prefix_data.len();
            strat.prefix_data.extend_from_slice(verifier.peeled());
            let child_hi = strat.prefix_data.len();
            dfs(verifier, strat, child_lo, child_hi, i + 1, size, n, state);
            strat.prefix_data.truncate(child_lo);
            if state.truncated {
                return;
            }
        }
        // A failing extension prunes its subtree (anti-monotone).
    }
}

/// Runs `Inc-T` (set-enumeration tree, shared prefix verification) into a
/// caller-provided scratch.
pub(crate) fn run_inc_t_scratch(
    g: &AttributedGraph,
    tree: &ClTree,
    q: VertexId,
    opts: &AcqOptions,
    scratch: &mut QueryScratch,
    out: &mut QueryAnswer,
) {
    out.clear();
    let QueryScratch { verify: vs, strat } = scratch;
    crate::effective_keywords_into(g, q, opts, &mut strat.s);
    let Some(mut verifier) = Verifier::new(g, tree, q, opts.k, &strat.s, vs) else {
        return;
    };
    let n = verifier.alive_count();
    let mut state =
        Dfs { best_size: 0, truncated: verifier.cancelled, budget: opts.max_candidates };

    strat.clear_hits();
    // The DFS root: the plain connected k-core, at the bottom of the
    // prefix stack.
    strat.prefix_data.clear();
    strat.prefix_data.extend_from_slice(verifier.core());
    let root_hi = strat.prefix_data.len();
    if !state.truncated {
        dfs(&mut verifier, strat, 0, root_hi, 0, 0, n, &mut state);
    }

    if state.best_size == 0 {
        strat.clear_hits();
        strat.prefix_data.truncate(root_hi);
        let (hits_data, hits_off) = (&mut strat.hits_data, &mut strat.hits_off);
        hits_data.extend_from_slice(&strat.prefix_data);
        hits_off.push(hits_data.len());
        out.shared_keyword_count = 0;
        out.candidates_verified = verifier.verified;
        out.truncated = state.truncated;
        finalize_into(g, strat, false, out);
        return;
    }
    out.shared_keyword_count = state.best_size;
    out.candidates_verified = verifier.verified;
    out.truncated = state.truncated;
    finalize_into(g, strat, true, out);
}

/// Runs `Inc-T` with a one-off scratch, returning an owned result.
pub fn run_inc_t(g: &AttributedGraph, tree: &ClTree, q: VertexId, opts: &AcqOptions) -> AcqResult {
    let mut scratch = QueryScratch::new();
    let mut out = QueryAnswer::new();
    run_inc_t_scratch(g, tree, q, opts, &mut scratch, &mut out);
    out.to_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::small_collab_graph;

    /// Inc-S and Inc-T agree with each other on the collab fixture for a
    /// sweep of queries (full cross-strategy agreement is covered by the
    /// crate-level and property tests).
    #[test]
    fn inc_variants_agree_on_collab_graph() {
        let g = small_collab_graph();
        let tree = ClTree::build(&g);
        for q in g.vertices() {
            for k in 1..=4 {
                let opts = AcqOptions::with_k(k);
                let a = run_inc_s(&g, &tree, q, &opts);
                let b = run_inc_t(&g, &tree, q, &opts);
                assert_eq!(a.shared_keyword_count, b.shared_keyword_count, "q={q} k={k}");
                assert_eq!(a.communities, b.communities, "q={q} k={k}");
            }
        }
    }

    /// Inc-T explores at most as many candidates as Inc-S (shared prefixes
    /// + subtree pruning can only help).
    #[test]
    fn inc_t_verifies_no_more_than_inc_s() {
        let g = small_collab_graph();
        let tree = ClTree::build(&g);
        let q = g.vertex_by_label("db-author-0").unwrap();
        let opts = AcqOptions::with_k(3);
        let a = run_inc_s(&g, &tree, q, &opts);
        let b = run_inc_t(&g, &tree, q, &opts);
        assert!(
            b.candidates_verified <= a.candidates_verified,
            "Inc-T {} > Inc-S {}",
            b.candidates_verified,
            a.candidates_verified
        );
    }

    #[test]
    fn budget_truncates_cleanly() {
        let g = small_collab_graph();
        let tree = ClTree::build(&g);
        let q = g.vertex_by_label("db-author-0").unwrap();
        let opts = AcqOptions::with_k(2).max_candidates(3);
        for run in [run_inc_s, run_inc_t] {
            let res = run(&g, &tree, q, &opts);
            assert!(res.truncated);
            assert!(res.candidates_verified <= 4); // 3 + the in-flight one
        }
    }
}
