//! Opt-in per-phase wall-clock attribution for the ACQ hot path.
//!
//! `query_hotpath --profile` enables this module, runs the workload, and
//! reads back how the query time splits across three phases:
//!
//! * **walk** — CL-tree traversals (core materialization + keyword walks);
//! * **verify** — subset peels and sorted-list intersections;
//! * **expand** — member expansion / answer finalization.
//!
//! Disabled (the default), every instrumentation point is a single relaxed
//! atomic load and no clock is read, so the production hot path pays
//! nothing and stays allocation-free. Totals are process-wide atomics —
//! aggregate across threads, divide by query count for per-query figures.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static WALK_NS: AtomicU64 = AtomicU64::new(0);
static VERIFY_NS: AtomicU64 = AtomicU64::new(0);
static EXPAND_NS: AtomicU64 = AtomicU64::new(0);

/// Turns phase profiling on or off (off by default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Zeroes all phase accumulators.
pub fn reset() {
    WALK_NS.store(0, Relaxed);
    VERIFY_NS.store(0, Relaxed);
    EXPAND_NS.store(0, Relaxed);
}

/// Accumulated per-phase wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTotals {
    /// CL-tree traversal nanoseconds.
    pub walk_ns: u64,
    /// Peel + intersection nanoseconds.
    pub verify_ns: u64,
    /// Finalize / member-expansion nanoseconds.
    pub expand_ns: u64,
}

/// Reads the current accumulated totals.
pub fn totals() -> PhaseTotals {
    PhaseTotals {
        walk_ns: WALK_NS.load(Relaxed),
        verify_ns: VERIFY_NS.load(Relaxed),
        expand_ns: EXPAND_NS.load(Relaxed),
    }
}

/// Starts a phase timer — `None` (free) unless profiling is enabled.
#[inline]
pub(crate) fn timer() -> Option<Instant> {
    if ENABLED.load(Relaxed) {
        Some(Instant::now())
    } else {
        None
    }
}

#[inline]
fn record(t: Option<Instant>, cell: &AtomicU64) {
    if let Some(t) = t {
        cell.fetch_add(t.elapsed().as_nanos() as u64, Relaxed);
    }
}

/// Credits the elapsed time since `t` to the walk phase.
#[inline]
pub(crate) fn add_walk(t: Option<Instant>) {
    record(t, &WALK_NS);
}

/// Credits the elapsed time since `t` to the verify phase.
#[inline]
pub(crate) fn add_verify(t: Option<Instant>) {
    record(t, &VERIFY_NS);
}

/// Credits the elapsed time since `t` to the expand phase.
#[inline]
pub(crate) fn add_expand(t: Option<Instant>) {
    record(t, &EXPAND_NS);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiling_records_nothing() {
        set_enabled(false);
        reset();
        let t = timer();
        assert!(t.is_none());
        add_walk(t);
        assert_eq!(totals(), PhaseTotals { walk_ns: 0, verify_ns: 0, expand_ns: 0 });
    }

    #[test]
    fn enabled_profiling_accumulates() {
        set_enabled(true);
        reset();
        let t = timer();
        assert!(t.is_some());
        std::thread::sleep(std::time::Duration::from_millis(1));
        add_verify(t);
        assert!(totals().verify_ns > 0);
        set_enabled(false);
        reset();
    }
}
