//! Keyword-core verification — the inner loop shared by every strategy.
//!
//! A candidate keyword set `S'` verifies iff the subgraph induced on
//! vertices carrying all of `S'` contains a connected k-core with q. The
//! verifier caches the single-keyword vertex lists (restricted to q's
//! connected k-core via the CL-tree) and intersects them per candidate, so
//! each verification is a sorted-merge plus one subset peel.
//!
//! The verifier is a *view* over a [`VerifyScratch`]: all of its state —
//! the cached k-core, the flattened keyword lists, the intersection
//! accumulators and the peel buffers — lives in the scratch and is reused
//! across queries, so steady-state verification performs no heap
//! allocation.

use cx_cltree::{ClTree, KeywordSignature, NodeId};
use cx_graph::{AttributedGraph, KeywordId, VertexId};

use crate::profile;
use crate::scratch::VerifyScratch;

/// Per-query verification context: q's k-core subtree and cached
/// single-keyword vertex lists within it, all resident in a borrowed
/// [`VerifyScratch`].
pub(crate) struct Verifier<'a> {
    g: &'a AttributedGraph,
    tree: &'a ClTree,
    q: VertexId,
    k: u32,
    /// Root of q's connected k-core subtree in the CL-tree.
    subtree: NodeId,
    /// Whether `vs.core` has been materialized — the Dec fast path never
    /// walks the full subtree when signature pruning is enabled.
    core_ready: bool,
    /// Whether the neighbour-mask exact-count filter is armed (pruning on,
    /// k ≥ 1, |S| ≤ 64).
    filter_ready: bool,
    /// Upper bound on the size of any verifiable candidate keyword set —
    /// `alive_count()` when the filter is unarmed, else the largest `s`
    /// such that at least k core-resident neighbours of q carry `s` alive
    /// keywords (no community can share more; see
    /// [`Self::max_candidate_size`]).
    max_size: usize,
    vs: &'a mut VerifyScratch,
    /// Verification counter (keyword walks + intersect/peel runs),
    /// reported in [`crate::AcqResult`]. Candidates rejected by the
    /// neighbour-mask filter are *not* counted here — the reject is a
    /// handful of ANDs, not verification work.
    pub verified: usize,
    /// Budget meter: everything `verified` counts *plus* filter rejects,
    /// so strategies sweeping a filtered lattice still terminate under
    /// `max_candidates` even when almost nothing reaches a peel.
    pub examined: usize,
    /// Set when the cooperative cancel token fired during construction;
    /// the strategy must stop and mark the answer truncated (the engine
    /// discards cancelled answers anyway).
    pub cancelled: bool,
}

impl<'a> Verifier<'a> {
    /// Builds the context, or `None` when q has no connected k-core.
    ///
    /// `s` is the effective query keyword set; keywords that provably
    /// cannot appear in any answer are pruned immediately
    /// (anti-monotonicity: any superset would fail too).
    ///
    /// With signature pruning enabled (the default; `CX_PRUNE=off`
    /// disables), each keyword's carrier walk skips subtrees whose
    /// signature excludes the keyword, and the per-keyword singleton
    /// *peels* are skipped entirely: the verifier caches the raw carrier
    /// lists and defers all peeling to the per-candidate step. That is
    /// sound because every answer community is contained in each of its
    /// keywords' carrier lists, so intersecting raw lists and peeling the
    /// (tiny) intersection yields the identical community the legacy
    /// peeled-singleton path finds. `alive` then over-approximates the
    /// exact singleton-core test — the neighbour-mask filter and the
    /// [`Self::max_candidate_size`] cap keep the candidate lattice as
    /// small as the exact test would. Answers are bit-identical either
    /// way — enforced by the `bitset_prune_differential` oracle (work
    /// *counters* legitimately differ between the two paths).
    pub fn new(
        g: &'a AttributedGraph,
        tree: &'a ClTree,
        q: VertexId,
        k: u32,
        s: &[KeywordId],
        vs: &'a mut VerifyScratch,
    ) -> Option<Self> {
        let subtree = tree.subtree_root_for(q, k)?;
        let prune = cx_cltree::prune_enabled();
        vs.core.clear();
        vs.alive.clear();
        vs.alive_spos.clear();
        vs.lists_data.clear();
        vs.lists_off.clear();
        vs.lists_off.push(0);
        vs.nbr_mask.clear();
        vs.stat_subtrees_pruned = 0;
        vs.stat_signature_hits = 0;
        // Exact-count neighbour filter: any verifying community keeps
        // deg(q) ≥ k inside itself, and every member carries the whole
        // candidate set and sits in a k-core — so q needs at least k
        // neighbours of core number ≥ k carrying it. One bitmask per such
        // neighbour over S (bit j ⇔ s[j] ∈ W(u)) turns that necessary
        // condition into a popcount-free AND per candidate.
        let filter_ready = prune && k > 0 && s.len() <= 64;
        if filter_ready {
            for &u in g.neighbors(q) {
                if tree.core(u) < k {
                    continue;
                }
                let wu = g.keywords(u);
                let mut m = 0u64;
                let (mut i, mut j) = (0usize, 0usize);
                while i < s.len() && j < wu.len() {
                    match s[i].cmp(&wu[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            m |= 1 << i;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                vs.nbr_mask.push(m);
            }
        }
        let mut v = Self {
            g,
            tree,
            q,
            k,
            subtree,
            core_ready: false,
            filter_ready,
            max_size: 0,
            vs,
            verified: 0,
            examined: 0,
            cancelled: false,
        };
        if !prune {
            v.materialize_core();
        }
        // Deferred-peel mode: cache raw carrier lists and let the
        // per-candidate peel do all the work. Requires the neighbour
        // filter (or k = 0, where "q is a carrier" is already the exact
        // singleton test) to keep the candidate lattice in check.
        let defer = prune && (k == 0 || filter_ready);
        for (spos, &w) in s.iter().enumerate() {
            v.verified += 1;
            v.examined += 1;
            // Fewer than k carrier neighbours → the singleton core cannot
            // exist; skip its subtree walk and peel outright.
            if v.filter_ready {
                let bit = 1u64 << spos;
                let carriers = v.vs.nbr_mask.iter().filter(|&&m| m & bit != 0).count();
                if carriers < k as usize {
                    continue;
                }
            }
            let ok = if prune {
                let t = profile::timer();
                let stats = tree.keyword_vertices_in_subtree_pruned_into(
                    subtree,
                    w,
                    &KeywordSignature::mask_of(w),
                    &mut v.vs.stack,
                    &mut v.vs.kw_list,
                );
                profile::add_walk(t);
                v.vs.stat_subtrees_pruned += stats.subtrees_pruned as u64;
                v.vs.stat_signature_hits += stats.signature_hits as u64;
                if stats.cancelled {
                    v.cancelled = true;
                    break;
                }
                // Exact-count short-circuit: the walk's carrier count is
                // exact (per-node inverted lists), and a k-core needs at
                // least k+1 vertices — too few carriers can never verify,
                // so skip the peel entirely.
                if k > 0 && v.vs.kw_list.len() <= k as usize {
                    false
                } else if defer {
                    // Keep the keyword iff q itself is a carrier (every
                    // answer contains q); the peel is deferred to the
                    // candidate step, which works on intersections.
                    v.vs.kw_list.binary_search(&q).is_ok()
                } else {
                    let t = profile::timer();
                    let ok = v.vs.peel.connected_k_core_containing_into(
                        g,
                        &v.vs.kw_list,
                        q,
                        k,
                        &mut v.vs.peeled,
                    );
                    profile::add_verify(t);
                    ok
                }
            } else {
                let t = profile::timer();
                tree.keyword_vertices_in_subtree_into(
                    subtree,
                    w,
                    &mut v.vs.stack,
                    &mut v.vs.kw_list,
                );
                profile::add_walk(t);
                let t = profile::timer();
                let ok = v.vs.peel.connected_k_core_containing_into(
                    g,
                    &v.vs.kw_list,
                    q,
                    k,
                    &mut v.vs.peeled,
                );
                profile::add_verify(t);
                ok
            };
            if ok {
                // Every candidate community is contained in each of its
                // keywords' cached lists, so intersecting them and peeling
                // the intersection yields the exact answer — whether the
                // cache holds raw carrier lists (deferred-peel mode) or
                // peeled singleton cores (legacy path).
                v.vs.alive.push(w);
                v.vs.alive_spos.push(spos as u32);
                if defer {
                    v.vs.lists_data.extend_from_slice(&v.vs.kw_list);
                } else {
                    v.vs.lists_data.extend_from_slice(&v.vs.peeled);
                }
                v.vs.lists_off.push(v.vs.lists_data.len());
            }
        }
        // Candidate-size cap: a verifying S' of size s needs at least k
        // core-resident neighbours of q whose masks cover S' — so at
        // least k masks with popcount ≥ s over the alive bits. The k-th
        // largest such popcount bounds every candidate this query can
        // ever verify, which keeps the deferred-peel lattice as small as
        // the exact singleton test would (usually smaller).
        v.max_size = v.vs.alive.len();
        if v.filter_ready {
            let alive_mask: u64 = v.vs.alive_spos.iter().fold(0, |a, &p| a | (1 << p));
            let mut hist = [0u32; 65];
            for &m in &v.vs.nbr_mask {
                hist[(m & alive_mask).count_ones() as usize] += 1;
            }
            let mut cum = 0u64;
            let mut s_max = 0usize;
            for p in (1..=64usize).rev() {
                cum += u64::from(hist[p]);
                if cum >= u64::from(k) {
                    s_max = p;
                    break;
                }
            }
            v.max_size = v.max_size.min(s_max);
        }
        Some(v)
    }

    /// Largest candidate keyword-set size this query can possibly verify:
    /// `alive_count()` on the legacy path, tightened by the neighbour-mask
    /// popcount bound when the filter is armed. Dec starts its downward
    /// sweep here — sizes above the cap are provably hitless.
    pub fn max_candidate_size(&self) -> usize {
        self.max_size
    }

    /// The exact-count necessary condition for a candidate (indices into
    /// [`Self::alive`]): at least k neighbours of q must carry every
    /// candidate keyword, or no qualifying community can exist. Returns
    /// `true` when the candidate survives (or the filter is unarmed).
    fn neighbor_filter_passes(&self, idxs: &[usize]) -> bool {
        if !self.filter_ready {
            return true;
        }
        let m: u64 = idxs.iter().fold(0, |acc, &i| acc | (1 << self.vs.alive_spos[i]));
        let mut carriers = 0u32;
        for &b in &self.vs.nbr_mask {
            if b & m == m {
                carriers += 1;
                if carriers >= self.k {
                    return true;
                }
            }
        }
        false
    }

    /// Walks the full subtree into `vs.core` (sorted).
    fn materialize_core(&mut self) {
        let t = profile::timer();
        self.tree.subtree_vertices_into(self.subtree, &mut self.vs.stack, &mut self.vs.core);
        profile::add_walk(t);
        self.core_ready = true;
    }

    /// Vertices of the connected k-core containing q (sorted),
    /// materialized lazily on first use — the Dec fast path (top-size
    /// candidate verifies) never needs it.
    pub fn core(&mut self) -> &[VertexId] {
        if !self.core_ready {
            self.materialize_core();
        }
        &self.vs.core
    }

    /// Surviving keywords of S, sorted by id. On the legacy path these
    /// are exactly the keywords whose singleton keyword-core exists; in
    /// deferred-peel mode they are the keywords not refuted by the cheap
    /// necessary conditions (a sound over-approximation — candidates over
    /// dead keywords simply fail their peel).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn alive(&self) -> &[KeywordId] {
        &self.vs.alive
    }

    /// Number of surviving keywords.
    pub fn alive_count(&self) -> usize {
        self.vs.alive.len()
    }

    /// Output of the most recent successful verification.
    pub fn peeled(&self) -> &[VertexId] {
        &self.vs.peeled
    }

    /// Intersects the vertex lists of the keywords at `idxs` into the
    /// scratch accumulator. Empty `idxs` yields the whole k-core.
    ///
    /// Seeds the accumulator from the *shortest* list — intersections
    /// only shrink, so starting small keeps every later merge near the
    /// size of the final answer rather than of the inputs.
    fn intersect_into_acc(&mut self, idxs: &[usize]) {
        let Some(&first) = idxs.first() else {
            self.core();
            let vs = &mut *self.vs;
            vs.acc.clear();
            vs.acc.extend_from_slice(&vs.core);
            return;
        };
        let vs = &mut *self.vs;
        vs.acc.clear();
        let len_of = |off: &[usize], i: usize| off[i + 1] - off[i];
        let mut smallest = first;
        for &i in &idxs[1..] {
            if len_of(&vs.lists_off, i) < len_of(&vs.lists_off, smallest) {
                smallest = i;
            }
        }
        vs.acc
            .extend_from_slice(&vs.lists_data[vs.lists_off[smallest]..vs.lists_off[smallest + 1]]);
        for &i in idxs {
            if i == smallest {
                continue;
            }
            let list = &vs.lists_data[vs.lists_off[i]..vs.lists_off[i + 1]];
            intersect_sorted_adaptive(&vs.acc, list, &mut vs.tmp);
            std::mem::swap(&mut vs.acc, &mut vs.tmp);
            if vs.acc.is_empty() {
                break;
            }
        }
    }

    /// Peels the accumulator to the connected k-core containing q; the
    /// result lands in [`Self::peeled`]. Increments the work counter.
    fn peel_acc(&mut self) -> bool {
        self.verified += 1;
        self.examined += 1;
        let vs = &mut *self.vs;
        // Fast rejections: q must be present and at least k+1 vertices must
        // remain for a k-core to exist at all.
        if vs.acc.len() < self.k as usize + 1 && self.k > 0 {
            return false;
        }
        if vs.acc.binary_search(&self.q).is_err() {
            return false;
        }
        vs.peel.connected_k_core_containing_into(self.g, &vs.acc, self.q, self.k, &mut vs.peeled)
    }

    /// Verifies a candidate keyword subset (indices into [`Self::alive`]):
    /// intersect the lists, then peel. On success the community is in
    /// [`Self::peeled`].
    pub fn verify_idxs(&mut self, idxs: &[usize]) -> bool {
        let t = profile::timer();
        // The exact-count reject still counts as one examined candidate,
        // so the budget meters work uniformly across filtered and peeled
        // candidates.
        if !self.neighbor_filter_passes(idxs) {
            self.examined += 1;
            profile::add_verify(t);
            return false;
        }
        self.intersect_into_acc(idxs);
        let ok = self.peel_acc();
        profile::add_verify(t);
        ok
    }

    /// Verifies an arbitrary candidate member list (sorted). On success
    /// the community is in [`Self::peeled`].
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn verify_members(&mut self, members: &[VertexId]) -> bool {
        self.vs.acc.clear();
        self.vs.acc.extend_from_slice(members);
        self.peel_acc()
    }

    /// Verifies the extension of a prefix core by keyword `i`: intersect
    /// the prefix with `list(i)`, then peel. On success the extended
    /// community is in [`Self::peeled`]. Inc-T's shared-prefix step.
    pub fn verify_prefix_extend(&mut self, prefix: &[VertexId], i: usize) -> bool {
        let t = profile::timer();
        {
            let vs = &mut *self.vs;
            let list = &vs.lists_data[vs.lists_off[i]..vs.lists_off[i + 1]];
            intersect_sorted_adaptive(prefix, list, &mut vs.acc);
        }
        let ok = self.peel_acc();
        profile::add_verify(t);
        ok
    }
}

/// Size ratio beyond which intersection switches from a linear merge to
/// binary-probing the longer list with elements of the shorter one.
const GALLOP_RATIO: usize = 16;

/// Sorted intersection into `out` (cleared first), picking the cheaper of
/// a linear merge and a binary-search probe based on the length skew.
/// Output is identical either way; only the traversal differs.
fn intersect_sorted_adaptive(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len().saturating_mul(GALLOP_RATIO) >= big.len() {
        intersect_sorted_into(a, b, out);
        return;
    }
    out.clear();
    // Narrow the probe window as `small` advances: both lists are sorted,
    // so matches for later elements can only sit further right.
    let mut lo = 0usize;
    for &x in small {
        match big[lo..].binary_search(&x) {
            Ok(p) => {
                out.push(x);
                lo += p + 1;
            }
            Err(p) => lo += p,
        }
        if lo >= big.len() {
            break;
        }
    }
}

/// Sorted-merge intersection of two vertex lists into a caller-provided
/// buffer (cleared first); allocation-free once the buffer has capacity.
pub fn intersect_sorted_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    out.reserve(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Sorted-merge intersection of two vertex lists.
pub fn intersect_sorted_vertices(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    intersect_sorted_into(a, b, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;

    #[test]
    fn verifier_prunes_dead_singletons() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let s: Vec<KeywordId> =
            ["w", "x", "y"].iter().map(|n| g.interner().get(n).unwrap()).collect();
        let mut vs = crate::QueryScratch::new();
        let mut v = Verifier::new(&g, &tree, a, 2, &s, &mut vs.verify).unwrap();
        // w is only on A → its singleton core dies; x and y survive.
        let names: Vec<&str> =
            v.alive().iter().map(|&w| g.interner().name(w).unwrap()).collect();
        assert_eq!(names, vec!["x", "y"]);
        assert_eq!(v.core().len(), 5); // {A,B,C,D,E}
    }

    #[test]
    fn verify_peels_to_answer() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let s: Vec<KeywordId> =
            ["w", "x", "y"].iter().map(|n| g.interner().get(n).unwrap()).collect();
        let mut vs = crate::QueryScratch::new();
        let mut v = Verifier::new(&g, &tree, a, 2, &s, &mut vs.verify).unwrap();
        // {x, y} (both surviving keywords): A, C, D carry both.
        assert!(v.verify_idxs(&[0, 1]));
        let labels: Vec<&str> = v.peeled().iter().map(|&u| g.label(u)).collect();
        assert_eq!(labels, vec!["A", "C", "D"]);
    }

    #[test]
    fn none_when_no_core() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let mut vs = crate::QueryScratch::new();
        assert!(Verifier::new(&g, &tree, a, 4, &[], &mut vs.verify).is_none());
    }

    #[test]
    fn empty_candidate_fails_fast() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let mut vs = crate::QueryScratch::new();
        let mut v = Verifier::new(&g, &tree, a, 2, &[], &mut vs.verify).unwrap();
        assert!(!v.verify_members(&[]));
        assert!(v.verified >= 1);
    }

    /// A reused verifier scratch must give identical answers to a fresh
    /// one, across queries and graphs.
    #[test]
    fn scratch_reuse_is_transparent() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let mut pooled = crate::QueryScratch::new();
        for q in g.vertices() {
            for k in 1..=3 {
                let s = g.keywords(q).to_vec();
                let mut fresh = crate::QueryScratch::new();
                let a = Verifier::new(&g, &tree, q, k, &s, &mut pooled.verify);
                let b = Verifier::new(&g, &tree, q, k, &s, &mut fresh.verify);
                match (a, b) {
                    (None, None) => {}
                    (Some(mut a), Some(mut b)) => {
                        assert_eq!(a.core(), b.core(), "q={q} k={k}");
                        assert_eq!(a.alive(), b.alive(), "q={q} k={k}");
                        for i in 0..a.alive_count() {
                            let ra = a.verify_idxs(&[i]);
                            let rb = b.verify_idxs(&[i]);
                            assert_eq!(ra, rb, "q={q} k={k} i={i}");
                            if ra {
                                assert_eq!(a.peeled(), b.peeled(), "q={q} k={k} i={i}");
                            }
                        }
                    }
                    _ => panic!("fresh/pooled verifier existence diverged at q={q} k={k}"),
                }
            }
        }
    }
}
