//! Keyword-core verification — the inner loop shared by every strategy.
//!
//! A candidate keyword set `S'` verifies iff the subgraph induced on
//! vertices carrying all of `S'` contains a connected k-core with q. The
//! verifier caches the single-keyword vertex lists (restricted to q's
//! connected k-core via the CL-tree) and intersects them per candidate, so
//! each verification is a sorted-merge plus one subset peel.
//!
//! The verifier is a *view* over a [`VerifyScratch`]: all of its state —
//! the cached k-core, the flattened keyword lists, the intersection
//! accumulators and the peel buffers — lives in the scratch and is reused
//! across queries, so steady-state verification performs no heap
//! allocation.

use cx_cltree::ClTree;
use cx_graph::{AttributedGraph, KeywordId, VertexId};

use crate::scratch::VerifyScratch;

/// Per-query verification context: q's k-core subtree and cached
/// single-keyword vertex lists within it, all resident in a borrowed
/// [`VerifyScratch`].
pub(crate) struct Verifier<'a> {
    g: &'a AttributedGraph,
    q: VertexId,
    k: u32,
    vs: &'a mut VerifyScratch,
    /// Verification counter (peeling runs), reported in [`crate::AcqResult`].
    pub verified: usize,
}

impl<'a> Verifier<'a> {
    /// Builds the context, or `None` when q has no connected k-core.
    ///
    /// `s` is the effective query keyword set; keywords whose singleton
    /// keyword-core fails are pruned immediately (anti-monotonicity: any
    /// superset would fail too).
    pub fn new(
        g: &'a AttributedGraph,
        tree: &ClTree,
        q: VertexId,
        k: u32,
        s: &[KeywordId],
        vs: &'a mut VerifyScratch,
    ) -> Option<Self> {
        let subtree = tree.subtree_root_for(q, k)?;
        tree.subtree_vertices_into(subtree, &mut vs.stack, &mut vs.core);
        vs.alive.clear();
        vs.lists_data.clear();
        vs.lists_off.clear();
        vs.lists_off.push(0);
        let mut v = Self { g, q, k, vs, verified: 0 };
        for &w in s {
            tree.keyword_vertices_in_subtree_into(subtree, w, &mut v.vs.stack, &mut v.vs.kw_list);
            v.verified += 1;
            if v.vs.peel.connected_k_core_containing_into(
                g,
                &v.vs.kw_list,
                q,
                k,
                &mut v.vs.peeled,
            ) {
                // Cache the *peeled* singleton core, not the raw carrier
                // list: every candidate community is contained in each of
                // its keywords' singleton cores, so intersecting cores
                // (typically orders of magnitude smaller than carrier
                // lists) peels to the identical answer.
                v.vs.alive.push(w);
                v.vs.lists_data.extend_from_slice(&v.vs.peeled);
                v.vs.lists_off.push(v.vs.lists_data.len());
            }
        }
        Some(v)
    }

    /// Vertices of the connected k-core containing q (sorted).
    pub fn core(&self) -> &[VertexId] {
        &self.vs.core
    }

    /// Surviving keywords of S (those whose singleton keyword-core
    /// exists), sorted by id.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn alive(&self) -> &[KeywordId] {
        &self.vs.alive
    }

    /// Number of surviving keywords.
    pub fn alive_count(&self) -> usize {
        self.vs.alive.len()
    }

    /// Output of the most recent successful verification.
    pub fn peeled(&self) -> &[VertexId] {
        &self.vs.peeled
    }

    /// Intersects the vertex lists of the keywords at `idxs` into the
    /// scratch accumulator. Empty `idxs` yields the whole k-core.
    ///
    /// Seeds the accumulator from the *shortest* list — intersections
    /// only shrink, so starting small keeps every later merge near the
    /// size of the final answer rather than of the inputs.
    fn intersect_into_acc(&mut self, idxs: &[usize]) {
        let vs = &mut *self.vs;
        vs.acc.clear();
        let Some(&first) = idxs.first() else {
            vs.acc.extend_from_slice(&vs.core);
            return;
        };
        let len_of = |off: &[usize], i: usize| off[i + 1] - off[i];
        let mut smallest = first;
        for &i in &idxs[1..] {
            if len_of(&vs.lists_off, i) < len_of(&vs.lists_off, smallest) {
                smallest = i;
            }
        }
        vs.acc
            .extend_from_slice(&vs.lists_data[vs.lists_off[smallest]..vs.lists_off[smallest + 1]]);
        for &i in idxs {
            if i == smallest {
                continue;
            }
            let list = &vs.lists_data[vs.lists_off[i]..vs.lists_off[i + 1]];
            intersect_sorted_adaptive(&vs.acc, list, &mut vs.tmp);
            std::mem::swap(&mut vs.acc, &mut vs.tmp);
            if vs.acc.is_empty() {
                break;
            }
        }
    }

    /// Peels the accumulator to the connected k-core containing q; the
    /// result lands in [`Self::peeled`]. Increments the work counter.
    fn peel_acc(&mut self) -> bool {
        self.verified += 1;
        let vs = &mut *self.vs;
        // Fast rejections: q must be present and at least k+1 vertices must
        // remain for a k-core to exist at all.
        if vs.acc.len() < self.k as usize + 1 && self.k > 0 {
            return false;
        }
        if vs.acc.binary_search(&self.q).is_err() {
            return false;
        }
        vs.peel.connected_k_core_containing_into(self.g, &vs.acc, self.q, self.k, &mut vs.peeled)
    }

    /// Verifies a candidate keyword subset (indices into [`Self::alive`]):
    /// intersect the lists, then peel. On success the community is in
    /// [`Self::peeled`].
    pub fn verify_idxs(&mut self, idxs: &[usize]) -> bool {
        self.intersect_into_acc(idxs);
        self.peel_acc()
    }

    /// Verifies an arbitrary candidate member list (sorted). On success
    /// the community is in [`Self::peeled`].
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn verify_members(&mut self, members: &[VertexId]) -> bool {
        self.vs.acc.clear();
        self.vs.acc.extend_from_slice(members);
        self.peel_acc()
    }

    /// Verifies the extension of a prefix core by keyword `i`: intersect
    /// the prefix with `list(i)`, then peel. On success the extended
    /// community is in [`Self::peeled`]. Inc-T's shared-prefix step.
    pub fn verify_prefix_extend(&mut self, prefix: &[VertexId], i: usize) -> bool {
        {
            let vs = &mut *self.vs;
            let list = &vs.lists_data[vs.lists_off[i]..vs.lists_off[i + 1]];
            intersect_sorted_adaptive(prefix, list, &mut vs.acc);
        }
        self.peel_acc()
    }
}

/// Size ratio beyond which intersection switches from a linear merge to
/// binary-probing the longer list with elements of the shorter one.
const GALLOP_RATIO: usize = 16;

/// Sorted intersection into `out` (cleared first), picking the cheaper of
/// a linear merge and a binary-search probe based on the length skew.
/// Output is identical either way; only the traversal differs.
fn intersect_sorted_adaptive(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len().saturating_mul(GALLOP_RATIO) >= big.len() {
        intersect_sorted_into(a, b, out);
        return;
    }
    out.clear();
    // Narrow the probe window as `small` advances: both lists are sorted,
    // so matches for later elements can only sit further right.
    let mut lo = 0usize;
    for &x in small {
        match big[lo..].binary_search(&x) {
            Ok(p) => {
                out.push(x);
                lo += p + 1;
            }
            Err(p) => lo += p,
        }
        if lo >= big.len() {
            break;
        }
    }
}

/// Sorted-merge intersection of two vertex lists into a caller-provided
/// buffer (cleared first); allocation-free once the buffer has capacity.
pub fn intersect_sorted_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    out.reserve(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Sorted-merge intersection of two vertex lists.
pub fn intersect_sorted_vertices(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    intersect_sorted_into(a, b, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;

    #[test]
    fn verifier_prunes_dead_singletons() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let s: Vec<KeywordId> =
            ["w", "x", "y"].iter().map(|n| g.interner().get(n).unwrap()).collect();
        let mut vs = crate::QueryScratch::new();
        let v = Verifier::new(&g, &tree, a, 2, &s, &mut vs.verify).unwrap();
        // w is only on A → its singleton core dies; x and y survive.
        let names: Vec<&str> =
            v.alive().iter().map(|&w| g.interner().name(w).unwrap()).collect();
        assert_eq!(names, vec!["x", "y"]);
        assert_eq!(v.core().len(), 5); // {A,B,C,D,E}
    }

    #[test]
    fn verify_peels_to_answer() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let s: Vec<KeywordId> =
            ["w", "x", "y"].iter().map(|n| g.interner().get(n).unwrap()).collect();
        let mut vs = crate::QueryScratch::new();
        let mut v = Verifier::new(&g, &tree, a, 2, &s, &mut vs.verify).unwrap();
        // {x, y} (both surviving keywords): A, C, D carry both.
        assert!(v.verify_idxs(&[0, 1]));
        let labels: Vec<&str> = v.peeled().iter().map(|&u| g.label(u)).collect();
        assert_eq!(labels, vec!["A", "C", "D"]);
    }

    #[test]
    fn none_when_no_core() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let mut vs = crate::QueryScratch::new();
        assert!(Verifier::new(&g, &tree, a, 4, &[], &mut vs.verify).is_none());
    }

    #[test]
    fn empty_candidate_fails_fast() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let mut vs = crate::QueryScratch::new();
        let mut v = Verifier::new(&g, &tree, a, 2, &[], &mut vs.verify).unwrap();
        assert!(!v.verify_members(&[]));
        assert!(v.verified >= 1);
    }

    /// A reused verifier scratch must give identical answers to a fresh
    /// one, across queries and graphs.
    #[test]
    fn scratch_reuse_is_transparent() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let mut pooled = crate::QueryScratch::new();
        for q in g.vertices() {
            for k in 1..=3 {
                let s = g.keywords(q).to_vec();
                let mut fresh = crate::QueryScratch::new();
                let a = Verifier::new(&g, &tree, q, k, &s, &mut pooled.verify);
                let b = Verifier::new(&g, &tree, q, k, &s, &mut fresh.verify);
                match (a, b) {
                    (None, None) => {}
                    (Some(mut a), Some(mut b)) => {
                        assert_eq!(a.core(), b.core(), "q={q} k={k}");
                        assert_eq!(a.alive(), b.alive(), "q={q} k={k}");
                        for i in 0..a.alive_count() {
                            let ra = a.verify_idxs(&[i]);
                            let rb = b.verify_idxs(&[i]);
                            assert_eq!(ra, rb, "q={q} k={k} i={i}");
                            if ra {
                                assert_eq!(a.peeled(), b.peeled(), "q={q} k={k} i={i}");
                            }
                        }
                    }
                    _ => panic!("fresh/pooled verifier existence diverged at q={q} k={k}"),
                }
            }
        }
    }
}
