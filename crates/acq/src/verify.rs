//! Keyword-core verification — the inner loop shared by every strategy.
//!
//! A candidate keyword set `S'` verifies iff the subgraph induced on
//! vertices carrying all of `S'` contains a connected k-core with q. The
//! verifier caches the single-keyword vertex lists (restricted to q's
//! connected k-core via the CL-tree) and intersects them per candidate, so
//! each verification is a sorted-merge plus one subset peel.

use cx_cltree::{ClTree, NodeId};
use cx_graph::{AttributedGraph, KeywordId, VertexId};
use cx_kcore::connected_k_core_containing;

/// Per-query verification context: q's k-core subtree and cached
/// single-keyword vertex lists within it.
pub struct Verifier<'a> {
    g: &'a AttributedGraph,
    q: VertexId,
    k: u32,
    /// Vertices of the connected k-core containing q (sorted).
    pub core: Vec<VertexId>,
    /// Surviving keywords of S (those whose singleton keyword-core exists),
    /// sorted by id.
    pub alive: Vec<KeywordId>,
    /// `lists[i]`: sorted vertices of `core` carrying `alive[i]`.
    lists: Vec<Vec<VertexId>>,
    /// Verification counter (peeling runs), reported in [`crate::AcqResult`].
    pub verified: usize,
}

impl<'a> Verifier<'a> {
    /// Builds the context, or `None` when q has no connected k-core.
    ///
    /// `s` is the effective query keyword set; keywords whose singleton
    /// keyword-core fails are pruned immediately (anti-monotonicity: any
    /// superset would fail too).
    pub fn new(
        g: &'a AttributedGraph,
        tree: &ClTree,
        q: VertexId,
        k: u32,
        s: &[KeywordId],
    ) -> Option<Self> {
        let subtree: NodeId = tree.subtree_root_for(q, k)?;
        let core = tree.subtree_vertices(subtree);
        let mut v = Self { g, q, k, core, alive: Vec::new(), lists: Vec::new(), verified: 0 };
        for &w in s {
            let members = tree.keyword_vertices_in_subtree(subtree, w);
            v.verified += 1;
            if connected_k_core_containing(g, &members, q, k).is_some() {
                v.alive.push(w);
                v.lists.push(members);
            }
        }
        Some(v)
    }

    /// The candidate vertex list for one surviving keyword (by index into
    /// [`Self::alive`]).
    pub fn list(&self, idx: usize) -> &[VertexId] {
        &self.lists[idx]
    }

    /// Intersects the vertex lists of the keywords at `idxs` (indices into
    /// [`Self::alive`]). Empty `idxs` yields the whole k-core.
    pub fn intersect(&self, idxs: &[usize]) -> Vec<VertexId> {
        if idxs.is_empty() {
            return self.core.clone();
        }
        let mut acc: Vec<VertexId> = self.lists[idxs[0]].clone();
        for &i in &idxs[1..] {
            acc = intersect_sorted_vertices(&acc, &self.lists[i]);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Verifies a candidate vertex list: peel to the connected k-core
    /// containing q. Increments the work counter.
    pub fn peel(&mut self, members: &[VertexId]) -> Option<Vec<VertexId>> {
        self.verified += 1;
        // Fast rejections: q must be present and at least k+1 vertices must
        // remain for a k-core to exist at all.
        if members.len() < self.k as usize + 1 && self.k > 0 {
            return None;
        }
        if members.binary_search(&self.q).is_err() {
            return None;
        }
        connected_k_core_containing(self.g, members, self.q, self.k)
    }

    /// Convenience: intersect then peel.
    pub fn verify(&mut self, idxs: &[usize]) -> Option<Vec<VertexId>> {
        let members = self.intersect(idxs);
        self.peel(&members)
    }

    /// Fallback answer when no keyword subset verifies: the plain
    /// connected k-core containing q.
    pub fn plain_core(&self) -> Vec<VertexId> {
        self.core.clone()
    }
}

/// Sorted-merge intersection of two vertex lists.
pub fn intersect_sorted_vertices(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;

    #[test]
    fn verifier_prunes_dead_singletons() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let s: Vec<KeywordId> =
            ["w", "x", "y"].iter().map(|n| g.interner().get(n).unwrap()).collect();
        let v = Verifier::new(&g, &tree, a, 2, &s).unwrap();
        // w is only on A → its singleton core dies; x and y survive.
        let names: Vec<&str> =
            v.alive.iter().map(|&w| g.interner().name(w).unwrap()).collect();
        assert_eq!(names, vec!["x", "y"]);
        assert_eq!(v.core.len(), 5); // {A,B,C,D,E}
    }

    #[test]
    fn verify_peels_to_answer() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let s: Vec<KeywordId> =
            ["w", "x", "y"].iter().map(|n| g.interner().get(n).unwrap()).collect();
        let mut v = Verifier::new(&g, &tree, a, 2, &s).unwrap();
        // {x, y} (both surviving keywords): A, C, D carry both.
        let got = v.verify(&[0, 1]).unwrap();
        let labels: Vec<&str> = got.iter().map(|&u| g.label(u)).collect();
        assert_eq!(labels, vec!["A", "C", "D"]);
    }

    #[test]
    fn none_when_no_core() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        assert!(Verifier::new(&g, &tree, a, 4, &[]).is_none());
    }

    #[test]
    fn empty_candidate_fails_fast() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let a = g.vertex_by_label("A").unwrap();
        let mut v = Verifier::new(&g, &tree, a, 2, &[]).unwrap();
        assert!(v.peel(&[]).is_none());
        assert!(v.verified >= 1);
    }
}
