//! The index-free `Basic` baseline.
//!
//! Straight from Section 3.2's strawman: "first consider all the possible
//! keyword combinations of S, and then return the subgraphs which satisfy
//! the minimum degree constraint and have the most shared keywords". No
//! CL-tree, no single-keyword pruning — every subset of `S` (largest
//! first) is materialised from a whole-graph inverted index and peeled.
//! Complexity is exponential in `|S|`; it exists to be benchmarked against.
//!
//! Basic rebuilds its inverted index per query by design (it is the
//! no-index baseline), so it is not allocation-free; it does reuse the
//! scratch peel buffers for each candidate's verification.

use cx_graph::{AttributedGraph, InvertedIndex, VertexId};

use crate::dec::next_combination;
use crate::scratch::{finalize_into, QueryAnswer, QueryScratch};
use crate::{AcqOptions, AcqResult};

/// Runs `Basic` into a caller-provided scratch and answer.
pub(crate) fn run_scratch(
    g: &AttributedGraph,
    q: VertexId,
    opts: &AcqOptions,
    scratch: &mut QueryScratch,
    out: &mut QueryAnswer,
) {
    out.clear();
    let QueryScratch { verify: vs, strat } = scratch;
    crate::effective_keywords_into(g, q, opts, &mut strat.s);
    let idx = InvertedIndex::build(g);
    let n = strat.s.len();
    let budget = opts.max_candidates;
    let mut verified = 0usize;
    let mut truncated = false;

    for size in (1..=n).rev() {
        strat.clear_hits();
        strat.idxs.clear();
        strat.idxs.extend(0..size);
        loop {
            if budget > 0 && verified >= budget {
                truncated = true;
                break;
            }
            let subset: Vec<_> = strat.idxs.iter().map(|&i| strat.s[i]).collect();
            let members = idx.vertices_with_all(g, &subset);
            verified += 1;
            if vs.peel.connected_k_core_containing_into(g, &members, q, opts.k, &mut vs.peeled) {
                strat.push_hit(&vs.peeled);
            }
            if !next_combination(&mut strat.idxs, n) {
                break;
            }
        }
        if strat.hit_count() > 0 {
            out.shared_keyword_count = size;
            out.candidates_verified = verified;
            out.truncated = truncated;
            finalize_into(g, strat, true, out);
            return;
        }
        if truncated {
            break;
        }
    }

    // Fallback: the plain connected k-core containing q, computed without
    // any index (this is the baseline, after all).
    let all: Vec<VertexId> = g.vertices().collect();
    vs.peel.k_core_of_subset_into(g, &all, opts.k, &mut vs.kw_list);
    strat.clear_hits();
    out.candidates_verified = verified;
    out.truncated = truncated;
    if vs.peel.connected_k_core_containing_into(g, &vs.kw_list, q, opts.k, &mut vs.peeled) {
        strat.push_hit(&vs.peeled);
        finalize_into(g, strat, false, out);
    }
    // else: out stays empty (q not in any k-core).
}

/// Runs `Basic` with a one-off scratch, returning an owned result.
pub fn run(g: &AttributedGraph, q: VertexId, opts: &AcqOptions) -> AcqResult {
    let mut scratch = QueryScratch::new();
    let mut out = QueryAnswer::new();
    run_scratch(g, q, opts, &mut scratch, &mut out);
    out.to_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;

    #[test]
    fn basic_verifies_exponentially_many_candidates() {
        let g = figure5_graph();
        let q = g.vertex_by_label("A").unwrap();
        // |S| = |W(A)| = 3 and the answer is at size 2, so Basic checks
        // C(3,3) + C(3,2) = 4 candidates.
        let res = run(&g, q, &AcqOptions::with_k(2));
        assert_eq!(res.candidates_verified, 4);
        assert_eq!(res.shared_keyword_count, 2);
    }

    #[test]
    fn budget_stops_basic() {
        let g = figure5_graph();
        let q = g.vertex_by_label("A").unwrap();
        let res = run(&g, q, &AcqOptions::with_k(2).max_candidates(1));
        assert!(res.truncated);
    }
}
