//! The index-free `Basic` baseline.
//!
//! Straight from Section 3.2's strawman: "first consider all the possible
//! keyword combinations of S, and then return the subgraphs which satisfy
//! the minimum degree constraint and have the most shared keywords". No
//! CL-tree, no single-keyword pruning — every subset of `S` (largest
//! first) is materialised from a whole-graph inverted index and peeled.
//! Complexity is exponential in `|S|`; it exists to be benchmarked against.

use cx_graph::{AttributedGraph, InvertedIndex, VertexId};
use cx_kcore::{connected_k_core_containing, k_core_of_subset};

use crate::dec::next_combination;
use crate::{AcqOptions, AcqResult};

/// Runs `Basic`.
pub fn run(g: &AttributedGraph, q: VertexId, opts: &AcqOptions) -> AcqResult {
    let s = crate::effective_keywords(g, q, opts);
    let idx = InvertedIndex::build(g);
    let n = s.len();
    let budget = opts.max_candidates;
    let mut verified = 0usize;
    let mut truncated = false;

    for size in (1..=n).rev() {
        let mut hits: Vec<Vec<VertexId>> = Vec::new();
        let mut idxs: Vec<usize> = (0..size).collect();
        loop {
            if budget > 0 && verified >= budget {
                truncated = true;
                break;
            }
            let subset: Vec<_> = idxs.iter().map(|&i| s[i]).collect();
            let members = idx.vertices_with_all(g, &subset);
            verified += 1;
            if let Some(core) = connected_k_core_containing(g, &members, q, opts.k) {
                hits.push(core);
            }
            if !next_combination(&mut idxs, n) {
                break;
            }
        }
        if !hits.is_empty() {
            return AcqResult {
                communities: crate::finalize(g, &s, hits),
                shared_keyword_count: size,
                candidates_verified: verified,
                truncated,
            };
        }
        if truncated {
            break;
        }
    }

    // Fallback: the plain connected k-core containing q, computed without
    // any index (this is the baseline, after all).
    let all: Vec<VertexId> = g.vertices().collect();
    let core = k_core_of_subset(g, &all, opts.k);
    match connected_k_core_containing(g, &core, q, opts.k) {
        Some(plain) => AcqResult {
            communities: crate::finalize(g, &[], vec![plain]),
            shared_keyword_count: 0,
            candidates_verified: verified,
            truncated,
        },
        None => AcqResult {
            communities: Vec::new(),
            shared_keyword_count: 0,
            candidates_verified: verified,
            truncated,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;

    #[test]
    fn basic_verifies_exponentially_many_candidates() {
        let g = figure5_graph();
        let q = g.vertex_by_label("A").unwrap();
        // |S| = |W(A)| = 3 and the answer is at size 2, so Basic checks
        // C(3,3) + C(3,2) = 4 candidates.
        let res = run(&g, q, &AcqOptions::with_k(2));
        assert_eq!(res.candidates_verified, 4);
        assert_eq!(res.shared_keyword_count, 2);
    }

    #[test]
    fn budget_stops_basic() {
        let g = figure5_graph();
        let q = g.vertex_by_label("A").unwrap();
        let res = run(&g, q, &AcqOptions::with_k(2).max_candidates(1));
        assert!(res.truncated);
    }
}
