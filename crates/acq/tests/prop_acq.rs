//! Property tests for ACQ: all four strategies must return identical
//! answers on random attributed graphs, and those answers must satisfy
//! Problem 1's three conditions (connectivity, structure cohesiveness,
//! maximal keyword cohesiveness).
//!
//! Gated behind the non-default `proptest` feature: the build environment
//! is offline, so the `proptest` dev-dependency is not in the manifest.
//! Restore it (and `rand`) before enabling the feature in a networked
//! environment — see DESIGN.md "Offline build policy".
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use cx_acq::{acq, AcqOptions, AcqStrategy};
use cx_cltree::ClTree;
use cx_graph::{AttributedGraph, GraphBuilder, VertexId};

fn arb_graph(max_n: usize) -> impl Strategy<Value = AttributedGraph> {
    (3..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(3 * n));
        let kws = proptest::collection::vec(proptest::collection::vec(0u8..6, 0..5), n);
        (Just(n), edges, kws).prop_map(|(n, edges, kws)| {
            let mut b = GraphBuilder::new();
            for (i, ks) in kws.iter().enumerate() {
                let names: Vec<String> = ks.iter().map(|k| format!("kw{k}")).collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                b.add_vertex(&format!("v{i}"), &refs);
            }
            for (u, v) in edges {
                b.add_edge(VertexId(u), VertexId(v));
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_strategies_agree(g in arb_graph(18), qi in 0u32..18, k in 1u32..4) {
        let q = VertexId(qi % g.vertex_count() as u32);
        let tree = ClTree::build(&g);
        let opts = AcqOptions::with_k(k);
        let reference = acq(&g, &tree, q, &opts, AcqStrategy::Dec);
        for strat in [AcqStrategy::Basic, AcqStrategy::IncS, AcqStrategy::IncT] {
            let res = acq(&g, &tree, q, &opts, strat);
            prop_assert_eq!(
                res.shared_keyword_count, reference.shared_keyword_count,
                "L mismatch: {} vs Dec (q=v{}, k={})", strat.name(), q.0, k
            );
            prop_assert_eq!(
                &res.communities, &reference.communities,
                "community mismatch: {} vs Dec (q=v{}, k={})", strat.name(), q.0, k
            );
        }
    }

    #[test]
    fn answers_satisfy_problem_one(g in arb_graph(20), qi in 0u32..20, k in 1u32..4) {
        let q = VertexId(qi % g.vertex_count() as u32);
        let tree = ClTree::build(&g);
        let res = acq(&g, &tree, q, &AcqOptions::with_k(k), AcqStrategy::Dec);
        for c in &res.communities {
            // Contains q.
            prop_assert!(c.contains(q));
            // Structure cohesiveness: min internal degree ≥ k.
            prop_assert!(c.min_internal_degree(&g) >= k as usize,
                "min degree {} < {}", c.min_internal_degree(&g), k);
            // Connectivity.
            prop_assert!(
                cx_graph::traversal::induced_diameter(&g, c.vertices()).is_some(),
                "community disconnected"
            );
            // Keyword cohesiveness: every member carries every shared keyword.
            for &v in c.vertices() {
                for &w in c.shared_keywords() {
                    prop_assert!(g.has_keyword(v, w));
                }
            }
            prop_assert_eq!(c.shared_keywords().len(), res.shared_keyword_count);
        }
    }

    /// Maximality: no single extra keyword of W(q) could have been shared —
    /// i.e. for any keyword set strictly larger than the answer's, there is
    /// no valid community. Checked against brute force on tiny graphs.
    #[test]
    fn keyword_cohesiveness_is_maximal(g in arb_graph(12), qi in 0u32..12, k in 1u32..3) {
        let q = VertexId(qi % g.vertex_count() as u32);
        let tree = ClTree::build(&g);
        let res = acq(&g, &tree, q, &AcqOptions::with_k(k), AcqStrategy::Dec);
        // Brute force: try every subset of W(q), find the max size with a
        // verified keyword-core.
        let wq = g.keywords(q).to_vec();
        let mut best = 0usize;
        for mask in 1u32..(1 << wq.len().min(16)) {
            let subset: Vec<_> = wq
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &w)| w)
                .collect();
            let members: Vec<VertexId> = g
                .vertices()
                .filter(|&v| subset.iter().all(|&w| g.has_keyword(v, w)))
                .collect();
            if cx_kcore::connected_k_core_containing(&g, &members, q, k).is_some() {
                best = best.max(subset.len());
            }
        }
        prop_assert_eq!(res.shared_keyword_count, best,
            "Dec found L of size {}, brute force says {}", res.shared_keyword_count, best);
    }
}
