//! Differential + invariant sweep of the ACQ strategies via `cx-check`.
//!
//! Complements the crate's unit tests: instead of hand-picked fixtures,
//! this runs seeded workloads over generated graphs and demands that all
//! four strategies agree *and* that every answer satisfies the problem
//! definition (connectivity, min-degree, keyword maximality) checked by
//! naive reference algorithms.

use cx_acq::AcqOptions;
use cx_check::{acq_strategy_differential, check_acq_result, graph_matrix, query_workload};
use cx_cltree::ClTree;

#[test]
fn seeded_workloads_pass_differential_and_invariants() {
    for case in graph_matrix(&[60, 150], &[3, 11]) {
        let g = &case.graph;
        let tree = ClTree::build(g);
        for qc in query_workload(g, 6, 0xAC01) {
            let mut opts = AcqOptions::with_k(qc.k).max_candidates(2000);
            if !qc.keywords.is_empty() {
                opts = opts.keywords(qc.keywords.clone());
            }
            let (reference, mismatches) =
                acq_strategy_differential(g, &tree, qc.q, &opts, 10);
            assert!(
                mismatches.is_empty(),
                "{} {}: {mismatches:?}",
                case.name,
                qc.describe(g)
            );
            let s: Vec<_> = if qc.keywords.is_empty() {
                g.keywords(qc.q).to_vec()
            } else {
                qc.keywords.clone()
            };
            let violations = check_acq_result(g, qc.q, qc.k, &s, &reference);
            assert!(
                violations.is_empty(),
                "{} {}: {violations:?}",
                case.name,
                qc.describe(g)
            );
        }
    }
}

#[test]
fn high_k_queries_return_empty_not_wrong() {
    // Far above the degeneracy of any workload graph: every strategy must
    // agree the answer is empty (the invariant checker verifies that no
    // core actually exists).
    for case in graph_matrix(&[60], &[5]) {
        let g = &case.graph;
        let tree = ClTree::build(g);
        for qc in query_workload(g, 3, 1) {
            let opts = AcqOptions::with_k(64);
            let (reference, mismatches) =
                acq_strategy_differential(g, &tree, qc.q, &opts, 10);
            assert!(mismatches.is_empty(), "{mismatches:?}");
            assert!(reference.communities.is_empty());
            let violations =
                check_acq_result(g, qc.q, 64, g.keywords(qc.q), &reference);
            assert!(violations.is_empty(), "{violations:?}");
        }
    }
}
