//! Property tests for Global / Local / CODICIL on random graphs.
//!
//! Gated behind the non-default `proptest` feature: the build environment
//! is offline, so the `proptest` dev-dependency is not in the manifest.
//! Restore it (and `rand`) before enabling the feature in a networked
//! environment — see DESIGN.md "Offline build policy".
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use cx_algos::{Codicil, Global, Local};
use cx_graph::{AttributedGraph, GraphBuilder, VertexId};
use cx_kcore::CoreDecomposition;

fn arb_graph(max_n: usize) -> impl Strategy<Value = AttributedGraph> {
    (3..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(3 * n));
        let kws = proptest::collection::vec(proptest::collection::vec(0u8..6, 0..4), n);
        (Just(n), edges, kws).prop_map(|(n, edges, kws)| {
            let mut b = GraphBuilder::new();
            for (i, ks) in kws.iter().enumerate() {
                let names: Vec<String> = ks.iter().map(|k| format!("kw{k}")).collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                b.add_vertex(&format!("v{i}"), &refs);
            }
            for (u, v) in edges {
                b.add_edge(VertexId(u), VertexId(v));
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn global_fixed_k_equals_decomposition(g in arb_graph(25), qi in 0u32..25, k in 1u32..4) {
        let q = VertexId(qi % g.vertex_count() as u32);
        let from_global = Global.fixed_k(&g, q, k).map(|c| c.vertices().to_vec());
        let cd = CoreDecomposition::compute(&g);
        let direct = cd.connected_k_core(&g, q, k);
        prop_assert_eq!(from_global, direct);
    }

    #[test]
    fn global_max_min_degree_is_core_number(g in arb_graph(25), qi in 0u32..25) {
        let q = VertexId(qi % g.vertex_count() as u32);
        let (c, best) = Global.max_min_degree(&g, q).unwrap();
        // The optimal achievable min degree of a subgraph containing q is
        // exactly q's core number (classic result).
        let cd = CoreDecomposition::compute(&g);
        prop_assert_eq!(best, cd.core(q), "q=v{}", q.0);
        prop_assert!(c.contains(q));
        prop_assert_eq!(c.min_internal_degree(&g) as u32, best);
    }

    #[test]
    fn local_answer_is_valid_and_inside_global(g in arb_graph(25), qi in 0u32..25, k in 1u32..4) {
        let q = VertexId(qi % g.vertex_count() as u32);
        let local = Local { max_candidates: 0, check_every: 1 }.fixed_k(&g, q, k);
        let global = Global.fixed_k(&g, q, k);
        match (&local, &global) {
            (Some(l), Some(gl)) => {
                prop_assert!(l.contains(q));
                prop_assert!(l.min_internal_degree(&g) >= k as usize);
                for &v in l.vertices() {
                    prop_assert!(gl.contains(v));
                }
            }
            // With an unlimited budget Local must succeed iff Global does.
            (None, None) => {}
            (l, gl) => prop_assert!(false, "local={:?} global={:?}", l.is_some(), gl.is_some()),
        }
    }

    #[test]
    fn codicil_labels_are_a_partition(g in arb_graph(20)) {
        let clustering = Codicil::default().detect(&g);
        prop_assert_eq!(clustering.labels.len(), g.vertex_count());
        let member_total: usize = clustering.communities.iter().map(|c| c.len()).sum();
        prop_assert_eq!(member_total, g.vertex_count());
        // Labels are dense 0..count.
        let max = clustering.labels.iter().copied().max().unwrap_or(0);
        if !clustering.labels.is_empty() {
            prop_assert_eq!(max + 1, clustering.cluster_count());
        }
    }
}

/// Unit-capacity max-flow (BFS augmenting paths) between two vertices of
/// an induced subgraph — the reference for edge connectivity.
fn max_edge_disjoint_paths(
    g: &AttributedGraph,
    members: &[VertexId],
    s: VertexId,
    t: VertexId,
) -> usize {
    use std::collections::{HashMap, HashSet, VecDeque};
    let member_set: HashSet<VertexId> = members.iter().copied().collect();
    // Residual capacities on directed arcs (1 each way per undirected edge).
    let mut cap: HashMap<(u32, u32), i32> = HashMap::new();
    for &u in members {
        for &v in g.neighbors(u) {
            if member_set.contains(&v) {
                cap.insert((u.0, v.0), 1);
            }
        }
    }
    let mut flow = 0;
    loop {
        // BFS for an augmenting path.
        let mut prev: HashMap<u32, u32> = HashMap::new();
        let mut q = VecDeque::from([s.0]);
        let mut seen: HashSet<u32> = HashSet::from([s.0]);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(VertexId(u)) {
                if member_set.contains(&v)
                    && !seen.contains(&v.0)
                    && cap.get(&(u, v.0)).copied().unwrap_or(0) > 0
                {
                    seen.insert(v.0);
                    prev.insert(v.0, u);
                    q.push_back(v.0);
                }
            }
        }
        if !seen.contains(&t.0) {
            return flow;
        }
        // Augment along the path.
        let mut v = t.0;
        while v != s.0 {
            let u = prev[&v];
            *cap.get_mut(&(u, v)).unwrap() -= 1;
            *cap.entry((v, u)).or_insert(0) += 1;
            v = u;
        }
        flow += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// The k-ECC answer really is k-edge-connected: max-flow between the
    /// query vertex and every other member is ≥ k (Menger's theorem).
    #[test]
    fn kecc_answer_is_k_edge_connected(g in arb_graph(14), qi in 0u32..14, k in 2u32..4) {
        let q = VertexId(qi % g.vertex_count() as u32);
        if let Some(c) = cx_algos::kecc_community(&g, q, k) {
            prop_assert!(c.contains(q));
            prop_assert!(c.len() >= 2);
            for &v in c.vertices() {
                if v != q {
                    let paths = max_edge_disjoint_paths(&g, c.vertices(), q, v);
                    prop_assert!(
                        paths >= k as usize,
                        "only {} edge-disjoint paths q={} v={} (k={})",
                        paths, q.0, v.0, k
                    );
                }
            }
        }
    }

    /// The k-ECC answer is contained in Global's connected k-core (edge
    /// connectivity implies min degree).
    #[test]
    fn kecc_within_k_core(g in arb_graph(16), qi in 0u32..16, k in 2u32..4) {
        let q = VertexId(qi % g.vertex_count() as u32);
        if let Some(c) = cx_algos::kecc_community(&g, q, k) {
            let core = Global.fixed_k(&g, q, k).expect("kECC implies k-core");
            for &v in c.vertices() {
                prop_assert!(core.contains(v));
            }
            prop_assert!(c.min_internal_degree(&g) >= k as usize);
        }
    }
}
