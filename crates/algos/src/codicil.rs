//! `CODICIL` — content-and-links community detection, after Ruan, Fuhry &
//! Parthasarathy ("Efficient community detection in large networks using
//! content and links", WWW 2013).
//!
//! The pipeline, faithfully reproduced:
//!
//! 1. **Content edges** — each vertex is linked to its `content_neighbors`
//!    most content-similar vertices (cosine over TF-IDF-weighted keyword
//!    vectors, candidates generated through an inverted keyword index).
//! 2. **Edge union** — content edges are unioned with the topology edges.
//! 3. **Re-weighting** — every unioned edge gets weight
//!    `α · Jaccard(N(u), N(v)) + (1 − α) · cosine(u, v)`.
//! 4. **Local sparsification** — each vertex keeps only its top
//!    `⌈deg^sparsify_exponent⌉` edges by weight.
//! 5. **Clustering** — weighted label propagation over the sparsified
//!    graph (the original uses Metis/MLR-MCL; label propagation is the
//!    standard lightweight stand-in with the same input).
//!
//! `detect` returns all clusters; `search(q)` returns q's cluster, which
//! is how C-Explorer surfaces a CD algorithm behind a CS-style UI.

use std::collections::HashMap;

use cx_graph::{AttributedGraph, Community, InvertedIndex, VertexId};
use cx_par::rng::{Rng64, Shuffle};

/// Tuning parameters for [`Codicil`].
#[derive(Debug, Clone)]
pub struct CodicilParams {
    /// Content k-NN edges added per vertex.
    pub content_neighbors: usize,
    /// Blend between structural similarity (α) and content similarity (1−α).
    pub alpha: f64,
    /// Local sparsification keeps `⌈deg^e⌉` edges per vertex.
    pub sparsify_exponent: f64,
    /// Label-propagation sweeps.
    pub lp_iterations: usize,
    /// Candidate cap per keyword posting list during content k-NN
    /// generation (bounds worst-case cost on stop-word-like keywords).
    pub posting_cap: usize,
    /// Keywords carried by more than this fraction of all vertices are
    /// skipped during candidate generation (stop words carry no community
    /// signal and dominate the cost).
    pub stopword_fraction: f64,
    /// RNG seed for the label-propagation visit order.
    pub seed: u64,
}

impl Default for CodicilParams {
    fn default() -> Self {
        Self {
            content_neighbors: 10,
            alpha: 0.5,
            sparsify_exponent: 0.6,
            lp_iterations: 12,
            posting_cap: 64,
            stopword_fraction: 0.05,
            seed: 1,
        }
    }
}

/// A clustering of the whole graph: a label per vertex plus the clusters
/// as communities (singletons included), largest first.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster label per vertex (dense, `0..cluster_count`).
    pub labels: Vec<usize>,
    /// Clusters as communities, sorted by size descending.
    pub communities: Vec<Community>,
}

impl Clustering {
    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.communities.len()
    }

    /// The community containing `v`, if the vertex is valid.
    pub fn community_of(&self, v: VertexId) -> Option<&Community> {
        let label = *self.labels.get(v.index())?;
        self.communities.iter().find(|c| {
            c.vertices().first().map(|&u| self.labels[u.index()]) == Some(label)
        })
    }
}

/// The CODICIL detector.
#[derive(Debug, Clone, Default)]
pub struct Codicil {
    /// Pipeline parameters.
    pub params: CodicilParams,
}

impl Codicil {
    /// Creates a detector with the given parameters.
    pub fn new(params: CodicilParams) -> Self {
        Self { params }
    }

    /// Runs the full pipeline and clusters the entire graph.
    pub fn detect(&self, g: &AttributedGraph) -> Clustering {
        let n = g.vertex_count();
        if n == 0 {
            return Clustering { labels: Vec::new(), communities: Vec::new() };
        }
        let weighted = self.build_fused_graph(g);
        let labels = label_propagation(&weighted, n, self.params.lp_iterations, self.params.seed);
        let labels = compact_labels(labels);
        let mut groups: HashMap<usize, Vec<VertexId>> = HashMap::new();
        for (i, &l) in labels.iter().enumerate() {
            groups.entry(l).or_default().push(VertexId(i as u32));
        }
        let mut communities: Vec<Community> =
            groups.into_values().map(Community::structural).collect();
        communities.sort_by_key(|c| (std::cmp::Reverse(c.len()), c.vertices()[0]));
        Clustering { labels, communities }
    }

    /// Community of a single query vertex (detect + select).
    pub fn search(&self, g: &AttributedGraph, q: VertexId) -> Option<Community> {
        if !g.contains(q) {
            return None;
        }
        let clustering = self.detect(g);
        clustering.community_of(q).cloned()
    }

    /// Steps 1–4: fused, re-weighted, sparsified adjacency
    /// (`fused[u] = Vec<(v, weight)>`).
    fn build_fused_graph(&self, g: &AttributedGraph) -> Vec<Vec<(u32, f64)>> {
        let n = g.vertex_count();
        let idx = InvertedIndex::build(g);
        // IDF per keyword: ln(n / df).
        let idf: Vec<f64> = (0..g.keyword_count())
            .map(|w| {
                let df = idx.frequency(cx_graph::KeywordId(w as u32)).max(1);
                (n as f64 / df as f64).ln().max(0.0)
            })
            .collect();
        // Vector norms (parallel per vertex; each entry is independent).
        let norm: Vec<f64> = cx_par::par_map_indexed(n, |i| {
            let v = VertexId(i as u32);
            g.keywords(v).iter().map(|w| idf[w.index()] * idf[w.index()]).sum::<f64>().sqrt()
        });

        let cosine = |u: VertexId, v: VertexId| -> f64 {
            let (nu, nv) = (norm[u.index()], norm[v.index()]);
            if nu == 0.0 || nv == 0.0 {
                return 0.0;
            }
            let dot: f64 = cx_graph::keywords::intersect_sorted(g.keywords(u), g.keywords(v))
                .iter()
                .map(|w| idf[w.index()] * idf[w.index()])
                .sum();
            dot / (nu * nv)
        };

        // Step 1: content k-NN per vertex. Scoring each vertex's candidates
        // is independent, so it runs on the cx-par pool; the symmetric
        // insertion into `fused` stays sequential (and therefore ordered).
        let mut fused: Vec<HashMap<u32, f64>> = vec![HashMap::new(); n];
        let t = self.params.content_neighbors;
        let stop_df = ((n as f64) * self.params.stopword_fraction).ceil() as usize;
        if t > 0 {
            let top: Vec<Vec<u32>> = cx_par::par_map_indexed(n, |ui| {
                let u = VertexId(ui as u32);
                let mut scores: HashMap<u32, f64> = HashMap::new();
                for &w in g.keywords(u) {
                    let posting = idx.posting(w);
                    if posting.len() > stop_df.max(self.params.posting_cap) {
                        continue; // stop word: no discriminative signal
                    }
                    for &v in posting.iter().take(self.params.posting_cap) {
                        if v != u {
                            *scores.entry(v.0).or_insert(0.0) += idf[w.index()];
                        }
                    }
                }
                let mut cands: Vec<(u32, f64)> = scores.into_iter().collect();
                cands.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                cands.truncate(t);
                cands.into_iter().map(|(v, _)| v).collect()
            });
            for (ui, targets) in top.iter().enumerate() {
                for &v in targets {
                    fused[ui].insert(v, 0.0);
                    fused[v as usize].insert(ui as u32, 0.0);
                }
            }
        }
        // Step 2: union with topology edges.
        for (u, v) in g.edges() {
            fused[u.index()].insert(v.0, 0.0);
            fused[v.index()].insert(u.0, 0.0);
        }
        // Step 3: re-weight. Enumerate each pair once in a deterministic
        // order, score the pairs in parallel, then scatter sequentially.
        let alpha = self.params.alpha;
        let pairs: Vec<(u32, u32)> = {
            let mut ps = Vec::new();
            for u in 0..n {
                let mut vs: Vec<u32> =
                    fused[u].keys().copied().filter(|&v| v > u as u32).collect();
                vs.sort_unstable();
                ps.extend(vs.into_iter().map(|v| (u as u32, v)));
            }
            ps
        };
        let pair_weights: Vec<f64> = cx_par::par_map_slice(&pairs, |&(u, v)| {
            let (u, v) = (VertexId(u), VertexId(v));
            alpha * neighborhood_jaccard(g, u, v) + (1.0 - alpha) * cosine(u, v)
        });
        let mut weighted: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (&(u, v), &w) in pairs.iter().zip(&pair_weights) {
            weighted[u as usize].push((v, w));
            weighted[v as usize].push((u, w));
        }
        // Step 4: local sparsification — keep top ⌈deg^e⌉ per vertex; an
        // edge survives if either endpoint keeps it.
        let e = self.params.sparsify_exponent;
        let mut keep: Vec<std::collections::HashSet<(u32, u32)>> = vec![Default::default(); 1];
        let kept = &mut keep[0];
        for (u, wu) in weighted.iter().enumerate() {
            let d = wu.len();
            if d == 0 {
                continue;
            }
            let quota = (d as f64).powf(e).ceil() as usize;
            let mut edges = wu.clone();
            edges.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            for &(v, _) in edges.iter().take(quota.max(1)) {
                let key = if (u as u32) < v { (u as u32, v) } else { (v, u as u32) };
                kept.insert(key);
            }
        }
        let mut out: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for u in 0..n {
            for &(v, w) in &weighted[u] {
                let key = if (u as u32) < v { (u as u32, v) } else { (v, u as u32) };
                if kept.contains(&key) {
                    out[u].push((v, w));
                }
            }
        }
        out
    }
}

/// Jaccard similarity of the (closed) neighbourhoods of `u` and `v` — the
/// structural half of CODICIL's edge weight.
pub fn neighborhood_jaccard(g: &AttributedGraph, u: VertexId, v: VertexId) -> f64 {
    // Closed neighbourhoods so an edge (u,v) with no common neighbour
    // still scores: N[u] = N(u) ∪ {u}.
    let (a, b) = (g.neighbors(u), g.neighbors(v));
    let mut inter = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    // Closed-neighbourhood corrections: u ∈ N[v]? v ∈ N[u]?
    let u_in_b = b.binary_search(&u).is_ok();
    let v_in_a = a.binary_search(&v).is_ok();
    let inter_closed = inter + usize::from(u_in_b) + usize::from(v_in_a);
    let union_closed = (a.len() + 1) + (b.len() + 1) - inter_closed;
    if union_closed == 0 {
        0.0
    } else {
        inter_closed as f64 / union_closed as f64
    }
}

/// Weighted label propagation: each sweep visits vertices in a seeded
/// random order and adopts the label with the highest incident weight
/// (ties to the smaller label for determinism). Stops early on a sweep
/// with no changes.
fn label_propagation(
    adj: &[Vec<(u32, f64)>],
    n: usize,
    iterations: usize,
    seed: u64,
) -> Vec<usize> {
    let mut labels: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = Rng64::seed_from_u64(seed);
    for _ in 0..iterations {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &u in &order {
            if adj[u].is_empty() {
                continue;
            }
            let mut tally: HashMap<usize, f64> = HashMap::new();
            for &(v, w) in &adj[u] {
                *tally.entry(labels[v as usize]).or_insert(0.0) += w.max(1e-9);
            }
            let best = tally
                .into_iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
                .map(|(l, _)| l)
                .unwrap();
            if best != labels[u] {
                labels[u] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    labels
}

/// Renumbers labels densely in first-appearance order.
fn compact_labels(labels: Vec<usize>) -> Vec<usize> {
    let mut map: HashMap<usize, usize> = HashMap::new();
    labels
        .into_iter()
        .map(|l| {
            let next = map.len();
            *map.entry(l).or_insert(next)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::{planted_partition, small_collab_graph, PlantedParams};

    #[test]
    fn recovers_planted_partition() {
        let (g, truth) = planted_partition(&PlantedParams {
            vertices: 120,
            communities: 3,
            p_intra: 0.4,
            p_inter: 0.01,
            ..PlantedParams::default()
        });
        let clustering = Codicil::default().detect(&g);
        // Pairwise agreement (Rand-style): most same-community pairs should
        // share a cluster and most cross pairs should not.
        let (mut agree, mut total) = (0usize, 0usize);
        for i in 0..g.vertex_count() {
            for j in (i + 1)..g.vertex_count() {
                let same_truth = truth[i] == truth[j];
                let same_found = clustering.labels[i] == clustering.labels[j];
                total += 1;
                if same_truth == same_found {
                    agree += 1;
                }
            }
        }
        let rand_index = agree as f64 / total as f64;
        assert!(rand_index > 0.9, "rand index too low: {rand_index}");
    }

    #[test]
    fn splits_collab_graph_at_the_bridge() {
        let g = small_collab_graph();
        let clustering = Codicil::default().detect(&g);
        let db0 = g.vertex_by_label("db-author-0").unwrap();
        let db3 = g.vertex_by_label("db-author-3").unwrap();
        let ml0 = g.vertex_by_label("ml-author-0").unwrap();
        assert_eq!(clustering.labels[db0.index()], clustering.labels[db3.index()]);
        assert_ne!(clustering.labels[db0.index()], clustering.labels[ml0.index()]);
    }

    #[test]
    fn search_returns_query_cluster() {
        let g = small_collab_graph();
        let q = g.vertex_by_label("ml-author-2").unwrap();
        let c = Codicil::default().search(&g, q).unwrap();
        assert!(c.contains(q));
        assert!(c.len() >= 6, "ml cluster too small: {}", c.len());
        assert!(Codicil::default().search(&g, VertexId(999)).is_none());
    }

    #[test]
    fn labels_partition_and_match_communities() {
        let g = small_collab_graph();
        let clustering = Codicil::default().detect(&g);
        assert_eq!(clustering.labels.len(), g.vertex_count());
        let total: usize = clustering.communities.iter().map(Community::len).sum();
        assert_eq!(total, g.vertex_count());
        // community_of is consistent with labels.
        for v in g.vertices() {
            let c = clustering.community_of(v).unwrap();
            assert!(c.contains(v));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = small_collab_graph();
        let a = Codicil::default().detect(&g);
        let b = Codicil::default().detect(&g);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn empty_graph() {
        let g = cx_graph::GraphBuilder::new().build();
        let c = Codicil::default().detect(&g);
        assert!(c.labels.is_empty());
        assert_eq!(c.cluster_count(), 0);
    }

    #[test]
    fn neighborhood_jaccard_bounds() {
        let g = small_collab_graph();
        for (u, v) in g.edges().take(20) {
            let j = neighborhood_jaccard(&g, u, v);
            assert!((0.0..=1.0).contains(&j));
            assert!(j > 0.0, "adjacent vertices must have positive closed-neighbourhood overlap");
        }
    }
}
