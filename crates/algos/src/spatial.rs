//! Spatial-aware community search (SAC) — the extension the paper cites
//! as reference \[3\] (Fang et al., "Effective community search over large
//! spatial graphs", PVLDB 10(6), 2017).
//!
//! Given vertex coordinates, a spatial-aware community is a connected
//! k-core containing q whose members are also *spatially close* — the
//! exact problem minimises the radius of a covering circle. We implement
//! the `AppInc`-style approximation from that paper: grow a disk centred
//! on the query vertex and binary-search the smallest radius whose
//! enclosed vertices contain a connected k-core with q. The result is a
//! 2-approximation of the optimal covering circle centred anywhere (the
//! optimal circle's radius is at least half the distance from q to its
//! farthest community member).
//!
//! Coordinates live *beside* the attributed graph (a parallel slice), so
//! the substrate stays attribute-agnostic; generators in `cx-datagen`
//! produce area-clustered coordinates.

use cx_graph::{AttributedGraph, Community, VertexId};
use cx_kcore::connected_k_core_containing;

/// The result of a spatial community search.
#[derive(Debug, Clone)]
pub struct SpatialCommunity {
    /// The community (a connected k-core containing q).
    pub community: Community,
    /// Radius of the q-centred disk actually needed (max member distance).
    pub radius: f64,
}

/// Euclidean distance between two coordinate pairs.
pub fn distance(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

/// `AppInc`: the smallest q-centred disk containing a connected k-core
/// with q, by binary search over the distance-sorted vertex prefix.
///
/// `coords[v]` is the position of vertex `v`; the slice must cover every
/// vertex. Returns `None` when no k-core containing q exists at all.
///
/// Cost: O(log n) subset-peel verifications over shrinking prefixes.
pub fn sac_appinc(
    g: &AttributedGraph,
    coords: &[(f64, f64)],
    q: VertexId,
    k: u32,
) -> Option<SpatialCommunity> {
    assert_eq!(coords.len(), g.vertex_count(), "one coordinate per vertex");
    if !g.contains(q) {
        return None;
    }
    // Vertices sorted by distance from q (q itself first).
    let cq = coords[q.index()];
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.sort_by(|&a, &b| {
        distance(coords[a.index()], cq)
            .partial_cmp(&distance(coords[b.index()], cq))
            .unwrap()
            .then(a.cmp(&b))
    });

    // Feasibility at the full graph first.
    connected_k_core_containing(g, &order, q, k)?;

    // Binary search the smallest feasible prefix length. Feasibility is
    // monotone in the prefix: more vertices can only help.
    let (mut lo, mut hi) = (k as usize + 1, order.len()); // need ≥ k+1 vertices
    let mut best: Option<Vec<VertexId>> = None;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match connected_k_core_containing(g, &order[..mid], q, k) {
            Some(core) => {
                best = Some(core);
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    // `hi` is the minimal feasible prefix; make sure we hold its core.
    let core = match best {
        Some(c) if hi < order.len() => c,
        _ => connected_k_core_containing(g, &order[..hi.max(lo)], q, k)?,
    };
    let radius = core
        .iter()
        .map(|&v| distance(coords[v.index()], cq))
        .fold(0.0f64, f64::max);
    Some(SpatialCommunity { community: Community::structural(core), radius })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Two triangles containing q=0: a near one (0,1,2) and a far one
    /// (0,3,4). SAC must pick the near one; plain Global would return the
    /// whole connected 2-core.
    fn two_triangles() -> (cx_graph::AttributedGraph, Vec<(f64, f64)>) {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for (a, c) in [(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)] {
            b.add_edge(v(a), v(c));
        }
        let coords = vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (50.0, 0.0), (50.0, 1.0)];
        (b.build(), coords)
    }

    #[test]
    fn picks_the_spatially_close_core() {
        let (g, coords) = two_triangles();
        let sac = sac_appinc(&g, &coords, v(0), 2).unwrap();
        assert_eq!(sac.community.vertices(), &[v(0), v(1), v(2)]);
        assert!(sac.radius <= 1.0 + 1e-9, "radius {}", sac.radius);
        assert!(sac.community.min_internal_degree(&g) >= 2);
    }

    #[test]
    fn falls_back_to_far_vertices_when_needed() {
        // Remove the near triangle's closing edge: only the far triangle
        // remains a 2-core with q.
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for (a, c) in [(0, 1), (1, 2), (0, 3), (3, 4), (0, 4)] {
            b.add_edge(v(a), v(c));
        }
        let coords = vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (50.0, 0.0), (50.0, 1.0)];
        let g = b.build();
        let sac = sac_appinc(&g, &coords, v(0), 2).unwrap();
        assert_eq!(sac.community.vertices(), &[v(0), v(3), v(4)]);
        assert!(sac.radius >= 50.0);
    }

    #[test]
    fn no_core_returns_none() {
        let (g, coords) = two_triangles();
        assert!(sac_appinc(&g, &coords, v(0), 3).is_none());
        assert!(sac_appinc(&g, &coords, v(99), 2).is_none());
    }

    #[test]
    fn radius_is_minimal_among_prefixes() {
        let (g, coords) = two_triangles();
        let sac = sac_appinc(&g, &coords, v(0), 2).unwrap();
        // Any strictly smaller q-centred disk must not contain a 2-core
        // with q: check the prefix just below the community's size.
        let cq = coords[0];
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.sort_by(|&a, &b| {
            distance(coords[a.index()], cq)
                .partial_cmp(&distance(coords[b.index()], cq))
                .unwrap()
        });
        let within: Vec<VertexId> = order
            .iter()
            .copied()
            .filter(|&u| distance(coords[u.index()], cq) < sac.radius - 1e-9)
            .collect();
        assert!(
            cx_kcore::connected_k_core_containing(&g, &within, v(0), 2).is_none(),
            "a smaller disk should not suffice"
        );
    }

    #[test]
    #[should_panic(expected = "one coordinate per vertex")]
    fn coordinate_length_mismatch_panics() {
        let (g, _) = two_triangles();
        sac_appinc(&g, &[(0.0, 0.0)], v(0), 2);
    }
}
