//! `Local` — the local-expansion community search of Cui et al.
//! ("Local search of communities in large graphs", SIGMOD 2014).
//!
//! Where `Global` peels the entire graph, `Local` explores outward from
//! the query vertex: it keeps a candidate set `C` (initially `{q}`),
//! repeatedly admits the frontier vertex with the most connections into
//! `C`, and after each admission checks whether `C` already contains a
//! connected k-core with q. The first hit is returned (shrunk to that
//! core), so the community found is *a* k-core around q — typically much
//! smaller than Global's maximal one (Figure 6(a): 50 vs 305 vertices) —
//! and the work done is proportional to the neighbourhood explored, not
//! the graph.

use std::collections::HashMap;

use cx_graph::{AttributedGraph, Community, VertexId, VertexSet};
use cx_kcore::connected_k_core_containing;

/// The Cui et al. local-expansion algorithm.
#[derive(Debug, Clone, Copy)]
pub struct Local {
    /// Hard cap on the candidate-set size before giving up (0 = only
    /// bounded by the graph itself). Keeps worst-case latency bounded on
    /// adversarial inputs, as the original paper's budgeted variant does.
    pub max_candidates: usize,
    /// Check for a k-core every `check_every` admissions (1 = every step).
    /// Larger values amortise the subset peel on high-k queries.
    pub check_every: usize,
}

impl Default for Local {
    fn default() -> Self {
        Self { max_candidates: 4096, check_every: 4 }
    }
}

impl Local {
    /// Creates the default-tuned instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds a connected k-core containing `q` by local expansion, or
    /// `None` if the budget is exhausted or the frontier empties first.
    pub fn fixed_k(&self, g: &AttributedGraph, q: VertexId, k: u32) -> Option<Community> {
        if !g.contains(q) {
            return None;
        }
        // Cheap necessary condition: q itself needs ≥ k neighbours.
        if g.degree(q) < k as usize {
            return None;
        }
        let n = g.vertex_count();
        let mut in_c = VertexSet::with_capacity(n);
        in_c.insert(q);
        let mut members = vec![q];
        // connections[v] = edges from frontier vertex v into C.
        let mut connections: HashMap<VertexId, usize> = HashMap::new();
        for &u in g.neighbors(q) {
            *connections.entry(u).or_insert(0) += 1;
        }

        let cap = if self.max_candidates == 0 { usize::MAX } else { self.max_candidates };
        let mut since_check = 0usize;
        loop {
            // Admit the frontier vertex with the most connections into C;
            // ties broken by global degree (hubs first), then id.
            let pick = connections
                .iter()
                .map(|(&v, &c)| (c, g.degree(v), std::cmp::Reverse(v.0), v))
                .max()
                .map(|t| t.3);
            let Some(v) = pick else {
                // Frontier exhausted: one final check over everything seen.
                return connected_k_core_containing(g, &members, q, k)
                    .map(Community::structural);
            };
            connections.remove(&v);
            in_c.insert(v);
            members.push(v);
            for &u in g.neighbors(v) {
                if !in_c.contains(u) {
                    *connections.entry(u).or_insert(0) += 1;
                }
            }

            since_check += 1;
            // Only bother peeling once C could plausibly hold a k-core and
            // the admission cadence says so.
            if members.len() > k as usize && since_check >= self.check_every {
                since_check = 0;
                if let Some(core) = connected_k_core_containing(g, &members, q, k) {
                    return Some(Community::structural(core));
                }
            }
            if members.len() >= cap {
                // Final attempt at the cap before giving up.
                return connected_k_core_containing(g, &members, q, k)
                    .map(Community::structural);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::Global;
    use cx_datagen::{dblp_like, figure5_graph, DblpParams};

    #[test]
    fn finds_k_core_around_query() {
        let g = figure5_graph();
        let a = g.vertex_by_label("A").unwrap();
        let c = Local::new().fixed_k(&g, a, 3).unwrap();
        assert_eq!(c.len(), 4); // the K4
        assert!(c.contains(a));
        assert!(c.min_internal_degree(&g) >= 3);
    }

    #[test]
    fn degree_precheck_rejects_quickly() {
        let g = figure5_graph();
        let f = g.vertex_by_label("F").unwrap(); // degree 2
        assert!(Local::new().fixed_k(&g, f, 3).is_none());
        let j = g.vertex_by_label("J").unwrap(); // isolated
        assert!(Local::new().fixed_k(&g, j, 1).is_none());
        assert!(Local::new().fixed_k(&g, VertexId(99), 1).is_none());
    }

    #[test]
    fn exhausted_frontier_returns_none() {
        let g = figure5_graph();
        let h = g.vertex_by_label("H").unwrap(); // H–I pair only
        assert!(Local::new().fixed_k(&g, h, 2).is_none());
        // But k=1 succeeds with the pair.
        let c = Local::new().fixed_k(&g, h, 1).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn local_is_subset_of_global_core() {
        let (g, _) = dblp_like(&DblpParams { authors: 600, seed: 5, ..DblpParams::default() });
        // Query the highest-degree vertex.
        let q = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
        let k = 4;
        if let Some(local) = Local::new().fixed_k(&g, q, k) {
            let global = Global.fixed_k(&g, q, k).expect("global must exist if local does");
            assert!(local.min_internal_degree(&g) >= k as usize);
            // Every member of Local's community is in Global's (the maximal
            // connected k-core contains every k-core around q).
            for &v in local.vertices() {
                assert!(global.contains(v), "local member {v} outside global core");
            }
            // And Local's answer does not exceed Global's size.
            assert!(local.len() <= global.len());
        }
    }

    #[test]
    fn budget_cap_is_respected() {
        let (g, _) = dblp_like(&DblpParams { authors: 500, seed: 3, ..DblpParams::default() });
        let q = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
        let tiny = Local { max_candidates: 3, check_every: 1 };
        // With a 3-vertex budget a 5-core cannot appear.
        assert!(tiny.fixed_k(&g, q, 5).is_none());
    }
}
