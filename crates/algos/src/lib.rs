#![warn(missing_docs)]

//! # cx-algos — the other community-retrieval algorithms C-Explorer ships
//!
//! Besides ACQ, the paper's system implements two community-*search*
//! algorithms and one community-*detection* algorithm, all reproduced here
//! from their original papers:
//!
//! * [`global::Global`] — Sozio & Gionis (SIGKDD'10): whole-graph greedy
//!   peeling. The fixed-k form returns the connected k-core containing q
//!   (the `k-ĉore`); the free form maximises the minimum degree.
//! * [`local::Local`] — Cui et al. (SIGMOD'14): local expansion from q;
//!   grows a candidate set by connection count and stops at the first
//!   connected k-core containing q, never touching the rest of the graph.
//! * [`codicil::Codicil`] — Ruan et al. (WWW'13): content-plus-links
//!   community detection. Builds content k-NN edges from TF-IDF cosine,
//!   unions them with topology edges, re-weights by combined similarity,
//!   sparsifies locally, and clusters with weighted label propagation.
//! * [`ktruss`] — the k-truss community search of Huang et al.
//!   (SIGMOD'14), wrapping [`cx_kcore::truss`], as the paper's cited
//!   alternative structure-cohesiveness measure.

pub mod codicil;
pub mod ecc;
pub mod girvan_newman;
pub mod global;
pub mod ktruss;
pub mod local;
pub mod louvain;
pub mod spatial;

pub use codicil::{Codicil, CodicilParams, Clustering};
pub use ecc::kecc_community;
pub use girvan_newman::{GirvanNewman, GirvanNewmanParams};
pub use global::Global;
pub use ktruss::KTruss;
pub use spatial::{sac_appinc, SpatialCommunity};
pub use local::Local;
pub use louvain::{Louvain, LouvainParams};
