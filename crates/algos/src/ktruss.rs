//! `K-Truss` community search (Huang et al., SIGMOD 2014) — a thin,
//! engine-pluggable wrapper over [`cx_kcore::truss`].
//!
//! The paper cites k-truss as an alternative structure-cohesiveness
//! measure for community search; C-Explorer's plug-in API is exactly the
//! place such an algorithm would be installed, so we ship it.

use cx_graph::{AttributedGraph, Community, VertexId};
use cx_kcore::truss::{truss_communities, TrussDecomposition};

/// k-truss community search with an optional precomputed decomposition.
#[derive(Debug, Default)]
pub struct KTruss {
    cached: Option<TrussDecomposition>,
}

impl KTruss {
    /// A searcher that decomposes lazily per query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Precomputes the truss decomposition once for many queries.
    pub fn with_index(g: &AttributedGraph) -> Self {
        Self { cached: Some(TrussDecomposition::compute(g)) }
    }

    /// All k-truss communities of `q` (triangle-connected components of
    /// truss-≥k edges touching q), largest first.
    pub fn search(&self, g: &AttributedGraph, q: VertexId, k: u32) -> Vec<Community> {
        match &self.cached {
            Some(td) => truss_communities(g, td, q, k),
            None => {
                let td = TrussDecomposition::compute(g);
                truss_communities(g, &td, q, k)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::small_collab_graph;

    #[test]
    fn cached_and_lazy_agree() {
        let g = small_collab_graph();
        let q = g.vertex_by_label("db-author-0").unwrap();
        let lazy = KTruss::new().search(&g, q, 4);
        let cached = KTruss::with_index(&g).search(&g, q, 4);
        assert_eq!(lazy, cached);
        assert!(!lazy.is_empty());
        assert!(lazy[0].contains(q));
    }

    #[test]
    fn high_k_returns_nothing() {
        let g = small_collab_graph();
        let q = g.vertex_by_label("loner").unwrap();
        assert!(KTruss::new().search(&g, q, 3).is_empty());
    }
}
