//! `Global` — the community-search algorithm of Sozio & Gionis
//! ("The community-search problem and how to plan a successful cocktail
//! party", SIGKDD 2010).
//!
//! Two forms are exposed:
//!
//! * [`Global::fixed_k`] — the form C-Explorer's UI drives ("Structure:
//!   degree ≥ k"): peel the whole graph to its maximal k-core and return
//!   the connected component containing q. This is why Global's community
//!   in Figure 6(a) is an order of magnitude larger than everyone else's —
//!   it is the *entire* connected k-core.
//! * [`Global::max_min_degree`] — the original optimisation form: greedily
//!   delete a minimum-degree vertex at a time (stopping before q would be
//!   deleted) and return q's component in the prefix subgraph whose
//!   minimum degree was maximal.

use cx_graph::{AttributedGraph, Community, VertexId, VertexSet};
use cx_kcore::{connected_k_core_containing, k_core_of_subset};

/// The Sozio–Gionis global peeling algorithm. Stateless; methods take the
/// graph explicitly so one instance can serve many graphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Global;

impl Global {
    /// The connected k-core containing `q` (`None` if q is peeled away).
    ///
    /// Runs a whole-graph peel — O(n + m) regardless of the answer size,
    /// which is exactly the inefficiency `Local` was invented to avoid.
    pub fn fixed_k(&self, g: &AttributedGraph, q: VertexId, k: u32) -> Option<Community> {
        if !g.contains(q) {
            return None;
        }
        let all: Vec<VertexId> = g.vertices().collect();
        let core = k_core_of_subset(g, &all, k);
        connected_k_core_containing(g, &core, q, k).map(Community::structural)
    }

    /// Maximises the minimum internal degree of a connected subgraph
    /// containing `q`: peel minimum-degree vertices one by one (never `q`);
    /// the answer is q's component at the prefix with the best minimum
    /// degree. Returns the community and that optimal minimum degree.
    pub fn max_min_degree(&self, g: &AttributedGraph, q: VertexId) -> Option<(Community, u32)> {
        if !g.contains(q) {
            return None;
        }
        let n = g.vertex_count();
        let mut deg: Vec<usize> = g.degrees();
        let mut alive = VertexSet::from_iter(n, g.vertices());

        // Buckets of vertices by current degree, processed lazily.
        let max_deg = g.max_degree();
        let mut bucket: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
        for v in g.vertices() {
            bucket[deg[v.index()]].push(v);
        }
        let mut cursor = 0usize; // lowest possibly-non-empty bucket

        // Deletion order and the minimum degree observed *before* each
        // deletion step.
        let mut deleted: Vec<VertexId> = Vec::with_capacity(n);
        let mut min_deg_before: Vec<usize> = Vec::with_capacity(n);
        let mut best_min = 0usize;
        let mut best_step = 0usize; // number of deletions performed at the best prefix

        loop {
            // Find the current minimum-degree vertex.
            let mut picked: Option<VertexId> = None;
            'scan: while cursor <= max_deg {
                while let Some(&v) = bucket[cursor].last() {
                    if !alive.contains(v) || deg[v.index()] != cursor {
                        bucket[cursor].pop(); // stale entry
                        continue;
                    }
                    picked = Some(v);
                    break 'scan;
                }
                cursor += 1;
            }
            let Some(mut v) = picked else { break };
            let cur_min = deg[v.index()];
            if cur_min > best_min {
                best_min = cur_min;
                best_step = deleted.len();
            }
            if v == q {
                // Never delete q: take another vertex from the same bucket
                // if one exists, otherwise stop (q is the unique minimum).
                let alt = bucket[cursor]
                    .iter()
                    .rev()
                    .copied()
                    .find(|&u| u != q && alive.contains(u) && deg[u.index()] == cursor);
                match alt {
                    Some(u) => v = u,
                    None => break,
                }
            }
            // Delete v.
            alive.remove(v);
            min_deg_before.push(cur_min);
            deleted.push(v);
            for &u in g.neighbors(v) {
                if alive.contains(u) {
                    let d = deg[u.index()] - 1;
                    deg[u.index()] = d;
                    bucket[d].push(u);
                    if d < cursor {
                        cursor = d;
                    }
                }
            }
        }
        // The loop ends with q's degree as the final minimum candidate.
        if alive.contains(q) {
            let final_min = g
                .neighbors(q)
                .iter()
                .filter(|&&u| alive.contains(u))
                .count()
                .min(alive.iter().map(|u| deg[u.index()]).min().unwrap_or(0));
            if final_min > best_min {
                best_min = final_min;
                best_step = deleted.len();
            }
        }

        // Rebuild the best prefix: everything not deleted in the first
        // `best_step` deletions.
        let mut prefix = VertexSet::from_iter(n, g.vertices());
        for &v in deleted.iter().take(best_step) {
            prefix.remove(v);
        }
        if !prefix.contains(q) {
            return None;
        }
        let mut members = cx_graph::traversal::bfs_filtered(g, q, |v| prefix.contains(v));
        members.sort_unstable();
        Some((Community::structural(members), best_min as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::{figure5_graph, small_collab_graph};
    use cx_graph::GraphBuilder;

    #[test]
    fn fixed_k_is_whole_connected_core() {
        let g = figure5_graph();
        let a = g.vertex_by_label("A").unwrap();
        let c = Global.fixed_k(&g, a, 2).unwrap();
        assert_eq!(c.len(), 5); // {A,B,C,D,E}
        assert!(c.min_internal_degree(&g) >= 2);
        let c3 = Global.fixed_k(&g, a, 3).unwrap();
        assert_eq!(c3.len(), 4); // the K4
        assert!(Global.fixed_k(&g, a, 4).is_none());
    }

    #[test]
    fn fixed_k_invalid_vertex() {
        let g = figure5_graph();
        assert!(Global.fixed_k(&g, VertexId(99), 1).is_none());
    }

    #[test]
    fn max_min_degree_finds_the_densest_region_around_q() {
        let g = figure5_graph();
        let a = g.vertex_by_label("A").unwrap();
        let (c, k) = Global.max_min_degree(&g, a).unwrap();
        // A sits in a K4: the best minimum degree is 3.
        assert_eq!(k, 3);
        assert_eq!(c.len(), 4);
        assert_eq!(c.min_internal_degree(&g), 3);
    }

    #[test]
    fn max_min_degree_for_peripheral_vertex() {
        let g = figure5_graph();
        let f = g.vertex_by_label("F").unwrap();
        let (c, k) = Global.max_min_degree(&g, f).unwrap();
        // F's best achievable minimum degree is 1 (it has degree 2 but its
        // neighbours E and G can't all be kept at degree ≥ 2 with F).
        assert!(c.contains(f));
        assert!(k >= 1);
        assert_eq!(c.min_internal_degree(&g) as u32, k);
    }

    #[test]
    fn max_min_degree_on_clique_returns_clique() {
        let mut b = GraphBuilder::new();
        for i in 0..5 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.add_edge(VertexId(i), VertexId(j));
            }
        }
        let g = b.build();
        let (c, k) = Global.max_min_degree(&g, VertexId(2)).unwrap();
        assert_eq!(k, 4);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn isolated_query_vertex() {
        let g = figure5_graph();
        let j = g.vertex_by_label("J").unwrap();
        let (c, k) = Global.max_min_degree(&g, j).unwrap();
        assert_eq!(k, 0);
        assert_eq!(c.len(), 1);
        assert!(Global.fixed_k(&g, j, 1).is_none());
    }

    #[test]
    fn collab_bridge_gets_its_denser_side() {
        let g = small_collab_graph();
        let bridge = g.vertex_by_label("bridge").unwrap();
        let c = Global.fixed_k(&g, bridge, 3).unwrap();
        // At k=3 the bridge (degree 6, three into each clique) survives
        // only if its side groups do; the connected 3-core spans both
        // near-cliques plus the bridge.
        assert!(c.contains(bridge));
        assert!(c.min_internal_degree(&g) >= 3);
        assert!(c.len() >= 14);
    }
}
