//! Girvan–Newman divisive community detection — the paper's reference \[9\]
//! (Newman & Girvan, "Finding and evaluating community structure in
//! networks", Phys. Rev. E 2004).
//!
//! Repeatedly remove the edge with the highest *betweenness centrality*
//! (computed exactly with Brandes' algorithm from every source) and keep
//! the connected-component partition with the best modularity seen. The
//! O(removals · n · m) cost is exactly why the paper's §2 dismisses CD
//! algorithms for *online* retrieval — reproduced here both as a baseline
//! and to make that latency contrast measurable.

use std::collections::{HashMap, VecDeque};

use cx_graph::{AttributedGraph, Community, VertexId};

use crate::codicil::Clustering;

/// Parameters for [`GirvanNewman`].
#[derive(Debug, Clone, Default)]
pub struct GirvanNewmanParams {
    /// Stop after removing this many edges (0 = remove until none remain).
    /// The best-modularity partition seen is returned either way.
    pub max_removals: usize,
}

/// The Girvan–Newman detector.
#[derive(Debug, Clone, Default)]
pub struct GirvanNewman {
    /// Tuning parameters.
    pub params: GirvanNewmanParams,
}

impl GirvanNewman {
    /// Creates a detector with the given parameters.
    pub fn new(params: GirvanNewmanParams) -> Self {
        Self { params }
    }

    /// Runs divisive clustering, returning the best-modularity partition.
    pub fn detect(&self, g: &AttributedGraph) -> Clustering {
        let n = g.vertex_count();
        if n == 0 {
            return Clustering { labels: Vec::new(), communities: Vec::new() };
        }
        let mut adj: Vec<Vec<u32>> =
            g.vertices().map(|u| g.neighbors(u).iter().map(|v| v.0).collect()).collect();
        let m_total = g.edge_count() as f64;

        let mut best_labels = components(&adj);
        let mut best_q = modularity_of(g, m_total, &best_labels);

        let budget = if self.params.max_removals == 0 {
            g.edge_count()
        } else {
            self.params.max_removals.min(g.edge_count())
        };
        for _ in 0..budget {
            let Some(((u, v), _)) = max_betweenness_edge(&adj) else { break };
            adj[u as usize].retain(|&x| x != v);
            adj[v as usize].retain(|&x| x != u);
            let labels = components(&adj);
            let q = modularity_of(g, m_total, &labels);
            if q > best_q {
                best_q = q;
                best_labels = labels;
            }
        }

        let labels = best_labels;
        let mut groups: HashMap<usize, Vec<VertexId>> = HashMap::new();
        for (i, &l) in labels.iter().enumerate() {
            groups.entry(l).or_default().push(VertexId(i as u32));
        }
        let mut communities: Vec<Community> =
            groups.into_values().map(Community::structural).collect();
        communities.sort_by_key(|c| (std::cmp::Reverse(c.len()), c.vertices()[0]));
        Clustering { labels, communities }
    }
}

/// Modularity of a labeling using the *original* graph's edges/degrees
/// (standard GN practice: the partition is scored on the intact graph).
fn modularity_of(g: &AttributedGraph, m: f64, labels: &[usize]) -> f64 {
    if m == 0.0 {
        return 0.0;
    }
    let k = labels.iter().copied().max().map_or(0, |x| x + 1);
    let mut internal = vec![0.0f64; k];
    let mut degree = vec![0.0f64; k];
    for (u, v) in g.edges() {
        if labels[u.index()] == labels[v.index()] {
            internal[labels[u.index()]] += 1.0;
        }
    }
    for v in g.vertices() {
        degree[labels[v.index()]] += g.degree(v) as f64;
    }
    (0..k).map(|c| internal[c] / m - (degree[c] / (2.0 * m)).powi(2)).sum()
}

/// Connected components of a working adjacency, as dense labels.
fn components(adj: &[Vec<u32>]) -> Vec<usize> {
    let n = adj.len();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        let mut q = VecDeque::from([s as u32]);
        label[s] = next;
        while let Some(u) = q.pop_front() {
            for &v in &adj[u as usize] {
                if label[v as usize] == usize::MAX {
                    label[v as usize] = next;
                    q.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// The edge with the highest betweenness, via Brandes' accumulation from
/// every source (exact, unweighted). `None` when the graph has no edges.
fn max_betweenness_edge(adj: &[Vec<u32>]) -> Option<((u32, u32), f64)> {
    let n = adj.len();
    let mut score: HashMap<(u32, u32), f64> = HashMap::new();
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![usize::MAX; n];
    let mut delta = vec![0.0f64; n];

    for s in 0..n as u32 {
        // BFS with shortest-path counting.
        sigma.iter_mut().for_each(|x| *x = 0.0);
        dist.iter_mut().for_each(|x| *x = usize::MAX);
        delta.iter_mut().for_each(|x| *x = 0.0);
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        let mut order: Vec<u32> = Vec::new();
        let mut q = VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            order.push(u);
            for &v in &adj[u as usize] {
                if dist[v as usize] == usize::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
                if dist[v as usize] == dist[u as usize] + 1 {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        // Dependency accumulation in reverse BFS order, attributed to edges.
        for &w in order.iter().rev() {
            for &u in &adj[w as usize] {
                if dist[u as usize] + 1 == dist[w as usize] {
                    let c = sigma[u as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                    let key = if u < w { (u, w) } else { (w, u) };
                    *score.entry(key).or_insert(0.0) += c;
                    delta[u as usize] += c;
                }
            }
        }
    }
    score
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
        .map(|(e, s)| (e, s / 2.0)) // each undirected pair counted from both endpoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::small_collab_graph;
    use cx_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Barbell: two triangles joined by one bridge edge — the textbook GN
    /// case. The bridge has the highest betweenness and is cut first.
    #[test]
    fn barbell_splits_at_the_bridge() {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for (x, y) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            b.add_edge(v(x), v(y));
        }
        let g = b.build();
        // The bridge (2,3) dominates betweenness: 9 cross pairs route
        // through it.
        let adj: Vec<Vec<u32>> =
            g.vertices().map(|u| g.neighbors(u).iter().map(|x| x.0).collect()).collect();
        let ((a, c), score) = max_betweenness_edge(&adj).unwrap();
        assert_eq!((a, c), (2, 3));
        assert!(score > 8.0, "bridge betweenness {score}");

        let clustering = GirvanNewman::default().detect(&g);
        assert_eq!(clustering.cluster_count(), 2);
        assert_eq!(clustering.labels[0], clustering.labels[2]);
        assert_eq!(clustering.labels[3], clustering.labels[5]);
        assert_ne!(clustering.labels[0], clustering.labels[3]);
    }

    #[test]
    fn splits_collab_graph_like_the_other_detectors() {
        let g = small_collab_graph();
        let clustering = GirvanNewman::default().detect(&g);
        let db0 = g.vertex_by_label("db-author-0").unwrap();
        let db4 = g.vertex_by_label("db-author-4").unwrap();
        let ml0 = g.vertex_by_label("ml-author-0").unwrap();
        assert_eq!(clustering.labels[db0.index()], clustering.labels[db4.index()]);
        assert_ne!(clustering.labels[db0.index()], clustering.labels[ml0.index()]);
    }

    #[test]
    fn removal_budget_limits_work() {
        let g = small_collab_graph();
        let limited = GirvanNewman::new(GirvanNewmanParams { max_removals: 1 }).detect(&g);
        // One removal cannot split a 2-edge-connected graph.
        assert_eq!(limited.labels.len(), g.vertex_count());
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty = GraphBuilder::new().build();
        assert!(GirvanNewman::default().detect(&empty).labels.is_empty());
        let mut b = GraphBuilder::new();
        b.add_vertex("a", &[]);
        b.add_vertex("b", &[]);
        let g = b.build();
        let c = GirvanNewman::default().detect(&g);
        assert_eq!(c.cluster_count(), 2); // two singletons
    }
}
