//! Louvain modularity-based community detection.
//!
//! The paper's CD category (§2) is anchored on modularity methods
//! (Newman & Girvan \[9\], Fortunato's survey \[5\]); Louvain is the standard
//! scalable representative, and C-Explorer's plug-in API is exactly where
//! such a method is installed for comparison against the CS algorithms.
//!
//! Standard two-phase scheme: (1) local moving — greedily move vertices to
//! the neighbouring community with the best modularity gain until no move
//! helps; (2) aggregation — collapse communities into super-vertices and
//! repeat on the condensed graph. Deterministic for a given seed.

use std::collections::HashMap;

use cx_graph::{AttributedGraph, Community, VertexId};
use cx_par::rng::{Rng64, Shuffle};

use crate::codicil::Clustering;

/// Parameters for [`Louvain`].
#[derive(Debug, Clone)]
pub struct LouvainParams {
    /// Maximum local-moving + aggregation rounds.
    pub max_levels: usize,
    /// Maximum local-moving sweeps per level.
    pub max_sweeps: usize,
    /// Minimum modularity gain to keep iterating a level.
    pub min_gain: f64,
    /// RNG seed for the vertex visit order.
    pub seed: u64,
}

impl Default for LouvainParams {
    fn default() -> Self {
        Self { max_levels: 10, max_sweeps: 20, min_gain: 1e-6, seed: 1 }
    }
}

/// The Louvain detector.
#[derive(Debug, Clone, Default)]
pub struct Louvain {
    /// Tuning parameters.
    pub params: LouvainParams,
}

/// A weighted adjacency representation used across aggregation levels.
struct LevelGraph {
    /// adj[u] = (v, weight) pairs; self-loops allowed (from aggregation).
    adj: Vec<Vec<(usize, f64)>>,
    /// Total edge weight (each undirected edge counted once; self-loops once).
    total_weight: f64,
}

impl LevelGraph {
    fn weighted_degree(&self, u: usize) -> f64 {
        self.adj[u]
            .iter()
            .map(|&(v, w)| if v == u { 2.0 * w } else { w })
            .sum()
    }
}

impl Louvain {
    /// Creates a detector with the given parameters.
    pub fn new(params: LouvainParams) -> Self {
        Self { params }
    }

    /// Clusters the whole graph by modularity.
    pub fn detect(&self, g: &AttributedGraph) -> Clustering {
        let n = g.vertex_count();
        if n == 0 {
            return Clustering { labels: Vec::new(), communities: Vec::new() };
        }
        // Level-0 graph: unit weights. Each row only reads the CSR graph,
        // so the build fans out over the cx-par pool.
        let mut level = LevelGraph {
            adj: cx_par::par_map_indexed(n, |ui| {
                g.neighbors(VertexId(ui as u32)).iter().map(|&v| (v.index(), 1.0)).collect()
            }),
            total_weight: g.edge_count() as f64,
        };
        // membership[v] = community of original vertex v (composed across levels).
        let mut membership: Vec<usize> = (0..n).collect();
        let mut rng = Rng64::seed_from_u64(self.params.seed);

        for lvl in 0..self.params.max_levels {
            // Deadline checkpoint + SSE progress (see cx_par::task): with no
            // scope installed both are a thread-local read.
            cx_par::task::progress("louvain.level", lvl as u64, self.params.max_levels as u64);
            if cx_par::task::cancelled() {
                break;
            }
            let (assignment, improved) = self.local_moving(&level, &mut rng);
            if !improved {
                break;
            }
            // Compose with the running membership.
            for m in membership.iter_mut() {
                *m = assignment[*m];
            }
            let next = aggregate(&level, &assignment);
            if next.adj.len() == level.adj.len() {
                break;
            }
            level = next;
        }

        let labels = compact(membership);
        let mut groups: HashMap<usize, Vec<VertexId>> = HashMap::new();
        for (i, &l) in labels.iter().enumerate() {
            groups.entry(l).or_default().push(VertexId(i as u32));
        }
        let mut communities: Vec<Community> =
            groups.into_values().map(Community::structural).collect();
        communities.sort_by_key(|c| (std::cmp::Reverse(c.len()), c.vertices()[0]));
        Clustering { labels, communities }
    }

    /// Phase 1: greedy local moving. Returns (community per vertex,
    /// whether anything improved).
    fn local_moving(&self, lg: &LevelGraph, rng: &mut Rng64) -> (Vec<usize>, bool) {
        let n = lg.adj.len();
        let m2 = (2.0 * lg.total_weight).max(1e-12);
        let mut comm: Vec<usize> = (0..n).collect();
        // Weighted degree per vertex (parallel scan), which at the start of
        // the level is also the per-community total.
        let kdeg: Vec<f64> = cx_par::par_map_indexed(n, |u| lg.weighted_degree(u));
        let mut comm_tot: Vec<f64> = kdeg.clone();

        let mut order: Vec<usize> = (0..n).collect();
        let mut improved_any = false;
        for sweep in 0..self.params.max_sweeps {
            cx_par::task::progress("louvain.sweep", sweep as u64, self.params.max_sweeps as u64);
            order.shuffle(rng);
            let mut moved = false;
            for (step, &u) in order.iter().enumerate() {
                // In-sweep deadline checkpoint: one sweep over a million-vertex
                // level is seconds of work, far longer than any deadline
                // tolerance. The partial assignment is discarded by the caller.
                if step & 0x1FFF == 0 && step != 0 && cx_par::task::cancelled() {
                    return (compact(comm), improved_any);
                }
                let cu = comm[u];
                // Weight from u to each neighbouring community.
                let mut to_comm: HashMap<usize, f64> = HashMap::new();
                for &(v, w) in &lg.adj[u] {
                    if v != u {
                        *to_comm.entry(comm[v]).or_insert(0.0) += w;
                    }
                }
                // Remove u from its community.
                comm_tot[cu] -= kdeg[u];
                let base = to_comm.get(&cu).copied().unwrap_or(0.0);
                // Best gain: ΔQ ∝ (w_to_c - k_u * tot_c / 2m).
                let mut best_c = cu;
                let mut best_gain = base - kdeg[u] * comm_tot[cu] / m2;
                let mut cands: Vec<(usize, f64)> = to_comm.into_iter().collect();
                cands.sort_by_key(|c| c.0); // determinism
                for (c, w_to) in cands {
                    let gain = w_to - kdeg[u] * comm_tot[c] / m2;
                    if gain > best_gain + self.params.min_gain {
                        best_gain = gain;
                        best_c = c;
                    }
                }
                comm[u] = best_c;
                comm_tot[best_c] += kdeg[u];
                if best_c != cu {
                    moved = true;
                    improved_any = true;
                }
            }
            if !moved {
                break;
            }
        }
        (compact(comm), improved_any)
    }
}

/// Phase 2: collapse communities into super-vertices.
fn aggregate(lg: &LevelGraph, assignment: &[usize]) -> LevelGraph {
    let k = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut weights: Vec<HashMap<usize, f64>> = vec![HashMap::new(); k];
    for (u, ns) in lg.adj.iter().enumerate() {
        for &(v, w) in ns {
            if v < u {
                continue; // each undirected edge once (self-loops have v == u)
            }
            let (cu, cv) = (assignment[u], assignment[v]);
            if cu == cv {
                *weights[cu].entry(cu).or_insert(0.0) += w;
            } else {
                *weights[cu].entry(cv).or_insert(0.0) += w;
                *weights[cv].entry(cu).or_insert(0.0) += w;
            }
        }
    }
    let total_weight = lg.total_weight;
    let adj = weights
        .into_iter()
        .map(|m| {
            let mut v: Vec<(usize, f64)> = m.into_iter().collect();
            v.sort_by_key(|e| e.0);
            v
        })
        .collect();
    LevelGraph { adj, total_weight }
}

/// Renumbers labels densely in first-appearance order.
fn compact(labels: Vec<usize>) -> Vec<usize> {
    let mut map: HashMap<usize, usize> = HashMap::new();
    labels
        .into_iter()
        .map(|l| {
            let next = map.len();
            *map.entry(l).or_insert(next)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::{planted_partition, small_collab_graph, PlantedParams};
    use cx_metrics::{modularity, nmi};

    #[test]
    fn splits_collab_graph_into_two_groups() {
        let g = small_collab_graph();
        let c = Louvain::default().detect(&g);
        let db0 = g.vertex_by_label("db-author-0").unwrap();
        let db5 = g.vertex_by_label("db-author-5").unwrap();
        let ml0 = g.vertex_by_label("ml-author-0").unwrap();
        assert_eq!(c.labels[db0.index()], c.labels[db5.index()]);
        assert_ne!(c.labels[db0.index()], c.labels[ml0.index()]);
        // Modularity of the found partition beats the trivial one.
        assert!(modularity(&g, &c.labels) > 0.3);
    }

    #[test]
    fn recovers_planted_partition_with_high_nmi() {
        let (g, truth) = planted_partition(&PlantedParams {
            vertices: 160,
            communities: 4,
            p_intra: 0.3,
            p_inter: 0.01,
            ..PlantedParams::default()
        });
        let c = Louvain::default().detect(&g);
        let score = nmi(&c.labels, &truth);
        assert!(score > 0.9, "NMI too low: {score}");
    }

    #[test]
    fn labels_partition_the_graph() {
        let g = small_collab_graph();
        let c = Louvain::default().detect(&g);
        assert_eq!(c.labels.len(), g.vertex_count());
        let member_total: usize = c.communities.iter().map(Community::len).sum();
        assert_eq!(member_total, g.vertex_count());
        let max = c.labels.iter().copied().max().unwrap();
        assert_eq!(max + 1, c.cluster_count());
    }

    #[test]
    fn deterministic_per_seed_and_empty_graph() {
        let g = small_collab_graph();
        let a = Louvain::default().detect(&g);
        let b = Louvain::default().detect(&g);
        assert_eq!(a.labels, b.labels);
        let empty = cx_graph::GraphBuilder::new().build();
        assert!(Louvain::default().detect(&empty).labels.is_empty());
    }

    #[test]
    fn modularity_never_below_singletons() {
        // On a graph with clear structure, Louvain's modularity must beat
        // the all-singletons partition (which scores ≤ 0).
        let (g, _) = planted_partition(&PlantedParams::default());
        let c = Louvain::default().detect(&g);
        let singletons: Vec<usize> = (0..g.vertex_count()).collect();
        assert!(modularity(&g, &c.labels) > modularity(&g, &singletons));
    }
}
