//! k-edge-connected community search.
//!
//! The paper's reference \[6\] (Hu et al., CIKM'16) searches communities
//! under *edge connectivity* — a strictly stronger cohesiveness notion
//! than minimum degree: a k-edge-connected subgraph survives the failure
//! of any k−1 relationships, whereas a k-core can fall apart at a single
//! cut vertex. This module implements the classic cut-based construction:
//!
//! 1. restrict to the connected k-core containing q (every k-edge-connected
//!    subgraph has minimum degree ≥ k, so nothing is lost and the working
//!    graph shrinks massively);
//! 2. recursively split by global minimum cuts (Stoer–Wagner) until every
//!    part's min cut is ≥ k — the parts are the k-edge-connected
//!    components;
//! 3. return the part containing q.

use cx_graph::{AttributedGraph, Community, Subgraph, VertexId};
use cx_kcore::connected_k_core_containing;

/// The k-edge-connected community of `q`: the maximal subgraph containing
/// q in which every pair of vertices is joined by k edge-disjoint paths.
/// `None` when q ends up in a singleton part (no such community).
pub fn kecc_community(g: &AttributedGraph, q: VertexId, k: u32) -> Option<Community> {
    if !g.contains(q) || k == 0 {
        return None;
    }
    let all: Vec<VertexId> = g.vertices().collect();
    let core = connected_k_core_containing(g, &all, q, k)?;
    let sub = Subgraph::induced(g, &core);
    let lq = sub.local(q).expect("q is in its own core");

    // Weighted local adjacency (weights accumulate under contraction).
    let n = sub.vertex_count();
    let adj: Vec<Vec<(u32, u64)>> = (0..n as u32)
        .map(|u| sub.neighbors(u).iter().map(|&v| (v, 1u64)).collect())
        .collect();

    let members_local = kecc_part_containing(adj, (0..n as u32).collect(), lq, k as u64)?;
    if members_local.len() < 2 {
        return None;
    }
    Some(Community::structural(sub.to_global(&members_local)))
}

/// Recursively splits `vertices` (a subset of the local graph) by global
/// min cuts until the part containing `target` has min cut ≥ k; returns
/// that part (or `None` for a singleton).
fn kecc_part_containing(
    adj: Vec<Vec<(u32, u64)>>,
    vertices: Vec<u32>,
    target: u32,
    k: u64,
) -> Option<Vec<u32>> {
    let mut part = vertices;
    let mut adj = adj;
    loop {
        if part.len() == 1 {
            // A singleton (even the target itself) is not a community.
            return None;
        }
        let (cut, side) = stoer_wagner(&adj, &part);
        if cut >= k {
            return Some(part);
        }
        // Keep only target's side; drop crossing edges.
        let keep: std::collections::HashSet<u32> = part
            .iter()
            .copied()
            .filter(|v| side.contains(v) == side.contains(&target))
            .collect();
        for &v in &part {
            if keep.contains(&v) {
                adj[v as usize].retain(|(u, _)| keep.contains(u));
            } else {
                adj[v as usize].clear();
            }
        }
        part.retain(|v| keep.contains(v));
        // The remaining part may now be disconnected; keep target's
        // connected component before the next cut round.
        let comp = component_of(&adj, target);
        if comp.len() < part.len() {
            let comp_set: std::collections::HashSet<u32> = comp.iter().copied().collect();
            for &v in &part {
                if !comp_set.contains(&v) {
                    adj[v as usize].clear();
                }
            }
            part = comp;
        }
        if part.len() == 1 {
            return None;
        }
    }
}

fn component_of(adj: &[Vec<(u32, u64)>], start: u32) -> Vec<u32> {
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![start];
    seen.insert(start);
    while let Some(u) = stack.pop() {
        for &(v, _) in &adj[u as usize] {
            if seen.insert(v) {
                stack.push(v);
            }
        }
    }
    let mut out: Vec<u32> = seen.into_iter().collect();
    out.sort_unstable();
    out
}

/// Stoer–Wagner global minimum cut over the subgraph induced by `part`
/// (weighted, undirected). Returns `(cut weight, one side of the cut)`.
/// `part` must have ≥ 2 vertices; a disconnected input returns a 0-cut
/// with one component as the side.
///
/// Each maximum-adjacency phase runs with a lazy binary heap, giving
/// O(n (n + m) log n) overall — fast enough to decompose the connected
/// k-core of a community-sized region.
pub fn stoer_wagner(adj: &[Vec<(u32, u64)>], part: &[u32]) -> (u64, Vec<u32>) {
    use std::collections::{BinaryHeap, HashMap, HashSet};

    let in_part: HashSet<u32> = part.iter().copied().collect();
    // Mutable weighted adjacency over active super-vertices.
    let mut w: HashMap<u32, HashMap<u32, u64>> =
        part.iter().map(|&v| (v, HashMap::new())).collect();
    for &u in part {
        for &(v, weight) in &adj[u as usize] {
            if u < v && in_part.contains(&v) {
                *w.get_mut(&u).unwrap().entry(v).or_insert(0) += weight;
                *w.get_mut(&v).unwrap().entry(u).or_insert(0) += weight;
            }
        }
    }
    let mut merged: HashMap<u32, Vec<u32>> = part.iter().map(|&v| (v, vec![v])).collect();
    let mut active: Vec<u32> = part.to_vec();

    let mut best_cut = u64::MAX;
    let mut best_side: Vec<u32> = Vec::new();

    while active.len() > 1 {
        // Maximum adjacency search with a lazy max-heap.
        let start = active[0];
        let mut in_a: HashSet<u32> = HashSet::new();
        let mut key: HashMap<u32, u64> = active.iter().map(|&v| (v, 0)).collect();
        let mut heap: BinaryHeap<(u64, u32)> = BinaryHeap::new();
        heap.push((0, start));
        let mut order: Vec<u32> = Vec::with_capacity(active.len());
        while order.len() < active.len() {
            let Some((k, v)) = heap.pop() else {
                // Disconnected: pull any remaining vertex with key 0.
                let &v = active.iter().find(|v| !in_a.contains(v)).expect("remaining vertex");
                in_a.insert(v);
                order.push(v);
                for (&u, &weight) in &w[&v] {
                    if !in_a.contains(&u) {
                        let nk = key[&u] + weight;
                        key.insert(u, nk);
                        heap.push((nk, u));
                    }
                }
                continue;
            };
            if in_a.contains(&v) || key[&v] != k {
                continue; // stale heap entry
            }
            in_a.insert(v);
            order.push(v);
            for (&u, &weight) in &w[&v] {
                if !in_a.contains(&u) {
                    let nk = key[&u] + weight;
                    key.insert(u, nk);
                    heap.push((nk, u));
                }
            }
        }
        let t = *order.last().unwrap();
        let s_prev = order[order.len() - 2];
        let cut_of_phase = key[&t];
        if cut_of_phase < best_cut {
            best_cut = cut_of_phase;
            best_side = merged[&t].clone();
        }
        // Contract t into s_prev.
        let t_merged = merged.remove(&t).unwrap();
        merged.get_mut(&s_prev).unwrap().extend(t_merged);
        let t_edges: Vec<(u32, u64)> =
            w.remove(&t).unwrap().into_iter().filter(|&(v, _)| v != s_prev).collect();
        for (v, weight) in t_edges {
            w.get_mut(&v).unwrap().remove(&t);
            *w.get_mut(&s_prev).unwrap().entry(v).or_insert(0) += weight;
            *w.get_mut(&v).unwrap().entry(s_prev).or_insert(0) += weight;
        }
        w.get_mut(&s_prev).unwrap().remove(&t);
        active.retain(|&v| v != t);
    }
    best_side.sort_unstable();
    (if best_cut == u64::MAX { 0 } else { best_cut }, best_side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_graph::GraphBuilder;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn graph(n: u32, edges: &[(u32, u32)]) -> AttributedGraph {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for &(a, c) in edges {
            b.add_edge(v(a), v(c));
        }
        b.build()
    }

    fn local_adj(g: &AttributedGraph) -> Vec<Vec<(u32, u64)>> {
        g.vertices()
            .map(|u| g.neighbors(u).iter().map(|x| (x.0, 1u64)).collect())
            .collect()
    }

    #[test]
    fn stoer_wagner_finds_the_bridge() {
        // Two triangles joined by one edge: global min cut = 1.
        let g = graph(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let part: Vec<u32> = (0..6).collect();
        let (cut, side) = stoer_wagner(&local_adj(&g), &part);
        assert_eq!(cut, 1);
        assert!(side.len() == 3, "side {side:?}");
    }

    #[test]
    fn stoer_wagner_on_k4_is_three() {
        let g = graph(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let part: Vec<u32> = (0..4).collect();
        let (cut, _) = stoer_wagner(&local_adj(&g), &part);
        assert_eq!(cut, 3);
    }

    #[test]
    fn stoer_wagner_on_cycle_is_two() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let part: Vec<u32> = (0..5).collect();
        let (cut, _) = stoer_wagner(&local_adj(&g), &part);
        assert_eq!(cut, 2);
    }

    #[test]
    fn kecc_splits_triangles_k2() {
        // Two triangles joined by one edge: the bridge breaks 2-edge
        // connectivity, so the 2-ECC of vertex 0 is its own triangle.
        let g = graph(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let c = kecc_community(&g, v(0), 2).unwrap();
        assert_eq!(c.vertices(), &[v(0), v(1), v(2)]);
        let c5 = kecc_community(&g, v(5), 2).unwrap();
        assert_eq!(c5.vertices(), &[v(3), v(4), v(5)]);
    }

    #[test]
    fn kecc_on_k4() {
        let g = graph(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let c = kecc_community(&g, v(0), 3).unwrap();
        assert_eq!(c.len(), 4);
        assert!(kecc_community(&g, v(0), 4).is_none());
    }

    #[test]
    fn shared_vertex_bowtie_is_still_3_edge_connected() {
        // Two K4s sharing a single vertex: vertex connectivity is 1 (cut
        // vertex) but *edge* connectivity is 3 (the three edges from one
        // clique into the shared vertex), so at k=3 the whole bowtie is
        // one k-ECC — a good reminder that the two notions differ.
        let mut edges = Vec::new();
        for quad in [[0u32, 1, 2, 3], [3, 4, 5, 6]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((quad[i], quad[j]));
                }
            }
        }
        let g = graph(7, &edges);
        let c = kecc_community(&g, v(0), 3).unwrap();
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn kecc_vs_kcore_distinguishes_bridged_cliques() {
        // Two K4s joined by a single bridge edge: every vertex has degree
        // ≥ 3, so the connected 3-core spans all 8 — but the bridge caps
        // edge connectivity at 1, so the 3-ECC of vertex 0 is its own K4.
        let mut edges = Vec::new();
        for quad in [[0u32, 1, 2, 3], [4, 5, 6, 7]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((quad[i], quad[j]));
                }
            }
        }
        edges.push((3, 4)); // the bridge
        let g = graph(8, &edges);
        let c = kecc_community(&g, v(0), 3).unwrap();
        assert_eq!(c.vertices(), &[v(0), v(1), v(2), v(3)]);
        // Global's 3-core answer is all 8 — strictly weaker cohesion.
        let core = crate::Global.fixed_k(&g, v(0), 3).unwrap();
        assert_eq!(core.len(), 8);
    }

    #[test]
    fn kecc_invalid_inputs() {
        let g = graph(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(kecc_community(&g, VertexId(9), 2).is_none());
        assert!(kecc_community(&g, v(0), 0).is_none());
        assert!(kecc_community(&g, v(0), 5).is_none());
    }

    /// Brute-force check on small graphs: the returned community stays
    /// connected after removing any k-1 of its internal edges.
    #[test]
    fn kecc_survives_any_k_minus_1_edge_failures() {
        let g = graph(
            8,
            &[
                (0, 1), (1, 2), (0, 2), (0, 3), (1, 3), (2, 3), // K4-ish
                (3, 4), (4, 5), (5, 6), (6, 4), (6, 7), (7, 5), // looser tail
            ],
        );
        for k in 2..=3u32 {
            let Some(c) = kecc_community(&g, v(0), k) else { continue };
            let members: Vec<VertexId> = c.vertices().to_vec();
            let internal: Vec<(VertexId, VertexId)> = g
                .edges()
                .filter(|&(a, b)| c.contains(a) && c.contains(b))
                .collect();
            // Remove every (k-1)-subset of internal edges; must stay connected.
            let removals: Vec<Vec<usize>> = if k == 2 {
                (0..internal.len()).map(|i| vec![i]).collect()
            } else {
                let mut out = Vec::new();
                for i in 0..internal.len() {
                    for j in (i + 1)..internal.len() {
                        out.push(vec![i, j]);
                    }
                }
                out
            };
            for removal in removals {
                let mut b = GraphBuilder::new();
                for i in 0..g.vertex_count() {
                    b.add_vertex(&format!("w{i}"), &[]);
                }
                for (idx, &(a, c2)) in internal.iter().enumerate() {
                    if !removal.contains(&idx) {
                        b.add_edge(a, c2);
                    }
                }
                let h = b.build();
                let reach = cx_graph::traversal::bfs_filtered(&h, members[0], |x| {
                    c.contains(x)
                });
                assert_eq!(
                    reach.len(),
                    members.len(),
                    "k={k}: community disconnected after removing {removal:?}"
                );
            }
        }
    }
}
