#![warn(missing_docs)]

//! # cx-explorer — the C-Explorer engine (Section 3)
//!
//! The server-side core of the system: it owns the uploaded graphs and
//! their CL-tree indexes, a registry of pluggable community-retrieval
//! algorithms, the profile store behind the Figure 2 popup, and the
//! comparison-analysis module behind Figure 6.
//!
//! The public surface mirrors the paper's Figure 4 Java interface:
//!
//! | Paper (`CExplorer`)            | Here                                  |
//! |--------------------------------|---------------------------------------|
//! | `upload(String filePath)`      | [`Engine::upload`] / [`Engine::add_graph`] |
//! | `search(CSAlgorithm, Query)`   | [`Engine::search`]                    |
//! | `detect(CDAlgorithm)`          | [`Engine::detect`]                    |
//! | `analyze(Community)`           | [`Engine::analyze`] / [`Engine::compare`] |
//! | `display(Community)`           | [`Engine::display`]                   |
//!
//! Third-party algorithms plug in by implementing [`CsAlgorithm`] or
//! [`CdAlgorithm`] and calling [`Engine::register_cs`] /
//! [`Engine::register_cd`]; they then appear in search and comparison
//! analysis exactly like the built-ins (`acq`, `acq-inc-s`, `acq-inc-t`,
//! `acq-basic`, `global`, `global-maxmin`, `local`, `ktruss`, `codicil`).

pub mod api;
pub mod cache;
pub mod compare;
pub mod engine;
pub mod error;
pub mod profile;
pub mod query;
pub mod report;

pub use api::{CdAlgorithm, CsAlgorithm, GraphContext};
pub use cx_cltree::{Expansion, Hierarchy, NodeId, SupernodeStats};
pub use compare::{ComparisonReport, ComparisonRow};
pub use engine::{Engine, GraphIndexEntry, GraphSnapshot, Profile, RegistryIndex};
pub use profile::ProfileStore;
pub use error::ExplorerError;
pub use query::{QuerySpec, VertexRef};
pub use report::{AnalysisReport, CommunityReport};
