//! Compact interned profile storage.
//!
//! The engine's original profile store was `HashMap<VertexId, Profile>`
//! with four owned `String`/`Vec<String>` fields per vertex — roughly
//! 200+ bytes of headers and hash-table slack per profile before any
//! actual text. Fine for the few hundred "renowned researchers" of the
//! paper's demo, ruinous at 1M vertices.
//!
//! [`ProfileStore`] keeps the same logical contents in column form:
//!
//! * every distinct string (names, areas, institutes, interests) is
//!   interned once into a string table — areas/institutes/interests come
//!   from small vocabularies, so this collapses the dominant duplication;
//! * per-profile data is four CSR-style `u32` columns over the table ids
//!   (one name id + three offset-delimited id lists);
//! * profile rows are sorted by vertex id, so lookup is a binary search
//!   and iteration is ordered for free (checkpoints want sorted rows).
//!
//! The store is immutable, matching the snapshot model: `set_profiles`
//! builds a new store via [`ProfileStore::merged`], and edge edits share
//! the old one by `Arc`.

use std::collections::HashMap;

use cx_graph::VertexId;

use crate::engine::Profile;

/// Interned, columnar, immutable profile table. See the module docs.
#[derive(Debug, Default)]
pub struct ProfileStore {
    /// Vertices with a profile, strictly sorted.
    vertex: Vec<VertexId>,
    /// Per-profile interned name id (parallel to `vertex`).
    name_id: Vec<u32>,
    /// CSR offsets into `field_ids`: profile `i`'s areas, institutes and
    /// interests are the three consecutive ranges delimited by
    /// `field_off[3*i] ..= field_off[3*i + 3]`.
    field_off: Vec<u32>,
    /// Interned ids of all list fields, in profile order.
    field_ids: Vec<u32>,
    /// The string table; `lookup` is its inverse, used only while
    /// building (kept so `merged` can extend without re-interning).
    table: Vec<String>,
    lookup: HashMap<String, u32>,
}

impl ProfileStore {
    /// Builds a store from `(vertex, profile)` pairs. Later pairs win on
    /// duplicate vertices, mirroring the map semantics `set_profiles`
    /// always had.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (VertexId, Profile)>) -> Self {
        let mut latest: HashMap<VertexId, Profile> = HashMap::new();
        for (v, p) in pairs {
            latest.insert(v, p);
        }
        let mut rows: Vec<(VertexId, Profile)> = latest.into_iter().collect();
        rows.sort_unstable_by_key(|(v, _)| *v);

        let mut store = Self::default();
        store.vertex.reserve(rows.len());
        store.name_id.reserve(rows.len());
        store.field_off.reserve(3 * rows.len() + 1);
        store.field_off.push(0);
        for (v, p) in rows {
            store.push_row(v, &p);
        }
        store
    }

    /// A new store equal to `self` overlaid with `increment` (new rows
    /// inserted, existing vertices replaced) — the persistent-update
    /// counterpart of `HashMap::extend`.
    pub fn merged(&self, increment: &[(VertexId, Profile)]) -> Self {
        let mut replaced: HashMap<VertexId, &Profile> = HashMap::new();
        for (v, p) in increment {
            replaced.insert(*v, p);
        }
        let mut extra: Vec<(VertexId, &Profile)> = replaced
            .iter()
            .filter(|(v, _)| self.vertex.binary_search(v).is_err())
            .map(|(v, p)| (*v, *p))
            .collect();
        extra.sort_unstable_by_key(|(v, _)| *v);

        let mut store = Self::default();
        let total = self.len() + extra.len();
        store.vertex.reserve(total);
        store.name_id.reserve(total);
        store.field_off.reserve(3 * total + 1);
        store.field_off.push(0);
        // Sorted merge of retained/replaced old rows with brand-new ones.
        let mut extra = extra.into_iter().peekable();
        for i in 0..self.len() {
            let v = self.vertex[i];
            while let Some(&(ev, ep)) = extra.peek() {
                if ev < v {
                    store.push_row(ev, ep);
                    extra.next();
                } else {
                    break;
                }
            }
            match replaced.get(&v) {
                Some(p) => store.push_row(v, p),
                None => store.push_row(v, &self.row(i)),
            }
        }
        for (ev, ep) in extra {
            store.push_row(ev, ep);
        }
        store
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.lookup.get(s) {
            return id;
        }
        let id = u32::try_from(self.table.len()).expect("profile string table exceeds u32");
        self.table.push(s.to_owned());
        self.lookup.insert(s.to_owned(), id);
        id
    }

    fn push_row(&mut self, v: VertexId, p: &Profile) {
        debug_assert!(self.vertex.last().is_none_or(|&last| last < v), "rows must arrive sorted");
        self.vertex.push(v);
        let name = self.intern(&p.name);
        self.name_id.push(name);
        for list in [&p.areas, &p.institutes, &p.interests] {
            for s in list {
                let id = self.intern(s);
                self.field_ids.push(id);
            }
            self.field_off.push(self.field_ids.len() as u32);
        }
    }

    fn strings(&self, row: usize, field: usize) -> Vec<String> {
        let lo = self.field_off[3 * row + field] as usize;
        let hi = self.field_off[3 * row + field + 1] as usize;
        self.field_ids[lo..hi].iter().map(|&id| self.table[id as usize].clone()).collect()
    }

    fn row(&self, i: usize) -> Profile {
        Profile {
            name: self.table[self.name_id[i] as usize].clone(),
            areas: self.strings(i, 0),
            institutes: self.strings(i, 1),
            interests: self.strings(i, 2),
        }
    }

    /// The profile of `v`, materialised, if one was stored.
    pub fn get(&self, v: VertexId) -> Option<Profile> {
        self.vertex.binary_search(&v).ok().map(|i| self.row(i))
    }

    /// Whether `v` has a profile (no materialisation).
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertex.binary_search(&v).is_ok()
    }

    /// Number of stored profiles.
    pub fn len(&self) -> usize {
        self.vertex.len()
    }

    /// True when no profiles are stored.
    pub fn is_empty(&self) -> bool {
        self.vertex.is_empty()
    }

    /// Iterates `(vertex, profile)` in vertex order, materialising rows
    /// lazily — the checkpoint writer's view.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, Profile)> + '_ {
        (0..self.len()).map(|i| (self.vertex[i], self.row(i)))
    }

    /// Approximate heap footprint in bytes: the four columns plus the
    /// string table (the build-time `lookup` map is counted too, since
    /// the store keeps it for `merged`).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.vertex.len() * size_of::<VertexId>()
            + self.name_id.len() * size_of::<u32>()
            + self.field_off.len() * size_of::<u32>()
            + self.field_ids.len() * size_of::<u32>()
            + self
                .table
                .iter()
                .map(|s| 2 * (s.len() + size_of::<String>()) + size_of::<u32>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn profile(name: &str, area: &str) -> Profile {
        Profile {
            name: name.to_owned(),
            areas: vec![area.to_owned(), "databases".to_owned()],
            institutes: vec!["UHK".to_owned()],
            interests: vec![area.to_owned()],
        }
    }

    #[test]
    fn roundtrips_profiles_exactly() {
        let p0 = profile("alice", "graphs");
        let p2 = profile("carol", "ml");
        let store = ProfileStore::from_pairs([(v(2), p2.clone()), (v(0), p0.clone())]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(v(0)), Some(p0));
        assert_eq!(store.get(v(2)), Some(p2));
        assert_eq!(store.get(v(1)), None);
        assert!(store.contains(v(2)));
        assert!(!store.contains(v(7)));
        let order: Vec<VertexId> = store.iter().map(|(x, _)| x).collect();
        assert_eq!(order, vec![v(0), v(2)]);
    }

    #[test]
    fn later_pairs_win_and_empty_fields_survive() {
        let mut p = profile("bob", "systems");
        p.institutes.clear();
        let store = ProfileStore::from_pairs([
            (v(1), profile("old", "x")),
            (v(1), p.clone()),
        ]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(v(1)), Some(p));
    }

    #[test]
    fn merged_replaces_and_inserts() {
        let base = ProfileStore::from_pairs([
            (v(0), profile("alice", "graphs")),
            (v(5), profile("eve", "crypto")),
        ]);
        let newer = profile("alice2", "graphs");
        let inserted = profile("dan", "theory");
        let merged = base.merged(&[(v(0), newer.clone()), (v(3), inserted.clone())]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.get(v(0)), Some(newer));
        assert_eq!(merged.get(v(3)), Some(inserted));
        assert_eq!(merged.get(v(5)), Some(profile("eve", "crypto")));
        // Base is untouched.
        assert_eq!(base.len(), 2);
        assert_eq!(base.get(v(0)).unwrap().name, "alice");
    }

    #[test]
    fn interning_deduplicates_repeated_strings() {
        // 100 profiles drawing from the same 3-string vocabulary: the
        // table must stay tiny, so the footprint grows by the columns
        // (16 bytes/row of ids+offsets), not by repeated text.
        let shared = ProfileStore::from_pairs(
            (0..100u32).map(|i| (v(i), profile("dup", "area"))),
        );
        let distinct = ProfileStore::from_pairs(
            (0..100u32).map(|i| (v(i), profile(&format!("name{i}"), &format!("area{i}")))),
        );
        assert!(shared.memory_bytes() < distinct.memory_bytes() / 2);
    }

    #[test]
    fn empty_store_behaves() {
        let store = ProfileStore::default();
        assert!(store.is_empty());
        assert_eq!(store.get(v(0)), None);
        assert_eq!(store.iter().count(), 0);
        let merged = store.merged(&[(v(1), profile("a", "b"))]);
        assert_eq!(merged.len(), 1);
    }
}
