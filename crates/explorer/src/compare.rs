//! Comparison analysis — the module behind Figure 6.
//!
//! Runs one query through several registered algorithms, collects the
//! Figure 6(a) statistics table (method / communities / vertices / edges /
//! degree), the CPJ/CMF quality bars, and the pairwise similarity between
//! the methods' result sets.

use std::time::Instant;

use cx_graph::Community;

use crate::engine::Engine;
use crate::error::ExplorerError;
use crate::query::QuerySpec;

/// One row of the comparison table (one algorithm).
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Algorithm name.
    pub method: String,
    /// Number of communities returned.
    pub communities: usize,
    /// Average member count.
    pub avg_vertices: f64,
    /// Average internal-edge count.
    pub avg_edges: f64,
    /// Average internal degree.
    pub avg_degree: f64,
    /// CPJ quality.
    pub cpj: f64,
    /// CMF quality (w.r.t. the first query vertex).
    pub cmf: f64,
    /// Wall-clock query time in milliseconds.
    pub millis: f64,
    /// The raw result set (for the "view" links / similarity analysis).
    pub results: Vec<Community>,
}

/// The full comparison: one row per method plus a best-match F1 similarity
/// matrix between the methods' result sets.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// Rows in the order the methods were requested.
    pub rows: Vec<ComparisonRow>,
    /// `similarity[i][j]` = best-match F1 of method i's results against
    /// method j's.
    pub similarity: Vec<Vec<f64>>,
}

impl Engine {
    /// Runs `spec` through each named algorithm on the (default or named)
    /// graph and assembles the comparison report. Unknown algorithm names
    /// error; algorithms that return nothing produce a zero row, exactly
    /// like an empty result in the UI.
    pub fn compare(
        &self,
        graph: Option<&str>,
        algos: &[&str],
        spec: &QuerySpec,
    ) -> Result<ComparisonReport, ExplorerError> {
        // Pin one snapshot for the whole comparison: every method runs
        // against the same graph version even if an edit lands mid-way.
        let snap = self.snapshot(graph)?;
        let g = &*snap.graph;
        let q = spec.resolve(g)?[0];

        let mut rows = Vec::with_capacity(algos.len());
        for &name in algos {
            let start = Instant::now();
            let results = self.search_snapshot(&snap, name, spec)?;
            let millis = start.elapsed().as_secs_f64() * 1e3;
            let stats = cx_metrics::CommunityStats::compute(g, &results);
            rows.push(ComparisonRow {
                method: name.to_owned(),
                communities: stats.communities,
                avg_vertices: stats.avg_vertices,
                avg_edges: stats.avg_edges,
                avg_degree: stats.avg_degree,
                cpj: cx_metrics::cpj(g, &results),
                cmf: cx_metrics::cmf(g, &results, q),
                millis,
                results,
            });
        }

        let n = rows.len();
        let mut similarity = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                similarity[i][j] = if i == j {
                    1.0
                } else {
                    cx_metrics::f1_score(&rows[i].results, &rows[j].results)
                };
            }
        }
        Ok(ComparisonReport { rows, similarity })
    }
}

impl ComparisonReport {
    /// Renders the Figure 6(a) statistics table as text.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>11} {:>9} {:>8} {:>7} {:>6} {:>6} {:>9}\n",
            "Method", "Communities", "Vertices", "Edges", "Degree", "CPJ", "CMF", "Time(ms)"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>11} {:>9.1} {:>8.1} {:>7.1} {:>6.3} {:>6.3} {:>9.2}\n",
                r.method,
                r.communities,
                r.avg_vertices,
                r.avg_edges,
                r.avg_degree,
                r.cpj,
                r.cmf,
                r.millis
            ));
        }
        out
    }

    /// Renders the CPJ and CMF charts as one SVG document (the Analysis
    /// tab's exportable bar graphs).
    pub fn quality_charts_svg(&self) -> String {
        let cpj: Vec<(&str, f64)> =
            self.rows.iter().map(|r| (r.method.as_str(), r.cpj)).collect();
        let cmf: Vec<(&str, f64)> =
            self.rows.iter().map(|r| (r.method.as_str(), r.cmf)).collect();
        format!(
            "{}\n{}",
            cx_metrics::bar_chart_svg("CPJ (pairwise keyword similarity)", &cpj, 260.0),
            cx_metrics::bar_chart_svg("CMF (query-keyword coverage)", &cmf, 260.0)
        )
    }

    /// Renders the CPJ and CMF bar charts (the Analysis tab's bar graphs).
    pub fn quality_charts(&self) -> String {
        let cpj: Vec<(&str, f64)> =
            self.rows.iter().map(|r| (r.method.as_str(), r.cpj)).collect();
        let cmf: Vec<(&str, f64)> =
            self.rows.iter().map(|r| (r.method.as_str(), r.cmf)).collect();
        format!(
            "CPJ (pairwise keyword similarity)\n{}\n\nCMF (query-keyword coverage)\n{}",
            cx_metrics::bar_chart(&cpj, 40),
            cx_metrics::bar_chart(&cmf, 40)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::small_collab_graph;

    #[test]
    fn compare_four_methods_on_collab_graph() {
        let e = Engine::with_graph("collab", small_collab_graph());
        let spec = QuerySpec::by_label("db-author-0").k(3);
        let report = e
            .compare(None, &["global", "local", "codicil", "acq"], &spec)
            .unwrap();
        assert_eq!(report.rows.len(), 4);
        let by_name = |n: &str| report.rows.iter().find(|r| r.method == n).unwrap();

        // Everyone found something.
        for r in &report.rows {
            assert!(r.communities >= 1, "{} returned nothing", r.method);
            assert!(r.avg_degree > 0.0);
        }
        // The qualitative Figure 6(a) shape: Global's community is the
        // biggest (whole connected k-core spans both cliques via the
        // bridge); ACQ's keyword constraint keeps it within the db group.
        assert!(
            by_name("global").avg_vertices >= by_name("acq").avg_vertices,
            "global {} < acq {}",
            by_name("global").avg_vertices,
            by_name("acq").avg_vertices
        );
        // ACQ has the best keyword cohesion.
        assert!(by_name("acq").cpj >= by_name("global").cpj);
        assert!(by_name("acq").cmf >= by_name("global").cmf);

        // Similarity matrix is square with a unit diagonal.
        assert_eq!(report.similarity.len(), 4);
        for i in 0..4 {
            assert_eq!(report.similarity[i][i], 1.0);
        }
    }

    #[test]
    fn table_and_charts_render() {
        let e = Engine::with_graph("collab", small_collab_graph());
        let spec = QuerySpec::by_label("ml-author-1").k(3);
        let report = e.compare(None, &["global", "acq"], &spec).unwrap();
        let table = report.table();
        assert!(table.contains("Method"));
        assert!(table.contains("global"));
        assert!(table.contains("acq"));
        let charts = report.quality_charts();
        assert!(charts.contains("CPJ"));
        assert!(charts.contains("CMF"));
        let svg = report.quality_charts_svg();
        assert_eq!(svg.matches("<svg").count(), 2);
        assert!(svg.contains("global"));
    }

    #[test]
    fn unknown_method_propagates_error() {
        let e = Engine::with_graph("collab", small_collab_graph());
        let spec = QuerySpec::by_label("db-author-0");
        assert!(e.compare(None, &["acq", "ghost"], &spec).is_err());
    }
}
