//! Bounded LRU cache for engine query results.
//!
//! Browsing sessions re-run the same query constantly: the user tweaks
//! `k`, flips back, compares two algorithms on the same vertex, or
//! refreshes the page. The community itself is a pure function of
//! `(graph contents, algorithm, resolved query)`, so the engine keeps a
//! small LRU map from that key to the result vector.
//!
//! Invalidation is generation-based rather than eager: every graph entry
//! carries a monotonically increasing generation number, bumped whenever
//! the graph's contents change (`add_graph` replacing a name,
//! `apply_edits`). Cached values remember the generation they were
//! computed against; a lookup whose generation no longer matches is a
//! miss and the stale value is dropped on the spot. Replacing an
//! algorithm (`register_cs` / `register_cd`) clears the cache wholesale —
//! the same name may now mean different code.

use std::collections::HashMap;

use cx_graph::{Community, VertexId};

/// The identity of a query: everything that determines its answer other
/// than the graph's contents (covered by the generation number).
///
/// `vertices` holds the *resolved* query vertex ids, so `by_label("A")`
/// and `by_id` of the same vertex share a slot. A detect-style query
/// (whole-graph clustering) has no query vertices; resolution guarantees
/// searches always have at least one, so the two cannot collide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Resolved graph name (never the "default" alias).
    pub graph: String,
    /// Algorithm name as registered.
    pub algo: String,
    /// Resolved query vertices (empty for detect).
    pub vertices: Vec<VertexId>,
    /// Minimum-degree parameter (0 for detect).
    pub k: u32,
    /// Keyword selection, in query order.
    pub keywords: Vec<String>,
}

struct CacheEntry {
    /// Graph generation the result was computed against.
    generation: u64,
    /// Logical timestamp of the last hit or insert (for LRU eviction).
    last_used: u64,
    result: Vec<Community>,
}

/// Hit/miss/occupancy counters, for tests and the `/api/stats` endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the algorithm.
    pub misses: u64,
    /// Entries currently stored.
    pub len: usize,
    /// Maximum entries before LRU eviction kicks in.
    pub capacity: usize,
}

/// The cache proper. The engine wraps it in a `Mutex`, which keeps
/// `Engine: Sync` while letting `&self` query methods record hits.
pub struct QueryCache {
    map: HashMap<QueryKey, CacheEntry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// Default number of cached query results per engine.
pub const DEFAULT_CAPACITY: usize = 128;

impl QueryCache {
    /// An empty cache holding at most `capacity` results (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        Self { map: HashMap::new(), capacity, tick: 0, hits: 0, misses: 0 }
    }

    /// Looks up `key` at graph generation `generation`. Counts a hit or
    /// a miss; a generation mismatch evicts the stale entry and counts
    /// as a miss.
    pub fn get(&mut self, key: &QueryKey, generation: u64) -> Option<Vec<Community>> {
        match self.map.get_mut(key) {
            Some(e) if e.generation == generation => {
                self.tick += 1;
                e.last_used = self.tick;
                self.hits += 1;
                Some(e.result.clone())
            }
            Some(_) => {
                self.map.remove(key);
                self.misses += 1;
                cx_obs::metrics::inc("cx_engine_cache_total{event=\"invalidate\"}");
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a freshly computed result, evicting the least-recently
    /// used entry if the cache is full.
    pub fn insert(&mut self, key: QueryKey, generation: u64, result: Vec<Community>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                cx_obs::metrics::inc("cx_engine_cache_total{event=\"evict\"}");
            }
        }
        self.tick += 1;
        self.map
            .insert(key, CacheEntry { generation, last_used: self.tick, result });
    }

    /// Drops every cached result (counters survive).
    pub fn clear(&mut self) {
        cx_obs::metrics::add(
            "cx_engine_cache_total{event=\"invalidate\"}",
            self.map.len() as u64,
        );
        self.map.clear();
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }

    /// Resizes the cache, evicting LRU entries if it shrinks below the
    /// current occupancy.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.map.len() > self.capacity {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: &str) -> QueryKey {
        QueryKey {
            graph: "g".into(),
            algo: tag.into(),
            vertices: vec![VertexId(0)],
            k: 2,
            keywords: Vec::new(),
        }
    }

    #[test]
    fn hit_after_insert_and_miss_before() {
        let mut c = QueryCache::new(4);
        assert!(c.get(&key("acq"), 1).is_none());
        c.insert(key("acq"), 1, vec![Community::structural(vec![VertexId(0)])]);
        let got = c.get(&key("acq"), 1).unwrap();
        assert_eq!(got.len(), 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn generation_mismatch_is_a_miss_and_evicts() {
        let mut c = QueryCache::new(4);
        c.insert(key("acq"), 1, Vec::new());
        assert!(c.get(&key("acq"), 2).is_none());
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let mut c = QueryCache::new(2);
        c.insert(key("a"), 1, Vec::new());
        c.insert(key("b"), 1, Vec::new());
        c.get(&key("a"), 1); // touch a, making b the LRU
        c.insert(key("c"), 1, Vec::new());
        assert!(c.get(&key("a"), 1).is_some());
        assert!(c.get(&key("b"), 1).is_none());
        assert!(c.get(&key("c"), 1).is_some());
        assert_eq!(c.stats().len, 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = QueryCache::new(0);
        c.insert(key("a"), 1, Vec::new());
        assert!(c.get(&key("a"), 1).is_none());
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let mut c = QueryCache::new(4);
        for tag in ["a", "b", "c", "d"] {
            c.insert(key(tag), 1, Vec::new());
        }
        c.get(&key("d"), 1);
        c.set_capacity(1);
        assert_eq!(c.stats().len, 1);
        assert!(c.get(&key("d"), 1).is_some());
    }
}
