//! Sharded, bounded LRU cache for engine query results.
//!
//! Browsing sessions re-run the same query constantly: the user tweaks
//! `k`, flips back, compares two algorithms on the same vertex, or
//! refreshes the page. The community itself is a pure function of
//! `(graph snapshot, algorithm, resolved query)`, so the engine keeps a
//! small LRU map from that key to the result vector.
//!
//! Invalidation is generation-*keyed* rather than eager: the snapshot
//! generation a result was computed against is part of [`QueryKey`], so a
//! query against a newer snapshot can never be answered from an older
//! one's entry — the stale key simply never matches. When the engine
//! publishes a new snapshot it calls [`ShardedCache::purge_older`] to
//! drop the orphaned entries of the replaced generation immediately;
//! anything that slips through (a reader pinned to an old snapshot may
//! re-insert) ages out through normal LRU eviction. Replacing an
//! algorithm (`register_cs` / `register_cd`) clears the cache wholesale —
//! the same name may now mean different code.
//!
//! Concurrency: the cache is split into shards, each behind its own
//! `Mutex`, selected by a deterministic hash of the key. Concurrent
//! readers on different queries proceed without contending on one global
//! cache lock (the pre-snapshot engine's bottleneck). The shard *count*
//! adapts to the capacity (`min(capacity, 8)`, at least 1) so tiny test
//! caches keep exact LRU semantics within their single shard.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

use cx_graph::{Community, VertexId};

/// The identity of a query: everything that determines its answer.
///
/// `generation` pins the key to one published snapshot of the graph, so
/// edits can never leak a stale answer. `vertices` holds the *resolved*
/// query vertex ids, so `by_label("A")` and `by_id` of the same vertex
/// share a slot. A detect-style query (whole-graph clustering) has no
/// query vertices; resolution guarantees searches always have at least
/// one, so the two cannot collide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Resolved graph name (never the "default" alias).
    pub graph: String,
    /// Snapshot generation the result is valid for.
    pub generation: u64,
    /// Algorithm name as registered.
    pub algo: String,
    /// Resolved query vertices (empty for detect).
    pub vertices: Vec<VertexId>,
    /// Minimum-degree parameter (0 for detect).
    pub k: u32,
    /// Keyword selection, in query order.
    pub keywords: Vec<String>,
}

struct CacheEntry {
    /// Logical timestamp of the last hit or insert (for LRU eviction).
    last_used: u64,
    result: Vec<Community>,
}

/// Hit/miss/occupancy counters, for tests and the `/api/stats` endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the algorithm.
    pub misses: u64,
    /// Entries currently stored.
    pub len: usize,
    /// Maximum entries before LRU eviction kicks in.
    pub capacity: usize,
}

/// One shard: a plain LRU map. Exact LRU order holds within a shard.
pub struct QueryCache {
    map: HashMap<QueryKey, CacheEntry>,
    capacity: usize,
    tick: u64,
}

/// Default number of cached query results per engine.
pub const DEFAULT_CAPACITY: usize = 128;

/// Upper bound on shards; the effective count is `min(capacity, 8)`.
const MAX_SHARDS: usize = 8;

impl QueryCache {
    /// An empty shard holding at most `capacity` results (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        Self { map: HashMap::new(), capacity, tick: 0 }
    }

    /// Looks up `key`, refreshing its LRU position on a hit.
    pub fn get(&mut self, key: &QueryKey) -> Option<Vec<Community>> {
        let e = self.map.get_mut(key)?;
        self.tick += 1;
        e.last_used = self.tick;
        Some(e.result.clone())
    }

    /// Stores a freshly computed result, evicting the least-recently
    /// used entry if the shard is full.
    pub fn insert(&mut self, key: QueryKey, result: Vec<Community>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                cx_obs::metrics::inc("cx_engine_cache_total{event=\"evict\"}");
            }
        }
        self.tick += 1;
        self.map.insert(key, CacheEntry { last_used: self.tick, result });
    }

    /// Drops every entry for `graph` older than `generation`; returns how
    /// many were dropped.
    pub fn purge_older(&mut self, graph: &str, generation: u64) -> usize {
        let before = self.map.len();
        self.map.retain(|k, _| k.graph != graph || k.generation >= generation);
        before - self.map.len()
    }

    /// Drops every entry for `graph` regardless of generation; returns
    /// how many were dropped.
    pub fn purge_graph(&mut self, graph: &str) -> usize {
        let before = self.map.len();
        self.map.retain(|k, _| k.graph != graph);
        before - self.map.len()
    }

    /// Drops every cached result.
    pub fn clear(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        n
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Shard layout for one capacity setting.
fn shard_capacities(capacity: usize) -> Vec<usize> {
    let n = capacity.clamp(1, MAX_SHARDS);
    let (base, extra) = (capacity / n, capacity % n);
    (0..n).map(|i| base + usize::from(i < extra)).collect()
}

/// The concurrent cache the engine embeds: shards behind independent
/// mutexes plus process-lifetime hit/miss counters. The outer `RwLock`
/// is only write-locked by [`ShardedCache::set_capacity`] (which rebuilds
/// the shard layout); every query path takes it in read mode and then
/// contends only on its own shard.
pub struct ShardedCache {
    shards: RwLock<Vec<Mutex<QueryCache>>>,
    capacity: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedCache {
    /// A cache holding at most `capacity` results across all shards
    /// (0 disables caching entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            shards: RwLock::new(
                shard_capacities(capacity).into_iter().map(|c| Mutex::new(QueryCache::new(c))).collect(),
            ),
            capacity: AtomicUsize::new(capacity),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Deterministic shard index for a key (`DefaultHasher` is keyed with
    /// constants, unlike `RandomState`, so placement is reproducible).
    fn shard_index(key: &QueryKey, n: usize) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % n
    }

    /// Looks up `key`, counting a hit or a miss.
    pub fn get(&self, key: &QueryKey) -> Option<Vec<Community>> {
        let shards = self.shards.read().unwrap_or_else(|p| p.into_inner());
        let shard = &shards[Self::shard_index(key, shards.len())];
        let out = shard.lock().unwrap_or_else(|p| p.into_inner()).get(key);
        match out {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    /// Stores a freshly computed result.
    pub fn insert(&self, key: QueryKey, result: Vec<Community>) {
        let shards = self.shards.read().unwrap_or_else(|p| p.into_inner());
        let shard = &shards[Self::shard_index(&key, shards.len())];
        shard.lock().unwrap_or_else(|p| p.into_inner()).insert(key, result);
    }

    /// Drops entries for `graph` whose generation predates `generation`
    /// (called when a new snapshot is published).
    pub fn purge_older(&self, graph: &str, generation: u64) {
        let shards = self.shards.read().unwrap_or_else(|p| p.into_inner());
        let mut dropped = 0usize;
        for shard in shards.iter() {
            dropped += shard.lock().unwrap_or_else(|p| p.into_inner()).purge_older(graph, generation);
        }
        cx_obs::metrics::add("cx_engine_cache_total{event=\"invalidate\"}", dropped as u64);
    }

    /// Drops every entry for `graph` (called when a graph is removed).
    pub fn purge_graph(&self, graph: &str) {
        let shards = self.shards.read().unwrap_or_else(|p| p.into_inner());
        let mut dropped = 0usize;
        for shard in shards.iter() {
            dropped += shard.lock().unwrap_or_else(|p| p.into_inner()).purge_graph(graph);
        }
        cx_obs::metrics::add("cx_engine_cache_total{event=\"invalidate\"}", dropped as u64);
    }

    /// Drops every cached result (counters survive).
    pub fn clear(&self) {
        let shards = self.shards.read().unwrap_or_else(|p| p.into_inner());
        let mut dropped = 0usize;
        for shard in shards.iter() {
            dropped += shard.lock().unwrap_or_else(|p| p.into_inner()).clear();
        }
        cx_obs::metrics::add("cx_engine_cache_total{event=\"invalidate\"}", dropped as u64);
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let shards = self.shards.read().unwrap_or_else(|p| p.into_inner());
        let len = shards.iter().map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len()).sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len,
            capacity: self.capacity.load(Ordering::Relaxed),
        }
    }

    /// Resizes the cache. The shard layout depends on the capacity, so
    /// this rebuilds the shards and drops all cached entries (counted as
    /// invalidations); hit/miss counters survive.
    pub fn set_capacity(&self, capacity: usize) {
        let mut shards = self.shards.write().unwrap_or_else(|p| p.into_inner());
        let dropped: usize =
            shards.iter().map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len()).sum();
        *shards = shard_capacities(capacity).into_iter().map(|c| Mutex::new(QueryCache::new(c))).collect();
        self.capacity.store(capacity, Ordering::Relaxed);
        cx_obs::metrics::add("cx_engine_cache_total{event=\"invalidate\"}", dropped as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: &str) -> QueryKey {
        key_gen(tag, 1)
    }

    fn key_gen(tag: &str, generation: u64) -> QueryKey {
        QueryKey {
            graph: "g".into(),
            generation,
            algo: tag.into(),
            vertices: vec![VertexId(0)],
            k: 2,
            keywords: Vec::new(),
        }
    }

    #[test]
    fn shard_hit_after_insert_and_miss_before() {
        let mut c = QueryCache::new(4);
        assert!(c.get(&key("acq")).is_none());
        c.insert(key("acq"), vec![Community::structural(vec![VertexId(0)])]);
        let got = c.get(&key("acq")).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn generations_are_distinct_keys() {
        let mut c = QueryCache::new(4);
        c.insert(key_gen("acq", 1), Vec::new());
        assert!(c.get(&key_gen("acq", 2)).is_none(), "newer generation never sees older entry");
        assert!(c.get(&key_gen("acq", 1)).is_some(), "pinned readers still hit their generation");
        assert_eq!(c.purge_older("g", 2), 1);
        assert!(c.get(&key_gen("acq", 1)).is_none());
    }

    #[test]
    fn shard_lru_evicts_the_coldest() {
        let mut c = QueryCache::new(2);
        c.insert(key("a"), Vec::new());
        c.insert(key("b"), Vec::new());
        c.get(&key("a")); // touch a, making b the LRU
        c.insert(key("c"), Vec::new());
        assert!(c.get(&key("a")).is_some());
        assert!(c.get(&key("b")).is_none());
        assert!(c.get(&key("c")).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables() {
        let c = ShardedCache::new(0);
        c.insert(key("a"), Vec::new());
        assert!(c.get(&key("a")).is_none());
        let s = c.stats();
        assert_eq!((s.len, s.capacity), (0, 0));
    }

    #[test]
    fn sharded_counters_and_occupancy() {
        let c = ShardedCache::new(16);
        assert!(c.get(&key("a")).is_none());
        c.insert(key("a"), Vec::new());
        assert!(c.get(&key("a")).is_some());
        c.insert(key("b"), Vec::new());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len, s.capacity), (1, 1, 2, 16));
    }

    #[test]
    fn shard_capacities_sum_to_total() {
        for cap in [0, 1, 2, 3, 7, 8, 9, 128, 1000] {
            let caps = shard_capacities(cap);
            assert!(!caps.is_empty());
            assert!(caps.len() <= MAX_SHARDS);
            assert_eq!(caps.iter().sum::<usize>(), cap, "capacity {cap}");
        }
        assert_eq!(shard_capacities(1).len(), 1, "tiny caches stay single-shard (exact LRU)");
    }

    #[test]
    fn total_occupancy_never_exceeds_capacity() {
        let c = ShardedCache::new(5);
        for i in 0..40 {
            c.insert(key(&format!("algo{i}")), Vec::new());
        }
        assert!(c.stats().len <= 5);
    }

    #[test]
    fn purge_older_spares_other_graphs() {
        let c = ShardedCache::new(16);
        c.insert(key_gen("a", 1), Vec::new());
        let mut other = key_gen("a", 1);
        other.graph = "h".into();
        c.insert(other.clone(), Vec::new());
        c.purge_older("g", 2);
        assert!(c.get(&key_gen("a", 1)).is_none(), "stale generation purged");
        assert!(c.get(&other).is_some(), "other graph untouched");
    }

    #[test]
    fn set_capacity_rebuilds_but_keeps_counters() {
        let c = ShardedCache::new(8);
        c.insert(key("a"), Vec::new());
        c.get(&key("a"));
        c.set_capacity(2);
        let s = c.stats();
        assert_eq!((s.hits, s.len, s.capacity), (1, 0, 2));
    }

    #[test]
    fn shard_placement_is_deterministic() {
        let n = 8;
        let a = ShardedCache::shard_index(&key("acq"), n);
        for _ in 0..100 {
            assert_eq!(ShardedCache::shard_index(&key("acq"), n), a);
        }
    }
}
