//! The engine: graphs + indexes + algorithm registry + profiles.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

use cx_cltree::ClTree;
use cx_graph::{AttributedGraph, Community, VertexId};
use cx_layout::{layout_community, LayoutAlgorithm, Scene};

use crate::api::{
    AcqAlgorithm, CdAlgorithm, CodicilAlgorithm, CsAlgorithm, GlobalAlgorithm,
    GlobalMaxMinAlgorithm, GirvanNewmanAlgorithm, GraphContext, KEccAlgorithm, KTrussAlgorithm, LocalAlgorithm,
    SacAlgorithm,
    LouvainAlgorithm,
};
use crate::cache::{CacheStats, QueryCache, QueryKey, DEFAULT_CAPACITY};
use crate::error::ExplorerError;
use crate::query::QuerySpec;
use crate::report::AnalysisReport;

/// A researcher profile record (Figure 2's popup content). The engine
/// stores one per vertex per graph; where they come from (Wikipedia in the
/// paper, the synthetic generator here) is the caller's business.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Display name.
    pub name: String,
    /// Broad research areas.
    pub areas: Vec<String>,
    /// Institutions.
    pub institutes: Vec<String>,
    /// Research interests.
    pub interests: Vec<String>,
}

struct GraphEntry {
    graph: AttributedGraph,
    tree: ClTree,
    profiles: HashMap<VertexId, Profile>,
    coords: Option<Vec<(f64, f64)>>,
    /// Monotone content version; queries cached against an older
    /// generation are stale (see [`crate::cache`]).
    generation: u64,
}

/// The C-Explorer engine. One instance serves many graphs and algorithms;
/// it is `Sync` once constructed (wrap in a lock to mutate concurrently).
///
/// Query results from [`Engine::search_on`] / [`Engine::detect_on`] are
/// memoised in a bounded LRU cache keyed by the resolved query; any
/// mutation of a graph's contents invalidates its cached entries via a
/// generation counter.
pub struct Engine {
    graphs: HashMap<String, GraphEntry>,
    default_graph: Option<String>,
    cs: Vec<Box<dyn CsAlgorithm>>,
    cd: Vec<Box<dyn CdAlgorithm>>,
    cache: Mutex<QueryCache>,
    next_generation: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with the built-in algorithms registered and no graphs.
    pub fn new() -> Self {
        let mut e = Self {
            graphs: HashMap::new(),
            default_graph: None,
            cs: Vec::new(),
            cd: Vec::new(),
            cache: Mutex::new(QueryCache::new(DEFAULT_CAPACITY)),
            next_generation: 0,
        };
        e.register_cs(Box::new(AcqAlgorithm::dec()));
        e.register_cs(Box::new(AcqAlgorithm::with_strategy(cx_acq::AcqStrategy::IncS)));
        e.register_cs(Box::new(AcqAlgorithm::with_strategy(cx_acq::AcqStrategy::IncT)));
        e.register_cs(Box::new(AcqAlgorithm::with_strategy(cx_acq::AcqStrategy::Basic)));
        e.register_cs(Box::new(GlobalAlgorithm));
        e.register_cs(Box::new(GlobalMaxMinAlgorithm));
        e.register_cs(Box::new(LocalAlgorithm));
        e.register_cs(Box::new(KTrussAlgorithm));
        e.register_cs(Box::new(KEccAlgorithm));
        e.register_cs(Box::new(SacAlgorithm));
        e.register_cd(Box::new(CodicilAlgorithm::default()));
        e.register_cd(Box::new(LouvainAlgorithm::default()));
        e.register_cd(Box::new(GirvanNewmanAlgorithm::default()));
        e
    }

    /// An engine preloaded with one graph (which becomes the default).
    pub fn with_graph(name: impl Into<String>, graph: AttributedGraph) -> Self {
        let mut e = Self::new();
        e.add_graph(name, graph);
        e
    }

    /// Adds (or replaces) a graph, building its CL-tree index — the paper's
    /// offline Indexing module. The first graph added becomes the default.
    pub fn add_graph(&mut self, name: impl Into<String>, graph: AttributedGraph) {
        let name = name.into();
        let tree = ClTree::build(&graph);
        let generation = self.fresh_generation();
        self.graphs.insert(
            name.clone(),
            GraphEntry { graph, tree, profiles: HashMap::new(), coords: None, generation },
        );
        if self.default_graph.is_none() {
            self.default_graph = Some(name);
        }
    }

    /// The next content generation. Fresh per insert/edit, so replacing
    /// a graph under an existing name orphans its cached queries.
    fn fresh_generation(&mut self) -> u64 {
        self.next_generation += 1;
        self.next_generation
    }

    /// The paper's `upload(filePath)`: loads a graph file (binary snapshot
    /// if the extension is `.bin`, text format otherwise) and indexes it
    /// under `name`.
    pub fn upload(&mut self, name: impl Into<String>, path: &Path) -> Result<(), ExplorerError> {
        let graph = if path.extension().is_some_and(|e| e == "bin") {
            cx_graph::io::load_snapshot_file(path)?
        } else {
            cx_graph::io::load_text_file(path)?
        };
        self.add_graph(name, graph);
        Ok(())
    }

    /// Registers (or replaces, by name) a community-search algorithm.
    /// Clears the query cache — the name may now mean different code.
    pub fn register_cs(&mut self, algo: Box<dyn CsAlgorithm>) {
        self.cs.retain(|a| a.name() != algo.name());
        self.cs.push(algo);
        self.cache.lock().unwrap().clear();
    }

    /// Registers (or replaces, by name) a community-detection algorithm.
    /// Clears the query cache — the name may now mean different code.
    pub fn register_cd(&mut self, algo: Box<dyn CdAlgorithm>) {
        self.cd.retain(|a| a.name() != algo.name());
        self.cd.push(algo);
        self.cache.lock().unwrap().clear();
    }

    /// Names of the registered CS algorithms.
    pub fn cs_names(&self) -> Vec<&str> {
        self.cs.iter().map(|a| a.name()).collect()
    }

    /// Names of the registered CD algorithms.
    pub fn cd_names(&self) -> Vec<&str> {
        self.cd.iter().map(|a| a.name()).collect()
    }

    /// Names of the uploaded graphs (sorted).
    pub fn graph_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.graphs.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// The default graph's name.
    pub fn default_graph_name(&self) -> Option<&str> {
        self.default_graph.as_deref()
    }

    /// Makes `name` the default graph.
    pub fn set_default_graph(&mut self, name: &str) -> Result<(), ExplorerError> {
        if !self.graphs.contains_key(name) {
            return Err(ExplorerError::UnknownGraph(name.to_owned()));
        }
        self.default_graph = Some(name.to_owned());
        Ok(())
    }

    /// Resolves the optional graph name to the actual entry key.
    fn resolved_name<'a>(&'a self, graph: Option<&'a str>) -> Result<&'a str, ExplorerError> {
        match graph {
            Some(n) => Ok(n),
            None => self.default_graph.as_deref().ok_or(ExplorerError::NoGraph),
        }
    }

    fn entry(&self, graph: Option<&str>) -> Result<&GraphEntry, ExplorerError> {
        let name = self.resolved_name(graph)?;
        self.graphs.get(name).ok_or_else(|| ExplorerError::UnknownGraph(name.to_owned()))
    }

    /// The (default or named) graph.
    pub fn graph(&self, name: Option<&str>) -> Result<&AttributedGraph, ExplorerError> {
        Ok(&self.entry(name)?.graph)
    }

    /// The CL-tree index of the (default or named) graph.
    pub fn tree(&self, name: Option<&str>) -> Result<&ClTree, ExplorerError> {
        Ok(&self.entry(name)?.tree)
    }

    fn find_cs(&self, name: &str) -> Option<&dyn CsAlgorithm> {
        self.cs.iter().find(|a| a.name() == name).map(Box::as_ref)
    }

    fn find_cd(&self, name: &str) -> Option<&dyn CdAlgorithm> {
        self.cd.iter().find(|a| a.name() == name).map(Box::as_ref)
    }

    /// The paper's `search(CSAlgorithm, Query)` on the default graph.
    ///
    /// A CD algorithm name is accepted too: its clustering is computed and
    /// the query vertex's cluster returned (how CODICIL shows up alongside
    /// the CS methods in Figure 6(a)).
    pub fn search(&self, algo: &str, spec: &QuerySpec) -> Result<Vec<Community>, ExplorerError> {
        self.search_on(None, algo, spec)
    }

    /// `search` against a named graph. Results are served from the
    /// query cache when the same resolved query was answered against
    /// the same graph contents before.
    pub fn search_on(
        &self,
        graph: Option<&str>,
        algo: &str,
        spec: &QuerySpec,
    ) -> Result<Vec<Community>, ExplorerError> {
        let _span = cx_obs::span("engine.search");
        let name = self.resolved_name(graph)?;
        let entry = self.entry(Some(name))?;
        let qs = spec.resolve(&entry.graph)?;
        let key = QueryKey {
            graph: name.to_owned(),
            algo: algo.to_owned(),
            vertices: qs.clone(),
            k: spec.k,
            keywords: spec.keywords.clone(),
        };
        if let Some(hit) = self.cache.lock().unwrap().get(&key, entry.generation) {
            cx_obs::metrics::inc("cx_engine_cache_total{event=\"hit\"}");
            return Ok(hit);
        }
        cx_obs::metrics::inc("cx_engine_cache_total{event=\"miss\"}");
        let ctx = GraphContext {
            graph: &entry.graph,
            tree: &entry.tree,
            coords: entry.coords.as_deref(),
        };
        let out = {
            let _algo_span = cx_obs::span(&format!("algo.{algo}"));
            if let Some(a) = self.find_cs(algo) {
                a.search(&ctx, &qs, spec)
            } else if let Some(a) = self.find_cd(algo) {
                a.community_of(&ctx, qs[0]).into_iter().collect()
            } else {
                return Err(ExplorerError::UnknownAlgorithm(algo.to_owned()));
            }
        };
        self.cache.lock().unwrap().insert(key, entry.generation, out.clone());
        Ok(out)
    }

    /// The paper's `detect(CDAlgorithm)` on the default graph.
    pub fn detect(&self, algo: &str) -> Result<Vec<Community>, ExplorerError> {
        self.detect_on(None, algo)
    }

    /// `detect` against a named graph. Cached like [`Engine::search_on`]
    /// (a detect key has no query vertices, so it never collides with a
    /// search key).
    pub fn detect_on(
        &self,
        graph: Option<&str>,
        algo: &str,
    ) -> Result<Vec<Community>, ExplorerError> {
        let _span = cx_obs::span("engine.detect");
        let name = self.resolved_name(graph)?;
        let entry = self.entry(Some(name))?;
        let a = self
            .find_cd(algo)
            .ok_or_else(|| ExplorerError::UnknownAlgorithm(algo.to_owned()))?;
        let key = QueryKey {
            graph: name.to_owned(),
            algo: algo.to_owned(),
            vertices: Vec::new(),
            k: 0,
            keywords: Vec::new(),
        };
        if let Some(hit) = self.cache.lock().unwrap().get(&key, entry.generation) {
            cx_obs::metrics::inc("cx_engine_cache_total{event=\"hit\"}");
            return Ok(hit);
        }
        cx_obs::metrics::inc("cx_engine_cache_total{event=\"miss\"}");
        let ctx = GraphContext {
            graph: &entry.graph,
            tree: &entry.tree,
            coords: entry.coords.as_deref(),
        };
        let out = {
            let _algo_span = cx_obs::span(&format!("algo.{algo}"));
            a.detect(&ctx)
        };
        self.cache.lock().unwrap().insert(key, entry.generation, out.clone());
        Ok(out)
    }

    /// Query-cache counters (hits, misses, occupancy, capacity).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().unwrap().stats()
    }

    /// Resizes the query cache (0 disables caching). Shrinking evicts
    /// least-recently-used entries.
    pub fn set_cache_capacity(&self, capacity: usize) {
        self.cache.lock().unwrap().set_capacity(capacity);
    }

    /// The paper's `analyze(Community)`: CPJ/CMF quality plus per-community
    /// statistics for a result set, w.r.t. query vertex `q`.
    pub fn analyze(
        &self,
        graph: Option<&str>,
        communities: &[Community],
        q: VertexId,
    ) -> Result<AnalysisReport, ExplorerError> {
        let entry = self.entry(graph)?;
        entry.graph.check_vertex(q)?;
        Ok(AnalysisReport::new(&entry.graph, communities, q))
    }

    /// The paper's `display(Community)`: computes a layout scene for the
    /// browser (or SVG export). `highlight` is typically the query vertex.
    pub fn display(
        &self,
        graph: Option<&str>,
        community: &Community,
        algo: LayoutAlgorithm,
        highlight: Option<VertexId>,
    ) -> Result<Scene, ExplorerError> {
        let entry = self.entry(graph)?;
        Ok(layout_community(&entry.graph, community, algo, highlight, 960.0, 600.0, 42))
    }

    /// Installs profile records for a graph's vertices.
    pub fn set_profiles(
        &mut self,
        graph: Option<&str>,
        profiles: impl IntoIterator<Item = (VertexId, Profile)>,
    ) -> Result<(), ExplorerError> {
        let name = match graph {
            Some(n) => n.to_owned(),
            None => self.default_graph.clone().ok_or(ExplorerError::NoGraph)?,
        };
        let entry = self
            .graphs
            .get_mut(&name)
            .ok_or_else(|| ExplorerError::UnknownGraph(name.clone()))?;
        entry.profiles.extend(profiles);
        Ok(())
    }

    /// Installs vertex coordinates for a graph, enabling spatial-aware
    /// algorithms (`sac`). Must provide exactly one `(x, y)` per vertex.
    pub fn set_coordinates(
        &mut self,
        graph: Option<&str>,
        coords: Vec<(f64, f64)>,
    ) -> Result<(), ExplorerError> {
        let name = match graph {
            Some(n) => n.to_owned(),
            None => self.default_graph.clone().ok_or(ExplorerError::NoGraph)?,
        };
        // Coordinates feed the spatial algorithms (`sac`), so installing
        // them changes query answers: bump the generation.
        let generation = self.fresh_generation();
        let entry = self
            .graphs
            .get_mut(&name)
            .ok_or_else(|| ExplorerError::UnknownGraph(name.clone()))?;
        if coords.len() != entry.graph.vertex_count() {
            return Err(ExplorerError::BadQuery(format!(
                "expected {} coordinates, got {}",
                entry.graph.vertex_count(),
                coords.len()
            )));
        }
        entry.coords = Some(coords);
        entry.generation = generation;
        Ok(())
    }

    /// The profile of a vertex (the Figure 2 popup), if one is installed.
    pub fn profile(&self, graph: Option<&str>, v: VertexId) -> Result<Option<&Profile>, ExplorerError> {
        Ok(self.entry(graph)?.profiles.get(&v))
    }

    /// Applies a batch of edge edits to a graph — the evolving-network
    /// path (new co-authorships appear, stale ones are pruned). The graph
    /// and its CL-tree are rebuilt (both linear); for high-frequency
    /// streams, maintain core numbers with [`cx_kcore::DynamicCore`] and
    /// batch the reindex points.
    pub fn apply_edits(
        &mut self,
        graph: Option<&str>,
        add: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> Result<(), ExplorerError> {
        let name = match graph {
            Some(n) => n.to_owned(),
            None => self.default_graph.clone().ok_or(ExplorerError::NoGraph)?,
        };
        let generation = self.fresh_generation();
        let entry = self
            .graphs
            .get_mut(&name)
            .ok_or_else(|| ExplorerError::UnknownGraph(name.clone()))?;
        let g = &entry.graph;
        for &(u, v) in add.iter().chain(remove) {
            g.check_vertex(u)?;
            g.check_vertex(v)?;
        }
        let removed: std::collections::HashSet<(VertexId, VertexId)> = remove
            .iter()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        let mut b = cx_graph::GraphBuilder::with_capacity(g.vertex_count(), g.edge_count());
        for v in g.vertices() {
            let kws = g.keyword_names(g.keywords(v));
            let refs: Vec<&str> = kws.iter().map(String::as_str).collect();
            b.add_vertex(g.label(v), &refs);
        }
        for (u, v) in g.edges() {
            if !removed.contains(&(u, v)) {
                b.add_edge(u, v);
            }
        }
        for &(u, v) in add {
            b.add_edge(u, v);
        }
        let new_graph = b.try_build()?;
        entry.tree = ClTree::build(&new_graph);
        entry.graph = new_graph;
        entry.generation = generation;
        Ok(())
    }

    /// Case-insensitive vertex search for the UI's name box; returns
    /// (vertex, label, degree) triples, best match first.
    pub fn suggest(
        &self,
        graph: Option<&str>,
        query: &str,
        limit: usize,
    ) -> Result<Vec<(VertexId, String, usize)>, ExplorerError> {
        let g = self.graph(graph)?;
        Ok(g.search_label(query)
            .into_iter()
            .take(limit)
            .map(|v| (v, g.label(v).to_owned(), g.degree(v)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;

    fn engine() -> Engine {
        Engine::with_graph("fig5", figure5_graph())
    }

    #[test]
    fn builtins_are_registered() {
        let e = engine();
        let cs = e.cs_names();
        for name in ["acq", "acq-inc-s", "acq-inc-t", "acq-basic", "global", "global-maxmin", "local", "ktruss", "kecc"] {
            assert!(cs.contains(&name), "missing {name}");
        }
        assert_eq!(e.cd_names(), vec!["codicil", "louvain", "girvan-newman"]);
        assert_eq!(e.graph_names(), vec!["fig5"]);
        assert_eq!(e.default_graph_name(), Some("fig5"));
    }

    #[test]
    fn search_paper_example_through_engine() {
        let e = engine();
        let out = e.search("acq", &QuerySpec::by_label("A").k(2)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 3);
        // Global on the same query returns the bigger plain core.
        let g = e.search("global", &QuerySpec::by_label("A").k(2)).unwrap();
        assert_eq!(g[0].len(), 5);
    }

    #[test]
    fn search_with_cd_algorithm_returns_query_cluster() {
        let e = engine();
        let out = e.search("codicil", &QuerySpec::by_label("A")).unwrap();
        assert_eq!(out.len(), 1);
        let g = e.graph(None).unwrap();
        assert!(out[0].contains(g.vertex_by_label("A").unwrap()));
    }

    #[test]
    fn unknown_things_error() {
        let e = engine();
        assert!(matches!(
            e.search("nope", &QuerySpec::by_label("A")),
            Err(ExplorerError::UnknownAlgorithm(_))
        ));
        assert!(matches!(
            e.search_on(Some("nope"), "acq", &QuerySpec::by_label("A")),
            Err(ExplorerError::UnknownGraph(_))
        ));
        assert!(matches!(
            e.search("acq", &QuerySpec::by_label("nobody")),
            Err(ExplorerError::UnknownVertex(_))
        ));
        assert!(matches!(e.detect("global"), Err(ExplorerError::UnknownAlgorithm(_))));
        let empty = Engine::new();
        assert!(matches!(
            empty.search("acq", &QuerySpec::by_label("A")),
            Err(ExplorerError::NoGraph)
        ));
    }

    #[test]
    fn multi_vertex_query_through_engine() {
        let e = engine();
        let out = e.search("acq", &QuerySpec::by_labels(["A", "D"]).k(2)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn analyze_and_display_roundtrip() {
        let e = engine();
        let out = e.search("acq", &QuerySpec::by_label("A").k(2)).unwrap();
        let g = e.graph(None).unwrap();
        let a = g.vertex_by_label("A").unwrap();
        let report = e.analyze(None, &out, a).unwrap();
        assert!(report.cpj > 0.5);
        assert!(report.cmf > 0.5);
        let scene = e
            .display(None, &out[0], LayoutAlgorithm::default_force(), Some(a))
            .unwrap();
        assert_eq!(scene.vertex_count(), 3);
        assert!(scene.in_bounds());
    }

    #[test]
    fn profiles_store_and_fetch() {
        let mut e = engine();
        let g = e.graph(None).unwrap();
        let a = g.vertex_by_label("A").unwrap();
        let p = Profile {
            name: "A".into(),
            areas: vec!["Computer science".into()],
            institutes: vec!["HKU".into()],
            interests: vec!["databases".into()],
        };
        e.set_profiles(None, [(a, p.clone())]).unwrap();
        assert_eq!(e.profile(None, a).unwrap(), Some(&p));
        assert_eq!(e.profile(None, VertexId(3)).unwrap(), None);
    }

    #[test]
    fn custom_algorithm_plugs_in() {
        struct Egocentric;
        impl crate::api::CsAlgorithm for Egocentric {
            fn name(&self) -> &str {
                "ego"
            }
            fn search(
                &self,
                ctx: &GraphContext<'_>,
                qs: &[VertexId],
                _spec: &QuerySpec,
            ) -> Vec<Community> {
                let q = qs[0];
                let mut members = vec![q];
                members.extend_from_slice(ctx.graph.neighbors(q));
                vec![Community::structural(members)]
            }
        }
        let mut e = engine();
        e.register_cs(Box::new(Egocentric));
        assert!(e.cs_names().contains(&"ego"));
        let out = e.search("ego", &QuerySpec::by_label("A")).unwrap();
        assert_eq!(out[0].len(), 4); // A + its 3 clique neighbours
    }

    #[test]
    fn suggest_ranks_matches() {
        let e = engine();
        let hits = e.suggest(None, "a", 10).unwrap();
        assert!(!hits.is_empty());
        assert_eq!(hits[0].1, "A");
    }

    #[test]
    fn upload_text_file() {
        let dir = std::env::temp_dir().join("cx_engine_upload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.graph");
        cx_graph::io::save_text_file(&figure5_graph(), &path).unwrap();
        let mut e = Engine::new();
        e.upload("uploaded", &path).unwrap();
        assert_eq!(e.graph(None).unwrap().vertex_count(), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn set_default_graph_switches() {
        let mut e = engine();
        e.add_graph("second", cx_datagen::small_collab_graph());
        assert_eq!(e.default_graph_name(), Some("fig5"));
        e.set_default_graph("second").unwrap();
        assert_eq!(e.graph(None).unwrap().vertex_count(), 16);
        assert!(e.set_default_graph("ghost").is_err());
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    use cx_datagen::{figure5_graph, small_collab_graph};

    /// A stub CS algorithm that counts how often its `search` actually
    /// runs — cache hits must not reach it.
    struct Counting {
        calls: Arc<AtomicUsize>,
    }
    impl crate::api::CsAlgorithm for Counting {
        fn name(&self) -> &str {
            "counting"
        }
        fn search(
            &self,
            _ctx: &GraphContext<'_>,
            qs: &[VertexId],
            _spec: &QuerySpec,
        ) -> Vec<Community> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            vec![Community::structural(vec![qs[0]])]
        }
    }

    fn counting_engine() -> (Engine, Arc<AtomicUsize>) {
        let mut e = Engine::with_graph("fig5", figure5_graph());
        let calls = Arc::new(AtomicUsize::new(0));
        e.register_cs(Box::new(Counting { calls: Arc::clone(&calls) }));
        (e, calls)
    }

    #[test]
    fn repeated_search_skips_the_algorithm() {
        let (e, calls) = counting_engine();
        let spec = QuerySpec::by_label("A").k(2);
        let first = e.search("counting", &spec).unwrap();
        let second = e.search("counting", &spec).unwrap();
        assert_eq!(first, second);
        assert_eq!(calls.load(Ordering::SeqCst), 1, "second call must hit the cache");
        let s = e.cache_stats();
        assert_eq!(s.hits, 1);
        assert!(s.misses >= 1);
    }

    #[test]
    fn label_and_id_queries_share_a_slot() {
        let (e, calls) = counting_engine();
        let a = e.graph(None).unwrap().vertex_by_label("A").unwrap();
        e.search("counting", &QuerySpec::by_label("A").k(2)).unwrap();
        e.search("counting", &QuerySpec::by_id(a).k(2)).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "keys use resolved vertex ids");
    }

    #[test]
    fn different_parameters_miss() {
        let (e, calls) = counting_engine();
        e.search("counting", &QuerySpec::by_label("A").k(2)).unwrap();
        e.search("counting", &QuerySpec::by_label("A").k(3)).unwrap();
        e.search("counting", &QuerySpec::by_label("B").k(2)).unwrap();
        e.search("counting", &QuerySpec::by_label("A").k(2).with_keywords(["x"])).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn replacing_the_graph_invalidates() {
        let (mut e, calls) = counting_engine();
        let spec = QuerySpec::by_label("A").k(2);
        e.search("counting", &spec).unwrap();
        // Re-adding under the same name bumps the generation.
        e.add_graph("fig5", figure5_graph());
        e.search("counting", &spec).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2, "stale generation must miss");
    }

    #[test]
    fn upload_invalidates() {
        let dir = std::env::temp_dir().join("cx_engine_cache_upload");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig5.graph");
        cx_graph::io::save_text_file(&figure5_graph(), &path).unwrap();
        let (mut e, calls) = counting_engine();
        let spec = QuerySpec::by_label("A").k(2);
        e.search("counting", &spec).unwrap();
        e.upload("fig5", &path).unwrap();
        e.search("counting", &spec).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn edits_invalidate_only_by_generation() {
        let (mut e, calls) = counting_engine();
        let spec = QuerySpec::by_label("A").k(2);
        e.search("counting", &spec).unwrap();
        let g = e.graph(None).unwrap();
        let (a, b) = (g.vertex_by_label("A").unwrap(), g.vertex_by_label("B").unwrap());
        e.apply_edits(None, &[], &[(a, b)]).unwrap();
        e.search("counting", &spec).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn registering_an_algorithm_clears_the_cache() {
        let (mut e, calls) = counting_engine();
        let spec = QuerySpec::by_label("A").k(2);
        e.search("counting", &spec).unwrap();
        // Replace the algorithm under the same name: must re-run.
        let calls2 = Arc::new(AtomicUsize::new(0));
        e.register_cs(Box::new(Counting { calls: Arc::clone(&calls2) }));
        e.search("counting", &spec).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(calls2.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let (e, calls) = counting_engine();
        e.set_cache_capacity(2);
        let qa = QuerySpec::by_label("A").k(2);
        let qb = QuerySpec::by_label("B").k(2);
        let qc = QuerySpec::by_label("C").k(2);
        e.search("counting", &qa).unwrap(); // {A}
        e.search("counting", &qb).unwrap(); // {A, B}
        e.search("counting", &qa).unwrap(); // hit; B is now LRU
        e.search("counting", &qc).unwrap(); // evicts B → {A, C}
        assert_eq!(e.cache_stats().len, 2);
        e.search("counting", &qa).unwrap(); // hit
        e.search("counting", &qb).unwrap(); // miss (evicted) → recompute
        assert_eq!(calls.load(Ordering::SeqCst), 4, "A, B, C, then B again");
    }

    #[test]
    fn detect_results_are_cached_per_graph() {
        let mut e = Engine::with_graph("fig5", figure5_graph());
        e.add_graph("collab", small_collab_graph());
        let a = e.detect_on(Some("fig5"), "louvain").unwrap();
        let before = e.cache_stats();
        let b = e.detect_on(Some("fig5"), "louvain").unwrap();
        assert_eq!(a, b);
        assert_eq!(e.cache_stats().hits, before.hits + 1);
        // A different graph is a different key.
        let c = e.detect_on(Some("collab"), "louvain").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn errors_are_not_cached() {
        let (e, _) = counting_engine();
        assert!(e.search("counting", &QuerySpec::by_label("nobody")).is_err());
        assert!(e.search("nope", &QuerySpec::by_label("A")).is_err());
        let s = e.cache_stats();
        assert_eq!(s.len, 0);
    }
}

#[cfg(test)]
mod edit_tests {
    use super::*;
    use cx_datagen::figure5_graph;
    use crate::query::QuerySpec;

    #[test]
    fn adding_edges_grows_the_core() {
        let mut e = Engine::with_graph("fig5", figure5_graph());
        let g = e.graph(None).unwrap();
        let (ee, f, gg) = (
            g.vertex_by_label("E").unwrap(),
            g.vertex_by_label("F").unwrap(),
            g.vertex_by_label("G").unwrap(),
        );
        // Before: E is in the 2-core, F and G are only 1-core.
        assert_eq!(e.tree(None).unwrap().core(f), 1);
        // Close the E-F-G triangle fully against the K4: G-E edge already
        // exists? No — add G-E and F-C to densify.
        let c = e.graph(None).unwrap().vertex_by_label("C").unwrap();
        e.apply_edits(None, &[(gg, ee), (f, c)], &[]).unwrap();
        let tree = e.tree(None).unwrap();
        assert!(tree.core(f) >= 2, "F core {} after densifying", tree.core(f));
        assert!(tree.core(gg) >= 2);
        // Queries run against the updated graph.
        let out = e.search("acq", &QuerySpec::by_label("A").k(2)).unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn removing_edges_shrinks_the_core() {
        let mut e = Engine::with_graph("fig5", figure5_graph());
        let g = e.graph(None).unwrap();
        let (a, b) = (g.vertex_by_label("A").unwrap(), g.vertex_by_label("B").unwrap());
        e.apply_edits(None, &[], &[(a, b)]).unwrap();
        // K4 minus an edge: cores drop from 3 to 2.
        let tree = e.tree(None).unwrap();
        assert_eq!(tree.core(a), 2);
        assert_eq!(tree.max_core(), 2);
        assert_eq!(e.graph(None).unwrap().edge_count(), 10);
    }

    #[test]
    fn edits_validate_vertices_and_keep_profiles() {
        let mut e = Engine::with_graph("fig5", figure5_graph());
        let a = e.graph(None).unwrap().vertex_by_label("A").unwrap();
        e.set_profiles(
            None,
            [(a, Profile {
                name: "A".into(),
                areas: vec![],
                institutes: vec![],
                interests: vec![],
            })],
        )
        .unwrap();
        assert!(e.apply_edits(None, &[(a, VertexId(99))], &[]).is_err());
        let b = e.graph(None).unwrap().vertex_by_label("B").unwrap();
        e.apply_edits(None, &[], &[(a, b)]).unwrap();
        // Profile survives the rebuild.
        assert!(e.profile(None, a).unwrap().is_some());
    }
}

#[cfg(test)]
mod spatial_tests {
    use super::*;
    use crate::query::QuerySpec;
    use cx_datagen::figure5_graph;

    #[test]
    fn sac_requires_coordinates() {
        let mut e = Engine::with_graph("fig5", figure5_graph());
        // Without coordinates the sac algorithm returns nothing.
        let none = e.search("sac", &QuerySpec::by_label("A").k(2)).unwrap();
        assert!(none.is_empty());
        // Wrong coordinate count is rejected.
        assert!(matches!(
            e.set_coordinates(None, vec![(0.0, 0.0)]),
            Err(ExplorerError::BadQuery(_))
        ));
        // With coordinates the query answers: put the K4 near A and the
        // rest far away; the spatial community is the K4.
        let g = e.graph(None).unwrap();
        let coords: Vec<(f64, f64)> = g
            .vertices()
            .map(|v| if v.0 <= 3 { (v.0 as f64, 0.0) } else { (1000.0 + v.0 as f64, 0.0) })
            .collect();
        e.set_coordinates(None, coords).unwrap();
        let out = e.search("sac", &QuerySpec::by_label("A").k(2)).unwrap();
        assert_eq!(out.len(), 1);
        // The smallest disk around A with a 2-core is the A-B-C triangle
        // (the K4 minus its farthest vertex) — strictly tighter than the
        // full K4, and far from the distant vertices.
        assert_eq!(out[0].len(), 3);
        let g = e.graph(None).unwrap();
        assert!(out[0].vertices().iter().all(|&v| v.0 <= 3), "{:?}", out[0].labels(g));
        assert!(matches!(
            e.set_coordinates(Some("ghost"), vec![]),
            Err(ExplorerError::UnknownGraph(_))
        ));
    }
}

impl Engine {
    /// Persists every uploaded graph and its CL-tree index into `dir`
    /// (`<name>.graph.bin` + `<name>.index.bin`) — the offline side of
    /// Figure 3's Indexing box. Graph names must be filesystem-safe
    /// (alphanumeric, `-`, `_`). Profiles and coordinates are runtime
    /// state and are not persisted.
    pub fn save_dir(&self, dir: &Path) -> Result<(), ExplorerError> {
        std::fs::create_dir_all(dir).map_err(cx_graph::GraphError::from)?;
        for (name, entry) in &self.graphs {
            if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') {
                return Err(ExplorerError::BadQuery(format!(
                    "graph name {name:?} is not filesystem-safe"
                )));
            }
            cx_graph::io::save_snapshot_file(&entry.graph, dir.join(format!("{name}.graph.bin")))?;
            entry.tree.save_snapshot_file(dir.join(format!("{name}.index.bin")))?;
        }
        Ok(())
    }

    /// Loads every `<name>.graph.bin` (+ matching index snapshot, if
    /// present and valid — otherwise the index is rebuilt) from `dir`
    /// into a fresh engine with the built-in algorithms.
    pub fn load_dir(dir: &Path) -> Result<Engine, ExplorerError> {
        let mut engine = Engine::new();
        let mut names: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(cx_graph::GraphError::from)? {
            let entry = entry.map_err(cx_graph::GraphError::from)?;
            let fname = entry.file_name().to_string_lossy().into_owned();
            if let Some(name) = fname.strip_suffix(".graph.bin") {
                names.push(name.to_owned());
            }
        }
        names.sort();
        for name in names {
            let graph = cx_graph::io::load_snapshot_file(dir.join(format!("{name}.graph.bin")))?;
            let index_path = dir.join(format!("{name}.index.bin"));
            let tree = match std::fs::File::open(&index_path) {
                Ok(mut f) => ClTree::read_snapshot(&graph, &mut f)
                    .unwrap_or_else(|_| ClTree::build(&graph)),
                Err(_) => ClTree::build(&graph),
            };
            let generation = engine.fresh_generation();
            engine.graphs.insert(
                name.clone(),
                GraphEntry { graph, tree, profiles: HashMap::new(), coords: None, generation },
            );
            if engine.default_graph.is_none() {
                engine.default_graph = Some(name);
            }
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::query::QuerySpec;
    use cx_datagen::{figure5_graph, small_collab_graph};

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("cx_engine_persist_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut e = Engine::with_graph("fig5", figure5_graph());
        e.add_graph("collab", small_collab_graph());
        e.save_dir(&dir).unwrap();

        let restored = Engine::load_dir(&dir).unwrap();
        assert_eq!(restored.graph_names(), vec!["collab", "fig5"]);
        // Queries answer identically after the round trip.
        let spec = QuerySpec::by_label("A").k(2);
        let before = e.search_on(Some("fig5"), "acq", &spec).unwrap();
        let after = restored.search_on(Some("fig5"), "acq", &spec).unwrap();
        assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsafe_names_are_rejected() {
        let dir = std::env::temp_dir().join("cx_engine_persist_badname");
        let mut e = Engine::new();
        e.add_graph("../evil", figure5_graph());
        assert!(matches!(e.save_dir(&dir), Err(ExplorerError::BadQuery(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_falls_back_to_rebuild() {
        let dir = std::env::temp_dir().join("cx_engine_persist_corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let e = Engine::with_graph("fig5", figure5_graph());
        e.save_dir(&dir).unwrap();
        std::fs::write(dir.join("fig5.index.bin"), b"garbage").unwrap();
        let restored = Engine::load_dir(&dir).unwrap();
        // Index was rebuilt; queries still answer.
        let out = restored.search("acq", &QuerySpec::by_label("A").k(2)).unwrap();
        assert_eq!(out.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_errors() {
        assert!(Engine::load_dir(std::path::Path::new("/definitely/not/here")).is_err());
    }
}
