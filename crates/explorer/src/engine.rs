//! The engine: immutable per-graph snapshots + algorithm registry.
//!
//! # Snapshot concurrency model
//!
//! Every graph lives in the engine as one immutable [`GraphSnapshot`]
//! behind an `Arc`: the attributed graph, its CL-tree index, profiles,
//! coordinates, and a per-graph generation number, all frozen when the
//! snapshot is built. A lightweight registry (`Mutex<HashMap>`) maps graph
//! names to the *current* snapshot Arc.
//!
//! Readers ([`Engine::snapshot`] and everything built on it) hold the
//! registry lock only long enough to clone one `Arc` — microseconds — and
//! then run entirely lock-free off their pinned snapshot. Writers
//! ([`Engine::apply_edits`], [`Engine::add_graph`], [`Engine::upload`],
//! [`Engine::remove_graph`], …) serialize per graph on a write gate, build
//! the *next* snapshot completely off-lock (graph rebuild, CL-tree
//! reindex), and publish it with a single map insert under the registry
//! lock — an atomic pointer swap from every reader's point of view.
//! Readers in flight keep the old snapshot alive through their `Arc`;
//! new requests see the new one.
//!
//! Poisoning is impossible by construction: no lock is ever held across
//! algorithm or index-building code, so a panic mid-build unwinds with
//! only private data on the stack, and every lock acquisition recovers a
//! poisoned mutex anyway (`unwrap_or_else(PoisonError::into_inner)`) since
//! the guarded state is always internally consistent at release time.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use cx_cltree::{ClTree, Hierarchy};
use cx_graph::{AttributedGraph, Community, VertexId};
use cx_layout::{layout_community, layout_summary, LayoutAlgorithm, Scene, SummaryItem};
use cx_par::task::{CancelToken, ProgressFn};

use crate::api::{
    AcqAlgorithm, CdAlgorithm, CodicilAlgorithm, CsAlgorithm, GlobalAlgorithm,
    GlobalMaxMinAlgorithm, GirvanNewmanAlgorithm, GraphContext, KEccAlgorithm, KTrussAlgorithm, LocalAlgorithm,
    SacAlgorithm,
    LouvainAlgorithm,
};
use crate::cache::{CacheStats, QueryKey, ShardedCache, DEFAULT_CAPACITY};
use crate::error::ExplorerError;
use crate::profile::ProfileStore;
use crate::query::QuerySpec;
use crate::report::AnalysisReport;

/// A researcher profile record (Figure 2's popup content). The engine
/// stores one per vertex per graph; where they come from (Wikipedia in the
/// paper, the synthetic generator here) is the caller's business.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Display name.
    pub name: String,
    /// Broad research areas.
    pub areas: Vec<String>,
    /// Institutions.
    pub institutes: Vec<String>,
    /// Research interests.
    pub interests: Vec<String>,
}

/// One immutable, internally consistent version of a graph: contents,
/// index, and decorations all frozen at publish time. Cheap to share
/// (`Arc`), never mutated after construction — a reader holding one can
/// answer queries indefinitely while the engine publishes newer versions.
///
/// Dereferences to the [`AttributedGraph`] for convenience.
pub struct GraphSnapshot {
    name: String,
    /// The graph contents.
    pub graph: Arc<AttributedGraph>,
    /// The CL-tree index built for exactly this graph version.
    pub tree: Arc<ClTree>,
    /// Vertex profiles (Figure 2 popups), in the compact interned column
    /// store. `Arc`-shared across snapshots: an edge edit republishes the
    /// same store, only `set_profiles` builds a new one.
    pub profiles: Arc<ProfileStore>,
    /// Vertex coordinates for spatial algorithms, if installed. Shared
    /// across snapshots like `profiles`.
    pub coords: Option<Arc<Vec<(f64, f64)>>>,
    /// Per-graph monotone version number; exactly one snapshot is ever
    /// published per (graph, generation) pair.
    pub generation: u64,
    /// The multi-resolution summary hierarchy, built on first use and
    /// cached for this snapshot's lifetime. Tree node ids change across
    /// generations, so per-snapshot caching is exactly the right scope;
    /// the edit path seeds the successor's cell incrementally when this
    /// one was populated.
    hierarchy: std::sync::OnceLock<Arc<Hierarchy>>,
    /// Whether this snapshot bumped the live-snapshot gauge when built
    /// (observability could be toggled between construction and drop).
    gauge_counted: bool,
}

impl GraphSnapshot {
    fn new(
        name: String,
        graph: Arc<AttributedGraph>,
        tree: Arc<ClTree>,
        profiles: Arc<ProfileStore>,
        coords: Option<Arc<Vec<(f64, f64)>>>,
        generation: u64,
    ) -> Self {
        let gauge_counted = cx_obs::enabled();
        if gauge_counted {
            cx_obs::global().gauge("cx_snapshots_live").add(1);
        }
        Self {
            name,
            graph,
            tree,
            profiles,
            coords,
            generation,
            hierarchy: std::sync::OnceLock::new(),
            gauge_counted,
        }
    }

    /// The summary hierarchy over this snapshot's CL-tree (supernode
    /// aggregates, level views, expansion) — built on first call, then
    /// shared. Concurrent first calls may race to build; `OnceLock`
    /// keeps exactly one winner and the losers' work is discarded.
    pub fn hierarchy(&self) -> Arc<Hierarchy> {
        Arc::clone(
            self.hierarchy
                .get_or_init(|| Arc::new(Hierarchy::build(&self.graph, &self.tree))),
        )
    }

    /// The hierarchy if it was already built for this snapshot.
    pub fn hierarchy_cached(&self) -> Option<Arc<Hierarchy>> {
        self.hierarchy.get().map(Arc::clone)
    }

    /// Pre-populates the hierarchy cell (edit path). A no-op if built.
    fn seed_hierarchy(&self, h: Arc<Hierarchy>) {
        let _ = self.hierarchy.set(h);
    }

    /// The registry name this snapshot was published under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The algorithm-facing view of this snapshot.
    pub fn context(&self) -> GraphContext<'_> {
        GraphContext {
            graph: &self.graph,
            tree: &self.tree,
            coords: self.coords.as_ref().map(|c| c.as_slice()),
        }
    }
}

impl Deref for GraphSnapshot {
    type Target = AttributedGraph;
    fn deref(&self) -> &AttributedGraph {
        &self.graph
    }
}

impl Drop for GraphSnapshot {
    fn drop(&mut self) {
        if self.gauge_counted {
            // Bypass the enabled() gate: the increment happened, so the
            // decrement must too, even if CX_OBS was toggled since.
            cx_obs::global().gauge("cx_snapshots_live").add(-1);
        }
    }
}

/// One graph's row in [`RegistryIndex`]: O(1) fields only, no snapshot
/// contents.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphIndexEntry {
    /// Graph name.
    pub name: String,
    /// Current published generation.
    pub generation: u64,
    /// Vertex count of the current snapshot.
    pub vertices: usize,
    /// Edge count of the current snapshot.
    pub edges: usize,
    /// Whether this graph is the engine default.
    pub is_default: bool,
}

/// A cheap directory listing of the registry — what `healthz` and the
/// `graphs` endpoint serve without ever cloning a snapshot `Arc`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryIndex {
    /// The default graph's name, if any graph is loaded.
    pub default_graph: Option<String>,
    /// One entry per loaded graph, sorted by name.
    pub graphs: Vec<GraphIndexEntry>,
}

/// The mutable heart of the engine: the name → current-snapshot map.
/// Only ever locked for map operations and O(1) field reads — never
/// across a graph build, an index build, or an algorithm run.
struct Registry {
    snapshots: HashMap<String, Arc<GraphSnapshot>>,
    default_graph: Option<String>,
    /// Per-graph generation counters. Survive removal and replacement so
    /// a graph's generations are monotone over the engine's lifetime and
    /// never restart (which would resurrect stale cache keys).
    generations: HashMap<String, u64>,
}

/// Registry lock guard that reports its hold time to the
/// `cx_registry_lock_hold_us` histogram on release — the refactor's
/// claim is that this stays in microseconds, so we measure it.
struct RegistryGuard<'a> {
    guard: MutexGuard<'a, Registry>,
    start: Instant,
}

impl Deref for RegistryGuard<'_> {
    type Target = Registry;
    fn deref(&self) -> &Registry {
        &self.guard
    }
}

impl DerefMut for RegistryGuard<'_> {
    fn deref_mut(&mut self) -> &mut Registry {
        &mut self.guard
    }
}

impl Drop for RegistryGuard<'_> {
    fn drop(&mut self) {
        cx_obs::metrics::observe_us(
            "cx_registry_lock_hold_us",
            self.start.elapsed().as_micros() as u64,
        );
    }
}

/// The C-Explorer engine. One instance serves many graphs and algorithms
/// and is shared across threads directly (`Arc<Engine>`, no outer lock):
/// reads pin an immutable [`GraphSnapshot`] and run lock-free; writes
/// build the next snapshot off-lock and publish it atomically (see the
/// module docs for the full concurrency model).
///
/// Query results from [`Engine::search_on`] / [`Engine::detect_on`] are
/// memoised in a bounded, sharded LRU cache keyed by the resolved query
/// Writer-only state protected by a graph's write gate. Holding the gate
/// *is* holding this state, so no extra synchronisation is needed.
///
/// `dyncore` is a warm [`cx_kcore::DynamicCore`] seeded from the snapshot
/// it was last advanced to; `dyncore_for` pins the identity of that graph
/// version. The cache is valid only when `dyncore_for` points at the graph
/// `Arc` currently published for this name — attribute-only republishes
/// (`set_profiles` / `set_coordinates`) keep the same graph `Arc` so the
/// cache survives them, while `add_graph` / `upload` replace the graph and
/// naturally invalidate it. Comparing via `Weak::as_ptr` is ABA-safe
/// because the `Weak` itself keeps the old allocation's address reserved.
#[derive(Default)]
struct WriteState {
    dyncore_for: std::sync::Weak<AttributedGraph>,
    dyncore: Option<cx_kcore::DynamicCore>,
}

/// The C-Explorer engine. One instance serves many graphs and algorithms
/// and is shared across threads directly (`Arc<Engine>`, no outer lock):
/// reads pin an immutable [`GraphSnapshot`] and run lock-free; writes
/// build the next snapshot off-lock and publish it atomically (see the
/// module docs for the full concurrency model).
///
/// Query results from [`Engine::search_on`] / [`Engine::detect_on`] are
/// memoised in a bounded, sharded LRU cache keyed by the resolved query
/// *and the snapshot generation*, so mutation can never serve stale
/// answers.
pub struct Engine {
    registry: Mutex<Registry>,
    /// Per-graph writer serialization. Writers hold their graph's gate
    /// across read-modify-write (snapshot → rebuild → publish) so two
    /// concurrent edits can't lose updates; readers never touch gates.
    /// The gate also carries the writer-only incremental state (a warm
    /// [`cx_kcore::DynamicCore`]) so consecutive edits skip the peel.
    write_gates: Mutex<HashMap<String, Arc<Mutex<WriteState>>>>,
    cs: Vec<Box<dyn CsAlgorithm>>,
    cd: Vec<Box<dyn CdAlgorithm>>,
    cache: ShardedCache,
    /// Durable backing store, if this engine was opened with
    /// [`Engine::open_durable`]. Every write path appends its record
    /// *before* publishing, so a crash can lose the tail of the log but
    /// never admit an unlogged state.
    store: Option<Arc<cx_store::Store>>,
    /// Set while a background compaction is in flight (at most one).
    compacting: std::sync::atomic::AtomicBool,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine with the built-in algorithms registered and no graphs.
    pub fn new() -> Self {
        let mut e = Self {
            registry: Mutex::new(Registry {
                snapshots: HashMap::new(),
                default_graph: None,
                generations: HashMap::new(),
            }),
            write_gates: Mutex::new(HashMap::new()),
            cs: Vec::new(),
            cd: Vec::new(),
            cache: ShardedCache::new(DEFAULT_CAPACITY),
            store: None,
            compacting: std::sync::atomic::AtomicBool::new(false),
        };
        e.register_cs(Box::new(AcqAlgorithm::dec()));
        e.register_cs(Box::new(AcqAlgorithm::with_strategy(cx_acq::AcqStrategy::IncS)));
        e.register_cs(Box::new(AcqAlgorithm::with_strategy(cx_acq::AcqStrategy::IncT)));
        e.register_cs(Box::new(AcqAlgorithm::with_strategy(cx_acq::AcqStrategy::Basic)));
        e.register_cs(Box::new(GlobalAlgorithm));
        e.register_cs(Box::new(GlobalMaxMinAlgorithm));
        e.register_cs(Box::new(LocalAlgorithm));
        e.register_cs(Box::new(KTrussAlgorithm));
        e.register_cs(Box::new(KEccAlgorithm));
        e.register_cs(Box::new(SacAlgorithm));
        e.register_cd(Box::new(CodicilAlgorithm::default()));
        e.register_cd(Box::new(LouvainAlgorithm::default()));
        e.register_cd(Box::new(GirvanNewmanAlgorithm::default()));
        e
    }

    /// An engine preloaded with one graph (which becomes the default).
    pub fn with_graph(name: impl Into<String>, graph: AttributedGraph) -> Self {
        let e = Self::new();
        e.add_graph(name, graph);
        e
    }

    /// An engine backed by the durable store at `dir`: recovers every
    /// graph to its exact pre-crash generation (manifest checkpoints plus
    /// WAL replay, see `cx-store`), rebuilds each CL-tree index, and
    /// attaches the store so every subsequent write is logged before it
    /// is published.
    pub fn open_durable(dir: &Path) -> Result<Self, ExplorerError> {
        let (store, state) = cx_store::Store::open(dir)?;
        let e = Self::new();
        for (name, rg) in &state.graphs {
            let tree = ClTree::build(&rg.graph);
            let profiles = ProfileStore::from_pairs(rg.profiles.iter().map(|p| {
                (
                    p.vertex,
                    Profile {
                        name: p.name.clone(),
                        areas: p.areas.clone(),
                        institutes: p.institutes.clone(),
                        interests: p.interests.clone(),
                    },
                )
            }));
            // Publishing with the store still unattached appends nothing
            // to the WAL; the recovered generation is installed as-is.
            e.publish(GraphSnapshot::new(
                name.clone(),
                Arc::clone(&rg.graph),
                Arc::new(tree),
                Arc::new(profiles),
                rg.coords.clone().map(Arc::new),
                rg.generation,
            ));
        }
        {
            let mut r = e.registry();
            r.generations = state.generations.iter().map(|(n, g)| (n.clone(), *g)).collect();
            r.default_graph = state.default_graph.clone();
        }
        let mut e = e;
        e.store = Some(Arc::new(store));
        Ok(e)
    }

    /// The durable store backing this engine, if any.
    pub fn store(&self) -> Option<&Arc<cx_store::Store>> {
        self.store.as_ref()
    }

    /// Appends `record` to the WAL when a store is attached. Called by
    /// every write path *before* its publish.
    fn log(&self, record: &cx_store::Record) -> Result<(), ExplorerError> {
        if let Some(store) = &self.store {
            store.append(record)?;
        }
        Ok(())
    }

    /// Locks the registry, timing the hold.
    fn registry(&self) -> RegistryGuard<'_> {
        RegistryGuard {
            start: Instant::now(),
            guard: self.registry.lock().unwrap_or_else(|p| p.into_inner()),
        }
    }

    /// The writer gate for `name` (created on first use, kept forever —
    /// an idle gate is a mutex plus an empty [`WriteState`], negligible
    /// to retain).
    fn write_gate(&self, name: &str) -> Arc<Mutex<WriteState>> {
        let mut gates = self.write_gates.lock().unwrap_or_else(|p| p.into_inner());
        gates.entry(name.to_owned()).or_default().clone()
    }

    /// Claims the next generation for `name`. Strictly monotone per graph
    /// for the engine's lifetime (counters survive graph removal).
    fn reserve_generation(&self, name: &str) -> u64 {
        let mut r = self.registry();
        let g = r.generations.entry(name.to_owned()).or_insert(0);
        *g += 1;
        *g
    }

    /// Publishes a finished snapshot: one map insert under the registry
    /// lock (the atomic swap), then cache maintenance off-lock. Readers
    /// holding the previous snapshot keep it alive through their `Arc`.
    fn publish(&self, snap: GraphSnapshot) {
        let name = snap.name.clone();
        let generation = snap.generation;
        {
            let mut r = self.registry();
            r.snapshots.insert(name.clone(), Arc::new(snap));
            if r.default_graph.is_none() {
                r.default_graph = Some(name.clone());
            }
            cx_obs::metrics::gauge_set("cx_graphs_loaded", r.snapshots.len() as i64);
        }
        cx_obs::metrics::inc("cx_snapshot_swap_total");
        self.cache.purge_older(&name, generation);
    }

    /// Adds (or replaces) a graph, building its CL-tree index — the paper's
    /// offline Indexing module. The first graph added becomes the default.
    ///
    /// Panics if the durable store fails to log the addition; use
    /// [`Engine::try_add_graph`] to handle that error.
    pub fn add_graph(&self, name: impl Into<String>, graph: AttributedGraph) {
        self.try_add_graph(name, graph).expect("durable store rejected add_graph");
    }

    /// [`Engine::add_graph`], surfacing store errors instead of panicking.
    /// On a non-durable engine this never fails.
    pub fn try_add_graph(
        &self,
        name: impl Into<String>,
        graph: AttributedGraph,
    ) -> Result<(), ExplorerError> {
        let name = name.into();
        let gate = self.write_gate(&name);
        let _writing = gate.lock().unwrap_or_else(|p| p.into_inner());
        let tree = ClTree::build(&graph);
        let graph = Arc::new(graph);
        let generation = self.reserve_generation(&name);
        self.log(&cx_store::Record::AddGraph {
            name: name.clone(),
            generation,
            graph: Arc::clone(&graph),
        })?;
        self.publish(GraphSnapshot::new(
            name,
            graph,
            Arc::new(tree),
            Arc::new(ProfileStore::default()),
            None,
            generation,
        ));
        Ok(())
    }

    /// Removes a graph from the registry. Readers already pinned to its
    /// snapshot finish unaffected; the default moves to the first
    /// remaining name (sorted) if the removed graph was the default.
    pub fn remove_graph(&self, name: &str) -> Result<(), ExplorerError> {
        let gate = self.write_gate(name);
        let _writing = gate.lock().unwrap_or_else(|p| p.into_inner());
        if !self.registry().snapshots.contains_key(name) {
            return Err(ExplorerError::UnknownGraph(name.to_owned()));
        }
        // Removal claims a generation of its own so the durable log can
        // order it against checkpoints: a snapshot taken before the
        // removal has a strictly older generation and can never
        // resurrect the graph on recovery.
        let generation = self.reserve_generation(name);
        self.log(&cx_store::Record::Remove { name: name.to_owned(), generation })?;
        {
            let mut r = self.registry();
            r.snapshots.remove(name);
            if r.default_graph.as_deref() == Some(name) {
                let mut names: Vec<String> = r.snapshots.keys().cloned().collect();
                names.sort_unstable();
                r.default_graph = names.into_iter().next();
            }
            cx_obs::metrics::gauge_set("cx_graphs_loaded", r.snapshots.len() as i64);
        }
        cx_obs::metrics::inc("cx_snapshot_swap_total");
        self.cache.purge_graph(name);
        Ok(())
    }

    /// The paper's `upload(filePath)`: loads a graph file (binary snapshot
    /// if the extension is `.bin`, text format otherwise) and indexes it
    /// under `name`.
    pub fn upload(&self, name: impl Into<String>, path: &Path) -> Result<(), ExplorerError> {
        let graph = if path.extension().is_some_and(|e| e == "bin") {
            cx_graph::io::load_snapshot_file(path)?
        } else {
            cx_graph::io::load_text_file(path)?
        };
        self.try_add_graph(name, graph)
    }

    /// Registers (or replaces, by name) a community-search algorithm.
    /// Clears the query cache — the name may now mean different code.
    /// Setup-time API: takes `&mut self`, so registration happens before
    /// the engine is shared.
    pub fn register_cs(&mut self, algo: Box<dyn CsAlgorithm>) {
        self.cs.retain(|a| a.name() != algo.name());
        self.cs.push(algo);
        self.cache.clear();
    }

    /// Registers (or replaces, by name) a community-detection algorithm.
    /// Clears the query cache — the name may now mean different code.
    /// Setup-time API like [`Engine::register_cs`].
    pub fn register_cd(&mut self, algo: Box<dyn CdAlgorithm>) {
        self.cd.retain(|a| a.name() != algo.name());
        self.cd.push(algo);
        self.cache.clear();
    }

    /// Names of the registered CS algorithms.
    pub fn cs_names(&self) -> Vec<&str> {
        self.cs.iter().map(|a| a.name()).collect()
    }

    /// Names of the registered CD algorithms.
    pub fn cd_names(&self) -> Vec<&str> {
        self.cd.iter().map(|a| a.name()).collect()
    }

    /// Names of the uploaded graphs (sorted).
    pub fn graph_names(&self) -> Vec<String> {
        let r = self.registry();
        let mut names: Vec<String> = r.snapshots.keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// The default graph's name.
    pub fn default_graph_name(&self) -> Option<String> {
        self.registry().default_graph.clone()
    }

    /// Makes `name` the default graph.
    pub fn set_default_graph(&self, name: &str) -> Result<(), ExplorerError> {
        // The gate serializes against a concurrent remove/re-add of the
        // same name, so the existence check stays valid across the log
        // append below.
        let gate = self.write_gate(name);
        let _writing = gate.lock().unwrap_or_else(|p| p.into_inner());
        if !self.registry().snapshots.contains_key(name) {
            return Err(ExplorerError::UnknownGraph(name.to_owned()));
        }
        self.log(&cx_store::Record::SetDefault { default: Some(name.to_owned()) })?;
        self.registry().default_graph = Some(name.to_owned());
        Ok(())
    }

    /// A cheap listing of every loaded graph (name, generation, sizes) —
    /// O(1) per graph, no snapshot clones. This is what `healthz` and the
    /// `graphs` endpoint should use.
    pub fn registry_index(&self) -> RegistryIndex {
        let r = self.registry();
        let default_graph = r.default_graph.clone();
        let mut graphs: Vec<GraphIndexEntry> = r
            .snapshots
            .iter()
            .map(|(name, s)| GraphIndexEntry {
                name: name.clone(),
                generation: s.generation,
                vertices: s.graph.vertex_count(),
                edges: s.graph.edge_count(),
                is_default: default_graph.as_deref() == Some(name.as_str()),
            })
            .collect();
        drop(r);
        graphs.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        RegistryIndex { default_graph, graphs }
    }

    /// Resolves `graph` (default when `None`) and other resolution errors.
    fn resolved_owned(&self, graph: Option<&str>) -> Result<String, ExplorerError> {
        match graph {
            Some(n) => Ok(n.to_owned()),
            None => self.registry().default_graph.clone().ok_or(ExplorerError::NoGraph),
        }
    }

    /// Pins the current snapshot of the (default or named) graph. This is
    /// the read-side entry point: the registry lock is held only for the
    /// lookup + `Arc` clone; everything after runs lock-free against the
    /// returned snapshot, unaffected by concurrent writers.
    pub fn snapshot(&self, graph: Option<&str>) -> Result<Arc<GraphSnapshot>, ExplorerError> {
        let r = self.registry();
        let name = match graph {
            Some(n) => n,
            None => r.default_graph.as_deref().ok_or(ExplorerError::NoGraph)?,
        };
        r.snapshots
            .get(name)
            .cloned()
            .ok_or_else(|| ExplorerError::UnknownGraph(name.to_owned()))
    }

    fn find_cs(&self, name: &str) -> Option<&dyn CsAlgorithm> {
        self.cs.iter().find(|a| a.name() == name).map(Box::as_ref)
    }

    fn find_cd(&self, name: &str) -> Option<&dyn CdAlgorithm> {
        self.cd.iter().find(|a| a.name() == name).map(Box::as_ref)
    }

    /// The paper's `search(CSAlgorithm, Query)` on the default graph.
    ///
    /// A CD algorithm name is accepted too: its clustering is computed and
    /// the query vertex's cluster returned (how CODICIL shows up alongside
    /// the CS methods in Figure 6(a)).
    pub fn search(&self, algo: &str, spec: &QuerySpec) -> Result<Vec<Community>, ExplorerError> {
        self.search_on(None, algo, spec)
    }

    /// `search` against a named graph: pins the current snapshot and
    /// delegates to [`Engine::search_snapshot`].
    pub fn search_on(
        &self,
        graph: Option<&str>,
        algo: &str,
        spec: &QuerySpec,
    ) -> Result<Vec<Community>, ExplorerError> {
        self.search_snapshot(&*self.snapshot(graph)?, algo, spec)
    }

    /// `search` against an already pinned snapshot — what a request
    /// handler uses to keep one consistent graph version across the
    /// whole request. Results are served from the query cache when the
    /// same resolved query was answered against the same snapshot
    /// generation before.
    pub fn search_snapshot(
        &self,
        snap: &GraphSnapshot,
        algo: &str,
        spec: &QuerySpec,
    ) -> Result<Vec<Community>, ExplorerError> {
        self.search_snapshot_cancellable(snap, algo, spec, &CancelToken::none())
    }

    /// [`Engine::search_snapshot`] under a cooperative cancellation token
    /// (the serving layer's `timeout_ms`). The algorithm runs inside a
    /// [`cx_par::task::scope`], so checkpointed hot loops bail early; the
    /// token is re-checked after the algorithm returns, and a cancelled run
    /// yields [`ExplorerError::DeadlineExceeded`] without inserting the
    /// (possibly partial) result into the query cache. An unarmed token
    /// takes the exact zero-alloc path of the plain entry point.
    pub fn search_snapshot_cancellable(
        &self,
        snap: &GraphSnapshot,
        algo: &str,
        spec: &QuerySpec,
        token: &CancelToken,
    ) -> Result<Vec<Community>, ExplorerError> {
        let _span = cx_obs::span("engine.search");
        let qs = spec.resolve(&snap.graph)?;
        let key = QueryKey {
            graph: snap.name.clone(),
            generation: snap.generation,
            algo: algo.to_owned(),
            vertices: qs.clone(),
            k: spec.k,
            keywords: spec.keywords.clone(),
        };
        if let Some(hit) = self.cache.get(&key) {
            cx_obs::metrics::inc("cx_engine_cache_total{event=\"hit\"}");
            return Ok(hit);
        }
        cx_obs::metrics::inc("cx_engine_cache_total{event=\"miss\"}");
        if token.is_cancelled() {
            cx_obs::metrics::inc("cx_engine_deadline_total{op=\"search\"}");
            return Err(ExplorerError::DeadlineExceeded);
        }
        let ctx = snap.context();
        let run = || {
            let _algo_span = cx_obs::span(&format!("algo.{algo}"));
            if let Some(a) = self.find_cs(algo) {
                Ok(a.search(&ctx, &qs, spec))
            } else if let Some(a) = self.find_cd(algo) {
                Ok(a.community_of(&ctx, qs[0]).into_iter().collect())
            } else {
                Err(ExplorerError::UnknownAlgorithm(algo.to_owned()))
            }
        };
        let out: Vec<Community> = if token.is_armed() {
            cx_par::task::scope(token, None, run)?
        } else {
            run()?
        };
        if token.is_cancelled() {
            cx_obs::metrics::inc("cx_engine_deadline_total{op=\"search\"}");
            return Err(ExplorerError::DeadlineExceeded);
        }
        self.cache.insert(key, out.clone());
        Ok(out)
    }

    /// The paper's `detect(CDAlgorithm)` on the default graph.
    pub fn detect(&self, algo: &str) -> Result<Vec<Community>, ExplorerError> {
        self.detect_on(None, algo)
    }

    /// `detect` against a named graph: pins the current snapshot and
    /// delegates to [`Engine::detect_snapshot`].
    pub fn detect_on(
        &self,
        graph: Option<&str>,
        algo: &str,
    ) -> Result<Vec<Community>, ExplorerError> {
        self.detect_snapshot(&*self.snapshot(graph)?, algo)
    }

    /// `detect` against an already pinned snapshot. Cached like
    /// [`Engine::search_snapshot`] (a detect key has no query vertices,
    /// so it never collides with a search key).
    pub fn detect_snapshot(
        &self,
        snap: &GraphSnapshot,
        algo: &str,
    ) -> Result<Vec<Community>, ExplorerError> {
        self.detect_snapshot_with(snap, algo, &CancelToken::none(), None)
    }

    /// [`Engine::detect_snapshot`] under a cooperative cancellation token —
    /// the deadline semantics of [`Engine::search_snapshot_cancellable`].
    pub fn detect_snapshot_cancellable(
        &self,
        snap: &GraphSnapshot,
        algo: &str,
        token: &CancelToken,
    ) -> Result<Vec<Community>, ExplorerError> {
        self.detect_snapshot_with(snap, algo, token, None)
    }

    /// Streaming `detect`: the algorithm's [`cx_par::task::progress`] calls
    /// reach `progress` (the SSE layer frames them as events), and `token`
    /// carries both the request deadline and client-disconnect abort. A
    /// cache hit short-circuits with the result and no progress events.
    pub fn detect_snapshot_streaming(
        &self,
        snap: &GraphSnapshot,
        algo: &str,
        token: &CancelToken,
        progress: Arc<ProgressFn>,
    ) -> Result<Vec<Community>, ExplorerError> {
        self.detect_snapshot_with(snap, algo, token, Some(progress))
    }

    fn detect_snapshot_with(
        &self,
        snap: &GraphSnapshot,
        algo: &str,
        token: &CancelToken,
        progress: Option<Arc<ProgressFn>>,
    ) -> Result<Vec<Community>, ExplorerError> {
        let _span = cx_obs::span("engine.detect");
        let a = self
            .find_cd(algo)
            .ok_or_else(|| ExplorerError::UnknownAlgorithm(algo.to_owned()))?;
        let key = QueryKey {
            graph: snap.name.clone(),
            generation: snap.generation,
            algo: algo.to_owned(),
            vertices: Vec::new(),
            k: 0,
            keywords: Vec::new(),
        };
        if let Some(hit) = self.cache.get(&key) {
            cx_obs::metrics::inc("cx_engine_cache_total{event=\"hit\"}");
            return Ok(hit);
        }
        cx_obs::metrics::inc("cx_engine_cache_total{event=\"miss\"}");
        if token.is_cancelled() {
            cx_obs::metrics::inc("cx_engine_deadline_total{op=\"detect\"}");
            return Err(ExplorerError::DeadlineExceeded);
        }
        let ctx = snap.context();
        let run = || {
            let _algo_span = cx_obs::span(&format!("algo.{algo}"));
            a.detect(&ctx)
        };
        let out = if token.is_armed() || progress.is_some() {
            cx_par::task::scope(token, progress, run)
        } else {
            run()
        };
        if token.is_cancelled() {
            cx_obs::metrics::inc("cx_engine_deadline_total{op=\"detect\"}");
            return Err(ExplorerError::DeadlineExceeded);
        }
        self.cache.insert(key, out.clone());
        Ok(out)
    }

    /// Query-cache counters (hits, misses, occupancy, capacity).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resizes the query cache (0 disables caching). Rebuilds the shard
    /// layout, dropping cached entries.
    pub fn set_cache_capacity(&self, capacity: usize) {
        self.cache.set_capacity(capacity);
    }

    /// The paper's `analyze(Community)`: CPJ/CMF quality plus per-community
    /// statistics for a result set, w.r.t. query vertex `q`.
    pub fn analyze(
        &self,
        graph: Option<&str>,
        communities: &[Community],
        q: VertexId,
    ) -> Result<AnalysisReport, ExplorerError> {
        self.analyze_snapshot(&*self.snapshot(graph)?, communities, q)
    }

    /// [`Engine::analyze`] against an already pinned snapshot.
    pub fn analyze_snapshot(
        &self,
        snap: &GraphSnapshot,
        communities: &[Community],
        q: VertexId,
    ) -> Result<AnalysisReport, ExplorerError> {
        snap.graph.check_vertex(q)?;
        Ok(AnalysisReport::new(&snap.graph, communities, q))
    }

    /// The paper's `display(Community)`: computes a layout scene for the
    /// browser (or SVG export). `highlight` is typically the query vertex.
    pub fn display(
        &self,
        graph: Option<&str>,
        community: &Community,
        algo: LayoutAlgorithm,
        highlight: Option<VertexId>,
    ) -> Result<Scene, ExplorerError> {
        Ok(self.display_snapshot(&*self.snapshot(graph)?, community, algo, highlight))
    }

    /// [`Engine::display`] against an already pinned snapshot.
    pub fn display_snapshot(
        &self,
        snap: &GraphSnapshot,
        community: &Community,
        algo: LayoutAlgorithm,
        highlight: Option<VertexId>,
    ) -> Scene {
        layout_community(&snap.graph, community, algo, highlight, 960.0, 600.0, 42)
    }

    /// Scene for a multi-resolution level view: the level-`level`
    /// supernodes as disjoint bubbles (largest first, at most
    /// `max_nodes`). Level views have no inter-supernode edges by
    /// construction — see the hierarchy module docs.
    pub fn hierarchy_level_scene(
        &self,
        snap: &GraphSnapshot,
        level: u32,
        max_nodes: usize,
    ) -> Scene {
        let h = snap.hierarchy();
        let nodes = h.level_nodes(level);
        let shown = nodes.len().min(max_nodes.max(1));
        let items: Vec<SummaryItem> = nodes[..shown]
            .iter()
            .map(|&id| supernode_item(&snap.graph, &h, id))
            .collect();
        layout_summary(&items, &[], 960.0, 600.0).titled(format!(
            "Hierarchy level {level} — showing {shown} of {} supernodes",
            nodes.len()
        ))
    }

    /// Scene for one supernode's expansion: listed residents as plain
    /// vertices, child supernodes as bubbles, resident–resident edges,
    /// and weighted resident→child links. The response is bounded: at
    /// most `max_nodes / 2` residents and the largest remaining budget of
    /// children.
    pub fn hierarchy_expand_scene(
        &self,
        snap: &GraphSnapshot,
        node: u32,
        max_nodes: usize,
    ) -> Result<Scene, ExplorerError> {
        let h = snap.hierarchy();
        if node as usize >= h.node_count() {
            return Err(ExplorerError::BadQuery(format!("no supernode {node}")));
        }
        let id = cx_cltree::NodeId(node);
        let g = &snap.graph;
        let budget = max_nodes.max(2);
        let ex = h.expand(g, &snap.tree, id, budget / 2);

        let mut items: Vec<SummaryItem> = ex
            .residents
            .iter()
            .map(|&v| SummaryItem {
                id: v.0,
                label: g.label(v).to_owned(),
                size: g.degree(v) as f64,
                is_super: false,
            })
            .collect();
        let vert_index: HashMap<VertexId, usize> =
            ex.residents.iter().enumerate().map(|(i, &v)| (v, i)).collect();

        // Largest children first when the budget can't fit them all.
        let mut children = ex.children.clone();
        children.sort_by_key(|&c| {
            (u32::MAX - h.stats(c).subtree_vertices, c.0)
        });
        children.truncate(budget.saturating_sub(items.len()).max(1));
        let child_index: HashMap<cx_cltree::NodeId, usize> = children
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, items.len() + i))
            .collect();
        items.extend(children.iter().map(|&c| supernode_item(g, &h, c)));

        let mut links: Vec<(usize, usize, f64)> = ex
            .internal_edges
            .iter()
            .map(|&(u, v)| (vert_index[&u], vert_index[&v], 1.0))
            .collect();
        links.extend(ex.child_links.iter().filter_map(|&(u, c, w)| {
            // Links to children dropped by the budget are omitted with
            // the child itself; the `truncated` title warns the client.
            Some((vert_index[&u], *child_index.get(&c)?, w as f64))
        }));

        let s = h.stats(id);
        let truncated = ex.truncated || children.len() < ex.children.len();
        Ok(layout_summary(&items, &links, 960.0, 600.0).titled(format!(
            "Supernode {node} (level {}) — {} residents, {} children{}",
            s.level,
            ex.residents.len(),
            children.len(),
            if truncated { ", truncated" } else { "" }
        )))
    }

    /// Installs profile records for a graph's vertices. Publishes a new
    /// snapshot (graph and index are shared with the previous one — only
    /// the profile map is rebuilt).
    pub fn set_profiles(
        &self,
        graph: Option<&str>,
        profiles: impl IntoIterator<Item = (VertexId, Profile)>,
    ) -> Result<(), ExplorerError> {
        let name = self.resolved_owned(graph)?;
        let gate = self.write_gate(&name);
        let _writing = gate.lock().unwrap_or_else(|p| p.into_inner());
        let snap = self.snapshot(Some(&name))?;
        let increment: Vec<(VertexId, Profile)> = profiles.into_iter().collect();
        let merged = snap.profiles.merged(&increment);
        let generation = self.reserve_generation(&name);
        // The log carries the increment, not the merged map; replay
        // re-merges it, mirroring this method.
        self.log(&cx_store::Record::SetProfiles {
            name: name.clone(),
            generation,
            profiles: increment
                .iter()
                .map(|(v, p)| cx_store::StoredProfile {
                    vertex: *v,
                    name: p.name.clone(),
                    areas: p.areas.clone(),
                    institutes: p.institutes.clone(),
                    interests: p.interests.clone(),
                })
                .collect(),
        })?;
        self.publish(GraphSnapshot::new(
            name,
            Arc::clone(&snap.graph),
            Arc::clone(&snap.tree),
            Arc::new(merged),
            snap.coords.clone(),
            generation,
        ));
        Ok(())
    }

    /// Installs vertex coordinates for a graph, enabling spatial-aware
    /// algorithms (`sac`). Must provide exactly one `(x, y)` per vertex.
    /// Coordinates change query answers, so this publishes a new
    /// generation (graph and index are shared with the previous snapshot).
    pub fn set_coordinates(
        &self,
        graph: Option<&str>,
        coords: Vec<(f64, f64)>,
    ) -> Result<(), ExplorerError> {
        let name = self.resolved_owned(graph)?;
        let gate = self.write_gate(&name);
        let _writing = gate.lock().unwrap_or_else(|p| p.into_inner());
        let snap = self.snapshot(Some(&name))?;
        if coords.len() != snap.graph.vertex_count() {
            return Err(ExplorerError::BadQuery(format!(
                "expected {} coordinates, got {}",
                snap.graph.vertex_count(),
                coords.len()
            )));
        }
        let generation = self.reserve_generation(&name);
        self.log(&cx_store::Record::SetCoords {
            name: name.clone(),
            generation,
            coords: coords.clone(),
        })?;
        self.publish(GraphSnapshot::new(
            name,
            Arc::clone(&snap.graph),
            Arc::clone(&snap.tree),
            Arc::clone(&snap.profiles),
            Some(Arc::new(coords)),
            generation,
        ));
        Ok(())
    }

    /// The profile of a vertex (the Figure 2 popup), if one is installed.
    pub fn profile(&self, graph: Option<&str>, v: VertexId) -> Result<Option<Profile>, ExplorerError> {
        Ok(self.snapshot(graph)?.profiles.get(v))
    }

    /// Applies a batch of edge edits to a graph — the evolving-network
    /// path (new co-authorships appear, stale ones are pruned).
    ///
    /// The incremental path (default): the edits are coalesced into an
    /// effective [`cx_graph::EdgeDelta`], the CSR adjacency is patched
    /// with [`AttributedGraph::apply_delta`] (attribute columns shared by
    /// `Arc`), core numbers are maintained subcore-locally by a warm
    /// [`cx_kcore::DynamicCore`] cached in the write gate, and the
    /// CL-tree is repaired with [`ClTree::update`] (which itself falls
    /// back to a full rebuild when too many core numbers changed). Set
    /// `CX_INCREMENTAL=off` to force the original full-rebuild path.
    ///
    /// Either way the work happens off the registry lock; concurrent
    /// readers keep answering from the previous snapshot until the
    /// publish, and every call — including a structural no-op — publishes
    /// a fresh generation. Wall time is recorded in the
    /// `cx_edit_apply_us` histogram.
    pub fn apply_edits(
        &self,
        graph: Option<&str>,
        add: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> Result<(), ExplorerError> {
        let start = Instant::now();
        let name = self.resolved_owned(graph)?;
        let gate = self.write_gate(&name);
        let mut ws = gate.lock().unwrap_or_else(|p| p.into_inner());
        let snap = self.snapshot(Some(&name))?;
        let g = &snap.graph;
        if Self::incremental_enabled() {
            // Validates every endpoint before any effect, so a bad edit
            // leaves the graph untouched.
            let delta = g.edge_delta(add, remove)?;
            let (new_graph, new_tree) = if delta.is_empty() {
                // Structural no-op: share graph and index wholesale but
                // still publish (callers observe a generation per edit).
                (Arc::clone(g), Arc::clone(&snap.tree))
            } else {
                let new_graph = Arc::new(g.apply_delta(&delta));
                let mut dc = match ws.dyncore.take() {
                    Some(dc) if ws.dyncore_for.as_ptr() == Arc::as_ptr(g) => dc,
                    _ => cx_kcore::DynamicCore::from_graph_with_cores(g, snap.tree.core_numbers()),
                };
                // Effective sets are disjoint (no edge is both added and
                // removed), so the order of the two loops is immaterial.
                for &(u, v) in &delta.removed {
                    dc.remove_edge(u, v);
                }
                for &(u, v) in &delta.added {
                    dc.insert_edge(u, v);
                }
                let tree = snap.tree.update(&new_graph, &delta, dc.core_numbers());
                ws.dyncore_for = Arc::downgrade(&new_graph);
                ws.dyncore = Some(dc);
                (new_graph, Arc::new(tree))
            };
            let generation = self.reserve_generation(&name);
            self.log(&cx_store::Record::Edit { name: name.clone(), generation, delta })?;
            let next = GraphSnapshot::new(
                name,
                new_graph,
                new_tree,
                Arc::clone(&snap.profiles),
                snap.coords.clone(),
                generation,
            );
            // Carry the summary hierarchy forward incrementally so a
            // browsing client doesn't pay a full rebuild after each edit.
            if let Some(prev_h) = snap.hierarchy_cached() {
                if Arc::ptr_eq(&next.tree, &snap.tree) {
                    next.seed_hierarchy(prev_h);
                } else {
                    next.seed_hierarchy(Arc::new(Hierarchy::update(
                        &next.graph,
                        &next.tree,
                        &snap.tree,
                        &prev_h,
                    )));
                }
            }
            self.publish(next);
            cx_obs::metrics::observe_us("cx_edit_apply_us", start.elapsed().as_micros() as u64);
            return Ok(());
        }
        for &(u, v) in add.iter().chain(remove) {
            g.check_vertex(u)?;
            g.check_vertex(v)?;
        }
        let removed: std::collections::HashSet<(VertexId, VertexId)> = remove
            .iter()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        let mut b = cx_graph::GraphBuilder::with_capacity(g.vertex_count(), g.edge_count());
        for v in g.vertices() {
            let kws = g.keyword_names(g.keywords(v));
            let refs: Vec<&str> = kws.iter().map(String::as_str).collect();
            b.add_vertex(g.label(v), &refs);
        }
        for (u, v) in g.edges() {
            if !removed.contains(&(u, v)) {
                b.add_edge(u, v);
            }
        }
        for &(u, v) in add {
            b.add_edge(u, v);
        }
        let new_graph = b.try_build()?;
        let tree = ClTree::build(&new_graph);
        let generation = self.reserve_generation(&name);
        if self.store.is_some() {
            // The durable log records the normalized delta either way, so
            // replay is identical across CX_INCREMENTAL settings.
            let delta = g.edge_delta(add, remove)?;
            self.log(&cx_store::Record::Edit { name: name.clone(), generation, delta })?;
        }
        // Edits touch edges only, so profiles and coordinates carry over.
        self.publish(GraphSnapshot::new(
            name,
            Arc::new(new_graph),
            Arc::new(tree),
            Arc::clone(&snap.profiles),
            snap.coords.clone(),
            generation,
        ));
        cx_obs::metrics::observe_us("cx_edit_apply_us", start.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Whether the incremental write path is enabled (`CX_INCREMENTAL` is
    /// unset, or set to anything other than `off`/`0`).
    fn incremental_enabled() -> bool {
        !matches!(std::env::var("CX_INCREMENTAL").ok().as_deref(), Some("off") | Some("0"))
    }

    /// Case-insensitive vertex search for the UI's name box; returns
    /// (vertex, label, degree) triples, best match first.
    pub fn suggest(
        &self,
        graph: Option<&str>,
        query: &str,
        limit: usize,
    ) -> Result<Vec<(VertexId, String, usize)>, ExplorerError> {
        Ok(self.suggest_page(graph, query, 0, limit)?.0)
    }

    /// Paged [`Engine::suggest`]: returns the `offset..offset+limit`
    /// slice of the ranked match list plus the total match count. Only
    /// the best `offset + limit` candidates are ever materialised
    /// (bounded partial selection in the graph layer), so pagination
    /// stays correct *and* cheap at paper scale — no fixed scan cap that
    /// silently truncates pages.
    pub fn suggest_page(
        &self,
        graph: Option<&str>,
        query: &str,
        offset: usize,
        limit: usize,
    ) -> Result<(Vec<(VertexId, String, usize)>, usize), ExplorerError> {
        let snap = self.snapshot(graph)?;
        let g = &snap.graph;
        let (hits, total) = g.search_label_top(query, offset.saturating_add(limit));
        let page = hits
            .into_iter()
            .skip(offset)
            .map(|v| (v, g.label(v).to_owned(), g.degree(v)))
            .collect();
        Ok((page, total))
    }

    /// Folds the WAL into fresh snapshot checkpoints and truncates it.
    /// No-op (returning `None`) on a non-durable engine.
    ///
    /// Writers are quiesced for the duration: the write-gate map lock is
    /// held (blocking any writer from even looking up its gate) and every
    /// existing gate is locked in sorted order (waiting out in-flight
    /// writes). Readers are unaffected — they run off pinned snapshots
    /// and never touch gates. The quiescence makes the (registry,
    /// generation counters, default) cut handed to the store consistent
    /// with the WAL truncation: no record can land between the cut and
    /// the truncate and be lost.
    pub fn compact_store(&self) -> Result<Option<cx_store::CompactionStats>, ExplorerError> {
        let Some(store) = &self.store else { return Ok(None) };

        // Quiesce: hold the gate map (blocks new writers incl. new graph
        // names) and then every gate (waits out in-flight writers).
        let gates_map = self.write_gates.lock().unwrap_or_else(|p| p.into_inner());
        let mut gates: Vec<(&String, &Arc<Mutex<WriteState>>)> = gates_map.iter().collect();
        gates.sort_unstable_by_key(|(name, _)| name.as_str());
        let _held: Vec<_> = gates
            .iter()
            .map(|(_, gate)| gate.lock().unwrap_or_else(|p| p.into_inner()))
            .collect();

        // A consistent cut of the registry.
        let (live, default_graph, counters) = {
            let r = self.registry();
            let mut live: Vec<cx_store::GraphCheckpoint> = r
                .snapshots
                .iter()
                .map(|(name, s)| {
                    // The column store iterates in vertex order, so the
                    // checkpoint's sorted-rows contract holds by
                    // construction.
                    let profiles: Vec<cx_store::StoredProfile> = s
                        .profiles
                        .iter()
                        .map(|(v, p)| cx_store::StoredProfile {
                            vertex: v,
                            name: p.name,
                            areas: p.areas,
                            institutes: p.institutes,
                            interests: p.interests,
                        })
                        .collect();
                    cx_store::GraphCheckpoint {
                        name: name.clone(),
                        generation: s.generation,
                        graph: Arc::clone(&s.graph),
                        profiles,
                        coords: s.coords.as_ref().map(|c| (**c).clone()),
                    }
                })
                .collect();
            live.sort_unstable_by(|a, b| a.name.cmp(&b.name));
            let mut counters: Vec<(String, u64)> =
                r.generations.iter().map(|(n, g)| (n.clone(), *g)).collect();
            counters.sort_unstable();
            (live, r.default_graph.clone(), counters)
        };

        let stats = store.compact(&live, default_graph, &counters)?;
        Ok(Some(stats))
    }

    /// Kicks off [`Engine::compact_store`] on a background thread when
    /// the WAL has outgrown the `CX_COMPACT_BYTES` threshold (default
    /// 64 MiB) and no compaction is already running. Cheap enough to call
    /// after every write request.
    pub fn maybe_compact_in_background(self: &Arc<Self>) {
        use std::sync::atomic::Ordering;
        let Some(store) = &self.store else { return };
        if store.wal_bytes() < compact_threshold_bytes() {
            return;
        }
        if self.compacting.swap(true, Ordering::SeqCst) {
            return; // One at a time.
        }
        let me = Arc::clone(self);
        std::thread::spawn(move || {
            if let Err(e) = me.compact_store() {
                // Compaction failure is not fatal: the WAL keeps growing
                // and recovery still works; surface it via metrics.
                cx_obs::metrics::inc("cx_store_compaction_errors_total");
                eprintln!("background compaction failed: {e}");
            }
            me.compacting.store(false, Ordering::SeqCst);
        });
    }
}

/// Summary-scene item for one supernode: labelled with level, subtree
/// size, and the dominant keyword when it has one.
fn supernode_item(g: &AttributedGraph, h: &Hierarchy, id: cx_cltree::NodeId) -> SummaryItem {
    let s = h.stats(id);
    let kw = s.top_keywords.first().and_then(|&(w, _)| g.interner().name(w)).unwrap_or("");
    let label = if kw.is_empty() {
        format!("k{} | {}v", s.level, s.subtree_vertices)
    } else {
        format!("k{} | {}v | {kw}", s.level, s.subtree_vertices)
    };
    SummaryItem { id: id.0, label, size: s.subtree_vertices as f64, is_super: true }
}

/// WAL size that triggers a background compaction (`CX_COMPACT_BYTES`,
/// default 64 MiB).
fn compact_threshold_bytes() -> u64 {
    std::env::var("CX_COMPACT_BYTES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64 << 20)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::{figure5_graph, small_collab_graph};

    fn engine() -> Engine {
        Engine::with_graph("fig5", figure5_graph())
    }

    #[test]
    fn builtins_are_registered() {
        let e = engine();
        let cs = e.cs_names();
        for name in ["acq", "acq-inc-s", "acq-inc-t", "acq-basic", "global", "global-maxmin", "local", "ktruss", "kecc"] {
            assert!(cs.contains(&name), "missing {name}");
        }
        assert_eq!(e.cd_names(), vec!["codicil", "louvain", "girvan-newman"]);
        assert_eq!(e.graph_names(), vec!["fig5"]);
        assert_eq!(e.default_graph_name().as_deref(), Some("fig5"));
    }

    #[test]
    fn search_paper_example_through_engine() {
        let e = engine();
        let out = e.search("acq", &QuerySpec::by_label("A").k(2)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 3);
        // Global on the same query returns the bigger plain core.
        let g = e.search("global", &QuerySpec::by_label("A").k(2)).unwrap();
        assert_eq!(g[0].len(), 5);
    }

    #[test]
    fn search_with_cd_algorithm_returns_query_cluster() {
        let e = engine();
        let out = e.search("codicil", &QuerySpec::by_label("A")).unwrap();
        assert_eq!(out.len(), 1);
        let snap = e.snapshot(None).unwrap();
        assert!(out[0].contains(snap.vertex_by_label("A").unwrap()));
    }

    #[test]
    fn unknown_things_error() {
        let e = engine();
        assert!(matches!(
            e.search("nope", &QuerySpec::by_label("A")),
            Err(ExplorerError::UnknownAlgorithm(_))
        ));
        assert!(matches!(
            e.search_on(Some("nope"), "acq", &QuerySpec::by_label("A")),
            Err(ExplorerError::UnknownGraph(_))
        ));
        assert!(matches!(
            e.search("acq", &QuerySpec::by_label("nobody")),
            Err(ExplorerError::UnknownVertex(_))
        ));
        assert!(matches!(e.detect("global"), Err(ExplorerError::UnknownAlgorithm(_))));
        let empty = Engine::new();
        assert!(matches!(
            empty.search("acq", &QuerySpec::by_label("A")),
            Err(ExplorerError::NoGraph)
        ));
        assert!(matches!(empty.snapshot(None), Err(ExplorerError::NoGraph)));
    }

    #[test]
    fn multi_vertex_query_through_engine() {
        let e = engine();
        let out = e.search("acq", &QuerySpec::by_labels(["A", "D"]).k(2)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn analyze_and_display_roundtrip() {
        let e = engine();
        let out = e.search("acq", &QuerySpec::by_label("A").k(2)).unwrap();
        let snap = e.snapshot(None).unwrap();
        let a = snap.vertex_by_label("A").unwrap();
        let report = e.analyze(None, &out, a).unwrap();
        assert!(report.cpj > 0.5);
        assert!(report.cmf > 0.5);
        let scene = e
            .display(None, &out[0], LayoutAlgorithm::default_force(), Some(a))
            .unwrap();
        assert_eq!(scene.vertex_count(), 3);
        assert!(scene.in_bounds());
    }

    #[test]
    fn profiles_store_and_fetch() {
        let e = engine();
        let a = e.snapshot(None).unwrap().vertex_by_label("A").unwrap();
        let p = Profile {
            name: "A".into(),
            areas: vec!["Computer science".into()],
            institutes: vec!["HKU".into()],
            interests: vec!["databases".into()],
        };
        e.set_profiles(None, [(a, p.clone())]).unwrap();
        assert_eq!(e.profile(None, a).unwrap(), Some(p));
        assert_eq!(e.profile(None, VertexId(3)).unwrap(), None);
    }

    #[test]
    fn custom_algorithm_plugs_in() {
        struct Egocentric;
        impl crate::api::CsAlgorithm for Egocentric {
            fn name(&self) -> &str {
                "ego"
            }
            fn search(
                &self,
                ctx: &GraphContext<'_>,
                qs: &[VertexId],
                _spec: &QuerySpec,
            ) -> Vec<Community> {
                let q = qs[0];
                let mut members = vec![q];
                members.extend_from_slice(ctx.graph.neighbors(q));
                vec![Community::structural(members)]
            }
        }
        let mut e = engine();
        e.register_cs(Box::new(Egocentric));
        assert!(e.cs_names().contains(&"ego"));
        let out = e.search("ego", &QuerySpec::by_label("A")).unwrap();
        assert_eq!(out[0].len(), 4); // A + its 3 clique neighbours
    }

    #[test]
    fn suggest_ranks_matches() {
        let e = engine();
        let hits = e.suggest(None, "a", 10).unwrap();
        assert!(!hits.is_empty());
        assert_eq!(hits[0].1, "A");
    }

    #[test]
    fn suggest_pages_past_any_fixed_scan_cap() {
        // 300 matches for the prefix: pages past the old 256-candidate
        // scan window must still be populated and the total exact.
        let mut b = cx_graph::GraphBuilder::new();
        let hub = b.add_vertex("hub", &[]);
        for i in 0..300 {
            let v = b.add_vertex(&format!("author-{i:03}"), &[]);
            if i % 2 == 0 {
                b.add_edge(v, hub);
            }
        }
        let e = Engine::with_graph("wide", b.build());
        let (page, total) = e.suggest_page(None, "author", 260, 10).unwrap();
        assert_eq!(total, 300);
        assert_eq!(page.len(), 10);
        // The tail page exists too, and ranking stays degree-major there.
        let (tail, total) = e.suggest_page(None, "author", 290, 50).unwrap();
        assert_eq!(total, 300);
        assert_eq!(tail.len(), 10);
        assert!(tail.windows(2).all(|w| w[0].2 >= w[1].2), "tail not degree-sorted");
    }

    #[test]
    fn upload_text_file() {
        let dir = std::env::temp_dir().join("cx_engine_upload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.graph");
        cx_graph::io::save_text_file(&figure5_graph(), &path).unwrap();
        let e = Engine::new();
        e.upload("uploaded", &path).unwrap();
        assert_eq!(e.snapshot(None).unwrap().vertex_count(), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn set_default_graph_switches() {
        let e = engine();
        e.add_graph("second", cx_datagen::small_collab_graph());
        assert_eq!(e.default_graph_name().as_deref(), Some("fig5"));
        e.set_default_graph("second").unwrap();
        assert_eq!(e.snapshot(None).unwrap().vertex_count(), 16);
        assert!(e.set_default_graph("ghost").is_err());
    }

    #[test]
    fn remove_graph_reassigns_default() {
        let e = engine();
        e.add_graph("collab", small_collab_graph());
        assert_eq!(e.default_graph_name().as_deref(), Some("fig5"));
        e.remove_graph("fig5").unwrap();
        assert_eq!(e.default_graph_name().as_deref(), Some("collab"));
        assert_eq!(e.graph_names(), vec!["collab"]);
        assert!(matches!(e.remove_graph("fig5"), Err(ExplorerError::UnknownGraph(_))));
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use cx_datagen::figure5_graph;

    #[test]
    fn generations_are_per_graph_and_monotone() {
        let e = Engine::with_graph("a", figure5_graph());
        e.add_graph("b", figure5_graph());
        // Per-graph counters: both start at 1, not 1 and 2.
        assert_eq!(e.snapshot(Some("a")).unwrap().generation, 1);
        assert_eq!(e.snapshot(Some("b")).unwrap().generation, 1);

        let a_before = e.snapshot(Some("a")).unwrap();
        let gb = e.snapshot(Some("b")).unwrap();
        let (u, v) = (gb.vertex_by_label("A").unwrap(), gb.vertex_by_label("B").unwrap());
        e.apply_edits(Some("b"), &[], &[(u, v)]).unwrap();

        assert_eq!(e.snapshot(Some("b")).unwrap().generation, 2);
        let a_after = e.snapshot(Some("a")).unwrap();
        assert!(Arc::ptr_eq(&a_before, &a_after), "editing b must not republish a");
        assert_eq!(a_after.generation, 1);

        // Removal + re-add continues the counter — it never resets, so
        // old cache keys can never be resurrected. The removal claims a
        // generation of its own (3) so the durable log can order it
        // against checkpoints; the re-add lands on 4.
        e.remove_graph("b").unwrap();
        e.add_graph("b", figure5_graph());
        assert_eq!(e.snapshot(Some("b")).unwrap().generation, 4);
    }

    #[test]
    fn pinned_snapshot_survives_edits() {
        let e = Engine::with_graph("fig5", figure5_graph());
        let old = e.snapshot(None).unwrap();
        let (a, b) = (old.vertex_by_label("A").unwrap(), old.vertex_by_label("B").unwrap());
        e.apply_edits(None, &[], &[(a, b)]).unwrap();

        // The pinned reader still sees the pre-edit world, index included.
        assert_eq!(old.edge_count(), 11);
        assert_eq!(old.tree.max_core(), 3);
        let out = e.search_snapshot(&old, "global", &QuerySpec::by_id(a).k(3)).unwrap();
        assert_eq!(out[0].len(), 4, "K4 intact in the pinned snapshot");

        // New requests see the new world.
        let new = e.snapshot(None).unwrap();
        assert_eq!(new.edge_count(), 10);
        assert_eq!(new.tree.max_core(), 2);
        assert!(new.generation > old.generation);
    }

    #[test]
    fn registry_index_lists_without_cloning_snapshots() {
        let e = Engine::with_graph("fig5", figure5_graph());
        e.add_graph("zz", figure5_graph());
        let idx = e.registry_index();
        assert_eq!(idx.default_graph.as_deref(), Some("fig5"));
        assert_eq!(idx.graphs.len(), 2);
        assert_eq!(idx.graphs[0].name, "fig5");
        assert!(idx.graphs[0].is_default);
        assert_eq!(idx.graphs[0].vertices, 10);
        assert_eq!(idx.graphs[0].edges, 11);
        assert_eq!(idx.graphs[0].generation, 1);
        assert_eq!(idx.graphs[1].name, "zz");
        assert!(!idx.graphs[1].is_default);
    }

    #[test]
    fn concurrent_readers_and_writer_stay_consistent() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let e = Arc::new(Engine::with_graph("fig5", figure5_graph()));
        let snap = e.snapshot(None).unwrap();
        let (a, b) = (snap.vertex_by_label("A").unwrap(), snap.vertex_by_label("B").unwrap());
        drop(snap);

        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let e = Arc::clone(&e);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_gen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let s = e.snapshot(None).unwrap();
                        assert!(s.generation >= last_gen, "generation went backwards");
                        last_gen = s.generation;
                        // A snapshot is internally consistent: edge count
                        // and index agree (A-B present ⇔ 3-core exists).
                        let has_ab = s.neighbors(a).contains(&b);
                        assert_eq!(s.tree.max_core(), if has_ab { 3 } else { 2 });
                        assert_eq!(s.edge_count(), if has_ab { 11 } else { 10 });
                    }
                })
            })
            .collect();

        for i in 0..20 {
            if i % 2 == 0 {
                e.apply_edits(None, &[], &[(a, b)]).unwrap();
            } else {
                e.apply_edits(None, &[(a, b)], &[]).unwrap();
            }
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(e.snapshot(None).unwrap().generation, 21);
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    use cx_datagen::{figure5_graph, small_collab_graph};

    /// A stub CS algorithm that counts how often its `search` actually
    /// runs — cache hits must not reach it.
    struct Counting {
        calls: Arc<AtomicUsize>,
    }
    impl crate::api::CsAlgorithm for Counting {
        fn name(&self) -> &str {
            "counting"
        }
        fn search(
            &self,
            _ctx: &GraphContext<'_>,
            qs: &[VertexId],
            _spec: &QuerySpec,
        ) -> Vec<Community> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            vec![Community::structural(vec![qs[0]])]
        }
    }

    fn counting_engine() -> (Engine, Arc<AtomicUsize>) {
        let mut e = Engine::with_graph("fig5", figure5_graph());
        let calls = Arc::new(AtomicUsize::new(0));
        e.register_cs(Box::new(Counting { calls: Arc::clone(&calls) }));
        (e, calls)
    }

    #[test]
    fn repeated_search_skips_the_algorithm() {
        let (e, calls) = counting_engine();
        let spec = QuerySpec::by_label("A").k(2);
        let first = e.search("counting", &spec).unwrap();
        let second = e.search("counting", &spec).unwrap();
        assert_eq!(first, second);
        assert_eq!(calls.load(Ordering::SeqCst), 1, "second call must hit the cache");
        let s = e.cache_stats();
        assert_eq!(s.hits, 1);
        assert!(s.misses >= 1);
    }

    #[test]
    fn label_and_id_queries_share_a_slot() {
        let (e, calls) = counting_engine();
        let a = e.snapshot(None).unwrap().vertex_by_label("A").unwrap();
        e.search("counting", &QuerySpec::by_label("A").k(2)).unwrap();
        e.search("counting", &QuerySpec::by_id(a).k(2)).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "keys use resolved vertex ids");
    }

    #[test]
    fn different_parameters_miss() {
        let (e, calls) = counting_engine();
        e.search("counting", &QuerySpec::by_label("A").k(2)).unwrap();
        e.search("counting", &QuerySpec::by_label("A").k(3)).unwrap();
        e.search("counting", &QuerySpec::by_label("B").k(2)).unwrap();
        e.search("counting", &QuerySpec::by_label("A").k(2).with_keywords(["x"])).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn replacing_the_graph_invalidates() {
        let (e, calls) = counting_engine();
        let spec = QuerySpec::by_label("A").k(2);
        e.search("counting", &spec).unwrap();
        // Re-adding under the same name bumps the generation.
        e.add_graph("fig5", figure5_graph());
        e.search("counting", &spec).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2, "stale generation must miss");
    }

    #[test]
    fn upload_invalidates() {
        let dir = std::env::temp_dir().join("cx_engine_cache_upload");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig5.graph");
        cx_graph::io::save_text_file(&figure5_graph(), &path).unwrap();
        let (e, calls) = counting_engine();
        let spec = QuerySpec::by_label("A").k(2);
        e.search("counting", &spec).unwrap();
        e.upload("fig5", &path).unwrap();
        e.search("counting", &spec).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn edits_invalidate_only_by_generation() {
        let (e, calls) = counting_engine();
        let spec = QuerySpec::by_label("A").k(2);
        e.search("counting", &spec).unwrap();
        let snap = e.snapshot(None).unwrap();
        let (a, b) = (snap.vertex_by_label("A").unwrap(), snap.vertex_by_label("B").unwrap());
        e.apply_edits(None, &[], &[(a, b)]).unwrap();
        e.search("counting", &spec).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn editing_one_graph_spares_the_others_cache() {
        let (e, calls) = counting_engine();
        e.add_graph("other", small_collab_graph());
        let spec = QuerySpec::by_id(VertexId(0)).k(2);
        e.search_on(Some("other"), "counting", &spec).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        // Edit fig5: other's generation and cache entries are untouched.
        let snap = e.snapshot(Some("fig5")).unwrap();
        let (a, b) = (snap.vertex_by_label("A").unwrap(), snap.vertex_by_label("B").unwrap());
        e.apply_edits(Some("fig5"), &[], &[(a, b)]).unwrap();
        e.search_on(Some("other"), "counting", &spec).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "other graph's cache survives fig5's edit");
    }

    #[test]
    fn registering_an_algorithm_clears_the_cache() {
        let (mut e, calls) = counting_engine();
        let spec = QuerySpec::by_label("A").k(2);
        e.search("counting", &spec).unwrap();
        // Replace the algorithm under the same name: must re-run.
        let calls2 = Arc::new(AtomicUsize::new(0));
        e.register_cs(Box::new(Counting { calls: Arc::clone(&calls2) }));
        e.search("counting", &spec).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(calls2.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn lru_eviction_at_capacity_one() {
        // Capacity 1 → a single shard with exact LRU semantics.
        let (e, calls) = counting_engine();
        e.set_cache_capacity(1);
        let qa = QuerySpec::by_label("A").k(2);
        let qb = QuerySpec::by_label("B").k(2);
        e.search("counting", &qa).unwrap(); // {A}
        e.search("counting", &qa).unwrap(); // hit
        e.search("counting", &qb).unwrap(); // evicts A → {B}
        e.search("counting", &qa).unwrap(); // miss → recompute
        assert_eq!(e.cache_stats().len, 1);
        assert_eq!(calls.load(Ordering::SeqCst), 3, "A, B, then A again");
    }

    #[test]
    fn capacity_bounds_hold_across_shards() {
        let (e, calls) = counting_engine();
        e.set_cache_capacity(2);
        let qa = QuerySpec::by_label("A").k(2);
        let qb = QuerySpec::by_label("B").k(2);
        let qc = QuerySpec::by_label("C").k(2);
        e.search("counting", &qa).unwrap();
        e.search("counting", &qb).unwrap();
        e.search("counting", &qc).unwrap();
        assert!(e.cache_stats().len <= 2, "total occupancy bounded by capacity");
        // The most recent insert is still resident in its shard.
        e.search("counting", &qc).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3, "C was just inserted: must hit");
    }

    #[test]
    fn detect_results_are_cached_per_graph() {
        let e = Engine::with_graph("fig5", figure5_graph());
        e.add_graph("collab", small_collab_graph());
        let a = e.detect_on(Some("fig5"), "louvain").unwrap();
        let before = e.cache_stats();
        let b = e.detect_on(Some("fig5"), "louvain").unwrap();
        assert_eq!(a, b);
        assert_eq!(e.cache_stats().hits, before.hits + 1);
        // A different graph is a different key.
        let c = e.detect_on(Some("collab"), "louvain").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn errors_are_not_cached() {
        let (e, _) = counting_engine();
        assert!(e.search("counting", &QuerySpec::by_label("nobody")).is_err());
        assert!(e.search("nope", &QuerySpec::by_label("A")).is_err());
        let s = e.cache_stats();
        assert_eq!(s.len, 0);
    }
}

#[cfg(test)]
mod edit_tests {
    use super::*;
    use cx_datagen::figure5_graph;
    use crate::query::QuerySpec;

    #[test]
    fn adding_edges_grows_the_core() {
        let e = Engine::with_graph("fig5", figure5_graph());
        let snap = e.snapshot(None).unwrap();
        let (ee, f, gg) = (
            snap.vertex_by_label("E").unwrap(),
            snap.vertex_by_label("F").unwrap(),
            snap.vertex_by_label("G").unwrap(),
        );
        // Before: E is in the 2-core, F and G are only 1-core.
        assert_eq!(snap.tree.core(f), 1);
        // Close the E-F-G triangle fully against the K4: G-E edge already
        // exists? No — add G-E and F-C to densify.
        let c = snap.vertex_by_label("C").unwrap();
        e.apply_edits(None, &[(gg, ee), (f, c)], &[]).unwrap();
        let snap = e.snapshot(None).unwrap();
        assert!(snap.tree.core(f) >= 2, "F core {} after densifying", snap.tree.core(f));
        assert!(snap.tree.core(gg) >= 2);
        // Queries run against the updated graph.
        let out = e.search("acq", &QuerySpec::by_label("A").k(2)).unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn removing_edges_shrinks_the_core() {
        let e = Engine::with_graph("fig5", figure5_graph());
        let snap = e.snapshot(None).unwrap();
        let (a, b) = (snap.vertex_by_label("A").unwrap(), snap.vertex_by_label("B").unwrap());
        e.apply_edits(None, &[], &[(a, b)]).unwrap();
        // K4 minus an edge: cores drop from 3 to 2.
        let snap = e.snapshot(None).unwrap();
        assert_eq!(snap.tree.core(a), 2);
        assert_eq!(snap.tree.max_core(), 2);
        assert_eq!(snap.edge_count(), 10);
    }

    #[test]
    fn edits_validate_vertices_and_keep_profiles() {
        let e = Engine::with_graph("fig5", figure5_graph());
        let a = e.snapshot(None).unwrap().vertex_by_label("A").unwrap();
        e.set_profiles(
            None,
            [(a, Profile {
                name: "A".into(),
                areas: vec![],
                institutes: vec![],
                interests: vec![],
            })],
        )
        .unwrap();
        assert!(e.apply_edits(None, &[(a, VertexId(99))], &[]).is_err());
        let b = e.snapshot(None).unwrap().vertex_by_label("B").unwrap();
        e.apply_edits(None, &[], &[(a, b)]).unwrap();
        // Profile survives the rebuild.
        assert!(e.profile(None, a).unwrap().is_some());
    }

    #[test]
    fn incremental_edits_share_attribute_columns_and_profiles() {
        let e = Engine::with_graph("fig5", figure5_graph());
        let before = e.snapshot(None).unwrap();
        let a = before.vertex_by_label("A").unwrap();
        let b = before.vertex_by_label("B").unwrap();
        e.set_profiles(
            None,
            [(a, Profile {
                name: "A".into(),
                areas: vec![],
                institutes: vec![],
                interests: vec![],
            })],
        )
        .unwrap();
        let coords: Vec<(f64, f64)> =
            (0..before.vertex_count()).map(|i| (i as f64, -(i as f64))).collect();
        e.set_coordinates(None, coords).unwrap();
        let before = e.snapshot(None).unwrap();
        e.apply_edits(None, &[], &[(a, b)]).unwrap();
        let after = e.snapshot(None).unwrap();
        // The edit must not deep-copy what it didn't touch: attribute
        // columns, the profile map, and the coordinate vector are all
        // carried by pointer into the successor snapshot.
        assert!(after.graph.shares_attributes_with(&before.graph));
        assert!(Arc::ptr_eq(&after.profiles, &before.profiles));
        assert!(Arc::ptr_eq(
            after.coords.as_ref().unwrap(),
            before.coords.as_ref().unwrap()
        ));
        assert_eq!(after.generation, before.generation + 1);
    }

    #[test]
    fn no_op_edit_publishes_a_generation_sharing_graph_and_tree() {
        let e = Engine::with_graph("fig5", figure5_graph());
        let before = e.snapshot(None).unwrap();
        let a = before.vertex_by_label("A").unwrap();
        let b = before.vertex_by_label("B").unwrap();
        let h = before.vertex_by_label("H").unwrap();
        let i = before.vertex_by_label("I").unwrap();
        // A–B already exists and H–I is removed-then-re-added within the
        // same batch: structurally nothing changes.
        e.apply_edits(None, &[(a, b), (h, i)], &[(h, i)]).unwrap();
        let after = e.snapshot(None).unwrap();
        assert_eq!(after.generation, before.generation + 1);
        assert!(Arc::ptr_eq(&after.graph, &before.graph));
        assert!(Arc::ptr_eq(&after.tree, &before.tree));
    }

    #[test]
    fn chained_incremental_edits_match_a_from_scratch_engine() {
        let inc = Engine::with_graph("fig5", figure5_graph());
        let scratch = |edits: &dyn Fn(&Engine)| {
            let e = Engine::with_graph("fig5", figure5_graph());
            edits(&e);
            e
        };
        let snap = inc.snapshot(None).unwrap();
        let v = |l: &str| snap.vertex_by_label(l).unwrap();
        let (a, b, c, ee, f, gg, h, i, j) = (
            v("A"),
            v("B"),
            v("C"),
            v("E"),
            v("F"),
            v("G"),
            v("H"),
            v("I"),
            v("J"),
        );
        // A long script mixing inserts, deletes, batches, and a re-add,
        // exercising the warm DynamicCore across consecutive calls.
        let script: Vec<(Vec<(VertexId, VertexId)>, Vec<(VertexId, VertexId)>)> = vec![
            (vec![(gg, ee), (f, c)], vec![]),
            (vec![], vec![(a, b)]),
            (vec![(a, b), (j, i)], vec![(h, i)]),
            (vec![(h, i)], vec![(j, i)]),
            (vec![], vec![(0, 2), (1, 3)].iter().map(|&(x, y)| (VertexId(x), VertexId(y))).collect()),
            (vec![(VertexId(0), VertexId(2))], vec![]),
        ];
        for (step, (add, remove)) in script.iter().enumerate() {
            inc.apply_edits(None, add, remove).unwrap();
            let fresh = scratch(&|e| {
                for (add, remove) in &script[..=step] {
                    e.apply_edits(None, add, remove).unwrap();
                }
            });
            let got = inc.snapshot(None).unwrap();
            let want = fresh.snapshot(None).unwrap();
            assert_eq!(got.edge_count(), want.edge_count(), "step {step}");
            assert_eq!(got.tree.core_numbers(), want.tree.core_numbers(), "step {step}");
            assert_eq!(got.tree.max_core(), want.tree.max_core(), "step {step}");
            for q in ["A", "E", "H"] {
                let spec = QuerySpec::by_label(q).k(2);
                let gi = inc.search("acq", &spec).unwrap();
                let gf = fresh.search("acq", &spec).unwrap();
                assert_eq!(gi, gf, "step {step} query {q}");
            }
        }
    }
}

#[cfg(test)]
mod spatial_tests {
    use super::*;
    use crate::query::QuerySpec;
    use cx_datagen::figure5_graph;

    #[test]
    fn sac_requires_coordinates() {
        let e = Engine::with_graph("fig5", figure5_graph());
        // Without coordinates the sac algorithm returns nothing.
        let none = e.search("sac", &QuerySpec::by_label("A").k(2)).unwrap();
        assert!(none.is_empty());
        // Wrong coordinate count is rejected.
        assert!(matches!(
            e.set_coordinates(None, vec![(0.0, 0.0)]),
            Err(ExplorerError::BadQuery(_))
        ));
        // With coordinates the query answers: put the K4 near A and the
        // rest far away; the spatial community is the K4.
        let snap = e.snapshot(None).unwrap();
        let coords: Vec<(f64, f64)> = snap
            .vertices()
            .map(|v| if v.0 <= 3 { (v.0 as f64, 0.0) } else { (1000.0 + v.0 as f64, 0.0) })
            .collect();
        e.set_coordinates(None, coords).unwrap();
        let out = e.search("sac", &QuerySpec::by_label("A").k(2)).unwrap();
        assert_eq!(out.len(), 1);
        // The smallest disk around A with a 2-core is the A-B-C triangle
        // (the K4 minus its farthest vertex) — strictly tighter than the
        // full K4, and far from the distant vertices.
        assert_eq!(out[0].len(), 3);
        let snap = e.snapshot(None).unwrap();
        assert!(out[0].vertices().iter().all(|&v| v.0 <= 3), "{:?}", out[0].labels(&snap.graph));
        assert!(matches!(
            e.set_coordinates(Some("ghost"), vec![]),
            Err(ExplorerError::UnknownGraph(_))
        ));
    }
}

impl Engine {
    /// Persists every uploaded graph and its CL-tree index into `dir`
    /// (`<name>.graph.bin` + `<name>.index.bin`) — the offline side of
    /// Figure 3's Indexing box. Graph names must be filesystem-safe
    /// (alphanumeric, `-`, `_`). Profiles and coordinates are runtime
    /// state and are not persisted. Snapshot Arcs are collected under one
    /// brief registry lock; the file writes run off-lock.
    pub fn save_dir(&self, dir: &Path) -> Result<(), ExplorerError> {
        std::fs::create_dir_all(dir).map_err(cx_graph::GraphError::from)?;
        let snaps: Vec<Arc<GraphSnapshot>> = {
            let r = self.registry();
            r.snapshots.values().cloned().collect()
        };
        for snap in snaps {
            let name = snap.name();
            if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') {
                return Err(ExplorerError::BadQuery(format!(
                    "graph name {name:?} is not filesystem-safe"
                )));
            }
            cx_graph::io::save_snapshot_file(&snap.graph, dir.join(format!("{name}.graph.bin")))?;
            snap.tree.save_snapshot_file(dir.join(format!("{name}.index.bin")))?;
        }
        Ok(())
    }

    /// Loads every `<name>.graph.bin` (+ matching index snapshot, if
    /// present and valid — otherwise the index is rebuilt) from `dir`
    /// into a fresh engine with the built-in algorithms.
    pub fn load_dir(dir: &Path) -> Result<Engine, ExplorerError> {
        let engine = Engine::new();
        let mut names: Vec<String> = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(cx_graph::GraphError::from)? {
            let entry = entry.map_err(cx_graph::GraphError::from)?;
            let fname = entry.file_name().to_string_lossy().into_owned();
            if let Some(name) = fname.strip_suffix(".graph.bin") {
                names.push(name.to_owned());
            }
        }
        names.sort();
        for name in names {
            let graph = cx_graph::io::load_snapshot_file(dir.join(format!("{name}.graph.bin")))?;
            let index_path = dir.join(format!("{name}.index.bin"));
            let tree = match std::fs::File::open(&index_path) {
                Ok(mut f) => ClTree::read_snapshot(&graph, &mut f)
                    .unwrap_or_else(|_| ClTree::build(&graph)),
                Err(_) => ClTree::build(&graph),
            };
            let generation = engine.reserve_generation(&name);
            engine.publish(GraphSnapshot::new(
                name,
                Arc::new(graph),
                Arc::new(tree),
                Arc::new(ProfileStore::default()),
                None,
                generation,
            ));
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::query::QuerySpec;
    use cx_datagen::{figure5_graph, small_collab_graph};

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("cx_engine_persist_test");
        let _ = std::fs::remove_dir_all(&dir);
        let e = Engine::with_graph("fig5", figure5_graph());
        e.add_graph("collab", small_collab_graph());
        e.save_dir(&dir).unwrap();

        let restored = Engine::load_dir(&dir).unwrap();
        assert_eq!(restored.graph_names(), vec!["collab", "fig5"]);
        // Queries answer identically after the round trip.
        let spec = QuerySpec::by_label("A").k(2);
        let before = e.search_on(Some("fig5"), "acq", &spec).unwrap();
        let after = restored.search_on(Some("fig5"), "acq", &spec).unwrap();
        assert_eq!(before, after);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsafe_names_are_rejected() {
        let dir = std::env::temp_dir().join("cx_engine_persist_badname");
        let e = Engine::new();
        e.add_graph("../evil", figure5_graph());
        assert!(matches!(e.save_dir(&dir), Err(ExplorerError::BadQuery(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_index_falls_back_to_rebuild() {
        let dir = std::env::temp_dir().join("cx_engine_persist_corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let e = Engine::with_graph("fig5", figure5_graph());
        e.save_dir(&dir).unwrap();
        std::fs::write(dir.join("fig5.index.bin"), b"garbage").unwrap();
        let restored = Engine::load_dir(&dir).unwrap();
        // Index was rebuilt; queries still answer.
        let out = restored.search("acq", &QuerySpec::by_label("A").k(2)).unwrap();
        assert_eq!(out.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_errors() {
        assert!(Engine::load_dir(std::path::Path::new("/definitely/not/here")).is_err());
    }
}
