//! Result reports — what the engine hands the browser for one community
//! or one analysis request.

use cx_graph::{AttributedGraph, Community, VertexId};

/// One community, dressed for display: labels, theme, statistics.
#[derive(Debug, Clone)]
pub struct CommunityReport {
    /// The underlying community.
    pub community: Community,
    /// Member display labels, in member order.
    pub labels: Vec<String>,
    /// Theme keywords (shared by every member).
    pub theme: Vec<String>,
    /// Member count.
    pub vertices: usize,
    /// Internal edge count.
    pub edges: usize,
    /// Average internal degree.
    pub avg_degree: f64,
    /// Minimum internal degree.
    pub min_degree: usize,
    /// Edge density `2m / (n(n-1))` (1.0 for a clique; 0 for < 2 members).
    pub density: f64,
    /// Hop diameter of the induced subgraph (`None` if disconnected —
    /// cannot happen for communities produced by the built-in algorithms).
    pub diameter: Option<usize>,
    /// Conductance (fraction of incident edges leaving the community;
    /// lower = better separated from the rest of the graph).
    pub conductance: f64,
}

impl CommunityReport {
    /// Builds the report for one community of `g`.
    pub fn new(g: &AttributedGraph, community: Community) -> Self {
        let labels = community.labels(g).into_iter().map(str::to_owned).collect();
        let theme = community.theme(g);
        let vertices = community.len();
        let edges = community.internal_edge_count(g);
        let avg_degree = community.average_internal_degree(g);
        let min_degree = community.min_internal_degree(g);
        let density = if vertices < 2 {
            0.0
        } else {
            2.0 * edges as f64 / (vertices * (vertices - 1)) as f64
        };
        let diameter = cx_graph::traversal::induced_diameter(g, community.vertices());
        let conductance = cx_metrics::conductance(g, &community);
        Self {
            community,
            labels,
            theme,
            vertices,
            edges,
            avg_degree,
            min_degree,
            density,
            diameter,
            conductance,
        }
    }
}

/// Quality analysis of one result set (the `analyze` API): CPJ, CMF and
/// the per-community reports.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Community pairwise Jaccard (keyword similarity), averaged.
    pub cpj: f64,
    /// Community member frequency w.r.t. the query vertex.
    pub cmf: f64,
    /// Per-community breakdowns.
    pub reports: Vec<CommunityReport>,
}

impl AnalysisReport {
    /// Analyses a result set for query vertex `q`.
    pub fn new(g: &AttributedGraph, communities: &[Community], q: VertexId) -> Self {
        Self {
            cpj: cx_metrics::cpj(g, communities),
            cmf: cx_metrics::cmf(g, communities, q),
            reports: communities.iter().cloned().map(|c| CommunityReport::new(g, c)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;

    #[test]
    fn report_fields_match_community() {
        let g = figure5_graph();
        let members: Vec<VertexId> =
            ["A", "C", "D"].iter().map(|l| g.vertex_by_label(l).unwrap()).collect();
        let x = g.interner().get("x").unwrap();
        let y = g.interner().get("y").unwrap();
        let c = Community::new(members, vec![x, y]);
        let r = CommunityReport::new(&g, c);
        assert_eq!(r.vertices, 3);
        assert_eq!(r.edges, 3); // triangle A-C, A-D, C-D
        assert_eq!(r.min_degree, 2);
        assert!((r.avg_degree - 2.0).abs() < 1e-12);
        assert_eq!(r.labels, vec!["A", "C", "D"]);
        assert!((r.density - 1.0).abs() < 1e-12, "triangle is a clique");
        assert_eq!(r.diameter, Some(1));
        assert!(r.conductance > 0.0, "triangle touches the rest of Figure 5");
        let mut theme = r.theme.clone();
        theme.sort();
        assert_eq!(theme, vec!["x", "y"]);
    }

    #[test]
    fn analysis_report_bundles_metrics() {
        let g = figure5_graph();
        let a = g.vertex_by_label("A").unwrap();
        let c = Community::structural(vec![
            a,
            g.vertex_by_label("C").unwrap(),
            g.vertex_by_label("D").unwrap(),
        ]);
        let r = AnalysisReport::new(&g, &[c], a);
        assert!(r.cpj > 0.0);
        assert!(r.cmf > 0.0);
        assert_eq!(r.reports.len(), 1);
    }

    #[test]
    fn empty_analysis() {
        let g = figure5_graph();
        let a = g.vertex_by_label("A").unwrap();
        let r = AnalysisReport::new(&g, &[], a);
        assert_eq!(r.cpj, 0.0);
        assert_eq!(r.cmf, 0.0);
        assert!(r.reports.is_empty());
    }
}
