//! Engine error type.

use std::fmt;

/// Errors surfaced by the [`crate::Engine`] API.
#[derive(Debug)]
pub enum ExplorerError {
    /// No graph has been uploaded yet.
    NoGraph,
    /// The named graph does not exist in the engine.
    UnknownGraph(String),
    /// The named algorithm is not registered (or is of the wrong kind —
    /// e.g. asking `search` for a detection algorithm).
    UnknownAlgorithm(String),
    /// The query vertex could not be resolved.
    UnknownVertex(String),
    /// An underlying graph error (I/O, parse, bounds).
    Graph(cx_graph::GraphError),
    /// The query was structurally invalid (e.g. empty multi-vertex set).
    BadQuery(String),
    /// The durable store failed (WAL append, recovery, compaction). Only
    /// possible on engines opened with [`crate::Engine::open_durable`].
    Store(cx_store::StoreError),
    /// The request's deadline (`timeout_ms`) expired, or the client went
    /// away, before the algorithm finished; any partial result was
    /// discarded. Only possible through the `*_cancellable` entry points.
    DeadlineExceeded,
}

impl fmt::Display for ExplorerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplorerError::NoGraph => write!(f, "no graph uploaded"),
            ExplorerError::UnknownGraph(g) => write!(f, "unknown graph {g:?}"),
            ExplorerError::UnknownAlgorithm(a) => write!(f, "unknown algorithm {a:?}"),
            ExplorerError::UnknownVertex(v) => write!(f, "unknown vertex {v:?}"),
            ExplorerError::Graph(e) => write!(f, "graph error: {e}"),
            ExplorerError::BadQuery(m) => write!(f, "bad query: {m}"),
            ExplorerError::Store(e) => write!(f, "store error: {e}"),
            ExplorerError::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for ExplorerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExplorerError::Graph(e) => Some(e),
            ExplorerError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cx_graph::GraphError> for ExplorerError {
    fn from(e: cx_graph::GraphError) -> Self {
        ExplorerError::Graph(e)
    }
}

impl From<cx_store::StoreError> for ExplorerError {
    fn from(e: cx_store::StoreError) -> Self {
        ExplorerError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(ExplorerError::UnknownAlgorithm("foo".into()).to_string().contains("foo"));
        assert!(ExplorerError::UnknownVertex("jim".into()).to_string().contains("jim"));
        assert!(ExplorerError::UnknownGraph("dblp".into()).to_string().contains("dblp"));
    }

    #[test]
    fn graph_errors_chain() {
        use std::error::Error;
        let e: ExplorerError = cx_graph::GraphError::UnknownLabel("x".into()).into();
        assert!(e.source().is_some());
    }
}
