//! The plug-in algorithm traits — the Rust rendering of the paper's Java
//! `CSAlgorithm` / `CDAlgorithm` interfaces.

use cx_cltree::ClTree;
use cx_graph::{AttributedGraph, Community, VertexId};

use crate::query::QuerySpec;

/// Everything an algorithm may consult about the target graph: the graph
/// itself and the engine's CL-tree index over it (built at upload time by
/// the Indexing module; algorithms that don't need it just ignore it).
pub struct GraphContext<'a> {
    /// The attributed graph.
    pub graph: &'a AttributedGraph,
    /// The CL-tree index over `graph`.
    pub tree: &'a ClTree,
    /// Vertex coordinates, when installed via
    /// [`crate::Engine::set_coordinates`] (consumed by spatial-aware
    /// algorithms such as `sac`; `None` for purely topological graphs).
    pub coords: Option<&'a [(f64, f64)]>,
}

/// A community-*search* algorithm: query-based, online.
///
/// Implement this and register with [`crate::Engine::register_cs`] to make
/// a new CS method available to `search` and comparison analysis.
pub trait CsAlgorithm: Send + Sync {
    /// Registry name (lower-case, stable; used in queries and reports).
    fn name(&self) -> &str;

    /// Retrieves the communities of the (already resolved) query vertices.
    /// Single-vertex algorithms may ignore everything past `qs[0]`.
    fn search(&self, ctx: &GraphContext<'_>, qs: &[VertexId], spec: &QuerySpec) -> Vec<Community>;
}

/// A community-*detection* algorithm: clusters the whole graph.
pub trait CdAlgorithm: Send + Sync {
    /// Registry name.
    fn name(&self) -> &str;

    /// Detects all communities of the graph.
    fn detect(&self, ctx: &GraphContext<'_>) -> Vec<Community>;

    /// The community of one vertex — default: detect and select. CD
    /// algorithms are exposed through the CS-style UI this way (the paper
    /// compares CODICIL alongside the CS methods in Figure 6(a)).
    fn community_of(&self, ctx: &GraphContext<'_>, q: VertexId) -> Option<Community> {
        self.detect(ctx).into_iter().find(|c| c.contains(q))
    }
}

// ---- Built-in algorithm adapters -------------------------------------

/// ACQ behind the [`CsAlgorithm`] trait, parameterised by strategy.
pub struct AcqAlgorithm {
    strategy: cx_acq::AcqStrategy,
    name: &'static str,
}

impl AcqAlgorithm {
    /// The engine default (`Dec`), named plain `acq`.
    pub fn dec() -> Self {
        Self { strategy: cx_acq::AcqStrategy::Dec, name: "acq" }
    }

    /// A specific strategy, named `acq-<strategy>`.
    pub fn with_strategy(strategy: cx_acq::AcqStrategy) -> Self {
        let name = match strategy {
            cx_acq::AcqStrategy::Basic => "acq-basic",
            cx_acq::AcqStrategy::IncS => "acq-inc-s",
            cx_acq::AcqStrategy::IncT => "acq-inc-t",
            cx_acq::AcqStrategy::Dec => "acq",
        };
        Self { strategy, name }
    }
}

impl CsAlgorithm for AcqAlgorithm {
    fn name(&self) -> &str {
        self.name
    }

    fn search(&self, ctx: &GraphContext<'_>, qs: &[VertexId], spec: &QuerySpec) -> Vec<Community> {
        let keywords = spec.resolve_keywords(ctx.graph);
        let opts = cx_acq::AcqOptions::with_k(spec.k).keywords(keywords);
        if qs.len() > 1 {
            return cx_acq::multi::acq_multi(ctx.graph, ctx.tree, qs, &opts).communities;
        }
        let Some(&q) = qs.first() else { return Vec::new() };
        cx_acq::acq(ctx.graph, ctx.tree, q, &opts, self.strategy).communities
    }
}

/// Global (fixed-k connected k-core) behind the trait.
pub struct GlobalAlgorithm;

impl CsAlgorithm for GlobalAlgorithm {
    fn name(&self) -> &str {
        "global"
    }

    fn search(&self, ctx: &GraphContext<'_>, qs: &[VertexId], spec: &QuerySpec) -> Vec<Community> {
        let Some(&q) = qs.first() else { return Vec::new() };
        cx_algos::Global.fixed_k(ctx.graph, q, spec.k).into_iter().collect()
    }
}

/// Global in its original maximise-min-degree form.
pub struct GlobalMaxMinAlgorithm;

impl CsAlgorithm for GlobalMaxMinAlgorithm {
    fn name(&self) -> &str {
        "global-maxmin"
    }

    fn search(&self, ctx: &GraphContext<'_>, qs: &[VertexId], _spec: &QuerySpec) -> Vec<Community> {
        let Some(&q) = qs.first() else { return Vec::new() };
        cx_algos::Global.max_min_degree(ctx.graph, q).map(|(c, _)| c).into_iter().collect()
    }
}

/// Local expansion behind the trait.
pub struct LocalAlgorithm;

impl CsAlgorithm for LocalAlgorithm {
    fn name(&self) -> &str {
        "local"
    }

    fn search(&self, ctx: &GraphContext<'_>, qs: &[VertexId], spec: &QuerySpec) -> Vec<Community> {
        let Some(&q) = qs.first() else { return Vec::new() };
        cx_algos::Local::new().fixed_k(ctx.graph, q, spec.k).into_iter().collect()
    }
}

/// k-truss community search behind the trait (`k` is the truss parameter).
pub struct KTrussAlgorithm;

impl CsAlgorithm for KTrussAlgorithm {
    fn name(&self) -> &str {
        "ktruss"
    }

    fn search(&self, ctx: &GraphContext<'_>, qs: &[VertexId], spec: &QuerySpec) -> Vec<Community> {
        let Some(&q) = qs.first() else { return Vec::new() };
        cx_algos::KTruss::new().search(ctx.graph, q, spec.k.max(2))
    }
}

/// Spatial-aware community search behind the trait: the smallest
/// query-centred disk containing a connected k-core (AppInc). Returns
/// nothing when the graph has no installed coordinates.
pub struct SacAlgorithm;

impl CsAlgorithm for SacAlgorithm {
    fn name(&self) -> &str {
        "sac"
    }

    fn search(&self, ctx: &GraphContext<'_>, qs: &[VertexId], spec: &QuerySpec) -> Vec<Community> {
        let (Some(&q), Some(coords)) = (qs.first(), ctx.coords) else {
            return Vec::new();
        };
        cx_algos::spatial::sac_appinc(ctx.graph, coords, q, spec.k)
            .map(|s| s.community)
            .into_iter()
            .collect()
    }
}

/// k-edge-connected community search behind the trait.
pub struct KEccAlgorithm;

impl CsAlgorithm for KEccAlgorithm {
    fn name(&self) -> &str {
        "kecc"
    }

    fn search(&self, ctx: &GraphContext<'_>, qs: &[VertexId], spec: &QuerySpec) -> Vec<Community> {
        let Some(&q) = qs.first() else { return Vec::new() };
        cx_algos::kecc_community(ctx.graph, q, spec.k).into_iter().collect()
    }
}

/// CODICIL behind the [`CdAlgorithm`] trait.
#[derive(Default)]
pub struct CodicilAlgorithm {
    /// Pipeline parameters.
    pub params: cx_algos::CodicilParams,
}

impl CdAlgorithm for CodicilAlgorithm {
    fn name(&self) -> &str {
        "codicil"
    }

    fn detect(&self, ctx: &GraphContext<'_>) -> Vec<Community> {
        cx_algos::Codicil::new(self.params.clone()).detect(ctx.graph).communities
    }
}

/// Girvan–Newman divisive detection behind the [`CdAlgorithm`] trait.
#[derive(Default)]
pub struct GirvanNewmanAlgorithm {
    /// Tuning parameters.
    pub params: cx_algos::GirvanNewmanParams,
}

impl CdAlgorithm for GirvanNewmanAlgorithm {
    fn name(&self) -> &str {
        "girvan-newman"
    }

    fn detect(&self, ctx: &GraphContext<'_>) -> Vec<Community> {
        cx_algos::GirvanNewman::new(self.params.clone()).detect(ctx.graph).communities
    }
}

/// Louvain modularity detection behind the [`CdAlgorithm`] trait.
#[derive(Default)]
pub struct LouvainAlgorithm {
    /// Tuning parameters.
    pub params: cx_algos::LouvainParams,
}

impl CdAlgorithm for LouvainAlgorithm {
    fn name(&self) -> &str {
        "louvain"
    }

    fn detect(&self, ctx: &GraphContext<'_>) -> Vec<Community> {
        cx_algos::Louvain::new(self.params.clone()).detect(ctx.graph).communities
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;

    #[test]
    fn acq_adapter_runs_paper_example() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let ctx = GraphContext { graph: &g, tree: &tree, coords: None };
        let q = g.vertex_by_label("A").unwrap();
        let spec = QuerySpec::by_label("A").k(2);
        let out = AcqAlgorithm::dec().search(&ctx, &[q], &spec);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn adapter_names_are_stable() {
        assert_eq!(AcqAlgorithm::dec().name(), "acq");
        assert_eq!(AcqAlgorithm::with_strategy(cx_acq::AcqStrategy::IncS).name(), "acq-inc-s");
        assert_eq!(GlobalAlgorithm.name(), "global");
        assert_eq!(LocalAlgorithm.name(), "local");
        assert_eq!(KTrussAlgorithm.name(), "ktruss");
        assert_eq!(CodicilAlgorithm::default().name(), "codicil");
    }

    #[test]
    fn cd_default_community_of_selects_query_cluster() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let ctx = GraphContext { graph: &g, tree: &tree, coords: None };
        let a = g.vertex_by_label("A").unwrap();
        let c = CodicilAlgorithm::default().community_of(&ctx, a).unwrap();
        assert!(c.contains(a));
    }

    #[test]
    fn empty_query_vector_is_harmless() {
        let g = figure5_graph();
        let tree = ClTree::build(&g);
        let ctx = GraphContext { graph: &g, tree: &tree, coords: None };
        let spec = QuerySpec::by_label("A");
        assert!(AcqAlgorithm::dec().search(&ctx, &[], &spec).is_empty());
        assert!(GlobalAlgorithm.search(&ctx, &[], &spec).is_empty());
        assert!(LocalAlgorithm.search(&ctx, &[], &spec).is_empty());
        assert!(KTrussAlgorithm.search(&ctx, &[], &spec).is_empty());
    }
}
