//! Query specifications — what the browser's left panel sends.

use cx_graph::{AttributedGraph, VertexId};

use crate::error::ExplorerError;

/// How the query vertex (or vertices) is referenced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VertexRef {
    /// A single vertex by exact display label (case-insensitive fallback
    /// to the best `search_label` hit, as the UI's name box behaves).
    Label(String),
    /// A single vertex by id.
    Id(VertexId),
    /// Multiple query vertices by label (the "+" button in the UI —
    /// the multi-vertex ACQ variant).
    Labels(Vec<String>),
    /// Multiple query vertices by id.
    Ids(Vec<VertexId>),
}

/// A community-search query: vertex reference, minimum degree, and an
/// optional keyword selection (strings, resolved against the target
/// graph's vocabulary; unknown keywords are ignored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// The query vertex (or vertices).
    pub vertex: VertexRef,
    /// Minimum internal degree k.
    pub k: u32,
    /// Selected keywords (empty = the algorithm's default, which for ACQ
    /// is all of `W(q)`).
    pub keywords: Vec<String>,
}

impl QuerySpec {
    /// Query by display label with `k = 1` and default keywords.
    pub fn by_label(label: impl Into<String>) -> Self {
        Self { vertex: VertexRef::Label(label.into()), k: 1, keywords: Vec::new() }
    }

    /// Query by vertex id with `k = 1` and default keywords.
    pub fn by_id(v: VertexId) -> Self {
        Self { vertex: VertexRef::Id(v), k: 1, keywords: Vec::new() }
    }

    /// Multi-vertex query by labels.
    pub fn by_labels<I: IntoIterator<Item = S>, S: Into<String>>(labels: I) -> Self {
        Self {
            vertex: VertexRef::Labels(labels.into_iter().map(Into::into).collect()),
            k: 1,
            keywords: Vec::new(),
        }
    }

    /// Sets the minimum degree (builder style).
    pub fn k(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Sets the keyword selection (builder style).
    pub fn with_keywords<I: IntoIterator<Item = S>, S: Into<String>>(mut self, kws: I) -> Self {
        self.keywords = kws.into_iter().map(Into::into).collect();
        self
    }

    /// Resolves the query vertices against a graph. Single-vertex refs
    /// yield one element. Labels resolve exactly first, then through
    /// case-insensitive search (best hit).
    pub fn resolve(&self, g: &AttributedGraph) -> Result<Vec<VertexId>, ExplorerError> {
        let resolve_label = |label: &str| -> Result<VertexId, ExplorerError> {
            if let Some(v) = g.vertex_by_label(label) {
                return Ok(v);
            }
            g.search_label(label)
                .first()
                .copied()
                .ok_or_else(|| ExplorerError::UnknownVertex(label.to_owned()))
        };
        let out = match &self.vertex {
            VertexRef::Label(l) => vec![resolve_label(l)?],
            VertexRef::Id(v) => {
                g.check_vertex(*v)?;
                vec![*v]
            }
            VertexRef::Labels(ls) => {
                if ls.is_empty() {
                    return Err(ExplorerError::BadQuery("empty label list".into()));
                }
                ls.iter().map(|l| resolve_label(l)).collect::<Result<_, _>>()?
            }
            VertexRef::Ids(vs) => {
                if vs.is_empty() {
                    return Err(ExplorerError::BadQuery("empty vertex list".into()));
                }
                for &v in vs {
                    g.check_vertex(v)?;
                }
                vs.clone()
            }
        };
        Ok(out)
    }

    /// Resolves keyword strings to ids in `g`'s vocabulary, dropping
    /// unknown ones.
    pub fn resolve_keywords(&self, g: &AttributedGraph) -> Vec<cx_graph::KeywordId> {
        self.keywords.iter().filter_map(|k| g.interner().get(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;

    #[test]
    fn builders_compose() {
        let q = QuerySpec::by_label("jim gray").k(4).with_keywords(["data", "system"]);
        assert_eq!(q.k, 4);
        assert_eq!(q.keywords.len(), 2);
        assert!(matches!(q.vertex, VertexRef::Label(_)));
    }

    #[test]
    fn resolve_exact_and_fuzzy() {
        let g = figure5_graph();
        let exact = QuerySpec::by_label("A").resolve(&g).unwrap();
        assert_eq!(exact.len(), 1);
        assert_eq!(g.label(exact[0]), "A");
        // Case-insensitive fallback.
        let fuzzy = QuerySpec::by_label("a").resolve(&g).unwrap();
        assert_eq!(fuzzy, exact);
        assert!(QuerySpec::by_label("zzz").resolve(&g).is_err());
    }

    #[test]
    fn resolve_ids_validates_bounds() {
        let g = figure5_graph();
        assert!(QuerySpec::by_id(VertexId(0)).resolve(&g).is_ok());
        assert!(QuerySpec::by_id(VertexId(99)).resolve(&g).is_err());
    }

    #[test]
    fn multi_refs() {
        let g = figure5_graph();
        let q = QuerySpec::by_labels(["A", "D"]);
        assert_eq!(q.resolve(&g).unwrap().len(), 2);
        let empty = QuerySpec { vertex: VertexRef::Labels(vec![]), k: 1, keywords: vec![] };
        assert!(matches!(empty.resolve(&g), Err(ExplorerError::BadQuery(_))));
        let ids = QuerySpec { vertex: VertexRef::Ids(vec![]), k: 1, keywords: vec![] };
        assert!(ids.resolve(&g).is_err());
    }

    #[test]
    fn keyword_resolution_drops_unknown() {
        let g = figure5_graph();
        let q = QuerySpec::by_label("A").with_keywords(["x", "nope", "y"]);
        assert_eq!(q.resolve_keywords(&g).len(), 2);
    }
}
