//! Cache-transparency differential (cx-check oracle): a cache hit must be
//! byte-identical to the cold computation, including after interleaved
//! graph edits — the cache must never serve results for a stale graph.

use cx_check::{cached_vs_uncached, fingerprint};
use cx_datagen::{dblp_like, figure5_graph};
use cx_explorer::{Engine, QuerySpec};
use cx_graph::VertexId;

#[test]
fn cache_oracle_clean_across_algorithms() {
    let (g, _) = dblp_like(&cx_check::workload::check_params(120, 3));
    let hub = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
    for algo in ["acq", "acq-inc-s", "acq-inc-t", "global", "local", "ktruss"] {
        for k in [1, 2, 3] {
            let mismatches =
                cached_vs_uncached(&g, algo, &QuerySpec::by_id(hub).k(k));
            assert!(mismatches.is_empty(), "{algo} k={k}: {mismatches:?}");
        }
    }
}

/// The satellite scenario: query → edit → query → edit → query, asserting
/// after every step that (a) a repeated query is served by the cache and
/// byte-identical to its cold run, and (b) the post-edit answer matches a
/// fresh engine built directly on the edited graph (no stale cache hits).
#[test]
fn cache_hits_stay_identical_through_interleaved_edits() {
    let engine = Engine::with_graph("fig5", figure5_graph());
    let spec = QuerySpec::by_label("A").k(2);

    // Edits: remove an edge of the K4, then add it back, then remove a
    // different one — each bumps the generation and invalidates the cache.
    let edit_script: &[(&[(VertexId, VertexId)], &[(VertexId, VertexId)])] = &[
        (&[], &[(VertexId(0), VertexId(1))]),
        (&[(VertexId(0), VertexId(1))], &[]),
        (&[], &[(VertexId(2), VertexId(3))]),
    ];

    for (step, (add, remove)) in edit_script.iter().enumerate() {
        let cold = engine.search_on(None, "acq", &spec).unwrap();
        let hits_before = engine.cache_stats().hits;
        let warm = engine.search_on(None, "acq", &spec).unwrap();
        assert_eq!(
            engine.cache_stats().hits,
            hits_before + 1,
            "step {step}: repeat query must hit the cache"
        );
        assert_eq!(
            fingerprint(&cold),
            fingerprint(&warm),
            "step {step}: cache hit differs from cold computation"
        );

        engine.apply_edits(None, add, remove).unwrap();

        // A brand-new engine on an identically-edited graph is the oracle
        // for "the cache did not leak a stale answer".
        let post = engine.search_on(None, "acq", &spec).unwrap();
        let reference_engine = {
            let e = Engine::with_graph("fig5", figure5_graph());
            // Replay the whole edit history from scratch.
            for (a, r) in edit_script.iter().take(step + 1) {
                e.apply_edits(None, a, r).unwrap();
            }
            e
        };
        let expected = reference_engine.search_on(None, "acq", &spec).unwrap();
        assert_eq!(
            fingerprint(&post),
            fingerprint(&expected),
            "step {step}: post-edit answer does not match a fresh engine"
        );
    }
}

/// Disabling the cache must not change any answer (capacity 0 vs default).
#[test]
fn capacity_zero_engine_agrees_with_cached_engine() {
    let (g, _) = dblp_like(&cx_check::workload::check_params(80, 11));
    let cached = Engine::with_graph("g", g.clone());
    let uncached = Engine::with_graph("g", g.clone());
    uncached.set_cache_capacity(0);
    for v in [0u32, 7, 23, 41] {
        let spec = QuerySpec::by_id(VertexId(v)).k(2);
        let a = cached.search_on(None, "acq", &spec).unwrap();
        let b = uncached.search_on(None, "acq", &spec).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b), "v={v}");
    }
    // The cached engine must actually be caching (repeat queries hit).
    let before = cached.cache_stats().hits;
    cached.search_on(None, "acq", &QuerySpec::by_id(VertexId(0)).k(2)).unwrap();
    assert_eq!(cached.cache_stats().hits, before + 1);
    assert_eq!(uncached.cache_stats().hits, 0);
}
