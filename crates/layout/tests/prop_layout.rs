//! Property tests for the layout engine: every algorithm must place every
//! member finitely and inside the viewport after fitting, for arbitrary
//! community shapes.
//!
//! Gated behind the non-default `proptest` feature: the build environment
//! is offline, so the `proptest` dev-dependency is not in the manifest.
//! Restore it (and `rand`) before enabling the feature in a networked
//! environment — see DESIGN.md "Offline build policy".
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use cx_graph::{AttributedGraph, Community, GraphBuilder, VertexId};
use cx_layout::{layout_community, LayoutAlgorithm};

fn arb_graph_and_members() -> impl Strategy<Value = (AttributedGraph, Vec<VertexId>)> {
    (2usize..25).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..(3 * n));
        let member_mask = proptest::collection::vec(any::<bool>(), n);
        (Just(n), edges, member_mask).prop_map(|(n, edges, mask)| {
            let mut b = GraphBuilder::new();
            for i in 0..n {
                b.add_vertex(&format!("v{i}"), &[]);
            }
            for (u, v) in edges {
                b.add_edge(VertexId(u), VertexId(v));
            }
            let mut members: Vec<VertexId> = mask
                .iter()
                .enumerate()
                .filter(|(_, &m)| m)
                .map(|(i, _)| VertexId(i as u32))
                .collect();
            if members.is_empty() {
                members.push(VertexId(0));
            }
            (b.build(), members)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_algorithms_fit_the_viewport(
        (g, members) in arb_graph_and_members(),
        seed in 0u64..50,
    ) {
        let c = Community::structural(members.clone());
        for algo in [
            LayoutAlgorithm::default_force(),
            LayoutAlgorithm::KamadaKawai { iterations: 20 },
            LayoutAlgorithm::Circular,
            LayoutAlgorithm::Shell,
        ] {
            let scene = layout_community(&g, &c, algo, members.first().copied(), 640.0, 480.0, seed);
            prop_assert_eq!(scene.vertex_count(), c.len());
            prop_assert!(scene.in_bounds(), "{:?} out of bounds", algo);
            for &(_, p) in &scene.vertices {
                prop_assert!(p.x.is_finite() && p.y.is_finite(), "{:?} produced NaN", algo);
            }
            // Edge indices are valid and reference actual graph edges.
            for &(i, j) in &scene.edges {
                prop_assert!(i < scene.vertex_count() && j < scene.vertex_count());
                let (u, v) = (scene.vertices[i].0, scene.vertices[j].0);
                prop_assert!(g.has_edge(u, v));
            }
            // Renderers never panic and stay structurally sane.
            let svg = scene.to_svg();
            prop_assert!(svg.starts_with("<svg"));
            let json = scene.to_json();
            let json_ok = json.starts_with('{') && json.ends_with('}');
            prop_assert!(json_ok, "malformed scene JSON");
        }
    }

    #[test]
    fn layouts_are_deterministic(
        (g, members) in arb_graph_and_members(),
        seed in 0u64..20,
    ) {
        let c = Community::structural(members);
        for algo in [
            LayoutAlgorithm::default_force(),
            LayoutAlgorithm::KamadaKawai { iterations: 15 },
        ] {
            let a = layout_community(&g, &c, algo, None, 100.0, 100.0, seed);
            let b = layout_community(&g, &c, algo, None, 100.0, 100.0, seed);
            for (pa, pb) in a.vertices.iter().zip(&b.vertices) {
                prop_assert_eq!(pa.0, pb.0);
                prop_assert!((pa.1.x - pb.1.x).abs() < 1e-12);
                prop_assert!((pa.1.y - pb.1.y).abs() < 1e-12);
            }
        }
    }
}
