//! Layout algorithms over an induced subgraph.

use cx_par::rng::Rng64;

use cx_graph::Subgraph;

/// Which placement algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutAlgorithm {
    /// Classic Fruchterman–Reingold force simulation with cooling.
    FruchtermanReingold {
        /// Simulation steps (50 is plenty for community-sized graphs).
        iterations: usize,
    },
    /// Kamada–Kawai-style stress minimisation over BFS hop distances,
    /// optimised by gradient steps.
    KamadaKawai {
        /// Optimisation sweeps.
        iterations: usize,
    },
    /// Members evenly spaced on a circle, in id order.
    Circular,
    /// Concentric rings by BFS hop distance from the first member
    /// (the query vertex when laid out through the engine).
    Shell,
}

impl LayoutAlgorithm {
    /// A sensible default: FR with 60 iterations.
    pub fn default_force() -> Self {
        LayoutAlgorithm::FruchtermanReingold { iterations: 60 }
    }

    /// Computes raw (unfitted) unit-space positions for `sub`.
    /// Deterministic for a given `seed`.
    pub fn run(&self, sub: &Subgraph, seed: u64) -> Vec<(f64, f64)> {
        let n = sub.vertex_count();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![(0.5, 0.5)];
        }
        match *self {
            LayoutAlgorithm::FruchtermanReingold { iterations } => fr(sub, iterations, seed),
            LayoutAlgorithm::KamadaKawai { iterations } => kk(sub, iterations, seed),
            LayoutAlgorithm::Circular => circular(n),
            LayoutAlgorithm::Shell => shell(sub),
        }
    }
}

fn initial_positions(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect()
}

/// Fruchterman–Reingold in the unit square.
fn fr(sub: &Subgraph, iterations: usize, seed: u64) -> Vec<(f64, f64)> {
    let n = sub.vertex_count();
    let mut pos = initial_positions(n, seed);
    let area = 1.0;
    let k = (area / n as f64).sqrt();
    let mut temp = 0.25f64;
    let cool = 0.95f64;

    for _ in 0..iterations.max(1) {
        let mut disp = vec![(0.0f64, 0.0f64); n];
        // Repulsion between all pairs.
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = pos[i].0 - pos[j].0;
                let dy = pos[i].1 - pos[j].1;
                let d2 = (dx * dx + dy * dy).max(1e-9);
                let d = d2.sqrt();
                let f = k * k / d;
                let (ux, uy) = (dx / d, dy / d);
                disp[i].0 += ux * f;
                disp[i].1 += uy * f;
                disp[j].0 -= ux * f;
                disp[j].1 -= uy * f;
            }
        }
        // Attraction along edges.
        for i in 0..n as u32 {
            for &j in sub.neighbors(i) {
                if j <= i {
                    continue;
                }
                let (i, j) = (i as usize, j as usize);
                let dx = pos[i].0 - pos[j].0;
                let dy = pos[i].1 - pos[j].1;
                let d = (dx * dx + dy * dy).sqrt().max(1e-9);
                let f = d * d / k;
                let (ux, uy) = (dx / d, dy / d);
                disp[i].0 -= ux * f;
                disp[i].1 -= uy * f;
                disp[j].0 += ux * f;
                disp[j].1 += uy * f;
            }
        }
        // Displace, capped by temperature.
        for i in 0..n {
            let (dx, dy) = disp[i];
            let d = (dx * dx + dy * dy).sqrt().max(1e-9);
            let step = d.min(temp);
            pos[i].0 += dx / d * step;
            pos[i].1 += dy / d * step;
        }
        temp *= cool;
    }
    pos
}

/// Kamada–Kawai-style: target distance = BFS hops scaled; gradient descent
/// on the stress function.
fn kk(sub: &Subgraph, iterations: usize, seed: u64) -> Vec<(f64, f64)> {
    let n = sub.vertex_count();
    // All-pairs BFS distances (community-sized inputs only).
    let mut dist = vec![vec![0usize; n]; n];
    for s in 0..n {
        let mut d = vec![usize::MAX; n];
        let mut q = std::collections::VecDeque::new();
        d[s] = 0;
        q.push_back(s as u32);
        while let Some(u) = q.pop_front() {
            for &v in sub.neighbors(u) {
                if d[v as usize] == usize::MAX {
                    d[v as usize] = d[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        let max_seen = d.iter().filter(|&&x| x != usize::MAX).max().copied().unwrap_or(1);
        for t in 0..n {
            dist[s][t] = if d[t] == usize::MAX { max_seen + 1 } else { d[t] };
        }
    }
    let dmax = dist.iter().flatten().copied().max().unwrap_or(1).max(1) as f64;
    let ideal = |i: usize, j: usize| dist[i][j] as f64 / dmax;

    let mut pos = initial_positions(n, seed);
    let lr = 0.05;
    for _ in 0..iterations.max(1) {
        for i in 0..n {
            let (mut gx, mut gy) = (0.0, 0.0);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let dx = pos[i].0 - pos[j].0;
                let dy = pos[i].1 - pos[j].1;
                let d = (dx * dx + dy * dy).sqrt().max(1e-9);
                let target = ideal(i, j).max(1e-3);
                // Gradient of (d - target)^2 / target^2 wrt pos[i].
                let coeff = 2.0 * (d - target) / (target * target * d);
                gx += coeff * dx;
                gy += coeff * dy;
            }
            pos[i].0 -= lr * gx;
            pos[i].1 -= lr * gy;
        }
    }
    pos
}

fn circular(n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            (0.5 + 0.45 * theta.cos(), 0.5 + 0.45 * theta.sin())
        })
        .collect()
}

/// Concentric rings by hop distance from local vertex 0.
fn shell(sub: &Subgraph) -> Vec<(f64, f64)> {
    let n = sub.vertex_count();
    let mut d = vec![usize::MAX; n];
    let mut q = std::collections::VecDeque::new();
    d[0] = 0;
    q.push_back(0u32);
    while let Some(u) = q.pop_front() {
        for &v in sub.neighbors(u) {
            if d[v as usize] == usize::MAX {
                d[v as usize] = d[u as usize] + 1;
                q.push_back(v);
            }
        }
    }
    let finite_max = d.iter().filter(|&&x| x != usize::MAX).max().copied().unwrap_or(0);
    for x in d.iter_mut() {
        if *x == usize::MAX {
            *x = finite_max + 1;
        }
    }
    let rings = d.iter().max().copied().unwrap_or(0).max(1);
    // Count members per ring to spread them evenly.
    let mut per_ring = vec![0usize; rings + 1];
    for &r in &d {
        per_ring[r] += 1;
    }
    let mut placed = vec![0usize; rings + 1];
    (0..n)
        .map(|i| {
            let r = d[i];
            if r == 0 {
                return (0.5, 0.5);
            }
            let radius = 0.45 * r as f64 / rings as f64;
            let slot = placed[r];
            placed[r] += 1;
            let theta = 2.0 * std::f64::consts::PI * slot as f64 / per_ring[r] as f64;
            (0.5 + radius * theta.cos(), 0.5 + radius * theta.sin())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_graph::{GraphBuilder, Subgraph, VertexId};

    fn path_subgraph(n: usize) -> Subgraph {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_vertex(&format!("v{i}"), &[]);
        }
        for i in 0..(n as u32 - 1) {
            b.add_edge(VertexId(i), VertexId(i + 1));
        }
        let g = b.build();
        let members: Vec<VertexId> = g.vertices().collect();
        Subgraph::induced(&g, &members)
    }

    #[test]
    fn all_algorithms_place_every_vertex_finitely() {
        let sub = path_subgraph(7);
        for algo in [
            LayoutAlgorithm::default_force(),
            LayoutAlgorithm::KamadaKawai { iterations: 30 },
            LayoutAlgorithm::Circular,
            LayoutAlgorithm::Shell,
        ] {
            let pos = algo.run(&sub, 1);
            assert_eq!(pos.len(), 7);
            for (x, y) in pos {
                assert!(x.is_finite() && y.is_finite(), "{algo:?} produced NaN");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let sub = path_subgraph(6);
        let algo = LayoutAlgorithm::default_force();
        assert_eq!(algo.run(&sub, 7), algo.run(&sub, 7));
        assert_ne!(algo.run(&sub, 7), algo.run(&sub, 8));
    }

    #[test]
    fn fr_separates_nonadjacent_vertices() {
        let sub = path_subgraph(5);
        let pos = LayoutAlgorithm::default_force().run(&sub, 3);
        // End vertices of the path should end up farther apart than
        // adjacent ones.
        let d = |a: (f64, f64), b: (f64, f64)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        assert!(d(pos[0], pos[4]) > d(pos[0], pos[1]));
    }

    #[test]
    fn circular_is_evenly_spaced() {
        let pos = LayoutAlgorithm::Circular.run(&path_subgraph(4), 0);
        let center = (0.5, 0.5);
        for (x, y) in &pos {
            let r = ((x - center.0).powi(2) + (y - center.1).powi(2)).sqrt();
            assert!((r - 0.45).abs() < 1e-9);
        }
    }

    #[test]
    fn shell_centers_first_vertex() {
        let pos = LayoutAlgorithm::Shell.run(&path_subgraph(5), 0);
        assert_eq!(pos[0], (0.5, 0.5));
        // Farther path vertices sit on larger rings.
        let r = |p: (f64, f64)| ((p.0 - 0.5f64).powi(2) + (p.1 - 0.5).powi(2)).sqrt();
        assert!(r(pos[4]) > r(pos[1]));
    }

    #[test]
    fn singleton_and_empty() {
        let mut b = GraphBuilder::new();
        b.add_vertex("only", &[]);
        let g = b.build();
        let sub = Subgraph::induced(&g, &[VertexId(0)]);
        assert_eq!(LayoutAlgorithm::default_force().run(&sub, 0), vec![(0.5, 0.5)]);
        let empty = Subgraph::induced(&g, &[]);
        assert!(LayoutAlgorithm::Circular.run(&empty, 0).is_empty());
    }
}
