//! Scenes: fitted positions plus edges and labels, ready to render.

use cx_graph::{AttributedGraph, Community, Subgraph, VertexId};

use crate::force::LayoutAlgorithm;

/// A 2-D position in viewport coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X in pixels.
    pub x: f64,
    /// Y in pixels.
    pub y: f64,
}

/// A laid-out community ready for the SVG or JSON renderer.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Viewport width in pixels.
    pub width: f64,
    /// Viewport height in pixels.
    pub height: f64,
    /// Member vertices with their positions, in member order.
    pub vertices: Vec<(VertexId, Point)>,
    /// Display label per vertex, parallel to `vertices`.
    pub labels: Vec<String>,
    /// Edges as indices into `vertices`.
    pub edges: Vec<(usize, usize)>,
    /// Index of the highlighted (query) vertex, if any.
    pub highlight: Option<usize>,
    /// Scene title (e.g. "Method: ACQ — Communities: 1").
    pub title: String,
    /// Theme keywords shown under the title.
    pub theme: Vec<String>,
    /// Per-vertex dot radius in pixels, parallel to `vertices`. Empty for
    /// classic community scenes (renderers fall back to a uniform dot);
    /// summary scenes size bubbles by supernode weight.
    pub radii: Vec<f64>,
    /// Per-edge weights parallel to `edges`; empty means unweighted.
    /// Summary scenes carry the number of underlying graph edges a link
    /// aggregates, and renderers thicken strokes accordingly.
    pub weights: Vec<f64>,
    /// Which vertices are supernodes (parallel to `vertices`); empty for
    /// classic scenes where everything is a plain vertex.
    pub supers: Vec<bool>,
}

/// Lays out the members of `community` within `g`.
///
/// `highlight` (typically the query vertex) is centred first in member
/// order so ring layouts put it in the middle; the scene marks it for the
/// renderers. Positions are fitted to `width`×`height` with a margin.
pub fn layout_community(
    g: &AttributedGraph,
    community: &Community,
    algo: LayoutAlgorithm,
    highlight: Option<VertexId>,
    width: f64,
    height: f64,
    seed: u64,
) -> Scene {
    // Put the highlighted vertex first so Shell centres it.
    let mut members: Vec<VertexId> = community.vertices().to_vec();
    if let Some(h) = highlight {
        if let Some(pos) = members.iter().position(|&v| v == h) {
            members.swap(0, pos);
        }
    }
    let sub = Subgraph::induced(g, &members);
    // Subgraph sorts members; map "first" through its local ids.
    let raw = run_with_centered_first(&sub, &members, algo, seed);

    // Fit to viewport with a 8% margin.
    let margin = 0.08;
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &raw {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let fit = |x: f64, y: f64| Point {
        x: width * (margin + (1.0 - 2.0 * margin) * (x - min_x) / span_x),
        y: height * (margin + (1.0 - 2.0 * margin) * (y - min_y) / span_y),
    };

    let vertices: Vec<(VertexId, Point)> = sub
        .members()
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, fit(raw[i].0, raw[i].1)))
        .collect();
    let labels: Vec<String> = sub.members().iter().map(|&v| g.label(v).to_owned()).collect();
    let mut edges = Vec::new();
    for i in 0..sub.vertex_count() as u32 {
        for &j in sub.neighbors(i) {
            if i < j {
                edges.push((i as usize, j as usize));
            }
        }
    }
    let highlight_idx = highlight.and_then(|h| sub.local(h).map(|l| l as usize));
    Scene {
        width,
        height,
        vertices,
        labels,
        edges,
        highlight: highlight_idx,
        title: String::new(),
        theme: community.theme(g),
        radii: Vec::new(),
        weights: Vec::new(),
        supers: Vec::new(),
    }
}

/// One item of a summary scene: a supernode bubble (standing for a whole
/// subtree of the hierarchy) or a plain resident vertex.
#[derive(Debug, Clone)]
pub struct SummaryItem {
    /// Opaque id carried into the scene: a supernode id for bubbles, a
    /// vertex id for residents — the endpoint that built the scene says
    /// which (via the `supers` column).
    pub id: u32,
    /// Display label.
    pub label: String,
    /// Visual weight, e.g. subtree vertex count; bubbles are scaled by
    /// `sqrt(size)` so area tracks population.
    pub size: f64,
    /// True for supernodes.
    pub is_super: bool,
}

/// Lays out summary items deterministically on a sunflower spiral —
/// size-descending with the largest bubble at the centre — and threads
/// the given weighted links between them. No force iterations, no seed:
/// the multi-resolution views at paper scale must render identically
/// across runs and thread counts, and spiral packing behaves well for
/// the "few hundred disjoint bubbles" shape a level view has.
pub fn layout_summary(
    items: &[SummaryItem],
    links: &[(usize, usize, f64)],
    width: f64,
    height: f64,
) -> Scene {
    let n = items.len();
    // Rank by size descending (stable by index) to place big bubbles first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        items[b].size.partial_cmp(&items[a].size).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut rank = vec![0usize; n];
    for (r, &i) in order.iter().enumerate() {
        rank[i] = r;
    }

    let margin = 0.08;
    let cx = width / 2.0;
    let cy = height / 2.0;
    let rmax = (width.min(height) / 2.0) * (1.0 - 2.0 * margin);
    const GOLDEN_ANGLE: f64 = 2.399_963_229_728_653;
    let pos = |r: usize| -> Point {
        if n == 1 {
            return Point { x: cx, y: cy };
        }
        let t = (r as f64 + 0.5) / n as f64;
        let radius = rmax * t.sqrt();
        let angle = r as f64 * GOLDEN_ANGLE;
        Point { x: cx + radius * angle.cos(), y: cy + radius * angle.sin() }
    };

    let max_size = items.iter().map(|i| i.size).fold(1.0_f64, f64::max);
    let radii: Vec<f64> = items
        .iter()
        .map(|i| {
            let scaled = (i.size.max(1.0) / max_size).sqrt();
            if i.is_super { 6.0 + 22.0 * scaled } else { 4.0 }
        })
        .collect();

    Scene {
        width,
        height,
        vertices: items
            .iter()
            .enumerate()
            .map(|(i, it)| (VertexId(it.id), pos(rank[i])))
            .collect(),
        labels: items.iter().map(|i| i.label.clone()).collect(),
        edges: links.iter().map(|&(a, b, _)| (a, b)).collect(),
        highlight: None,
        title: String::new(),
        theme: Vec::new(),
        radii,
        weights: links.iter().map(|&(_, _, w)| w).collect(),
        supers: items.iter().map(|i| i.is_super).collect(),
    }
}

/// Runs `algo` with the *requested* first member mapped to local slot 0 so
/// Shell centres the query vertex (Subgraph reorders members by id).
fn run_with_centered_first(
    sub: &Subgraph,
    requested: &[VertexId],
    algo: LayoutAlgorithm,
    seed: u64,
) -> Vec<(f64, f64)> {
    let raw = algo.run(sub, seed);
    if let (LayoutAlgorithm::Shell, Some(&first)) = (algo, requested.first()) {
        if let Some(local) = sub.local(first) {
            if local != 0 && !raw.is_empty() {
                let mut raw = raw;
                raw.swap(0, local as usize);
                return raw;
            }
        }
    }
    raw
}

impl Scene {
    /// Sets the scene title (builder style).
    pub fn titled(mut self, title: impl Into<String>) -> Self {
        self.title = title.into();
        self
    }

    /// Number of placed vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// All positions are inside the viewport.
    pub fn in_bounds(&self) -> bool {
        self.vertices.iter().all(|&(_, p)| {
            p.x >= 0.0 && p.x <= self.width && p.y >= 0.0 && p.y <= self.height
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cx_datagen::figure5_graph;

    fn scene_for_k4() -> Scene {
        let g = figure5_graph();
        let a = g.vertex_by_label("A").unwrap();
        let members: Vec<VertexId> =
            ["A", "B", "C", "D"].iter().map(|l| g.vertex_by_label(l).unwrap()).collect();
        let x = g.interner().get("x").unwrap();
        let c = Community::new(members, vec![x]);
        layout_community(&g, &c, LayoutAlgorithm::default_force(), Some(a), 640.0, 480.0, 1)
    }

    #[test]
    fn scene_structure() {
        let s = scene_for_k4();
        assert_eq!(s.vertex_count(), 4);
        assert_eq!(s.edges.len(), 6); // K4
        assert_eq!(s.labels.len(), 4);
        assert_eq!(s.theme, vec!["x"]);
        assert!(s.in_bounds());
        assert!(s.highlight.is_some());
    }

    #[test]
    fn highlight_points_at_query_vertex() {
        let g = figure5_graph();
        let s = scene_for_k4();
        let hi = s.highlight.unwrap();
        assert_eq!(s.labels[hi], "A");
        let a = g.vertex_by_label("A").unwrap();
        assert_eq!(s.vertices[hi].0, a);
    }

    #[test]
    fn shell_layout_centers_query() {
        let g = figure5_graph();
        let a = g.vertex_by_label("A").unwrap();
        let members: Vec<VertexId> =
            ["A", "B", "C", "D", "E"].iter().map(|l| g.vertex_by_label(l).unwrap()).collect();
        let c = Community::structural(members);
        let s = layout_community(&g, &c, LayoutAlgorithm::Shell, Some(a), 100.0, 100.0, 0);
        let hi = s.highlight.unwrap();
        // The query vertex is the ring centre, so it must have the smallest
        // mean distance to all other vertices (fitting may shift the
        // absolute coordinates, but not this ordering).
        let mean_dist = |i: usize| -> f64 {
            let p = s.vertices[i].1;
            s.vertices
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &(_, q))| ((p.x - q.x).powi(2) + (p.y - q.y).powi(2)).sqrt())
                .sum::<f64>()
        };
        let best = (0..s.vertex_count()).min_by(|&a, &b| {
            mean_dist(a).partial_cmp(&mean_dist(b)).unwrap()
        });
        assert_eq!(best, Some(hi), "query vertex is not the most central");
    }

    #[test]
    fn titled_builder() {
        let s = scene_for_k4().titled("Method: ACQ");
        assert_eq!(s.title, "Method: ACQ");
    }

    #[test]
    fn summary_layout_is_deterministic_and_in_bounds() {
        let items: Vec<SummaryItem> = (0..50)
            .map(|i| SummaryItem {
                id: i,
                label: format!("s{i}"),
                size: (i + 1) as f64,
                is_super: i % 2 == 0,
            })
            .collect();
        let links = vec![(0usize, 1usize, 3.0), (1, 2, 1.0)];
        let a = layout_summary(&items, &links, 800.0, 600.0);
        let b = layout_summary(&items, &links, 800.0, 600.0);
        assert_eq!(a.vertex_count(), 50);
        assert!(a.in_bounds());
        assert_eq!(a.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(a.weights, vec![3.0, 1.0]);
        assert_eq!(a.radii.len(), 50);
        // Determinism: identical positions across runs.
        for (pa, pb) in a.vertices.iter().zip(&b.vertices) {
            assert_eq!(pa.1, pb.1);
        }
        // The largest supernode (id 48) outranks smaller supernodes...
        assert!(a.radii[48] > a.radii[46]);
        // ...and plain vertices keep small dots.
        assert_eq!(a.radii[1], 4.0);
    }

    #[test]
    fn empty_community_scene() {
        let g = figure5_graph();
        let c = Community::structural(vec![]);
        let s = layout_community(&g, &c, LayoutAlgorithm::Circular, None, 10.0, 10.0, 0);
        assert_eq!(s.vertex_count(), 0);
        assert!(s.edges.is_empty());
        assert!(s.in_bounds());
    }
}
