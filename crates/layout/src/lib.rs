#![warn(missing_docs)]

//! # cx-layout — community visualization (the paper's `display` API)
//!
//! The demo used the JUNG project's layout algorithms to place community
//! vertices in the plane before rendering them in the browser. This crate
//! reimplements the same classic algorithms and two renderers:
//!
//! * [`LayoutAlgorithm::FruchtermanReingold`] — force-directed layout
//!   (JUNG's `FRLayout`), the default for community views;
//! * [`LayoutAlgorithm::KamadaKawai`] — stress-style layout over BFS
//!   distances (JUNG's `KKLayout`);
//! * [`LayoutAlgorithm::Circular`] and [`LayoutAlgorithm::Shell`] —
//!   deterministic fallbacks (query vertex centred, members ringed by
//!   hop distance for `Shell`).
//!
//! [`layout_community`] produces a [`Scene`]: positions fitted to a
//! viewport plus edges and labels, which renders to SVG
//! ([`Scene::to_svg`], the "save as .jpg / print" stand-in) or to the
//! JSON the web UI draws on a canvas ([`Scene::to_json`]).

pub mod force;
pub mod render;
pub mod scene;

pub use force::LayoutAlgorithm;
pub use scene::{layout_community, layout_summary, Point, Scene, SummaryItem};
