//! Renderers: SVG (for files — the paper's "save the community into a
//! .jpg file or print it" feature) and JSON (for the web UI's canvas).

use crate::scene::Scene;

/// Escapes the five XML special characters.
fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&apos;")
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Scene {
    /// Renders the scene as a standalone SVG document: edges, vertex dots
    /// (query vertex emphasised), labels, a title line, and the theme.
    pub fn to_svg(&self) -> String {
        let mut svg = String::new();
        svg.push_str(&format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n",
            self.width, self.height, self.width, self.height
        ));
        svg.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
        if !self.title.is_empty() {
            svg.push_str(&format!(
                "<text x=\"10\" y=\"18\" font-family=\"sans-serif\" font-size=\"14\" font-weight=\"bold\">{}</text>\n",
                xml_escape(&self.title)
            ));
        }
        if !self.theme.is_empty() {
            svg.push_str(&format!(
                "<text x=\"10\" y=\"34\" font-family=\"sans-serif\" font-size=\"11\" fill=\"#555\">Theme: {}</text>\n",
                xml_escape(&self.theme.join(", "))
            ));
        }
        for (eidx, &(i, j)) in self.edges.iter().enumerate() {
            let (a, b) = (self.vertices[i].1, self.vertices[j].1);
            // Weighted edges (summary scenes) thicken with log of weight.
            let sw = match self.weights.get(eidx) {
                Some(&w) if w > 0.0 => 1.0 + w.ln().max(0.0),
                _ => 1.0,
            };
            svg.push_str(&format!(
                "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#999\" stroke-width=\"{sw:.1}\"/>\n",
                a.x, a.y, b.x, b.y
            ));
        }
        for (idx, &(_, p)) in self.vertices.iter().enumerate() {
            let is_hi = self.highlight == Some(idx);
            let is_super = self.supers.get(idx).copied().unwrap_or(false);
            let (mut r, fill) = if is_hi {
                (8.0, "#d9534f")
            } else if is_super {
                (5.0, "#5cb85c")
            } else {
                (5.0, "#337ab7")
            };
            if let Some(&rr) = self.radii.get(idx) {
                r = rr;
            }
            svg.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{r:.1}\" fill=\"{fill}\" stroke=\"#222\" stroke-width=\"0.8\"/>\n",
                p.x, p.y
            ));
            svg.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" font-family=\"sans-serif\" font-size=\"10\" fill=\"#222\">{}</text>\n",
                p.x + r + 2.0,
                p.y + 3.0,
                xml_escape(&self.labels[idx])
            ));
        }
        svg.push_str("</svg>\n");
        svg
    }

    /// Serialises the scene to the JSON the embedded web UI consumes:
    /// `{title, theme, width, height, nodes: [{id, label, x, y, highlight}],
    /// edges: [[i, j], …]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"title\":\"{}\",", json_escape(&self.title)));
        out.push_str("\"theme\":[");
        for (i, t) in self.theme.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(t)));
        }
        out.push_str("],");
        out.push_str(&format!("\"width\":{:.1},\"height\":{:.1},", self.width, self.height));
        out.push_str("\"nodes\":[");
        for (i, &(v, p)) in self.vertices.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"label\":\"{}\",\"x\":{:.1},\"y\":{:.1},\"highlight\":{}",
                v.0,
                json_escape(&self.labels[i]),
                p.x,
                p.y,
                self.highlight == Some(i)
            ));
            // Summary-scene extras, only when the scene carries them.
            if let Some(&r) = self.radii.get(i) {
                out.push_str(&format!(",\"r\":{r:.1}"));
            }
            if let Some(&s) = self.supers.get(i) {
                out.push_str(&format!(",\"super\":{s}"));
            }
            out.push('}');
        }
        out.push_str("],\"edges\":[");
        for (i, &(a, b)) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match self.weights.get(i) {
                Some(&w) => out.push_str(&format!("[{a},{b},{w:.0}]")),
                None => out.push_str(&format!("[{a},{b}]")),
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{layout_community, LayoutAlgorithm};
    use cx_datagen::figure5_graph;
    use cx_graph::Community;

    fn scene() -> crate::Scene {
        let g = figure5_graph();
        let a = g.vertex_by_label("A").unwrap();
        let c = Community::structural(vec![
            g.vertex_by_label("A").unwrap(),
            g.vertex_by_label("B").unwrap(),
            g.vertex_by_label("C").unwrap(),
        ]);
        layout_community(&g, &c, LayoutAlgorithm::Circular, Some(a), 300.0, 200.0, 0)
            .titled("Method: <ACQ> & \"friends\"")
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = scene().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<circle").count(), 3);
        assert_eq!(svg.matches("<line").count(), 3); // triangle
        // Title is escaped.
        assert!(svg.contains("&lt;ACQ&gt;"));
        assert!(svg.contains("&quot;friends&quot;"));
        assert!(!svg.contains("<ACQ>"));
    }

    #[test]
    fn svg_highlights_query() {
        let svg = scene().to_svg();
        assert_eq!(svg.matches("#d9534f").count(), 1);
    }

    #[test]
    fn json_has_nodes_and_edges() {
        let json = scene().to_json();
        assert!(json.contains("\"nodes\":["));
        assert_eq!(json.matches("\"label\"").count(), 3);
        assert!(json.contains("\"highlight\":true"));
        assert!(json.contains("\"edges\":[["));
        // Escaped title.
        assert!(json.contains("\\\"friends\\\""));
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::json_escape("\u{1}"), "\\u0001");
    }
}
