//! The DBLP-like co-authorship generator — the substitute for the paper's
//! private DBLP sample.
//!
//! What community-retrieval experiments need from DBLP is *shape*, not the
//! actual names. Real co-authorship networks are two-level: broad research
//! **areas** (databases, ML, …) that share vocabulary, made of many small
//! **collaboration groups** (labs / frequent co-author circles) that are
//! internally dense. This drives all the qualitative results in the
//! paper's Figure 6(a):
//!
//! * the k-core percolates across groups through well-connected authors,
//!   so `Global` returns a community orders of magnitude larger than
//!   anyone else's;
//! * groups are the natural granularity `Local` and `CODICIL` stop at;
//! * keywords come in three tiers — ubiquitous common terms ("data",
//!   "system"), area terms (Zipf-skewed), and group-specific terms — so
//!   ACQ's maximal shared keyword set pins the community to the query
//!   author's group(s) and scores highest on CPJ/CMF.
//!
//! Degrees inside a group follow preferential attachment (hub authors),
//! and a mixing fraction of edges crosses areas. Everything is
//! deterministic per seed.

use cx_par::rng::Rng64;

use cx_graph::{AttributedGraph, GraphBuilder, VertexId};

use crate::zipf::Zipf;

/// Parameters for [`dblp_like`].
#[derive(Debug, Clone)]
pub struct DblpParams {
    /// Number of authors (vertices).
    pub authors: usize,
    /// Number of research areas (keyword-sharing super-communities).
    pub areas: usize,
    /// Mean collaboration-group size (groups are Zipf-spread around this).
    pub group_size: usize,
    /// Intra-group edges added per joining author (preferential
    /// attachment); group hubs emerge automatically.
    pub edges_per_author: usize,
    /// Probability that an author gets one extra edge to another group of
    /// the same area (keeps areas connected).
    pub intra_area_bridges: f64,
    /// Probability that an author gets one random cross-area edge.
    pub mixing: f64,
    /// Keywords attached to each author (the paper used the 20 most
    /// frequent title terms).
    pub keywords_per_author: usize,
    /// Size of each area's keyword vocabulary.
    pub vocab_per_area: usize,
    /// Zipf exponent for keyword frequencies within an area.
    pub zipf_exponent: f64,
    /// RNG seed: identical parameters + seed → identical graph.
    pub seed: u64,
}

impl Default for DblpParams {
    fn default() -> Self {
        Self {
            authors: 2_000,
            areas: 8,
            group_size: 24,
            edges_per_author: 2,
            intra_area_bridges: 0.25,
            mixing: 0.03,
            keywords_per_author: 20,
            vocab_per_area: 60,
            zipf_exponent: 1.0,
            seed: 42,
        }
    }
}

impl DblpParams {
    /// Convenience: scale the default preset to `n` authors,
    /// with the area count growing so areas stay meaty.
    pub fn scaled(n: usize, seed: u64) -> Self {
        Self {
            authors: n,
            areas: (n / 250).clamp(4, 64),
            seed,
            ..Self::default()
        }
    }

    /// The committed paper-scale configuration: one million authors at a
    /// density of three intra-group edges per joining author, which lands
    /// at roughly 3.4M edges — the scale of the DBLP snapshot the paper
    /// demos against. The generator draws every value from one sequential
    /// RNG stream, so the graph is bit-identical for a given seed
    /// regardless of `CX_THREADS` or machine.
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            authors: 1_000_000,
            areas: 64,
            edges_per_author: 3,
            seed,
            ..Self::default()
        }
    }
}

/// Generates a DBLP-like attributed co-authorship graph.
///
/// Vertices are labelled `author-<id>`. Keyword strings are
/// self-describing: `common:kw<r>` (global terms), `area<a>:kw<r>`
/// (area terms), `area<a>:g<g>:kw<r>` (group terms). Returns the graph
/// and the planted area of each author.
pub fn dblp_like(params: &DblpParams) -> (AttributedGraph, Vec<usize>) {
    assert!(params.areas > 0, "need at least one area");
    assert!(params.authors >= params.areas, "need at least one author per area");
    let mut rng = Rng64::seed_from_u64(params.seed);

    // Power-law-ish area sizes: weight area a by 1/(a+1), then scale.
    let weights: Vec<f64> = (0..params.areas).map(|a| 1.0 / (a + 1) as f64).collect();
    let wsum: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / wsum) * params.authors as f64).floor() as usize)
        .map(|s| s.max(1))
        .collect();
    let assigned: usize = sizes.iter().sum();
    if assigned < params.authors {
        sizes[0] += params.authors - assigned;
    } else {
        let mut extra = assigned - params.authors;
        for s in sizes.iter_mut() {
            let take = extra.min(s.saturating_sub(1));
            *s -= take;
            extra -= take;
            if extra == 0 {
                break;
            }
        }
    }

    // Assign authors to areas, then split each area into groups whose
    // sizes spread around `group_size` (between half and double).
    let mut area_of = Vec::with_capacity(params.authors);
    let mut group_of = Vec::with_capacity(params.authors); // global group id
    let mut group_area = Vec::new(); // group id → area
    let mut groups_in_area: Vec<Vec<usize>> = vec![Vec::new(); params.areas];
    for (a, &size) in sizes.iter().enumerate() {
        let mut remaining = size;
        while remaining > 0 {
            let lo = (params.group_size / 2).max(3);
            let hi = (params.group_size * 2).max(lo + 1);
            let gsize = rng.gen_range(lo..hi).min(remaining);
            let gid = group_area.len();
            group_area.push(a);
            groups_in_area[a].push(gid);
            for _ in 0..gsize {
                area_of.push(a);
                group_of.push(gid);
            }
            remaining -= gsize;
        }
    }

    // Keyword machinery: three tiers.
    let kw_zipf = Zipf::new(params.vocab_per_area, params.zipf_exponent);
    let common_zipf = Zipf::new(30, 1.1);
    let group_kw_count = 8usize;

    let mut b = GraphBuilder::with_capacity(
        params.authors,
        params.authors * (params.edges_per_author + 1),
    );
    for i in 0..params.authors {
        let a = area_of[i];
        let gid = group_of[i];
        let mut kws: Vec<String> = Vec::with_capacity(params.keywords_per_author);
        let quota = params.keywords_per_author;
        // ~25% common terms, ~25% group terms, rest area terms.
        let n_common = quota / 4;
        let n_group = quota / 4;
        let push_unique = |kws: &mut Vec<String>, name: String| {
            if !kws.contains(&name) {
                kws.push(name);
            }
        };
        let mut guard = 0;
        while kws.len() < n_common && guard < 200 {
            guard += 1;
            push_unique(&mut kws, format!("common:kw{}", common_zipf.sample(&mut rng)));
        }
        guard = 0;
        while kws.len() < n_common + n_group && guard < 200 {
            guard += 1;
            // Group vocabulary is tiny and head-heavy: members share it.
            let r = (rng.gen::<f64>() * rng.gen::<f64>() * group_kw_count as f64) as usize;
            push_unique(&mut kws, format!("area{a}:g{gid}:kw{}", r.min(group_kw_count - 1)));
        }
        guard = 0;
        while kws.len() < quota && guard < 400 {
            guard += 1;
            push_unique(&mut kws, format!("area{a}:kw{}", kw_zipf.sample(&mut rng)));
        }
        let refs: Vec<&str> = kws.iter().map(String::as_str).collect();
        b.add_vertex(&format!("author-{i}"), &refs);
    }

    // Intra-group structure: every group has a dense nucleus (its "lab
    // core" — a near-clique of the senior authors) that the rest of the
    // members attach to by preferential attachment. The nuclei are what
    // survive k-core peeling; the periphery is what makes it selective.
    let n_groups = group_area.len();
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); n_groups];
    for (i, &gid) in group_of.iter().enumerate() {
        members[gid].push(i as u32);
    }
    // Degree-weighted endpoint pool per group (each endpoint appears once
    // per incident edge — the classic Barabási–Albert trick).
    let mut pool: Vec<Vec<u32>> = vec![Vec::new(); n_groups];
    for gid in 0..n_groups {
        let ms = &members[gid];
        let nucleus = ms.len().min((ms.len() / 3).clamp(4, 10));
        // Near-clique on the nucleus.
        for x in 0..nucleus {
            for y in (x + 1)..nucleus {
                if rng.gen_bool(0.9) {
                    b.add_edge(VertexId(ms[x]), VertexId(ms[y]));
                    pool[gid].push(ms[x]);
                    pool[gid].push(ms[y]);
                }
            }
        }
        // Periphery: PA with `edges_per_author` edges each.
        for idx in nucleus..ms.len() {
            let v = ms[idx];
            let m = params.edges_per_author.min(idx);
            let mut targets: Vec<u32> = Vec::with_capacity(m);
            let mut guard = 0;
            while targets.len() < m && guard < 50 * (m + 1) {
                guard += 1;
                let t = if pool[gid].is_empty() || rng.gen_bool(0.2) {
                    ms[rng.gen_range(0..idx)]
                } else {
                    pool[gid][rng.gen_range(0..pool[gid].len())]
                };
                if t != v && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            for &t in &targets {
                b.add_edge(VertexId(v), VertexId(t));
                pool[gid].push(v);
                pool[gid].push(t);
            }
        }
    }

    // Intra-area bridges between groups: famous (high-degree) authors
    // collaborate across labs, which is what lets the k-core percolate
    // area-wide and makes Global's community huge.
    let weighted_pick = |pool: &[u32], members: &[u32], rng: &mut Rng64| -> u32 {
        if pool.is_empty() || rng.gen_bool(0.2) {
            members[rng.gen_range(0..members.len())]
        } else {
            pool[rng.gen_range(0..pool.len())]
        }
    };
    for i in 0..params.authors {
        if rng.gen_bool(params.intra_area_bridges) {
            let a = area_of[i];
            if groups_in_area[a].len() > 1 {
                let gid = group_of[i];
                let other = groups_in_area[a][rng.gen_range(0..groups_in_area[a].len())];
                if other != gid && !members[other].is_empty() {
                    let s = weighted_pick(&pool[gid], &members[gid], &mut rng);
                    let t = weighted_pick(&pool[other], &members[other], &mut rng);
                    b.add_edge(VertexId(s), VertexId(t));
                }
            }
        }
    }

    // Cross-area mixing edges.
    for i in 0..params.authors {
        if rng.gen_bool(params.mixing) {
            let j = rng.gen_range(0..params.authors);
            if area_of[i] != area_of[j] {
                b.add_edge(VertexId(i as u32), VertexId(j as u32));
            }
        }
    }

    (b.build(), area_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = DblpParams { authors: 300, seed: 9, ..DblpParams::default() };
        let (g1, a1) = dblp_like(&p);
        let (g2, a2) = dblp_like(&p);
        assert_eq!(a1, a2);
        assert_eq!(g1.edge_count(), g2.edge_count());
        for v in g1.vertices() {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
        }
        let (g3, _) = dblp_like(&DblpParams { seed: 10, ..p });
        assert!(
            g1.edge_count() != g3.edge_count()
                || g1.vertices().any(|v| g1.neighbors(v) != g3.neighbors(v))
        );
    }

    #[test]
    fn sizes_and_labels() {
        let p = DblpParams { authors: 500, areas: 6, ..DblpParams::default() };
        let (g, areas) = dblp_like(&p);
        assert_eq!(g.vertex_count(), 500);
        assert_eq!(areas.len(), 500);
        assert!(areas.iter().all(|&a| a < 6));
        assert_eq!(g.label(VertexId(0)), "author-0");
        assert!(g.vertex_by_label("author-499").is_some());
        for a in 0..6 {
            assert!(areas.iter().any(|&x| x == a), "area {a} empty");
        }
    }

    #[test]
    fn degree_is_heterogeneous_with_hubs() {
        let p = DblpParams { authors: 1000, ..DblpParams::default() };
        let (g, _) = dblp_like(&p);
        let stats = cx_graph::stats::DegreeStats::compute(&g);
        assert!(
            stats.max as f64 > 3.0 * stats.mean,
            "no hubs: max={} mean={}",
            stats.max,
            stats.mean
        );
        // Low-degree periphery exists too, so the k-core is selective.
        let low = g.vertices().filter(|&v| g.degree(v) < 4).count();
        assert!(low * 10 > g.vertex_count(), "periphery too small: {low}");
    }

    #[test]
    fn keywords_are_tiered_and_area_scoped() {
        let p = DblpParams { authors: 400, areas: 4, ..DblpParams::default() };
        let (g, areas) = dblp_like(&p);
        let mut saw_common = false;
        let mut saw_group = false;
        for v in g.vertices() {
            let a = areas[v.index()];
            for name in g.keyword_names(g.keywords(v)) {
                if name.starts_with("common:") {
                    saw_common = true;
                } else {
                    assert!(
                        name.starts_with(&format!("area{a}:")),
                        "author {} in area {a} has foreign keyword {name}",
                        v.0
                    );
                    if name.contains(":g") {
                        saw_group = true;
                    }
                }
            }
        }
        assert!(saw_common, "no common-tier keywords generated");
        assert!(saw_group, "no group-tier keywords generated");
    }

    #[test]
    fn group_members_share_group_keywords() {
        let p = DblpParams { authors: 300, areas: 2, ..DblpParams::default() };
        let (g, _) = dblp_like(&p);
        // Find the most popular group keyword and check it is carried by
        // several vertices (group cohesion exists for ACQ to find).
        let mut best = 0usize;
        for (w, name) in g.interner().iter() {
            if name.contains(":g") {
                let carriers = g.vertices().filter(|&v| g.has_keyword(v, w)).count();
                best = best.max(carriers);
            }
        }
        assert!(best >= 5, "group keywords too rare (best carrier count {best})");
    }

    #[test]
    fn mixing_creates_cross_area_edges_but_minority() {
        let p = DblpParams { authors: 800, mixing: 0.3, ..DblpParams::default() };
        let (g, areas) = dblp_like(&p);
        let cross = g.edges().filter(|&(u, v)| areas[u.index()] != areas[v.index()]).count();
        assert!(cross > 0, "no cross-area edges despite mixing");
        assert!(cross * 2 < g.edge_count());
    }

    #[test]
    fn zero_mixing_keeps_areas_separate() {
        let p = DblpParams { authors: 300, mixing: 0.0, ..DblpParams::default() };
        let (g, areas) = dblp_like(&p);
        assert!(g.edges().all(|(u, v)| areas[u.index()] == areas[v.index()]));
    }

    #[test]
    fn scaled_preset_is_sane() {
        let p = DblpParams::scaled(10_000, 1);
        assert_eq!(p.authors, 10_000);
        assert!(p.areas >= 4 && p.areas <= 64);
    }

    #[test]
    fn paper_scale_preset_is_committed() {
        let p = DblpParams::paper_scale(42);
        assert_eq!(p.authors, 1_000_000);
        assert_eq!(p.areas, 64);
        assert_eq!(p.edges_per_author, 3);
        assert_eq!(p.seed, 42);
    }

    /// FNV-1a over the full adjacency + keyword structure.
    fn fingerprint(g: &AttributedGraph) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(g.vertex_count() as u64);
        mix(g.edge_count() as u64);
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                mix(u.0 as u64);
            }
            for w in g.keywords(v) {
                mix(w.0 as u64 | 1 << 40);
            }
        }
        h
    }

    #[test]
    fn paper_scale_shape_is_machine_independent() {
        // A scaled-down graph with the paper-scale density knobs, pinned to
        // a golden fingerprint. The generator is one sequential RNG stream
        // (no cx-par, no iteration over hash maps), so this must hold on
        // any machine and at any CX_THREADS — CI runs the suite at both
        // CX_THREADS=1 and CX_THREADS=8 to enforce exactly that.
        let p = DblpParams { authors: 4_000, ..DblpParams::paper_scale(42) };
        let (g, _) = dblp_like(&p);
        assert_eq!(fingerprint(&g), 0x2069f68bca084635, "paper-scale graph drifted");
    }

    #[test]
    fn kcore_is_selective_not_whole_graph() {
        // The property Figure 6(a)'s shape depends on: the 4-core is a
        // strict, substantial subset — neither empty nor the whole graph.
        let (g, _) = dblp_like(&DblpParams { authors: 2000, ..DblpParams::default() });
        let cd = cx_graph_core_check(&g, 4);
        assert!(cd > 0, "4-core empty");
        assert!(cd < g.vertex_count() / 2, "4-core covers most of the graph: {cd}");
    }

    /// Counts vertices surviving iterative k-core peeling (local helper to
    /// avoid a dev-dependency cycle on cx-kcore).
    fn cx_graph_core_check(g: &AttributedGraph, k: usize) -> usize {
        let n = g.vertex_count();
        let mut alive = vec![true; n];
        loop {
            let mut changed = false;
            for v in g.vertices() {
                if alive[v.index()] {
                    let d = g.neighbors(v).iter().filter(|u| alive[u.index()]).count();
                    if d < k {
                        alive[v.index()] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                return alive.iter().filter(|&&x| x).count();
            }
        }
    }
}
