//! A small Zipf-distributed sampler.
//!
//! Keyword frequencies in publication titles are famously Zipfian: a few
//! terms ("data", "system") dominate while the tail is long. The generator
//! uses this sampler to pick keywords per author so that members of an area
//! share its head terms — the property that gives ACQ non-trivial keyword
//! cohesiveness to find.

use cx_par::rng::Rng64;

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution over ranks, ending at 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s` (typically 0.8–1.2).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard the last entry against rounding so sampling never overflows.
        *cdf.last_mut().unwrap() = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: the constructor rejects `n == 0`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u: f64 = rng.gen();
        // First index whose cdf ≥ u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability of a given rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(50, 1.0);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..50 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12, "pmf not monotone at {r}");
        }
        assert_eq!(z.pmf(99), 0.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed_and_head_heavy() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng64::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should appear far more often than rank 50.
        assert!(counts[0] > 5 * counts[50].max(1));
        // Determinism.
        let mut rng2 = Rng64::seed_from_u64(7);
        let first: Vec<usize> = (0..10).map(|_| z.sample(&mut rng2)).collect();
        let mut rng3 = Rng64::seed_from_u64(7);
        let second: Vec<usize> = (0..10).map(|_| z.sample(&mut rng3)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.2);
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn exponent_zero_is_uniformish() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
