//! Planted-partition benchmark graphs with ground-truth labels.
//!
//! Used to validate the community-*detection* path (CODICIL): a clustering
//! recovered from the generated graph can be scored with NMI against the
//! planted assignment.

use cx_par::rng::Rng64;

use cx_graph::{AttributedGraph, GraphBuilder, VertexId};

/// Parameters for [`planted_partition`].
#[derive(Debug, Clone)]
pub struct PlantedParams {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of equal-sized planted communities.
    pub communities: usize,
    /// Probability of an edge inside a community.
    pub p_intra: f64,
    /// Probability of an edge between communities.
    pub p_inter: f64,
    /// Distinct keywords given to each community's members.
    pub keywords_per_community: usize,
    /// Probability that a keyword slot is filled from a *random* topic
    /// instead of the member's own community topic (content noise).
    pub keyword_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedParams {
    fn default() -> Self {
        Self {
            vertices: 200,
            communities: 4,
            p_intra: 0.3,
            p_inter: 0.01,
            keywords_per_community: 5,
            keyword_noise: 0.0,
            seed: 7,
        }
    }
}

/// Generates a planted-partition attributed graph. Returns the graph and
/// the planted community of every vertex.
///
/// Community `c`'s members are labelled `p<c>-<i>` and all carry keywords
/// `topic<c>:<j>` for `j < keywords_per_community`, so keyword cohesion
/// aligns exactly with the planted structure.
pub fn planted_partition(params: &PlantedParams) -> (AttributedGraph, Vec<usize>) {
    assert!(params.communities > 0, "need at least one community");
    assert!(
        params.vertices >= params.communities,
        "need at least one vertex per community"
    );
    let mut rng = Rng64::seed_from_u64(params.seed);
    let n = params.vertices;
    let label_of = |i: usize| i % params.communities;

    let mut b = GraphBuilder::with_capacity(n, n * 4);
    for i in 0..n {
        let c = label_of(i);
        let kws: Vec<String> = (0..params.keywords_per_community)
            .map(|j| {
                if params.keyword_noise > 0.0 && rng.gen_bool(params.keyword_noise) {
                    let tc = rng.gen_range(0..params.communities);
                    let tj = rng.gen_range(0..params.keywords_per_community);
                    format!("topic{tc}:{tj}")
                } else {
                    format!("topic{c}:{j}")
                }
            })
            .collect();
        let refs: Vec<&str> = kws.iter().map(String::as_str).collect();
        b.add_vertex(&format!("p{c}-{i}"), &refs);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let p = if label_of(i) == label_of(j) { params.p_intra } else { params.p_inter };
            if p > 0.0 && rng.gen_bool(p) {
                b.add_edge(VertexId(i as u32), VertexId(j as u32));
            }
        }
    }
    let labels = (0..n).map(label_of).collect();
    (b.build(), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_shape() {
        let p = PlantedParams::default();
        let (g, labels) = planted_partition(&p);
        assert_eq!(g.vertex_count(), 200);
        assert_eq!(labels.len(), 200);
        // Round-robin assignment: equal sizes.
        for c in 0..4 {
            assert_eq!(labels.iter().filter(|&&l| l == c).count(), 50);
        }
    }

    #[test]
    fn intra_density_dominates() {
        let p = PlantedParams { vertices: 160, seed: 3, ..PlantedParams::default() };
        let (g, labels) = planted_partition(&p);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v) in g.edges() {
            if labels[u.index()] == labels[v.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter.max(1), "intra={intra} inter={inter}");
    }

    #[test]
    fn keywords_follow_community() {
        let p = PlantedParams { vertices: 40, communities: 2, ..PlantedParams::default() };
        let (g, labels) = planted_partition(&p);
        for v in g.vertices() {
            let c = labels[v.index()];
            for name in g.keyword_names(g.keywords(v)) {
                assert!(name.starts_with(&format!("topic{c}:")));
            }
        }
    }

    #[test]
    fn keyword_noise_injects_foreign_topics() {
        let p = PlantedParams {
            vertices: 100,
            communities: 4,
            keyword_noise: 0.5,
            ..PlantedParams::default()
        };
        let (g, labels) = planted_partition(&p);
        let foreign = g
            .vertices()
            .flat_map(|v| {
                let c = labels[v.index()];
                g.keyword_names(g.keywords(v))
                    .into_iter()
                    .filter(move |n| !n.starts_with(&format!("topic{c}:")))
            })
            .count();
        assert!(foreign > 0, "noise produced no foreign keywords");
    }

    #[test]
    fn deterministic() {
        let p = PlantedParams::default();
        let (g1, _) = planted_partition(&p);
        let (g2, _) = planted_partition(&p);
        assert_eq!(g1.edge_count(), g2.edge_count());
    }

    #[test]
    fn extreme_probabilities() {
        let p = PlantedParams {
            vertices: 12,
            communities: 3,
            p_intra: 1.0,
            p_inter: 0.0,
            ..PlantedParams::default()
        };
        let (g, labels) = planted_partition(&p);
        // Each community is a clique of size 4 → 6 edges each.
        assert_eq!(g.edge_count(), 18);
        assert!(g.edges().all(|(u, v)| labels[u.index()] == labels[v.index()]));
    }
}
