//! Exact small graphs used throughout the tests, examples and docs.

use cx_graph::{AttributedGraph, GraphBuilder, VertexId};

/// The paper's Figure 5(a) example graph, reproduced edge-for-edge.
///
/// Ten vertices A–J (ids 0–9) with keyword sets
/// `A:{w,x,y} B:{x} C:{x,y} D:{x,y,z} E:{y,z} F:{y} G:{x,y} H:{y,z} I:{x}
/// J:{x}` and eleven edges chosen so the core structure matches the
/// CL-tree of Figure 5(b):
///
/// * core 3: A, B, C, D (a 4-clique);
/// * core 2: E (tied to C and D, and to the F–G tail);
/// * core 1: F, G (tail off E) and H, I (separate pair);
/// * core 0: J (isolated).
///
/// With `q = A`, `k = 2`, `S = {w, x, y}` the ACQ answer is the subgraph
/// on {A, C, D} whose vertices all share keywords {x, y} — the worked
/// example in Section 3.2 of the paper.
pub fn figure5_graph() -> AttributedGraph {
    let mut b = GraphBuilder::new();
    let spec: [(&str, &[&str]); 10] = [
        ("A", &["w", "x", "y"]),
        ("B", &["x"]),
        ("C", &["x", "y"]),
        ("D", &["x", "y", "z"]),
        ("E", &["y", "z"]),
        ("F", &["y"]),
        ("G", &["x", "y"]),
        ("H", &["y", "z"]),
        ("I", &["x"]),
        ("J", &["x"]),
    ];
    for (name, kws) in spec {
        b.add_vertex(name, kws);
    }
    let v = VertexId;
    // 4-clique on A,B,C,D (6), E–C, E–D (2), E–F, F–G (2), H–I (1): 11 edges.
    for (a, c) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (4, 2), (4, 3), (4, 5), (5, 6), (7, 8)]
    {
        b.add_edge(v(a), v(c));
    }
    b.build()
}

/// A 16-vertex collaboration graph with two dense groups ("db" and "ml")
/// bridged by one interdisciplinary author — handy for exercising the
/// comparison-analysis path on something bigger than Figure 5 but small
/// enough to verify by hand.
///
/// Group A (ids 0–6) is a near-clique of database people; group B
/// (ids 8–14) is a near-clique of ML people; vertex 7 ("bridge") sits in
/// both; vertex 15 is a loner with one edge.
pub fn small_collab_graph() -> AttributedGraph {
    let mut b = GraphBuilder::new();
    for i in 0..7 {
        b.add_vertex(
            &format!("db-author-{i}"),
            &["data", "system", "transaction", "query"],
        );
    }
    b.add_vertex("bridge", &["data", "learning", "system", "model"]);
    for i in 0..7 {
        b.add_vertex(&format!("ml-author-{i}"), &["learning", "model", "neural", "data"]);
    }
    b.add_vertex("loner", &["misc"]);
    let v = VertexId;
    // Group A: clique on 0..7 minus a few edges.
    for i in 0..7u32 {
        for j in (i + 1)..7 {
            if (i, j) != (0, 6) && (i, j) != (1, 5) {
                b.add_edge(v(i), v(j));
            }
        }
    }
    // Bridge connects to three members of each group.
    for t in [0u32, 1, 2, 8, 9, 10] {
        b.add_edge(v(7), v(t));
    }
    // Group B: clique on 8..15 minus a few edges.
    for i in 8u32..15 {
        for j in (i + 1)..15 {
            if (i, j) != (8, 14) && (i, j) != (9, 13) {
                b.add_edge(v(i), v(j));
            }
        }
    }
    b.add_edge(v(14), v(15));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_has_paper_counts() {
        let g = figure5_graph();
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.edge_count(), 11);
        assert_eq!(g.keyword_count(), 4); // w, x, y, z
    }

    #[test]
    fn figure5_keywords_match_paper() {
        let g = figure5_graph();
        let kw = |label: &str| {
            let v = g.vertex_by_label(label).unwrap();
            let mut names = g.keyword_names(g.keywords(v));
            names.sort();
            names
        };
        assert_eq!(kw("A"), vec!["w", "x", "y"]);
        assert_eq!(kw("B"), vec!["x"]);
        assert_eq!(kw("C"), vec!["x", "y"]);
        assert_eq!(kw("D"), vec!["x", "y", "z"]);
        assert_eq!(kw("E"), vec!["y", "z"]);
        assert_eq!(kw("F"), vec!["y"]);
        assert_eq!(kw("G"), vec!["x", "y"]);
        assert_eq!(kw("H"), vec!["y", "z"]);
        assert_eq!(kw("I"), vec!["x"]);
        assert_eq!(kw("J"), vec!["x"]);
    }

    #[test]
    fn figure5_j_is_isolated() {
        let g = figure5_graph();
        let j = g.vertex_by_label("J").unwrap();
        assert_eq!(g.degree(j), 0);
    }

    #[test]
    fn small_collab_is_connected_except_nothing() {
        let g = small_collab_graph();
        assert_eq!(g.vertex_count(), 16);
        assert!(cx_graph::traversal::is_connected(&g));
        let bridge = g.vertex_by_label("bridge").unwrap();
        assert_eq!(g.degree(bridge), 6);
    }
}
