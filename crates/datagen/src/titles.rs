//! Publication titles and keyword extraction.
//!
//! The paper attaches to each DBLP author "the 20 most frequent keywords
//! in the titles of her publications". This module reproduces that
//! pipeline end to end on synthetic data: generate plausible titles per
//! author from their area's vocabulary, then extract per-author keywords
//! by tokenising, dropping stop words, counting frequencies and keeping
//! the top N — so the attributed graphs used elsewhere can be built the
//! same way the original system built its input.

use cx_par::rng::Rng64;

use crate::zipf::Zipf;

/// English stop words dropped during extraction (the usual suspects plus
/// title connectives).
pub const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "as", "at", "by", "for", "from", "in", "into", "is", "of", "on", "or",
    "over", "the", "to", "towards", "under", "using", "via", "with", "without",
];

/// Generates `count` publication titles for an author working in `area`
/// (0-based), deterministically per seed. Titles mix the area's technical
/// terms with stop words and generic scaffolding, e.g.
/// `"efficient query processing for streaming data"`.
pub fn generate_titles(area: usize, count: usize, seed: u64) -> Vec<String> {
    let mut rng = Rng64::seed_from_u64(seed ^ (area as u64) << 32);
    let vocab = area_vocabulary(area);
    let zipf = Zipf::new(vocab.len(), 1.0);
    let scaffolds: [&[&str]; 4] = [
        &["efficient", "{}", "{}", "for", "{}", "{}"],
        &["on", "the", "{}", "of", "{}", "{}"],
        &["{}", "{}", "in", "large", "{}", "{}"],
        &["towards", "{}", "{}", "with", "{}", "{}"],
    ];
    (0..count)
        .map(|_| {
            let scaffold = scaffolds[rng.gen_range(0..scaffolds.len())];
            scaffold
                .iter()
                .map(|tok| {
                    if *tok == "{}" {
                        vocab[zipf.sample(&mut rng)].to_string()
                    } else {
                        tok.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// A small technical vocabulary per research area; areas beyond the named
/// ones get numbered synthetic terms.
pub fn area_vocabulary(area: usize) -> Vec<String> {
    let named: [&[&str]; 4] = [
        &[
            "query", "transaction", "data", "database", "index", "storage", "system",
            "processing", "optimization", "concurrency", "recovery", "stream",
        ],
        &[
            "learning", "model", "neural", "network", "training", "inference", "gradient",
            "representation", "classification", "embedding", "attention", "optimization",
        ],
        &[
            "graph", "community", "vertex", "subgraph", "clustering", "traversal", "core",
            "connectivity", "partitioning", "motif", "centrality", "search",
        ],
        &[
            "protocol", "latency", "routing", "packet", "bandwidth", "congestion", "wireless",
            "topology", "switch", "measurement", "overlay", "failure",
        ],
    ];
    match named.get(area) {
        Some(v) => v.iter().map(|s| s.to_string()).collect(),
        None => (0..12).map(|i| format!("term{area}x{i}")).collect(),
    }
}

/// The paper's extraction rule: tokenise all titles, drop stop words and
/// single-character tokens, count frequencies, return the `top_n` most
/// frequent keywords (ties broken alphabetically for determinism).
pub fn keywords_from_titles(titles: &[String], top_n: usize) -> Vec<String> {
    let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for title in titles {
        for token in title.split(|c: char| !c.is_alphanumeric()) {
            let token = token.to_lowercase();
            if token.len() < 2 || STOP_WORDS.contains(&token.as_str()) {
                continue;
            }
            *counts.entry(token).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<(String, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.into_iter().take(top_n).map(|(w, _)| w).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titles_are_deterministic_and_area_flavoured() {
        let a = generate_titles(0, 5, 7);
        let b = generate_titles(0, 5, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        // Database-area titles mention database-area terms.
        let vocab = area_vocabulary(0);
        let hits = a
            .iter()
            .filter(|t| vocab.iter().any(|w| t.contains(w.as_str())))
            .count();
        assert!(hits >= 4, "titles lack area terms: {a:?}");
        // Different seeds differ.
        assert_ne!(a, generate_titles(0, 5, 8));
    }

    #[test]
    fn extraction_drops_stop_words_and_ranks_by_frequency() {
        let titles = vec![
            "efficient query processing for streaming data".to_string(),
            "query optimization in the data stream".to_string(),
            "a data query index".to_string(),
        ];
        let kws = keywords_from_titles(&titles, 3);
        assert_eq!(kws[0], "data"); // 3 occurrences... query also 3; tie → alphabetical
        assert!(kws.contains(&"query".to_string()));
        assert!(!kws.contains(&"for".to_string()));
        assert!(!kws.contains(&"the".to_string()));
        assert!(!kws.contains(&"a".to_string()));
    }

    #[test]
    fn extraction_is_case_insensitive_and_punctuation_safe() {
        let titles = vec!["Graph-Based Community SEARCH: graph communities!".to_string()];
        let kws = keywords_from_titles(&titles, 10);
        assert!(kws.contains(&"graph".to_string()));
        assert_eq!(kws.iter().filter(|k| k.as_str() == "graph").count(), 1);
    }

    #[test]
    fn top_n_caps_output() {
        let titles = generate_titles(2, 30, 3);
        let kws = keywords_from_titles(&titles, 20);
        assert!(kws.len() <= 20);
        assert!(!kws.is_empty());
        // Extracted keywords are dominated by the area vocabulary.
        let vocab = area_vocabulary(2);
        let in_vocab = kws.iter().filter(|k| vocab.contains(k)).count();
        assert!(
            in_vocab * 2 > kws.len(),
            "extracted {kws:?} not dominated by area vocabulary"
        );
    }

    #[test]
    fn empty_titles_give_no_keywords() {
        assert!(keywords_from_titles(&[], 20).is_empty());
        assert!(keywords_from_titles(&["of the and".to_string()], 20).is_empty());
    }

    /// End-to-end: building an attributed vertex from extracted keywords
    /// works exactly like the paper's pipeline.
    #[test]
    fn pipeline_feeds_graph_builder() {
        let titles = generate_titles(0, 20, 9);
        let kws = keywords_from_titles(&titles, 20);
        let refs: Vec<&str> = kws.iter().map(String::as_str).collect();
        let mut b = cx_graph::GraphBuilder::new();
        let v = b.add_vertex("author", &refs);
        let g = b.build();
        assert_eq!(g.keywords(v).len(), kws.len());
    }
}
