#![warn(missing_docs)]

//! # cx-datagen — synthetic attributed graphs and canned fixtures
//!
//! The C-Explorer demo ran on a private sample of the DBLP co-authorship
//! network (977,288 vertices / 3,432,273 edges, 20 title keywords per
//! author) plus Wikipedia profiles of renowned researchers. Neither is
//! shippable, so this crate generates seeded synthetic substitutes that
//! preserve the properties the paper's experiments depend on:
//!
//! * [`dblp_like`] — a scalable co-authorship-style graph: power-law
//!   community ("research area") sizes, preferential-attachment hubs inside
//!   each area (producing the nested dense cores community search exploits),
//!   a mixing fraction of cross-area edges, and per-area Zipf keyword
//!   vocabularies so area members share themed keywords.
//! * [`planted_partition`] — a ground-truth clustering benchmark used to
//!   validate the CODICIL community-detection path (NMI against the
//!   planted labels).
//! * [`fixtures`] — exact small graphs from the paper, most importantly the
//!   Figure 5(a) example (10 vertices, 11 edges, keywords w/x/y/z) whose
//!   ACQ answer and CL-tree shape are spelled out in the paper.
//! * [`profiles`] — synthetic researcher profiles backing the Figure 2
//!   profile-popup flow.
//!
//! All generators take an explicit seed and are deterministic, so every
//! benchmark table in EXPERIMENTS.md is exactly reproducible.

pub mod dblp;
pub mod fixtures;
pub mod planted;
pub mod profiles;
pub mod spatial;
pub mod titles;
pub mod zipf;

pub use dblp::{dblp_like, DblpParams};
pub use fixtures::{figure5_graph, small_collab_graph};
pub use planted::{planted_partition, PlantedParams};
pub use profiles::{generate_profiles, Profile};
pub use spatial::area_clustered_coords;
pub use titles::{generate_titles, keywords_from_titles};
pub use zipf::Zipf;
