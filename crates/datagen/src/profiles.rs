//! Synthetic researcher profiles.
//!
//! The demo extracted "profiles of several hundreds of renowned researchers
//! in the database area from Wikipedia" and showed them in a popup
//! (Figure 2: name, areas, institutes, research interests). We synthesise
//! equivalent records for the highest-degree author of each area — the
//! record store and the click-through flow are what matters, not the prose.

use cx_graph::{AttributedGraph, VertexId};

/// A researcher profile, mirroring the fields of the paper's Figure 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// The vertex this profile describes.
    pub vertex: VertexId,
    /// Display name (the vertex label).
    pub name: String,
    /// Broad areas, e.g. "Computer science".
    pub areas: Vec<String>,
    /// Institutions.
    pub institutes: Vec<String>,
    /// Research interests — derived from the author's top keywords.
    pub interests: Vec<String>,
}

const INSTITUTES: &[&str] = &[
    "University of Hong Kong",
    "University of California, Berkeley",
    "Massachusetts Institute of Technology",
    "Stanford University",
    "ETH Zurich",
    "Tsinghua University",
    "Max Planck Institute for Informatics",
    "University of Michigan",
];

/// Generates profiles for the `per_area_top` highest-degree vertices of
/// each planted area (`area_of[v]` as returned by the generators).
/// Deterministic: institute choice is keyed on the vertex id.
pub fn generate_profiles(
    g: &AttributedGraph,
    area_of: &[usize],
    per_area_top: usize,
) -> Vec<Profile> {
    let n_areas = area_of.iter().copied().max().map_or(0, |m| m + 1);
    let mut by_area: Vec<Vec<VertexId>> = vec![Vec::new(); n_areas];
    for v in g.vertices() {
        if let Some(&a) = area_of.get(v.index()) {
            by_area[a].push(v);
        }
    }
    let mut out = Vec::new();
    for (a, mut members) in by_area.into_iter().enumerate() {
        members.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v.0));
        for &v in members.iter().take(per_area_top) {
            let interests: Vec<String> =
                g.keyword_names(g.keywords(v)).into_iter().take(5).collect();
            out.push(Profile {
                vertex: v,
                name: g.label(v).to_owned(),
                areas: vec!["Computer science".to_owned(), format!("Research area {a}")],
                institutes: vec![
                    INSTITUTES[v.index() % INSTITUTES.len()].to_owned(),
                    INSTITUTES[(v.index() + 3) % INSTITUTES.len()].to_owned(),
                ],
                interests,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dblp::{dblp_like, DblpParams};

    #[test]
    fn profiles_cover_top_authors_of_each_area() {
        let (g, areas) = dblp_like(&DblpParams { authors: 400, areas: 4, ..DblpParams::default() });
        let profiles = generate_profiles(&g, &areas, 3);
        assert_eq!(profiles.len(), 12);
        for p in &profiles {
            assert_eq!(p.name, g.label(p.vertex));
            assert!(!p.interests.is_empty());
            assert_eq!(p.institutes.len(), 2);
        }
        // Each profiled vertex should be a genuine hub: above-average degree.
        let mean = 2.0 * g.edge_count() as f64 / g.vertex_count() as f64;
        for p in &profiles {
            assert!(g.degree(p.vertex) as f64 >= mean, "profiled a non-hub");
        }
    }

    #[test]
    fn deterministic_output() {
        let (g, areas) = dblp_like(&DblpParams { authors: 200, ..DblpParams::default() });
        assert_eq!(generate_profiles(&g, &areas, 2), generate_profiles(&g, &areas, 2));
    }

    #[test]
    fn empty_area_map_gives_no_profiles() {
        let (g, _) = dblp_like(&DblpParams { authors: 100, ..DblpParams::default() });
        assert!(generate_profiles(&g, &[], 3).is_empty());
    }
}
