//! Coordinate generation for spatial community search.
//!
//! The SAC extension (Fang et al., PVLDB'17 — the paper's reference \[3\])
//! needs vertex locations. Real check-in/geo-tagged datasets aren't
//! shippable, so we synthesise the property SAC exploits: members of the
//! same planted area cluster spatially, with a fraction of "travellers"
//! placed far from their area's centre.

use cx_par::rng::Rng64;

/// Generates one `(x, y)` per vertex: area centres sit on a ring of
/// radius 100, members scatter uniformly in a disk of radius
/// `spread` around their centre, and each vertex is a far-flung
/// "traveller" (uniform over the whole map) with probability
/// `traveller_fraction`.
pub fn area_clustered_coords(
    area_of: &[usize],
    spread: f64,
    traveller_fraction: f64,
    seed: u64,
) -> Vec<(f64, f64)> {
    let n_areas = area_of.iter().copied().max().map_or(1, |m| m + 1);
    let mut rng = Rng64::seed_from_u64(seed);
    let centers: Vec<(f64, f64)> = (0..n_areas)
        .map(|a| {
            let theta = 2.0 * std::f64::consts::PI * a as f64 / n_areas as f64;
            (100.0 * theta.cos(), 100.0 * theta.sin())
        })
        .collect();
    area_of
        .iter()
        .map(|&a| {
            if rng.gen_bool(traveller_fraction) {
                // Anywhere on the map.
                (rng.gen_range(-120.0..120.0), rng.gen_range(-120.0..120.0))
            } else {
                let (cx, cy) = centers[a];
                // Uniform in a disk of radius `spread`.
                let r = spread * rng.gen::<f64>().sqrt();
                let t = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
                (cx + r * t.cos(), cy + r * t.sin())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_coordinate_per_vertex_deterministic() {
        let areas = vec![0, 0, 1, 1, 2];
        let a = area_clustered_coords(&areas, 10.0, 0.0, 5);
        let b = area_clustered_coords(&areas, 10.0, 0.0, 5);
        assert_eq!(a.len(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn same_area_members_cluster() {
        let areas: Vec<usize> = (0..400).map(|i| i % 4).collect();
        let coords = area_clustered_coords(&areas, 10.0, 0.0, 1);
        // Mean intra-area distance far below mean cross-area distance.
        let dist = |a: (f64, f64), b: (f64, f64)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        let (mut intra, mut ni) = (0.0, 0);
        let (mut cross, mut nc) = (0.0, 0);
        for i in 0..coords.len() {
            for j in (i + 1)..coords.len().min(i + 40) {
                let d = dist(coords[i], coords[j]);
                if areas[i] == areas[j] {
                    intra += d;
                    ni += 1;
                } else {
                    cross += d;
                    nc += 1;
                }
            }
        }
        assert!(intra / ni as f64 * 3.0 < cross / nc as f64);
    }

    #[test]
    fn travellers_leave_their_cluster() {
        let areas: Vec<usize> = vec![0; 200];
        let stay = area_clustered_coords(&areas, 5.0, 0.0, 9);
        let roam = area_clustered_coords(&areas, 5.0, 0.9, 9);
        let spread = |cs: &[(f64, f64)]| {
            let mx = cs.iter().map(|c| c.0).sum::<f64>() / cs.len() as f64;
            let my = cs.iter().map(|c| c.1).sum::<f64>() / cs.len() as f64;
            cs.iter().map(|c| ((c.0 - mx).powi(2) + (c.1 - my).powi(2)).sqrt()).sum::<f64>()
                / cs.len() as f64
        };
        assert!(spread(&roam) > 3.0 * spread(&stay));
    }
}
