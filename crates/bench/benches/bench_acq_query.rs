//! Criterion bench for E7: the four ACQ strategies at |S| = 6 on the
//! standard workload (Dec is the paper's pick; Basic is the strawman).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cx_acq::{acq, AcqOptions, AcqStrategy};
use cx_bench::{hub_vertex, workload};
use cx_cltree::ClTree;

fn bench_strategies(c: &mut Criterion) {
    let (g, _) = workload(4_000, 42);
    let tree = ClTree::build(&g);
    let q = hub_vertex(&g);
    let s: Vec<_> = g.keywords(q).iter().copied().take(6).collect();

    let mut group = c.benchmark_group("acq_strategies");
    group.sample_size(20);
    for strat in AcqStrategy::ALL {
        let opts = AcqOptions::with_k(4).keywords(s.clone()).max_candidates(100_000);
        group.bench_with_input(BenchmarkId::from_parameter(strat.name()), &strat, |b, &st| {
            b.iter(|| acq(&g, &tree, q, &opts, st))
        });
    }
    group.finish();
}

fn bench_keyword_scaling(c: &mut Criterion) {
    let (g, _) = workload(4_000, 42);
    let tree = ClTree::build(&g);
    let q = hub_vertex(&g);

    let mut group = c.benchmark_group("acq_dec_by_s");
    group.sample_size(20);
    for s_size in [4usize, 8, 12] {
        let s: Vec<_> = g.keywords(q).iter().copied().take(s_size).collect();
        let opts = AcqOptions::with_k(4).keywords(s);
        group.bench_with_input(BenchmarkId::from_parameter(s_size), &opts, |b, opts| {
            b.iter(|| acq(&g, &tree, q, opts, AcqStrategy::Dec))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_keyword_scaling);
criterion_main!(benches);
