//! Bench for E7: the four ACQ strategies at |S| = 6 on the standard
//! workload (Dec is the paper's pick; Basic is the strawman). Uses the
//! std-timer harness in `cx_bench::timer`.

use cx_acq::{acq, AcqOptions, AcqStrategy};
use cx_bench::{hub_vertex, timer::Group, workload};
use cx_cltree::ClTree;

fn bench_strategies() {
    let (g, _) = workload(4_000, 42);
    let tree = ClTree::build(&g);
    let q = hub_vertex(&g);
    let s: Vec<_> = g.keywords(q).iter().copied().take(6).collect();

    let mut group = Group::new("acq_strategies");
    group.sample_size(20);
    for strat in AcqStrategy::ALL {
        let opts = AcqOptions::with_k(4).keywords(s.clone()).max_candidates(100_000);
        group.bench(strat.name(), || acq(&g, &tree, q, &opts, strat));
    }
}

fn bench_keyword_scaling() {
    let (g, _) = workload(4_000, 42);
    let tree = ClTree::build(&g);
    let q = hub_vertex(&g);

    let mut group = Group::new("acq_dec_by_s");
    group.sample_size(20);
    for s_size in [4usize, 8, 12] {
        let s: Vec<_> = g.keywords(q).iter().copied().take(s_size).collect();
        let opts = AcqOptions::with_k(4).keywords(s);
        group.bench(&s_size.to_string(), || acq(&g, &tree, q, &opts, AcqStrategy::Dec));
    }
}

fn main() {
    bench_strategies();
    bench_keyword_scaling();
}
