//! Bench for E6: CL-tree construction cost at doubling sizes (linearity
//! shows as ~2× time per size step), plus the underlying core
//! decomposition alone. Uses the std-timer harness in `cx_bench::timer`.

use cx_bench::{timer::Group, workload};
use cx_cltree::ClTree;
use cx_kcore::CoreDecomposition;

fn main() {
    let mut group = Group::new("cltree_build");
    group.sample_size(10);
    for n in [5_000usize, 10_000, 20_000] {
        let (g, _) = workload(n, 7);
        group.bench(&format!("cl_tree/{n}"), || ClTree::build(&g));
        group.bench(&format!("core_decomposition/{n}"), || CoreDecomposition::compute(&g));
    }
}
