//! Criterion bench for E6: CL-tree construction cost at doubling sizes
//! (linearity shows as ~2× time per size step), plus the underlying core
//! decomposition alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cx_bench::workload;
use cx_cltree::ClTree;
use cx_kcore::CoreDecomposition;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("cltree_build");
    group.sample_size(10);
    for n in [5_000usize, 10_000, 20_000] {
        let (g, _) = workload(n, 7);
        group.bench_with_input(BenchmarkId::new("cl_tree", n), &g, |b, g| {
            b.iter(|| ClTree::build(g))
        });
        group.bench_with_input(BenchmarkId::new("core_decomposition", n), &g, |b, g| {
            b.iter(|| CoreDecomposition::compute(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
