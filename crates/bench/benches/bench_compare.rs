//! Bench for E2/E3: the full comparison-analysis pipeline (methods +
//! statistics + CPJ/CMF + similarity matrix) — what one click of the
//! Analysis tab's "Compare" button costs. Uses the std-timer harness in
//! `cx_bench::timer`.

use cx_bench::{hub_vertex, timer::Group, workload};
use cx_explorer::{Engine, QuerySpec};

fn main() {
    let (g, _) = workload(4_000, 42);
    let hub = hub_vertex(&g);
    let label = g.label(hub).to_owned();
    let engine = Engine::with_graph("dblp", g);
    let spec = QuerySpec::by_label(label).k(4);

    let mut group = Group::new("comparison_analysis");
    group.sample_size(10);
    group.bench("search_methods_only", || {
        engine.compare(None, &["global", "local", "acq"], &spec).expect("compare failed")
    });
    group.bench("with_codicil", || {
        engine
            .compare(None, &["global", "local", "codicil", "acq"], &spec)
            .expect("compare failed")
    });
}
