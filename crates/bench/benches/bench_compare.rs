//! Criterion bench for E2/E3: the full comparison-analysis pipeline
//! (methods + statistics + CPJ/CMF + similarity matrix) — what one click
//! of the Analysis tab's "Compare" button costs.

use criterion::{criterion_group, criterion_main, Criterion};

use cx_bench::{hub_vertex, workload};
use cx_explorer::{Engine, QuerySpec};

fn bench_compare(c: &mut Criterion) {
    let (g, _) = workload(4_000, 42);
    let hub = hub_vertex(&g);
    let label = g.label(hub).to_owned();
    let engine = Engine::with_graph("dblp", g);
    let spec = QuerySpec::by_label(label).k(4);

    let mut group = c.benchmark_group("comparison_analysis");
    group.sample_size(10);
    group.bench_function("search_methods_only", |b| {
        b.iter(|| {
            engine.compare(None, &["global", "local", "acq"], &spec).expect("compare failed")
        })
    });
    group.bench_function("with_codicil", |b| {
        b.iter(|| {
            engine
                .compare(None, &["global", "local", "codicil", "acq"], &spec)
                .expect("compare failed")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compare);
criterion_main!(benches);
