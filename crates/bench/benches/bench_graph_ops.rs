//! Criterion bench for the substrate: the graph/index primitives every
//! query decomposes into — adjacency scans, subset peeling, inverted-list
//! intersection, truss decomposition, layout.

use criterion::{criterion_group, criterion_main, Criterion};

use cx_bench::{hub_vertex, workload};
use cx_graph::{InvertedIndex, Subgraph, VertexId};
use cx_kcore::{k_core_of_subset, TrussDecomposition};
use cx_layout::LayoutAlgorithm;

fn bench_substrate(c: &mut Criterion) {
    let (g, _) = workload(8_000, 7);
    let hub = hub_vertex(&g);

    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);

    group.bench_function("bfs_from_hub", |b| {
        b.iter(|| cx_graph::traversal::bfs(&g, hub).len())
    });

    let all: Vec<VertexId> = g.vertices().collect();
    group.bench_function("k_core_of_whole_graph_k4", |b| {
        b.iter(|| k_core_of_subset(&g, &all, 4).len())
    });

    group.bench_function("inverted_index_build", |b| {
        b.iter(|| InvertedIndex::build(&g).keyword_count())
    });

    let idx = InvertedIndex::build(&g);
    let ws: Vec<_> = g.keywords(hub).iter().copied().take(3).collect();
    group.bench_function("posting_intersection_3way", |b| {
        b.iter(|| idx.vertices_with_all(&g, &ws).len())
    });

    // Community-sized operations.
    let members: Vec<VertexId> = cx_graph::traversal::bfs(&g, hub).into_iter().take(60).collect();
    group.bench_function("induced_subgraph_60", |b| {
        b.iter(|| Subgraph::induced(&g, &members).edge_count())
    });
    let sub = Subgraph::induced(&g, &members);
    group.bench_function("fr_layout_60", |b| {
        b.iter(|| LayoutAlgorithm::default_force().run(&sub, 1).len())
    });
    group.finish();

    let (small, _) = workload(2_000, 7);
    let mut truss = c.benchmark_group("truss");
    truss.sample_size(10);
    truss.bench_function("truss_decomposition_2k", |b| {
        b.iter(|| TrussDecomposition::compute(&small).max_truss())
    });
    truss.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
