//! Bench for the substrate: the graph/index primitives every query
//! decomposes into — adjacency scans, subset peeling, inverted-list
//! intersection, truss decomposition, layout. Uses the std-timer
//! harness in `cx_bench::timer`.

use cx_bench::{hub_vertex, timer::Group, workload};
use cx_graph::{InvertedIndex, Subgraph, VertexId};
use cx_kcore::{k_core_of_subset, TrussDecomposition};
use cx_layout::LayoutAlgorithm;

fn main() {
    let (g, _) = workload(8_000, 7);
    let hub = hub_vertex(&g);

    let mut group = Group::new("substrate");
    group.sample_size(20);

    group.bench("bfs_from_hub", || cx_graph::traversal::bfs(&g, hub).len());

    let all: Vec<VertexId> = g.vertices().collect();
    group.bench("k_core_of_whole_graph_k4", || k_core_of_subset(&g, &all, 4).len());

    group.bench("inverted_index_build", || InvertedIndex::build(&g).keyword_count());

    let idx = InvertedIndex::build(&g);
    let ws: Vec<_> = g.keywords(hub).iter().copied().take(3).collect();
    group.bench("posting_intersection_3way", || idx.vertices_with_all(&g, &ws).len());

    // Community-sized operations.
    let members: Vec<VertexId> = cx_graph::traversal::bfs(&g, hub).into_iter().take(60).collect();
    group.bench("induced_subgraph_60", || Subgraph::induced(&g, &members).edge_count());
    let sub = Subgraph::induced(&g, &members);
    group.bench("fr_layout_60", || LayoutAlgorithm::default_force().run(&sub, 1).len());

    let (small, _) = workload(2_000, 7);
    let mut truss = Group::new("truss");
    truss.sample_size(10);
    truss.bench("truss_decomposition_2k", || TrussDecomposition::compute(&small).max_truss());
}
