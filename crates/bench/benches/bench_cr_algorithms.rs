//! Criterion bench for E8: end-to-end latency of each CR method on the
//! standard workload — the "returned instantly" claim, measured.

use criterion::{criterion_group, criterion_main, Criterion};

use cx_bench::{hub_vertex, workload};
use cx_explorer::{Engine, QuerySpec};

fn bench_methods(c: &mut Criterion) {
    let (g, _) = workload(8_000, 42);
    let hub = hub_vertex(&g);
    let label = g.label(hub).to_owned();
    let engine = Engine::with_graph("dblp", g);
    let spec = QuerySpec::by_label(label).k(4);

    let mut group = c.benchmark_group("cr_methods");
    group.sample_size(10);
    for algo in ["acq", "local", "global", "ktruss"] {
        group.bench_function(algo, |b| {
            b.iter(|| engine.search(algo, &spec).expect("search failed"))
        });
    }
    group.finish();

    // CODICIL separately: it clusters the whole graph per call.
    let mut slow = c.benchmark_group("cr_methods_detection");
    slow.sample_size(10);
    slow.bench_function("codicil", |b| {
        b.iter(|| engine.search("codicil", &spec).expect("search failed"))
    });
    slow.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
