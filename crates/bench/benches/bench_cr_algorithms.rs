//! Bench for E8: end-to-end latency of each CR method on the standard
//! workload — the "returned instantly" claim, measured. Uses the
//! std-timer harness in `cx_bench::timer`.
//!
//! The engine's query cache would make every sample after the first a
//! cache hit, so it is disabled here: this bench measures the
//! algorithms, not the cache.

use cx_bench::{hub_vertex, timer::Group, workload};
use cx_explorer::{Engine, QuerySpec};

fn main() {
    let (g, _) = workload(8_000, 42);
    let hub = hub_vertex(&g);
    let label = g.label(hub).to_owned();
    let engine = Engine::with_graph("dblp", g);
    engine.set_cache_capacity(0);
    let spec = QuerySpec::by_label(label).k(4);

    let mut group = Group::new("cr_methods");
    group.sample_size(10);
    for algo in ["acq", "local", "global", "ktruss"] {
        group.bench(algo, || engine.search(algo, &spec).expect("search failed"));
    }

    // CODICIL separately: it clusters the whole graph per call.
    let mut slow = Group::new("cr_methods_detection");
    slow.sample_size(10);
    slow.bench("codicil", || engine.search("codicil", &spec).expect("search failed"));
}
