//! Experiment E14 (extension) — the detection-side comparison the
//! Analysis module supports: CODICIL vs Louvain vs Girvan–Newman on a
//! planted benchmark, scored by NMI against ground truth, modularity, and
//! wall-clock time. Expected shape: Louvain fastest at comparable NMI;
//! CODICIL most robust when keyword content carries signal the structure
//! lost; Girvan–Newman accurate on small graphs but orders slower —
//! the §2 argument against CD for online use, quantified.

use cx_algos::{Codicil, GirvanNewman, Louvain};
use cx_bench::{fmt_duration, timed};
use cx_datagen::{planted_partition, PlantedParams};
use cx_metrics::{modularity, nmi};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(240);
    let (g, truth) = planted_partition(&PlantedParams {
        vertices: n,
        communities: 4,
        p_intra: 0.15,
        p_inter: 0.03,
        keywords_per_community: 6,
        keyword_noise: 0.3,
        seed: 11,
    });
    println!(
        "Community detection comparison — planted partition, {} vertices, {} edges\n",
        g.vertex_count(),
        g.edge_count()
    );
    println!(
        "{:<16} {:>10} {:>8} {:>12} {:>12}",
        "method", "clusters", "NMI", "modularity", "time"
    );

    let (codicil, t1) = timed(|| Codicil::default().detect(&g));
    let (louvain, t2) = timed(|| Louvain::default().detect(&g));
    let (gn, t3) = timed(|| GirvanNewman::default().detect(&g));

    for (name, c, t) in [
        ("codicil", &codicil, t1),
        ("louvain", &louvain, t2),
        ("girvan-newman", &gn, t3),
    ] {
        println!(
            "{:<16} {:>10} {:>8.3} {:>12.3} {:>12}",
            name,
            c.cluster_count(),
            nmi(&c.labels, &truth),
            modularity(&g, &c.labels),
            fmt_duration(t)
        );
    }
    println!("\nExpected shape: Louvain fastest; CODICIL competitive via content;");
    println!("Girvan–Newman orders of magnitude slower (exact betweenness per cut)");
    println!("— the latency gap that motivates query-based community search.");
}
