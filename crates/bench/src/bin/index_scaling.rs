//! Experiment E6 — the Section 3.2 claim that "the CL-tree can be built
//! in linear space and time cost": index build time and memory versus
//! graph size, doubling n. A linear build shows time/edge and bytes/vertex
//! roughly constant down the table.

use cx_bench::{fmt_duration, timed, workload};
use cx_cltree::ClTree;

fn main() {
    let max_n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(160_000);
    println!("CL-tree construction scaling (doubling graph size)\n");
    println!(
        "{:>9} {:>9} {:>10} {:>12} {:>12} {:>11} {:>7}",
        "vertices", "edges", "build", "ns/edge", "index bytes", "bytes/vert", "nodes"
    );
    let mut n = 10_000usize;
    while n <= max_n {
        let (g, _) = workload(n, 7);
        let (tree, took) = timed(|| ClTree::build(&g));
        let per_edge = took.as_nanos() as f64 / g.edge_count().max(1) as f64;
        let bytes = tree.memory_bytes();
        println!(
            "{:>9} {:>9} {:>10} {:>12.1} {:>12} {:>11.1} {:>7}",
            g.vertex_count(),
            g.edge_count(),
            fmt_duration(took),
            per_edge,
            bytes,
            bytes as f64 / g.vertex_count() as f64,
            tree.node_count()
        );
        n *= 2;
    }
    println!("\nLinear build ⇒ ns/edge and bytes/vertex stay ~flat as n doubles.");
}
