//! Substrate memory footprint: the paper-scale layout (u32 CSR offsets +
//! interned columnar profiles) against the layout it replaced (usize CSR
//! offsets + one `HashMap<VertexId, Profile>` entry per vertex with
//! owned strings).
//!
//! For each size the bench builds a DBLP-like graph at the committed
//! paper-scale density, attaches a full profile set (every author gets a
//! name, area, institute and three interests — the Figure 2 popup data),
//! and reports bytes/vertex for both layouts:
//!
//! * **after** — `AttributedGraph::memory_bytes()` (the real, current
//!   layout) plus `ProfileStore::memory_bytes()`;
//! * **before** — the same logical content costed analytically: each of
//!   the two CSR offset columns at 8 bytes per entry instead of 4, and
//!   profiles as hash-map entries (SwissTable slot at 7/8 load) holding
//!   owned `String`s/`Vec<String>`s.
//!
//! The "before" numbers are computed, not allocated, so the bench runs
//! at 1M vertices without paying for the layout it is deprecating.
//!
//! Emits one JSON line per size; writes `BENCH_memory_footprint.json`
//! unless `--smoke` is given. `--smoke` also asserts the headline
//! claim: ≥ 30% bytes/vertex reduction.
//!
//! Usage: `memory_footprint [sizes] [--smoke]` (default size 1000000).

use std::mem::size_of;

use cx_bench::{dblp_like, DblpParams};
use cx_explorer::{Engine, Profile, ProfileStore};
use cx_graph::{AttributedGraph, VertexId};

/// The synthetic profile of vertex `v` — same content for both layouts.
fn profile_of(g: &AttributedGraph, areas: &[usize], v: VertexId) -> Profile {
    let a = areas[v.index()];
    let interests = g.keyword_names(&g.keywords(v)[..g.keywords(v).len().min(3)]);
    Profile {
        name: g.label(v).to_owned(),
        areas: vec![format!("research-area-{a}")],
        institutes: vec![format!("institute-{}", (a * 7 + v.index()) % 200)],
        interests,
    }
}

/// Analytic cost of one profile in the retired layout: a SwissTable
/// entry (1 control byte + the `(VertexId, Profile)` slot, at 7/8 load)
/// plus every owned string header and byte it pointed at.
fn legacy_profile_bytes(p: &Profile) -> usize {
    let slot = size_of::<(VertexId, Profile)>() + 1;
    let map_entry = slot * 8 / 7;
    let strings: usize = [&p.areas, &p.institutes, &p.interests]
        .iter()
        .flat_map(|l| l.iter())
        .map(|s| s.len() + size_of::<String>())
        .sum();
    map_entry + p.name.len() + strings
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let sizes: Vec<usize> = argv
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|a| a.split(',').filter_map(|p| p.parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1_000_000]);

    let mut report = String::new();
    for &n in &sizes {
        let params = DblpParams { authors: n, ..DblpParams::paper_scale(42) };
        let (g, areas) = dblp_like(&params);
        let edges = g.edge_count();

        // After: the real substrate, measured.
        let store =
            ProfileStore::from_pairs(g.vertices().map(|v| (v, profile_of(&g, &areas, v))));
        let graph_after = g.memory_bytes();
        let profiles_after = store.memory_bytes();

        // Before: the same content costed in the retired layout. The two
        // CSR offset columns (adjacency + keywords) were usize: 4 extra
        // bytes for each of the 2·(n+1) entries.
        let graph_before = graph_after + 2 * (n + 1) * 4;
        let profiles_before: usize =
            g.vertices().map(|v| legacy_profile_bytes(&profile_of(&g, &areas, v))).sum();

        let before = graph_before + profiles_before;
        let after = graph_after + profiles_after;
        let bpv_before = before as f64 / n as f64;
        let bpv_after = after as f64 / n as f64;
        let reduction = 100.0 * (1.0 - bpv_after / bpv_before);

        // Sanity: the compact substrate still answers queries (engines
        // build their index on it; a cheap end-to-end touch).
        let sample = profile_of(&g, &areas, VertexId(0));
        let engine = Engine::with_graph("g", g);
        engine
            .set_profiles(Some("g"), vec![(VertexId(0), sample)])
            .expect("profile write on compact store");
        assert!(engine.profile(Some("g"), VertexId(0)).expect("profile read").is_some());

        let line = format!(
            "{{\"vertices\":{n},\"edges\":{edges},\
             \"graph_bytes_before\":{graph_before},\"graph_bytes_after\":{graph_after},\
             \"profile_bytes_before\":{profiles_before},\"profile_bytes_after\":{profiles_after},\
             \"bytes_per_vertex_before\":{bpv_before:.1},\"bytes_per_vertex_after\":{bpv_after:.1},\
             \"reduction_pct\":{reduction:.1}}}"
        );
        println!("{line}");
        report.push_str(&line);
        report.push('\n');

        if smoke {
            assert!(
                reduction >= 30.0,
                "substrate reduction regressed: {reduction:.1}% < 30% at {n} vertices"
            );
        }
    }

    if smoke {
        println!("(smoke run: ≥30% bytes/vertex reduction holds; BENCH_memory_footprint.json not written)");
    } else {
        std::fs::write("BENCH_memory_footprint.json", &report).expect("write report");
    }
}
