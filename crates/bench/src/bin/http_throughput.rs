//! Transport benchmark for the poll(2) event loop: sustained keep-alive
//! throughput, shed behaviour at 2× overload, and the deadline
//! acceptance probe.
//!
//! Phase 1 (keepalive): `conns` client threads each hold one keep-alive
//! connection and fire `reqs_per_conn` cheap `/api/v1/stats` /
//! `/api/v1/search` requests back-to-back. Reports sustained req/s and
//! per-request p50/p99; every response must be a 200 and no connection
//! may be reset.
//!
//! Phase 2 (overload): the same fleet fires expensive `/api/v1/detect`
//! requests at a server whose admission budget is half the fleet size —
//! a sustained 2× overload. Every response must be a 200 or a typed
//! `overloaded` 503 with `Retry-After`; the shed rate must be nonzero
//! (the loop refuses work instead of queueing without bound) and, again,
//! zero resets.
//!
//! Phase 3 (deadline probe): `detect` with `timeout_ms=50` against a
//! `probe_vertices`-vertex graph (default 100k) must come back as a
//! typed `deadline_exceeded` 408 — and come back *promptly*, which is
//! the whole point of cooperative cancellation.
//!
//! Emits one JSON line per phase plus a summary, and writes the whole
//! report to `BENCH_http_throughput.json`.
//!
//! Usage: `http_throughput [vertices] [conns] [reqs_per_conn] [probe_vertices]`
//! (defaults 5000, 64, 30, 100000).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use cx_bench::workload;
use cx_explorer::Engine;
use cx_server::{Server, ServerConfig};

/// One keep-alive client connection.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(port: u16) -> std::io::Result<Self> {
        let stream = TcpStream::connect(("127.0.0.1", port))?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one GET and reads one Content-Length-framed response;
    /// returns (status, headers, body).
    fn get(&mut self, target: &str) -> std::io::Result<(u16, String, String)> {
        write!(self.stream, "GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n")?;
        let mut raw = Vec::with_capacity(512);
        let mut byte = [0u8; 1];
        while !raw.ends_with(b"\r\n\r\n") {
            match self.stream.read(&mut byte)? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ))
                }
                _ => raw.push(byte[0]),
            }
        }
        let head = String::from_utf8_lossy(&raw).to_string();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status"))?;
        let len: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_owned)
            })
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body)?;
        Ok((status, head, String::from_utf8_lossy(&body).to_string()))
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

struct PhaseOutcome {
    latencies_ms: Vec<f64>,
    statuses: Vec<u16>,
    resets: usize,
    wall: Duration,
}

/// Runs `conns` clients, each firing its target list in order over one
/// keep-alive connection, all released together by a barrier.
fn run_fleet(port: u16, conns: usize, targets: Arc<Vec<String>>) -> PhaseOutcome {
    let barrier = Arc::new(Barrier::new(conns + 1));
    let handles: Vec<_> = (0..conns)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let targets = Arc::clone(&targets);
            std::thread::spawn(move || {
                let mut client = Client::connect(port).expect("connect");
                barrier.wait();
                let mut lat = Vec::with_capacity(targets.len());
                let mut statuses = Vec::with_capacity(targets.len());
                let mut resets = 0usize;
                for t in targets.iter() {
                    let t0 = Instant::now();
                    match client.get(t) {
                        Ok((status, _, _)) => {
                            lat.push(t0.elapsed().as_secs_f64() * 1e3);
                            statuses.push(status);
                        }
                        Err(_) => {
                            resets += 1;
                            // The connection is dead; reconnect to keep
                            // the fleet at strength (still counted).
                            if let Ok(c) = Client::connect(port) {
                                client = c;
                            }
                        }
                    }
                }
                (lat, statuses, resets)
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let mut out = PhaseOutcome {
        latencies_ms: Vec::new(),
        statuses: Vec::new(),
        resets: 0,
        wall: Duration::ZERO,
    };
    for h in handles {
        let (lat, statuses, resets) = h.join().expect("client thread");
        out.latencies_ms.extend(lat);
        out.statuses.extend(statuses);
        out.resets += resets;
    }
    out.wall = t0.elapsed();
    out.latencies_ms.sort_by(f64::total_cmp);
    out
}

fn main() {
    let arg = |i: usize, d: usize| -> usize {
        std::env::args().nth(i).and_then(|a| a.parse().ok()).unwrap_or(d)
    };
    let n = arg(1, 5_000);
    let conns = arg(2, 64).max(2);
    let reqs_per_conn = arg(3, 30).max(1);
    let probe_n = arg(4, 100_000);
    let mut report = String::new();

    // Phase 1: sustained keep-alive throughput on cheap endpoints.
    let (g, _) = workload(n, 7);
    let label = g.label(cx_bench::hub_vertex(&g)).to_owned();
    let server = Server::new(Engine::with_graph("dblp", g));
    let handle = server
        .serve_background_with(ServerConfig {
            workers: 4,
            max_inflight: 4 * conns, // never shed in this phase
            ..ServerConfig::default()
        })
        .expect("bind");
    let targets: Vec<String> = (0..reqs_per_conn)
        .map(|i| {
            if i % 2 == 0 {
                "/api/v1/stats".to_owned()
            } else {
                format!("/api/v1/search?name={label}&k=4&algo=acq&limit=1")
            }
        })
        .collect();
    let p1 = run_fleet(handle.port(), conns, Arc::new(targets));
    let non_200 = p1.statuses.iter().filter(|s| **s != 200).count();
    let req_per_s = p1.statuses.len() as f64 / p1.wall.as_secs_f64().max(1e-9);
    report.push_str(&format!(
        "{{\"phase\":\"keepalive\",\"conns\":{conns},\"requests\":{},\"req_per_s\":{:.0},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"non_200\":{non_200},\"resets\":{}}}\n",
        p1.statuses.len(),
        req_per_s,
        percentile(&p1.latencies_ms, 0.50),
        percentile(&p1.latencies_ms, 0.99),
        p1.resets,
    ));
    drop(handle);
    assert_eq!(non_200, 0, "keepalive phase must be all 200s");
    assert_eq!(p1.resets, 0, "keepalive phase must not reset any connection");

    // Phase 2: 2× overload — admission budget of half the fleet, every
    // client firing whole-graph detection.
    let (g, _) = workload(n, 7);
    let server = Server::new(Engine::with_graph("dblp", g));
    let max_inflight = (conns / 2).max(1);
    let handle = server
        .serve_background_with(ServerConfig {
            workers: 4,
            max_inflight,
            ..ServerConfig::default()
        })
        .expect("bind");
    let rounds = 3usize;
    let targets: Vec<String> =
        (0..rounds).map(|_| "/api/v1/detect?algo=louvain".to_owned()).collect();
    let p2 = run_fleet(handle.port(), conns, Arc::new(targets));
    let ok = p2.statuses.iter().filter(|s| **s == 200).count();
    let shed = p2.statuses.iter().filter(|s| **s == 503).count();
    let other = p2.statuses.len() - ok - shed;
    let shed_rate = shed as f64 / p2.statuses.len().max(1) as f64;
    report.push_str(&format!(
        "{{\"phase\":\"overload\",\"conns\":{conns},\"max_inflight\":{max_inflight},\"requests\":{},\"ok\":{ok},\"shed\":{shed},\"shed_rate\":{shed_rate:.3},\"other_status\":{other},\"resets\":{}}}\n",
        p2.statuses.len(),
        p2.resets,
    ));
    drop(handle);
    assert_eq!(other, 0, "overload phase: every response is a 200 or a typed 503");
    assert_eq!(p2.resets, 0, "overload phase must shed, not reset");
    assert!(shed > 0, "2x overload must shed at least one request");
    assert!(ok > 0, "2x overload must still serve admitted requests");

    // Phase 3: the deadline acceptance probe — detect with timeout_ms=50
    // on the big graph is refused by deadline, promptly and typed.
    let (g, _) = workload(probe_n, 7);
    let server = Server::new(Engine::with_graph("dblp", g));
    let handle = server.serve_background().expect("bind");
    let mut client = Client::connect(handle.port()).expect("connect");
    let t0 = Instant::now();
    let (status, _, body) =
        client.get("/api/v1/detect?algo=louvain&timeout_ms=50").expect("probe response");
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let code = cx_server::Json::parse(&body)
        .ok()
        .and_then(|v| {
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(cx_server::Json::as_str)
                .map(str::to_owned)
        })
        .unwrap_or_default();
    report.push_str(&format!(
        "{{\"phase\":\"deadline_probe\",\"vertices\":{probe_n},\"timeout_ms\":50,\"status\":{status},\"code\":\"{code}\",\"elapsed_ms\":{elapsed_ms:.1}}}\n",
    ));
    assert_eq!(status, 408, "probe: detect must hit the 50ms deadline: {body}");
    assert_eq!(code, "deadline_exceeded", "probe: typed code: {body}");

    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    report.push_str(&format!(
        "{{\"host_cpus\":{cpus},\"zero_resets\":true,\"probe_deadline_exceeded\":true}}\n"
    ));
    print!("{report}");
    std::fs::write("BENCH_http_throughput.json", &report).expect("write report");
}
