//! Experiment E11 (extension) — spatial-aware community search, from the
//! paper's reference \[3\]: compare the q-centred disk radius of the SAC
//! community against the spatial footprint of the plain (non-spatial)
//! k-core community, over several hub queries. Expected shape: SAC
//! communities are dramatically more compact spatially at similar sizes.

use cx_algos::spatial::{distance, sac_appinc};
use cx_algos::Global;
use cx_bench::{fmt_duration, timed, top_hubs, workload};
use cx_datagen::area_clustered_coords;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8000);
    let k: u32 = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(4);
    let (g, areas) = workload(n, 42);
    let coords = area_clustered_coords(&areas, 15.0, 0.05, 42);
    println!(
        "Spatial community search — {} vertices, {} edges; k = {k}\n",
        g.vertex_count(),
        g.edge_count()
    );
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12} {:>12}",
        "query", "SAC size", "SAC radius", "core size", "core radius", "SAC time"
    );
    for q in top_hubs(&g, 5) {
        let cq = coords[q.index()];
        let (sac, took) = timed(|| sac_appinc(&g, &coords, q, k));
        let Some(sac) = sac else {
            println!("{:<12} (no k-core)", g.label(q));
            continue;
        };
        let plain = Global.fixed_k(&g, q, k).expect("SAC implies a k-core exists");
        let plain_radius = plain
            .vertices()
            .iter()
            .map(|&v| distance(coords[v.index()], cq))
            .fold(0.0f64, f64::max);
        println!(
            "{:<12} {:>10} {:>12.1} {:>10} {:>12.1} {:>12}",
            g.label(q),
            sac.community.len(),
            sac.radius,
            plain.len(),
            plain_radius,
            fmt_duration(took)
        );
    }
    println!("\nExpected shape: SAC radius ≪ plain k-core radius (the maximal");
    println!("connected k-core spans several research-area clusters on the map).");
}
