//! Reader latency under a concurrent writer — the payoff benchmark for
//! the snapshot engine core.
//!
//! Phase 1: `READERS` threads fire pinned-snapshot queries at one shared
//! engine with no writer. Phase 2: the same readers run again while one
//! writer thread toggles a hub edge through `Engine::apply_edits`
//! (rebuilding graph + CL-tree and publishing a fresh snapshot each
//! time), pausing between edits like an interactive editor would. Since
//! readers never take a lock an edit holds, the only slowdown phase 2
//! may show is the writer's own CPU use — the per-request p99 must stay
//! within 2× of the writer-free run.
//!
//! Emits one JSON line per phase plus a summary, and writes the whole
//! report to `BENCH_concurrent_reads.json`.
//!
//! Usage: `concurrent_reads [vertices] [reads_per_reader]`
//! (defaults 10000, 40).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cx_bench::{hub_vertex, workload};
use cx_explorer::{Engine, QuerySpec};

const READERS: usize = 8;
/// The writer's pause between edits: long enough that on a single-core
/// host the readers keep a large majority of the CPU (an interactive
/// editor, not a bulk loader).
const WRITER_PAUSE_MS: u64 = 20;

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

/// Runs the reader fleet to completion; returns every per-request wall
/// latency in milliseconds, sorted ascending.
fn reader_latencies(engine: &Arc<Engine>, spec: &QuerySpec, reads: usize) -> Vec<f64> {
    let handles: Vec<_> = (0..READERS)
        .map(|_| {
            let engine = Arc::clone(engine);
            let spec = spec.clone();
            std::thread::spawn(move || {
                let mut times = Vec::with_capacity(reads);
                for _ in 0..reads {
                    let start = Instant::now();
                    let snap = engine.snapshot(None).expect("graph registered");
                    let out = engine.search_snapshot(&snap, "acq", &spec).expect("search");
                    std::hint::black_box(out);
                    times.push(start.elapsed().as_secs_f64() * 1e3);
                }
                times
            })
        })
        .collect();
    let mut all: Vec<f64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
    all.sort_by(f64::total_cmp);
    all
}

fn phase_line(phase: &str, lat: &[f64], edits: usize) -> String {
    format!(
        "{{\"phase\":\"{phase}\",\"readers\":{READERS},\"requests\":{},\"edits\":{edits},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"max_ms\":{:.3}}}",
        lat.len(),
        percentile(lat, 0.50),
        percentile(lat, 0.99),
        lat[lat.len() - 1],
    )
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let reads: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(40);

    let (g, _) = workload(n, 7);
    let hub = hub_vertex(&g);
    let buddy = g.neighbors(hub)[0];
    let label = g.label(hub).to_owned();
    let engine = Arc::new(Engine::with_graph("dblp", g));
    engine.set_cache_capacity(0); // measure the search, not the cache
    let spec = QuerySpec::by_label(label).k(4);

    // Phase 1: readers only.
    let without = reader_latencies(&engine, &spec, reads);

    // Phase 2: readers plus one part-time writer toggling (hub, buddy).
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut edits = 0usize;
            // Always run remove/add in pairs so the graph ends unchanged.
            while !stop.load(Ordering::SeqCst) {
                engine.apply_edits(None, &[], &[(hub, buddy)]).expect("remove");
                engine.apply_edits(None, &[(hub, buddy)], &[]).expect("add back");
                edits += 2;
                std::thread::sleep(std::time::Duration::from_millis(WRITER_PAUSE_MS));
            }
            edits
        })
    };
    let with = reader_latencies(&engine, &spec, reads);
    stop.store(true, Ordering::SeqCst);
    let edits = writer.join().unwrap();

    let ratio = percentile(&with, 0.99) / percentile(&without, 0.99).max(1e-9);
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut report = String::new();
    report.push_str(&phase_line("no_writer", &without, 0));
    report.push('\n');
    report.push_str(&phase_line("with_writer", &with, edits));
    report.push('\n');
    report.push_str(&format!(
        "{{\"vertices\":{n},\"host_cpus\":{cpus},\"p99_ratio_with_vs_without\":{ratio:.3},\"within_2x\":{}}}\n",
        ratio <= 2.0
    ));
    print!("{report}");
    std::fs::write("BENCH_concurrent_reads.json", &report).expect("write report");

    assert!(
        ratio <= 2.0,
        "reader p99 degraded {ratio:.2}x under a concurrent writer (bound: 2x)"
    );
}
