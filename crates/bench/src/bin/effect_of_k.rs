//! Experiment E10 — the Analysis tab's parameter study: how the degree
//! constraint k affects community size and quality for each method.
//! Expected shape: larger k ⇒ smaller, denser, higher-CPJ communities,
//! until the query vertex drops out of the k-core and results vanish.

use cx_bench::{hub_vertex, workload};
use cx_explorer::{Engine, QuerySpec};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8000);
    let (g, _) = workload(n, 42);
    let hub = hub_vertex(&g);
    let label = g.label(hub).to_owned();
    println!(
        "Effect of k — {} vertices, {} edges; query {} (degree {})\n",
        g.vertex_count(),
        g.edge_count(),
        label,
        g.degree(hub)
    );
    let engine = Engine::with_graph("dblp", g);
    println!(
        "{:>3}  {:>16} {:>16} {:>16}",
        "k", "global size", "acq size (count)", "acq CPJ"
    );
    for k in 2..=8u32 {
        let spec = QuerySpec::by_label(label.clone()).k(k);
        let global = engine.search("global", &spec).expect("global failed");
        let acq = engine.search("acq", &spec).expect("acq failed");
        let snap = engine.snapshot(None).unwrap();
        let g = &*snap.graph;
        let global_size =
            global.first().map(|c| c.len().to_string()).unwrap_or_else(|| "-".into());
        let acq_avg = if acq.is_empty() {
            "-".to_owned()
        } else {
            format!(
                "{:.1} ({})",
                acq.iter().map(|c| c.len()).sum::<usize>() as f64 / acq.len() as f64,
                acq.len()
            )
        };
        let cpj = cx_metrics::cpj(g, &acq);
        println!("{:>3}  {:>16} {:>16} {:>16.3}", k, global_size, acq_avg, cpj);
    }
    println!("\nExpected shape: Global's community shrinks sharply as k grows;");
    println!("ACQ trades keyword cohesion for structure (a stricter degree");
    println!("constraint forces it to drop keywords, so its communities grow");
    println!("slightly and CPJ eases down), until the k-core excludes q entirely.");
}
