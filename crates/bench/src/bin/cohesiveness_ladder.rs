//! Experiment E15 (extension) — the cohesiveness ladder (§2's survey of
//! structure-cohesiveness measures, made concrete): the same hub query
//! answered under minimum degree (k-core / Global), triangle support
//! (k-truss), edge connectivity (k-ECC), and degree + keywords (ACQ).
//! Expected shape: community size shrinks as the cohesiveness notion
//! strengthens — k-core ⊇ k-ECC, k-core ⊇ k-truss community — and ACQ's
//! keyword constraint is the most selective of all.

use cx_bench::{fmt_duration, timed, top_hubs, workload};
use cx_explorer::{Engine, QuerySpec};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4_000);
    let k: u32 = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(4);
    let (g, _) = workload(n, 42);
    println!(
        "Cohesiveness ladder — {} vertices, {} edges; k = {k}; 3 hub queries\n",
        g.vertex_count(),
        g.edge_count()
    );
    let hubs = top_hubs(&g, 3);
    let labels: Vec<String> = hubs.iter().map(|&v| g.label(v).to_owned()).collect();
    let engine = Engine::with_graph("dblp", g);

    println!(
        "{:<12} {:>14} {:>12} {:>12}",
        "measure", "avg size", "min deg", "latency"
    );
    // k-truss with truss parameter k means every edge in k-2 triangles;
    // listed with its own scale caveat.
    for (label, algo) in [
        ("k-core", "global"),
        ("k-truss", "ktruss"),
        ("k-ECC", "kecc"),
        ("ACQ", "acq"),
    ] {
        let mut total_size = 0.0;
        let mut total_min_deg = 0.0;
        let mut total_time = std::time::Duration::ZERO;
        let mut hits = 0usize;
        for name in &labels {
            let spec = QuerySpec::by_label(name.clone()).k(k);
            let (out, took) = timed(|| engine.search(algo, &spec).expect("search failed"));
            total_time += took;
            if let Some(c) = out.first() {
                hits += 1;
                total_size += c.len() as f64;
                let snap = engine.snapshot(None).unwrap();
                total_min_deg += c.min_internal_degree(&snap.graph) as f64;
            }
        }
        if hits == 0 {
            println!("{label:<12} {:>14} {:>12} {:>12}", "-", "-", fmt_duration(total_time / 3));
            continue;
        }
        println!(
            "{label:<12} {:>14.1} {:>12.1} {:>12}",
            total_size / hits as f64,
            total_min_deg / hits as f64,
            fmt_duration(total_time / 3)
        );
    }
    println!("\nExpected shape: k-core largest (weakest notion); k-ECC and k-truss");
    println!("tighter (connectivity/triangles cut through the core's weak links);");
    println!("ACQ smallest (structure AND semantics).");
}
