//! Paper-scale serving smoke: a 1M-vertex DBLP-like graph loaded into
//! the engine and served over real HTTP — search and the
//! multi-resolution hierarchy — with every response bounded.
//!
//! The flow mirrors a first browse session at the paper's demo scale:
//!
//! 1. generate the committed paper-scale graph (`DblpParams::
//!    paper_scale`, scaled to the requested size);
//! 2. boot the engine (CL-tree build) and the event-loop server;
//! 3. `GET /api/v1/suggest` + `/api/v1/search` — the entry query path;
//! 4. `GET /api/v1/hierarchy` — the coarse level view, then a drill
//!    -down expansion of the largest supernode, then the deepest level;
//!    every hierarchy response must list at most 1000 nodes.
//!
//! Emits one JSON line with phase timings and response sizes; writes
//! `BENCH_hierarchy_scale.json` unless `--smoke` is given.
//!
//! Usage: `hierarchy_scale [vertices] [--smoke]` (default 1000000).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cx_bench::{dblp_like, DblpParams};
use cx_explorer::Engine;
use cx_server::Server;

/// One GET over a fresh connection; returns (status, body).
fn get(port: u16, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    write!(stream, "GET {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status: u16 =
        raw.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

/// Crude but sufficient: counts occurrences of `needle` in `hay`.
fn count(hay: &str, needle: &str) -> usize {
    hay.matches(needle).count()
}

/// Extracts the first `"key":<number>` value.
fn num_field(body: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat).unwrap_or_else(|| panic!("no {key} in {body:.120}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let n: usize = argv
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);

    let t0 = Instant::now();
    let (g, _) = dblp_like(&DblpParams { authors: n, ..DblpParams::paper_scale(42) });
    let generate_s = t0.elapsed().as_secs_f64();
    let edges = g.edge_count();

    let t0 = Instant::now();
    let engine = Engine::with_graph("main", g);
    let index_s = t0.elapsed().as_secs_f64();

    let server = Server::new(engine);
    let handle = server.serve_background().expect("serve");
    let port = handle.port();

    // Entry query path: suggest, then a bounded search on a real author.
    let t0 = Instant::now();
    let (status, body) = get(port, "/api/v1/suggest?q=author-1&limit=5");
    assert_eq!(status, 200, "suggest: {body:.200}");
    assert!(body.contains("author-1"), "suggest body: {body:.200}");
    let suggest_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let (status, body) = get(port, "/api/v1/search?name=author-7&k=3&limit=2");
    assert_eq!(status, 200, "search: {body:.200}");
    let search_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Coarse level view: first hierarchy request pays the lazy build.
    let t0 = Instant::now();
    let (status, body) = get(port, "/api/v1/hierarchy?level=1&limit=300");
    assert_eq!(status, 200, "hierarchy level: {body:.200}");
    let hierarchy_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let level_nodes = count(&body, "\"residents\":");
    assert!(level_nodes <= 1000, "level view lists {level_nodes} supernodes");
    // At this density the 1-core is essentially one giant component;
    // drill-down below splits it into communities.
    assert!(level_nodes >= 1, "level-1 view is empty");
    let top = num_field(&body, "id") as u32;
    let max_level = num_field(&body, "max_level") as u32;

    // Drill into the largest supernode, warm this time.
    let t0 = Instant::now();
    let (status, body) = get(port, &format!("/api/v1/hierarchy?node={top}&limit=400"));
    assert_eq!(status, 200, "hierarchy expand: {body:.200}");
    let expand_ms = t0.elapsed().as_secs_f64() * 1e3;
    let expand_nodes = count(&body, "\"label\":") + count(&body, "\"residents\":") - 1;
    assert!(expand_nodes <= 1000, "expansion lists {expand_nodes} nodes");

    // The deepest view exists and is bounded too.
    let (status, body) = get(port, &format!("/api/v1/hierarchy?level={max_level}&limit=1000"));
    assert_eq!(status, 200, "deepest level: {body:.200}");
    let deep_nodes = count(&body, "\"residents\":");
    assert!(deep_nodes <= 1000, "deepest view lists {deep_nodes} supernodes");

    drop(handle);

    let line = format!(
        "{{\"vertices\":{n},\"edges\":{edges},\"generate_s\":{generate_s:.1},\
         \"index_s\":{index_s:.1},\"suggest_ms\":{suggest_ms:.1},\"search_ms\":{search_ms:.1},\
         \"hierarchy_first_ms\":{hierarchy_build_ms:.1},\"expand_ms\":{expand_ms:.1},\
         \"level1_supernodes\":{level_nodes},\"max_level\":{max_level}}}"
    );
    println!("{line}");

    if smoke {
        println!("(smoke run: search + bounded hierarchy served at {n} vertices; BENCH_hierarchy_scale.json not written)");
    } else {
        std::fs::write("BENCH_hierarchy_scale.json", format!("{line}\n"))
            .expect("write report");
    }
}
