//! End-to-end ACQ query hot-path latency and allocation census.
//!
//! Measures the steady-state cost of one ACQ query (the engine's default
//! `Dec` strategy) at three levels of the stack, with a counting global
//! allocator recording allocations per query:
//!
//! * `acq_scratch` — the scratch-resident algorithm path
//!   ([`cx_acq::acq_with_scratch`]): after warmup this must perform
//!   **zero** heap allocations per query (the contract `ci.sh` asserts
//!   in smoke mode at `CX_THREADS=1` and `8`);
//! * `acq_public` — the public [`cx_acq::acq`] entry, which copies the
//!   scratch-resident answer out into an owned `AcqResult`;
//! * `engine` — `Engine::search` with the result cache disabled (snapshot
//!   pin + spec resolution + cache-key construction + algorithm).
//!
//! Queries target the `top_hubs` of the seeded workload with `k = 4`,
//! matching the `query` phase of `par_scaling`.
//!
//! Usage: `query_hotpath [vertices] [samples] [--smoke]`
//! (defaults 100000, 5). `--smoke` additionally asserts the steady-state
//! zero-alloc contract and exits non-zero on violation.

use std::time::Instant;

use cx_acq::{AcqOptions, AcqStrategy};
use cx_bench::alloc_counter;
use cx_bench::{peak_rss_kb, top_hubs, workload};
use cx_cltree::ClTree;
use cx_explorer::{Engine, QuerySpec};
use cx_graph::VertexId;

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

const K: u32 = 4;
const QUERY_COUNT: usize = 8;

/// Runs `f` once per query for `samples` rounds (after one warmup round)
/// and returns `(median ms per query, median allocs per query, median
/// bytes per query)`.
fn measure(
    samples: usize,
    queries: &[VertexId],
    mut f: impl FnMut(VertexId),
) -> (f64, u64, u64) {
    for &q in queries {
        f(q); // warmup: buffer capacities reach steady state
    }
    let mut times: Vec<f64> = Vec::new();
    let mut allocs: Vec<u64> = Vec::new();
    let mut bytes: Vec<u64> = Vec::new();
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        let ((), a, b) = alloc_counter::counted(|| {
            for &q in queries {
                f(q);
            }
        });
        times.push(start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64);
        allocs.push(a / queries.len() as u64);
        bytes.push(b / queries.len() as u64);
    }
    times.sort_by(f64::total_cmp);
    allocs.sort_unstable();
    bytes.sort_unstable();
    (times[times.len() / 2], allocs[allocs.len() / 2], bytes[bytes.len() / 2])
}

fn report(phase: &str, n: usize, samples: usize, (ms, allocs, bytes): (f64, u64, u64)) {
    println!(
        "{{\"phase\":\"{phase}\",\"vertices\":{n},\"median_ms_per_query\":{ms:.3},\
         \"allocs_per_query\":{allocs},\"bytes_per_query\":{bytes},\"samples\":{samples}}}"
    );
}

fn main() {
    // Observability spans allocate their label when enabled; the contract
    // under test is the algorithm's, so measure with obs off.
    std::env::set_var("CX_OBS", "off");
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let samples: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(5);

    let (g, _) = workload(n, 7);
    let tree = ClTree::build(&g);
    let queries = top_hubs(&g, QUERY_COUNT);
    let opts = AcqOptions::with_k(K);

    // Scratch-resident path: the answer stays in reusable buffers, so a
    // steady-state query is alloc-free.
    let mut scratch = cx_acq::QueryScratch::new();
    let mut answer = cx_acq::QueryAnswer::new();
    let scratch_stats = measure(samples, &queries, |q| {
        cx_acq::acq_with_scratch(&g, &tree, q, &opts, AcqStrategy::Dec, &mut scratch, &mut answer);
        std::hint::black_box(answer.community_count());
    });
    report("acq_scratch", n, samples, scratch_stats);

    // Public API: same algorithm plus the owned `AcqResult` copy-out.
    let public_stats = measure(samples, &queries, |q| {
        std::hint::black_box(cx_acq::acq(&g, &tree, q, &opts, AcqStrategy::Dec));
    });
    report("acq_public", n, samples, public_stats);

    // Engine end to end, cache disabled so the algorithm is measured.
    let labels: Vec<String> = queries.iter().map(|&q| g.label(q).to_owned()).collect();
    let engine = Engine::with_graph("dblp", g);
    engine.set_cache_capacity(0);
    let mut li = 0usize;
    let engine_stats = measure(samples, &queries, |_| {
        let spec = QuerySpec::by_label(labels[li % labels.len()].clone()).k(K);
        li += 1;
        std::hint::black_box(engine.search("acq", &spec).expect("search failed"));
    });
    report("engine", n, samples, engine_stats);

    let threads = cx_par::num_threads();
    let rss = peak_rss_kb().unwrap_or(0);
    println!(
        "{{\"vertices\":{n},\"threads\":{threads},\"peak_rss_kb\":{rss},\
         \"zero_alloc_steady_state\":{}}}",
        scratch_stats.1 == 0
    );
    if smoke {
        assert_eq!(
            scratch_stats.1, 0,
            "steady-state zero-alloc contract violated: {} allocs/query on the scratch path",
            scratch_stats.1
        );
    }
}
