//! End-to-end ACQ query hot-path latency and allocation census.
//!
//! Measures the steady-state cost of one ACQ query (the engine's default
//! `Dec` strategy) at three levels of the stack, with a counting global
//! allocator recording allocations per query:
//!
//! * `acq_scratch` — the scratch-resident algorithm path
//!   ([`cx_acq::acq_with_scratch`]): after warmup this must perform
//!   **zero** heap allocations per query (the contract `ci.sh` asserts
//!   in smoke mode at `CX_THREADS=1` and `8`);
//! * `acq_public` — the public [`cx_acq::acq`] entry, which copies the
//!   scratch-resident answer out into an owned `AcqResult`;
//! * `engine` — `Engine::search` with the result cache disabled (snapshot
//!   pin + spec resolution + cache-key construction + algorithm).
//!
//! Queries target the `top_hubs` of the seeded workload with `k = 4`,
//! matching the `query` phase of `par_scaling`. At 1M vertices and above
//! the committed paper-scale dataset (`DblpParams::paper_scale`, seed 42
//! — the same graph `hierarchy_scale` serves) replaces the scaled
//! workload, so the 1M row is measured on the graph the paper's numbers
//! anchor to.
//!
//! Usage: `query_hotpath [vertices] [samples] [--smoke] [--profile]
//! [--max-engine-ms MS]` (defaults 100000, 5).
//!
//! * `--smoke` additionally asserts the steady-state zero-alloc contract
//!   and exits non-zero on violation.
//! * `--profile` runs an extra profiled pass over the scratch path and
//!   emits a per-phase row (CL-tree walk / verify / member expansion).
//! * `--max-engine-ms MS` exits non-zero when the engine median exceeds
//!   the bound — the CI regression gate for the pruned path.
//!
//! Signature pruning honours `CX_PRUNE`: run with `CX_PRUNE=off` for the
//! exact legacy path (full subtree walks, no count short-circuit) on the
//! same dataset — the "before" side of the committed bench rows.

use std::time::Instant;

use cx_acq::{AcqOptions, AcqStrategy};
use cx_bench::alloc_counter;
use cx_bench::{peak_rss_kb, top_hubs, workload};
use cx_cltree::ClTree;
use cx_explorer::{Engine, QuerySpec};
use cx_graph::VertexId;

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

const K: u32 = 4;
const QUERY_COUNT: usize = 8;

/// Runs `f` once per query for `samples` rounds (after one warmup round)
/// and returns `(median ms per query, median allocs per query, median
/// bytes per query)`.
fn measure(
    samples: usize,
    queries: &[VertexId],
    mut f: impl FnMut(VertexId),
) -> (f64, u64, u64) {
    for &q in queries {
        f(q); // warmup: buffer capacities reach steady state
    }
    let mut times: Vec<f64> = Vec::new();
    let mut allocs: Vec<u64> = Vec::new();
    let mut bytes: Vec<u64> = Vec::new();
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        let ((), a, b) = alloc_counter::counted(|| {
            for &q in queries {
                f(q);
            }
        });
        times.push(start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64);
        allocs.push(a / queries.len() as u64);
        bytes.push(b / queries.len() as u64);
    }
    times.sort_by(f64::total_cmp);
    allocs.sort_unstable();
    bytes.sort_unstable();
    (times[times.len() / 2], allocs[allocs.len() / 2], bytes[bytes.len() / 2])
}

fn report(phase: &str, n: usize, samples: usize, (ms, allocs, bytes): (f64, u64, u64)) {
    println!(
        "{{\"phase\":\"{phase}\",\"vertices\":{n},\"median_ms_per_query\":{ms:.3},\
         \"allocs_per_query\":{allocs},\"bytes_per_query\":{bytes},\"samples\":{samples}}}"
    );
}

fn main() {
    // Observability spans allocate their label when enabled; the contract
    // under test is the algorithm's, so measure with obs off.
    std::env::set_var("CX_OBS", "off");
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let profile = args.iter().any(|a| a == "--profile");
    args.retain(|a| a != "--profile");
    let max_engine_ms: Option<f64> = args
        .iter()
        .position(|a| a == "--max-engine-ms")
        .map(|i| args[i + 1].parse().expect("--max-engine-ms needs a number"));
    if let Some(i) = args.iter().position(|a| a == "--max-engine-ms") {
        args.drain(i..i + 2);
    }
    let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let samples: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(5);

    // At paper scale, measure on the committed paper-scale graph (the one
    // hierarchy_scale serves) rather than the small-workload generator.
    let (g, _) = if n >= 1_000_000 {
        cx_bench::dblp_like(&cx_bench::DblpParams { authors: n, ..cx_bench::DblpParams::paper_scale(42) })
    } else {
        workload(n, 7)
    };
    let tree = ClTree::build(&g);
    let queries = top_hubs(&g, QUERY_COUNT);
    let opts = AcqOptions::with_k(K);

    // Scratch-resident path: the answer stays in reusable buffers, so a
    // steady-state query is alloc-free.
    let mut scratch = cx_acq::QueryScratch::new();
    let mut answer = cx_acq::QueryAnswer::new();
    let scratch_stats = measure(samples, &queries, |q| {
        cx_acq::acq_with_scratch(&g, &tree, q, &opts, AcqStrategy::Dec, &mut scratch, &mut answer);
        std::hint::black_box(answer.community_count());
    });
    report("acq_scratch", n, samples, scratch_stats);

    // Public API: same algorithm plus the owned `AcqResult` copy-out.
    let public_stats = measure(samples, &queries, |q| {
        std::hint::black_box(cx_acq::acq(&g, &tree, q, &opts, AcqStrategy::Dec));
    });
    report("acq_public", n, samples, public_stats);

    // Optional profiled pass: where does a scratch-path query spend its
    // time? (walk = CL-tree traversals, verify = peels + intersections,
    // expand = finalize/member expansion; the remainder is driver logic.)
    if profile {
        cx_acq::profile::set_enabled(true);
        cx_acq::profile::reset();
        let rounds = samples.max(1);
        for _ in 0..rounds {
            for &q in &queries {
                cx_acq::acq_with_scratch(
                    &g, &tree, q, &opts, AcqStrategy::Dec, &mut scratch, &mut answer,
                );
                std::hint::black_box(answer.community_count());
            }
        }
        cx_acq::profile::set_enabled(false);
        let t = cx_acq::profile::totals();
        let per = (rounds * queries.len()) as f64;
        println!(
            "{{\"phase\":\"profile\",\"vertices\":{n},\
             \"walk_ms_per_query\":{:.3},\"verify_ms_per_query\":{:.3},\
             \"expand_ms_per_query\":{:.3},\"samples\":{rounds}}}",
            t.walk_ns as f64 / per / 1e6,
            t.verify_ns as f64 / per / 1e6,
            t.expand_ns as f64 / per / 1e6,
        );
    }

    // Engine end to end, cache disabled so the algorithm is measured.
    let labels: Vec<String> = queries.iter().map(|&q| g.label(q).to_owned()).collect();
    let engine = Engine::with_graph("dblp", g);
    engine.set_cache_capacity(0);
    let mut li = 0usize;
    let engine_stats = measure(samples, &queries, |_| {
        let spec = QuerySpec::by_label(labels[li % labels.len()].clone()).k(K);
        li += 1;
        std::hint::black_box(engine.search("acq", &spec).expect("search failed"));
    });
    report("engine", n, samples, engine_stats);

    let threads = cx_par::num_threads();
    let rss = peak_rss_kb().unwrap_or(0);
    println!(
        "{{\"vertices\":{n},\"threads\":{threads},\"peak_rss_kb\":{rss},\
         \"zero_alloc_steady_state\":{}}}",
        scratch_stats.1 == 0
    );
    if smoke {
        assert_eq!(
            scratch_stats.1, 0,
            "steady-state zero-alloc contract violated: {} allocs/query on the scratch path",
            scratch_stats.1
        );
    }
    if let Some(bound) = max_engine_ms {
        assert!(
            engine_stats.0 <= bound,
            "engine median {:.3}ms exceeds the --max-engine-ms bound {bound}ms",
            engine_stats.0
        );
    }
}
