//! Edit latency: the payoff benchmark for the incremental write path.
//!
//! Measures `Engine::apply_edits` wall time on DBLP-like graphs, for a
//! single-edge toggle and a 16-edge batch, under both write paths:
//!
//! * **incremental** (the default): CSR patch + warm `DynamicCore` core
//!   maintenance + subcore-scoped CL-tree repair;
//! * **full** (`CX_INCREMENTAL=off`): rebuild graph and CL-tree from
//!   scratch — the pre-incremental behaviour, kept as the baseline.
//!
//! Edits always run in remove/re-add pairs so the graph ends every round
//! unchanged and the two modes measure identical work items. Emits one
//! JSON line per (size, mode, batch) configuration plus a speedup
//! summary per size, writes the report to `BENCH_edit_latency.json`,
//! and asserts the single-edge speedup bound on the largest size.
//!
//! Usage: `edit_latency [sizes] [rounds] [min_speedup]`
//! (defaults `10000,100000`, 20, 1.0 — CI smoke-runs a small size with a
//! modest bound; the committed report uses the defaults with bound 10).

use std::time::Instant;

use cx_bench::{hub_vertex, workload};
use cx_explorer::Engine;
use cx_graph::{AttributedGraph, VertexId};

const BATCH: usize = 16;

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

/// Picks `BATCH` edges spread across the graph (every `m/BATCH`-th edge),
/// so a batch touches many subcores rather than one hub neighbourhood.
fn batch_edges(g: &AttributedGraph) -> Vec<(VertexId, VertexId)> {
    let m = g.edge_count();
    let stride = (m / BATCH).max(1);
    g.edges().step_by(stride).take(BATCH).collect()
}

/// Times `rounds` remove/re-add pairs of `edges` through one engine;
/// returns every per-call latency in microseconds, sorted ascending.
fn measure(engine: &Engine, edges: &[(VertexId, VertexId)], rounds: usize) -> Vec<f64> {
    // Warm-up pair: seeds the writer's DynamicCore cache (incremental
    // mode) and faults in whatever either mode allocates lazily.
    engine.apply_edits(None, &[], edges).expect("warm-up remove");
    engine.apply_edits(None, edges, &[]).expect("warm-up re-add");
    let mut times = Vec::with_capacity(rounds * 2);
    for _ in 0..rounds {
        for (add, remove) in [(&[][..], edges), (edges, &[][..])] {
            let start = Instant::now();
            engine.apply_edits(None, add, remove).expect("edit");
            times.push(start.elapsed().as_secs_f64() * 1e6);
        }
    }
    times.sort_by(f64::total_cmp);
    times
}

fn config_line(n: usize, mode: &str, batch: usize, lat: &[f64]) -> String {
    format!(
        "{{\"vertices\":{n},\"mode\":\"{mode}\",\"batch\":{batch},\"calls\":{},\"p50_us\":{:.1},\"p99_us\":{:.1},\"max_us\":{:.1}}}",
        lat.len(),
        percentile(lat, 0.50),
        percentile(lat, 0.99),
        lat[lat.len() - 1],
    )
}

fn main() {
    let sizes: Vec<usize> = std::env::args()
        .nth(1)
        .map(|a| a.split(',').filter_map(|p| p.parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![10_000, 100_000]);
    let rounds: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(20);
    let min_speedup: f64 = std::env::args().nth(3).and_then(|a| a.parse().ok()).unwrap_or(1.0);

    let mut report = String::new();
    let mut last_speedup = f64::INFINITY;
    for &n in &sizes {
        let (g, _) = workload(n, 7);
        let hub = hub_vertex(&g);
        let single = vec![(hub, g.neighbors(hub)[0])];
        let batch = batch_edges(&g);
        let mut p50 = std::collections::HashMap::new();
        for (mode, env) in [("incremental", "on"), ("full", "off")] {
            // The env var is read per apply_edits call; the bench is
            // single-threaded outside `measure`, so toggling is safe.
            std::env::set_var("CX_INCREMENTAL", env);
            let engine = Engine::with_graph("dblp", g.clone());
            for (kind, edges) in [("single", &single), ("batch", &batch)] {
                let lat = measure(&engine, edges, rounds);
                let line = config_line(n, mode, edges.len(), &lat);
                println!("{line}");
                report.push_str(&line);
                report.push('\n');
                p50.insert((mode, kind), percentile(&lat, 0.50));
            }
        }
        std::env::remove_var("CX_INCREMENTAL");
        let single_speedup = p50[&("full", "single")] / p50[&("incremental", "single")].max(1e-9);
        let batch_speedup = p50[&("full", "batch")] / p50[&("incremental", "batch")].max(1e-9);
        let line = format!(
            "{{\"vertices\":{n},\"edges\":{},\"single_edge_speedup\":{single_speedup:.1},\"batch16_speedup\":{batch_speedup:.1}}}",
            g.edge_count()
        );
        println!("{line}");
        report.push_str(&line);
        report.push('\n');
        last_speedup = single_speedup;
    }
    std::fs::write("BENCH_edit_latency.json", &report).expect("write report");

    assert!(
        last_speedup >= min_speedup,
        "single-edge incremental speedup {last_speedup:.1}x at the largest size \
         is below the {min_speedup}x bound"
    );
}
