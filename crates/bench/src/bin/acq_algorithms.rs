//! Experiment E7 — the Section 3.2 claim that "Dec is generally faster
//! than Inc-S and Inc-T": query latency and candidate-verification counts
//! of Basic / Inc-S / Inc-T / Dec as the number of query keywords |S|
//! grows. Expected shape: Basic blows up exponentially; Inc-T ≤ Inc-S;
//! Dec lowest at realistic |S|.

use cx_acq::{acq, AcqOptions, AcqStrategy};
use cx_bench::{fmt_duration, timed, top_hubs, workload};
use cx_cltree::ClTree;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4000);
    let k: u32 = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(4);
    let (g, _) = workload(n, 42);
    let tree = ClTree::build(&g);
    let hubs = top_hubs(&g, 3);
    println!(
        "ACQ query strategies — {} vertices, {} edges; k = {k}; 3 hub queries\n",
        g.vertex_count(),
        g.edge_count()
    );
    println!(
        "{:>4}  {:>12} {:>10}  {:>12} {:>10}  {:>12} {:>10}  {:>12} {:>10}",
        "|S|", "Basic", "cands", "Inc-S", "cands", "Inc-T", "cands", "Dec", "cands"
    );

    for s_size in [2usize, 4, 6, 8, 10] {
        let mut line = format!("{s_size:>4}");
        for strat in [AcqStrategy::Basic, AcqStrategy::IncS, AcqStrategy::IncT, AcqStrategy::Dec]
        {
            let mut total = std::time::Duration::ZERO;
            let mut cands = 0usize;
            for &q in &hubs {
                let s: Vec<_> = g.keywords(q).iter().copied().take(s_size).collect();
                let opts = AcqOptions::with_k(k).keywords(s).max_candidates(200_000);
                let (res, took) = timed(|| acq(&g, &tree, q, &opts, strat));
                total += took;
                cands += res.candidates_verified;
            }
            line.push_str(&format!("  {:>12} {:>10}", fmt_duration(total / 3), cands / 3));
        }
        println!("{line}");
    }
    println!("\nExpected shape: Basic grows exponentially with |S|; the indexed");
    println!("strategies stay flat; Dec does the least verification work.");
}
