//! Parallel scaling of the CR hot paths over the `cx-par` pool: core
//! decomposition, CL-tree build, triangle counting, and end-to-end query
//! latency at 1/2/4/8 threads on one seeded workload.
//!
//! Emits one JSON line per `(threads, phase)` measurement — median
//! latency plus an allocation census (a counting global allocator
//! records allocs/bytes for one run of each phase) — so runs are
//! machine-comparable (see `BENCH_par_scaling.json` for a committed
//! run), then a summary block with the speedups versus one thread, the
//! process peak RSS, and a determinism check: core numbers, tree vertex
//! sets, and triangle counts must be identical at every thread count.
//!
//! Scaling is enforced softly: on a multi-core host, if the best phase
//! speedup at the highest thread count falls below [`SPEEDUP_FLOOR`] the
//! run prints a loud warning (but still exits 0 — CI boxes vary too much
//! for a hard gate). Determinism stays a hard assert.
//!
//! Usage: `par_scaling [vertices] [samples]` (defaults 100000, 3).

use std::time::Instant;

use cx_bench::{alloc_counter, hub_vertex, peak_rss_kb, workload};
use cx_cltree::ClTree;
use cx_explorer::{Engine, QuerySpec};
use cx_kcore::truss::triangle_count;
use cx_kcore::CoreDecomposition;

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;

const PHASES: [&str; 4] = ["core_decomposition", "cltree_build", "triangle_count", "query"];

/// Minimum acceptable best-phase speedup at the highest thread count on
/// a host that actually has more than one CPU. Warn-only.
const SPEEDUP_FLOOR: f64 = 1.2;

/// Median of `samples` timed runs of `f` plus an allocation census of
/// one additional run: `(median ms, allocs, bytes)`.
fn measure<R>(samples: usize, mut f: impl FnMut() -> R) -> (f64, u64, u64) {
    std::hint::black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let (_, allocs, bytes) = alloc_counter::counted(|| std::hint::black_box(f()));
    (times[times.len() / 2], allocs, bytes)
}

/// A stable fingerprint of a vertex-set family (FNV-1a over sorted data).
fn fingerprint(chunks: impl IntoIterator<Item = Vec<u32>>) -> u64 {
    let mut sets: Vec<Vec<u32>> = chunks.into_iter().collect();
    for s in &mut sets {
        s.sort_unstable();
    }
    sets.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in &sets {
        for &v in s {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
        h = (h ^ 0xff).wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct Run {
    threads: usize,
    /// phase → median ms, in `PHASES` order.
    ms: Vec<f64>,
    cores: Vec<u32>,
    tree_print: u64,
    triangles: usize,
}

fn run_at(threads: usize, n: usize, samples: usize) -> Run {
    std::env::set_var("CX_THREADS", threads.to_string());
    cx_par::refresh_threads();
    let (g, _) = workload(n, 7);

    let core = measure(samples, || CoreDecomposition::compute_par(&g));
    let tree_m = measure(samples, || ClTree::build(&g));
    let tri = measure(samples, || triangle_count(&g));

    let hub = hub_vertex(&g);
    let label = g.label(hub).to_owned();
    let cores = CoreDecomposition::compute_par(&g).core_numbers().to_vec();
    let tree = ClTree::build(&g);
    let tree_print = fingerprint(
        (0..tree.node_count()).map(|i| tree.node(cx_cltree::NodeId(i as u32)).vertices.iter().map(|v| v.0).collect()),
    );
    let triangles = triangle_count(&g);

    let engine = Engine::with_graph("dblp", g);
    engine.set_cache_capacity(0); // measure the algorithm, not the cache
    let spec = QuerySpec::by_label(label).k(4);
    let query = measure(samples, || engine.search("acq", &spec).expect("search failed"));

    let phases = [core, tree_m, tri, query];
    for (phase, &(m, allocs, bytes)) in PHASES.iter().zip(&phases) {
        println!(
            "{{\"threads\":{threads},\"phase\":\"{phase}\",\"vertices\":{n},\"median_ms\":{m:.2},\"allocs\":{allocs},\"bytes\":{bytes},\"samples\":{samples}}}"
        );
    }
    Run {
        threads,
        ms: phases.iter().map(|&(m, _, _)| m).collect(),
        cores,
        tree_print,
        triangles,
    }
}

fn main() {
    // Tracing spans allocate; keep the census about the algorithms.
    if std::env::var_os("CX_OBS").is_none() {
        std::env::set_var("CX_OBS", "off");
    }
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let samples: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(3);

    let runs: Vec<Run> = [1usize, 2, 4, 8].iter().map(|&t| run_at(t, n, samples)).collect();

    let base = &runs[0];
    let identical = runs.iter().all(|r| {
        r.cores == base.cores && r.tree_print == base.tree_print && r.triangles == base.triangles
    });
    for r in &runs[1..] {
        for (i, phase) in PHASES.iter().enumerate() {
            println!(
                "{{\"threads\":{},\"phase\":\"{phase}\",\"speedup_vs_1\":{:.2}}}",
                r.threads,
                base.ms[i] / r.ms[i].max(1e-9)
            );
        }
    }
    // Speedup is bounded by the cores actually present: on a single-core
    // host every thread count time-slices one CPU and speedups sit at
    // ~1.0 — record the host so readers can interpret the numbers.
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let widest = runs.last().expect("at least one run");
    let best_speedup = (0..PHASES.len())
        .map(|i| base.ms[i] / widest.ms[i].max(1e-9))
        .fold(0.0f64, f64::max);
    if cpus > 1 && best_speedup < SPEEDUP_FLOOR {
        eprintln!(
            "WARN: best phase speedup at {} threads is {best_speedup:.2}x on a {cpus}-cpu \
             host (soft floor {SPEEDUP_FLOOR}x)",
            widest.threads
        );
    }
    let rss = peak_rss_kb().unwrap_or(0);
    println!(
        "{{\"vertices\":{n},\"host_cpus\":{cpus},\"peak_rss_kb\":{rss},\"best_speedup_at_{}\":{best_speedup:.2},\"results_identical_across_threads\":{identical}}}",
        widest.threads
    );
    assert!(identical, "parallel results diverged from single-threaded");
}
