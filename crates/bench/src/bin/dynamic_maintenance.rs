//! Experiment E13 (extension) — incremental vs from-scratch core
//! maintenance on an evolving co-authorship stream: per-edge cost of
//! `DynamicCore` (streaming k-core) against re-peeling the whole graph
//! per edit, at growing graph sizes. Expected shape: the incremental
//! update touches only the affected subcore, staying 1-2 orders of
//! magnitude cheaper than the linear re-peel at every size.

use cx_bench::{fmt_duration, timed, workload};
use cx_kcore::{CoreDecomposition, DynamicCore};

fn main() {
    let max_n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(32_000);
    let edits: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(500);
    println!("Streaming core maintenance — {edits} edge edits per size\n");
    println!(
        "{:>9} {:>9} {:>16} {:>16} {:>9}",
        "vertices", "edges", "incremental/edit", "recompute/edit", "speedup"
    );
    let mut n = 4_000usize;
    while n <= max_n {
        let (g, _) = workload(n, 7);
        // The edit script: delete then re-insert a sample of existing
        // edges (keeps the graph statistically stationary).
        let sample: Vec<_> = g.edges().step_by((g.edge_count() / edits).max(1)).collect();

        let mut dc = DynamicCore::from_graph(&g);
        let (_, inc_time) = timed(|| {
            for &(u, v) in &sample {
                dc.remove_edge(u, v);
                dc.insert_edge(u, v);
            }
        });
        let per_inc = inc_time / (2 * sample.len()) as u32;

        // Recompute baseline: one full decomposition per edit.
        let probe = sample.len().min(10); // full recompute is slow; extrapolate
        let (_, full_time) = timed(|| {
            for _ in 0..probe {
                let cd = CoreDecomposition::compute(&g);
                std::hint::black_box(cd.max_core());
            }
        });
        let per_full = full_time / probe as u32;

        println!(
            "{:>9} {:>9} {:>16} {:>16} {:>8.1}x",
            g.vertex_count(),
            g.edge_count(),
            fmt_duration(per_inc),
            fmt_duration(per_full),
            per_full.as_secs_f64() / per_inc.as_secs_f64().max(1e-12)
        );
        n *= 2;
    }
    println!("\nExpected shape: the incremental update touches only the affected");
    println!("subcore, so it stays 1-2 orders of magnitude cheaper than a full");
    println!("re-peel at every size (the subcore itself varies per edit, so the");
    println!("exact factor fluctuates).");
}
