//! Observability overhead bench: end-to-end request latency through the
//! full HTTP routing layer (`Server::handle` on `/api/v1/search`) with
//! cx-obs instrumentation enabled vs disabled (`cx_obs::set_enabled`).
//!
//! The query cache is turned off so every request exercises the real
//! algorithm path — the worst case for span overhead, since spans fire
//! on every layer instead of short-circuiting at the cache.
//!
//! Acceptance: median overhead below 5%. The bench prints a JSON report
//! and exits non-zero only with `--strict` (CI smoke runs stay resilient
//! to timer noise on loaded machines).
//!
//! Usage: `obs_overhead [vertices] [iters] [--strict]`

use std::time::Instant;

use cx_bench::{hub_vertex, workload};
use cx_explorer::Engine;
use cx_server::{Request, Server};

fn median_us(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Per-request latencies in microseconds for `iters` requests.
fn run(server: &Server, req: &Request, warmup: usize, iters: usize) -> Vec<f64> {
    for _ in 0..warmup {
        let r = server.handle(req);
        assert_eq!(r.status, 200, "bench request failed: {}", r.text());
    }
    (0..iters)
        .map(|_| {
            let t = Instant::now();
            let r = server.handle(req);
            let us = t.elapsed().as_secs_f64() * 1e6;
            assert_eq!(r.status, 200);
            us
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strict = args.iter().any(|a| a == "--strict");
    let nums: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let n = nums.first().copied().unwrap_or(4_000);
    let iters = nums.get(1).copied().unwrap_or(200);
    let warmup = (iters / 10).max(5);

    let (g, _) = workload(n, 7);
    let hub = hub_vertex(&g);
    let label = g.label(hub).to_owned();
    let engine = Engine::with_graph("dblp", g);
    // No cache: every request runs the algorithm, the worst case for
    // per-span instrumentation cost.
    engine.set_cache_capacity(0);
    let server = Server::new(engine);
    let req = Request::get(&format!("/api/v1/search?name={label}&k=4&algo=acq"));

    cx_obs::set_enabled(true);
    let on = median_us(run(&server, &req, warmup, iters));
    cx_obs::set_enabled(false);
    let off = median_us(run(&server, &req, warmup, iters));
    cx_obs::set_enabled(true);

    let overhead_pct = if off > 0.0 { (on - off) / off * 100.0 } else { 0.0 };
    let pass = overhead_pct < 5.0;
    println!(
        "{{\"bench\":\"obs_overhead\",\"vertices\":{n},\"iters\":{iters},\
         \"median_us_on\":{on:.1},\"median_us_off\":{off:.1},\
         \"overhead_pct\":{overhead_pct:.2},\"acceptance_pct\":5.0,\"pass\":{pass}}}"
    );
    if strict && !pass {
        eprintln!("obs_overhead: FAILED acceptance ({overhead_pct:.2}% >= 5%)");
        std::process::exit(1);
    }
}
