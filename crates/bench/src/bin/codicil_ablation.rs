//! Experiment E12 (ablation) — CODICIL's design choices, scored by NMI
//! against planted ground truth: the content/structure blend α, and
//! content edges on/off. This is the kind of per-algorithm analysis the
//! paper's comparison module is built to support. Keywords carry 40%
//! noise and edges carry increasing mixing, so neither signal is clean.
//! Expected shape: the blended setting (α = 0.5, content edges on) beats
//! both pure structure (α = 1, collapses as mixing grows) and pure
//! content (α = 0, capped by keyword noise) — CODICIL's core thesis.

use cx_algos::{Codicil, CodicilParams};
use cx_datagen::{planted_partition, PlantedParams};
use cx_metrics::nmi;

fn main() {
    println!("CODICIL ablation — planted partition, NMI vs ground truth\n");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>16}",
        "p_inter", "alpha=0.0", "alpha=0.5", "alpha=1.0", "no content edges"
    );
    for &p_inter in &[0.02f64, 0.06, 0.10] {
        let (g, truth) = planted_partition(&PlantedParams {
            vertices: 240,
            communities: 4,
            p_intra: 0.15,
            p_inter,
            keywords_per_community: 6,
            keyword_noise: 0.4,
            seed: 11,
        });
        let mut row = format!("{p_inter:>8.3}");
        for alpha in [0.0, 0.5, 1.0] {
            let params = CodicilParams { alpha, ..CodicilParams::default() };
            let labels = Codicil::new(params).detect(&g).labels;
            row.push_str(&format!(" {:>14.3}", nmi(&labels, &truth)));
        }
        let no_content = CodicilParams { content_neighbors: 0, ..CodicilParams::default() };
        let labels = Codicil::new(no_content).detect(&g).labels;
        row.push_str(&format!(" {:>16.3}", nmi(&labels, &truth)));
        println!("{row}");
    }
    println!("\n(α blends structural Jaccard (α) with TF-IDF cosine (1-α) in edge");
    println!("weights; 'no content edges' also removes the content k-NN edges.)");
}
