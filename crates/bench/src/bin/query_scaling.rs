//! Experiment E8 — the "communities returned instantly" claim (Sections 1
//! and 4): end-to-end query latency of the four CR methods as the graph
//! grows. Expected shape: indexed ACQ and Local stay in the
//! microsecond-to-millisecond range regardless of graph size; Global
//! scales linearly with the graph (whole-graph peel); CODICIL (detection,
//! not search) is slowest by orders of magnitude.

use cx_bench::{fmt_duration, hub_vertex, timed, workload};
use cx_explorer::{Engine, QuerySpec};

fn main() {
    let max_n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(64_000);
    let k: u32 = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(4);
    println!("Query latency vs graph size (hub query, k = {k})\n");
    println!(
        "{:>9} {:>9}  {:>10} {:>10} {:>10} {:>12} {:>12}",
        "vertices", "edges", "acq", "local", "global", "codicil", "index build"
    );
    let mut n = 4_000usize;
    while n <= max_n {
        let (g, _) = workload(n, 7);
        let hub = hub_vertex(&g);
        let label = g.label(hub).to_owned();
        let (v, m) = (g.vertex_count(), g.edge_count());
        let (engine, build) = timed(|| Engine::with_graph("dblp", g));
        let spec = QuerySpec::by_label(label).k(k);
        let t = |algo: &str| {
            let (res, took) = timed(|| engine.search(algo, &spec).expect("search failed"));
            let _ = res;
            took
        };
        // CODICIL only on the smaller sizes — it clusters the whole graph.
        let codicil = if n <= 16_000 {
            fmt_duration(t("codicil"))
        } else {
            "(skipped)".to_owned()
        };
        println!(
            "{:>9} {:>9}  {:>10} {:>10} {:>10} {:>12} {:>12}",
            v,
            m,
            fmt_duration(t("acq")),
            fmt_duration(t("local")),
            fmt_duration(t("global")),
            codicil,
            fmt_duration(build)
        );
        n *= 2;
    }
    println!("\nExpected shape: acq/local flat (index + local work only);");
    println!("global grows with the graph; codicil is orders slower.");
}
