//! Experiment E9 — the multi-query-vertex ACQ variant (Section 3.2, the
//! "+" button): latency and answer size as the number of query vertices
//! |Q| grows. Query vertices are drawn from one hub's community so a
//! joint answer exists. Expected shape: latency stays flat-ish (the
//! shared k-core shrinks as |Q| grows) and the answer tightens.

use cx_acq::multi::acq_multi;
use cx_acq::AcqOptions;
use cx_bench::{fmt_duration, hub_vertex, timed, workload};
use cx_cltree::ClTree;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8000);
    let k: u32 = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(4);
    let (g, _) = workload(n, 42);
    let tree = ClTree::build(&g);
    let hub = hub_vertex(&g);
    // Companion query vertices: hub's highest-degree neighbours.
    let mut companions: Vec<_> = g.neighbors(hub).to_vec();
    companions.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    println!(
        "Multi-vertex ACQ — {} vertices, {} edges; k = {k}; seed hub {}\n",
        g.vertex_count(),
        g.edge_count(),
        g.label(hub)
    );
    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>14}",
        "|Q|", "latency", "communities", "avg size", "shared kws"
    );
    for q_count in 1..=4usize {
        let mut qs = vec![hub];
        qs.extend(companions.iter().take(q_count - 1));
        let opts = AcqOptions::with_k(k);
        let (res, took) = timed(|| acq_multi(&g, &tree, &qs, &opts));
        let avg_size = if res.communities.is_empty() {
            0.0
        } else {
            res.communities.iter().map(|c| c.len()).sum::<usize>() as f64
                / res.communities.len() as f64
        };
        println!(
            "{:>4} {:>12} {:>12} {:>14.1} {:>14}",
            q_count,
            fmt_duration(took),
            res.communities.len(),
            avg_size,
            res.shared_keyword_count
        );
    }
    println!("\nExpected shape: more query vertices ⇒ same or fewer shared");
    println!("keywords and a tighter (or empty) joint community, at similar cost.");
}
