//! Experiment E3 — the Figure 6(a) CPJ/CMF bar charts: quality of the
//! communities retrieved by each method, averaged over several hub-author
//! queries. Expected shape (from the ACQ paper's evaluation, which the
//! demo visualises): ACQ highest on both metrics, Global lowest.

use cx_bench::{top_hubs, workload};
use cx_explorer::{Engine, QuerySpec};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4000);
    let k: u32 = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(4);
    let queries: usize = std::env::args().nth(3).and_then(|a| a.parse().ok()).unwrap_or(5);
    let (g, _) = workload(n, 42);
    println!(
        "Figure 6(a) quality bars — {} vertices, {} edges; k = {k}; {queries} hub queries\n",
        g.vertex_count(),
        g.edge_count()
    );
    let hubs = top_hubs(&g, queries);
    let labels: Vec<String> = hubs.iter().map(|&v| g.label(v).to_owned()).collect();
    let engine = Engine::with_graph("dblp", g);

    let methods = ["global", "local", "codicil", "acq"];
    let mut cpj_avg = vec![0.0f64; methods.len()];
    let mut cmf_avg = vec![0.0f64; methods.len()];
    for label in &labels {
        let spec = QuerySpec::by_label(label.clone()).k(k);
        let report = engine.compare(None, &methods, &spec).expect("compare failed");
        for (i, row) in report.rows.iter().enumerate() {
            cpj_avg[i] += row.cpj / labels.len() as f64;
            cmf_avg[i] += row.cmf / labels.len() as f64;
        }
    }

    let cpj_data: Vec<(&str, f64)> =
        methods.iter().zip(&cpj_avg).map(|(&m, &v)| (m, v)).collect();
    let cmf_data: Vec<(&str, f64)> =
        methods.iter().zip(&cmf_avg).map(|(&m, &v)| (m, v)).collect();
    println!("CPJ (community pairwise Jaccard — higher is better)");
    println!("{}\n", cx_metrics::bar_chart(&cpj_data, 40));
    println!("CMF (community member frequency — higher is better)");
    println!("{}\n", cx_metrics::bar_chart(&cmf_data, 40));
    println!("Expected shape: ACQ highest on both; Global lowest (its huge");
    println!("k-core mixes many topics, diluting keyword cohesion).");
}
