//! Store recovery: the payoff benchmark for the durable write path.
//!
//! Builds a DBLP-like graph, runs it through a store-backed engine with
//! a toggle-edit workload, then measures the durability costs that
//! matter operationally:
//!
//! * **append latency** — `cx_store_append_us` p50/p99 over the WAL
//!   appends of the run (the write-path tax per mutation);
//! * **replay-on-boot** — wall time of `Engine::open_durable` against
//!   the full WAL (worst case: no checkpoint, every edit replayed);
//! * **checkpoint recovery** — the same boot after a compaction folded
//!   the WAL into snapshots (best case: load checkpoints, empty WAL).
//!
//! Every boot is also a correctness check: the recovered generation and
//! edge count must match the pre-crash engine exactly.
//!
//! Emits one JSON line per size; writes `BENCH_store_recovery.json`
//! unless `--smoke` is given (CI smoke-runs a small size and must not
//! overwrite the committed 100k-vertex report).
//!
//! Usage: `store_recovery [sizes] [edits] [--smoke]`
//! (defaults `100000`, 200).

use std::path::PathBuf;
use std::time::Instant;

use cx_bench::{hub_vertex, workload};
use cx_explorer::Engine;

/// Bucket snapshot of a histogram: `(upper_bound_us, cumulative_count)`.
type Buckets = Vec<(Option<u64>, u64)>;

/// Estimates the `q`-quantile of the samples recorded *between* two
/// cumulative-bucket snapshots (the global histogram has no reset, so
/// per-phase quantiles come from deltas). Returns the upper bound of the
/// bucket the quantile falls in — the same estimate Prometheus makes.
fn quantile_between(before: &Buckets, after: &Buckets, q: f64) -> f64 {
    let total: u64 = after.last().map(|&(_, c)| c).unwrap_or(0)
        - before.last().map(|&(_, c)| c).unwrap_or(0);
    if total == 0 {
        return 0.0;
    }
    let target = ((total as f64) * q).ceil() as u64;
    let mut last_finite = 0.0;
    for (i, &(bound, after_c)) in after.iter().enumerate() {
        let before_c = before.get(i).map(|&(_, c)| c).unwrap_or(0);
        if let Some(b) = bound {
            last_finite = b as f64;
        }
        if after_c - before_c >= target {
            return last_finite;
        }
    }
    last_finite
}

fn fresh_dir(n: usize) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cx-bench-store-{n}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let positional: Vec<&String> = argv.iter().filter(|a| !a.starts_with("--")).collect();
    let sizes: Vec<usize> = positional
        .first()
        .map(|a| a.split(',').filter_map(|p| p.parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![100_000]);
    let edits: usize = positional.get(1).and_then(|a| a.parse().ok()).unwrap_or(200);

    let append_hist = cx_obs::metrics::global().histogram("cx_store_append_us");
    let mut report = String::new();
    for &n in &sizes {
        let (g, _) = workload(n, 7);
        let edges = g.edge_count();
        let hub = hub_vertex(&g);
        let toggle = [(hub, g.neighbors(hub)[0])];
        let dir = fresh_dir(n);

        // Write phase: one AddGraph frame plus `edits` Edit frames. The
        // append histogram is bracketed after the add, so the quantiles
        // cover this size's steady-state edit appends only (the global
        // histogram has no reset).
        let engine = Engine::open_durable(&dir).expect("open store");
        let t0 = Instant::now();
        engine.try_add_graph("g", g).expect("durable add");
        let load_ms = t0.elapsed().as_secs_f64() * 1e3;
        let before = append_hist.cumulative_buckets();
        for i in 0..edits {
            let (add, remove) =
                if i % 2 == 0 { (&[][..], &toggle[..]) } else { (&toggle[..], &[][..]) };
            engine.apply_edits(Some("g"), add, remove).expect("durable edit");
        }
        let after = append_hist.cumulative_buckets();
        let generation = engine.snapshot(Some("g")).unwrap().generation;
        assert_eq!(generation, edits as u64 + 1);
        let wal_bytes = std::fs::metadata(dir.join(cx_store::WAL_FILE)).unwrap().len();
        drop(engine);

        // Worst-case boot: the whole history replays from the WAL.
        let t0 = Instant::now();
        let engine = Engine::open_durable(&dir).expect("replay-on-boot");
        let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
        let snap = engine.snapshot(Some("g")).expect("recovered graph");
        assert_eq!(snap.generation, generation, "replay must land on the last generation");
        assert_eq!(snap.graph.edge_count(), edges, "toggled graph must end unchanged");

        // Fold the WAL into checkpoints, then boot again: best case.
        let t0 = Instant::now();
        engine.compact_store().expect("compaction").expect("store attached");
        let compact_ms = t0.elapsed().as_secs_f64() * 1e3;
        drop(engine);
        let t0 = Instant::now();
        let engine = Engine::open_durable(&dir).expect("checkpoint boot");
        let checkpoint_ms = t0.elapsed().as_secs_f64() * 1e3;
        let snap = engine.snapshot(Some("g")).expect("recovered graph");
        assert_eq!(snap.generation, generation);
        assert_eq!(snap.graph.edge_count(), edges);
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);

        let line = format!(
            "{{\"vertices\":{n},\"edges\":{edges},\"edits\":{edits},\"wal_bytes\":{wal_bytes},\
             \"append_p50_us\":{:.1},\"append_p99_us\":{:.1},\"load_ms\":{load_ms:.1},\
             \"replay_on_boot_ms\":{replay_ms:.1},\"compaction_ms\":{compact_ms:.1},\
             \"checkpoint_boot_ms\":{checkpoint_ms:.1},\"generation\":{generation}}}",
            quantile_between(&before, &after, 0.50),
            quantile_between(&before, &after, 0.99),
        );
        println!("{line}");
        report.push_str(&line);
        report.push('\n');
    }

    if smoke {
        println!("(smoke run: BENCH_store_recovery.json not written)");
    } else {
        std::fs::write("BENCH_store_recovery.json", &report).expect("write report");
    }
}
