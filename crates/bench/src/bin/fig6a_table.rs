//! Experiment E2 — regenerates the Figure 6(a) "Community Statistics"
//! table: Method / Communities / Vertices / Edges / Degree (plus CPJ, CMF
//! and latency), for Global, Local, CODICIL and ACQ on the DBLP-like
//! workload with a hub-author query and degree ≥ 4.
//!
//! Paper values (authors' DBLP sample, q = Jim Gray, degree ≥ 4):
//!   Global   1 community   305 vertices  763 edges  5.0 degree
//!   Local    1 community    50 vertices  160 edges  6.4 degree
//!   CODICIL  1 community    41 vertices   72 edges  3.5 degree
//!   ACQ      3 communities  39 vertices  102 edges  5.2 degree
//!
//! The absolute numbers depend on the (private) dataset; the shape to
//! check is: Global ≫ Local ≥ CODICIL ≈ ACQ in size, ACQ possibly >1
//! community, ACQ best on CPJ/CMF.

use cx_bench::{hub_vertex, workload};
use cx_explorer::{Engine, QuerySpec};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4000);
    let k: u32 = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(4);
    let (g, _) = workload(n, 42);
    println!(
        "Figure 6(a) reproduction — DBLP-like graph: {} vertices, {} edges; k = {k}",
        g.vertex_count(),
        g.edge_count()
    );
    let q = hub_vertex(&g);
    let label = g.label(q).to_owned();
    println!("query vertex: {label} (degree {})\n", g.degree(q));

    let engine = Engine::with_graph("dblp", g);
    let spec = QuerySpec::by_label(label).k(k);
    let report = engine
        .compare(None, &["global", "local", "codicil", "acq"], &spec)
        .expect("comparison failed");
    println!("{}", report.table());
    println!("Paper (for shape comparison):");
    println!("{:<14} {:>11} {:>9} {:>8} {:>7}", "Method", "Communities", "Vertices", "Edges", "Degree");
    println!("{:<14} {:>11} {:>9} {:>8} {:>7}", "global", 1, 305, 763, 5.0);
    println!("{:<14} {:>11} {:>9} {:>8} {:>7}", "local", 1, 50, 160, 6.4);
    println!("{:<14} {:>11} {:>9} {:>8} {:>7}", "codicil", 1, 41, 72, 3.5);
    println!("{:<14} {:>11} {:>9} {:>8} {:>7}", "acq", 3, 39, 102, 5.2);
}
