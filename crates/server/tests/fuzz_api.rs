//! API fuzz (cx-check driver): mutated requests — truncated bodies, type
//! swaps, huge/negative ids, unknown vertices/graphs/algorithms — must
//! never panic the handler, never produce a 5xx, and always return
//! well-formed JSON errors.

use cx_check::{fuzz_server, FuzzParams};
use cx_explorer::Engine;
use cx_server::{Json, Request, Server};

fn server() -> Server {
    let engine = Engine::with_graph("fig5", cx_datagen::figure5_graph());
    let (dblp, _) = cx_datagen::dblp_like(&cx_check::workload::check_params(90, 13));
    engine.add_graph("dblp", dblp);
    Server::new(engine)
}

#[test]
fn survives_500_mutated_requests() {
    let report = fuzz_server(&server(), &FuzzParams { requests: 500, seed: 0xFA11 });
    assert_eq!(report.total, 500);
    assert!(report.ok(), "{}\nfirst failures: {:?}", report.summary(), {
        let mut f = report.failures.clone();
        f.truncate(10);
        f
    });
    // The stream must actually exercise both success and error paths.
    assert!(report.status_counts.get(&200).copied().unwrap_or(0) > 0, "no 200s seen");
    assert!(
        report.status_counts.keys().any(|s| *s >= 400),
        "no error statuses seen"
    );
}

#[test]
fn fuzz_stream_is_deterministic() {
    let p = FuzzParams { requests: 120, seed: 42 };
    let a = fuzz_server(&server(), &p);
    let b = fuzz_server(&server(), &p);
    assert_eq!(a.status_counts, b.status_counts);
}

/// Directed regression cases distilled from the fuzzer's mutation
/// grammar — the handcrafted "worst of" each mutation class.
#[test]
fn directed_hostile_requests_get_json_errors() {
    let s = server();
    let cases = [
        Request::get("/api/search?name=A&k=99999999999999999999"),
        Request::get("/api/search?id=-5"),
        Request::get("/api/search?name=%zz%1"),
        Request::get("/api/svg?name=A&index=4294967296"),
        Request::get("/api/compare?name=A&algos=,,,"),
        Request::get("/api/detect?algo=<script>alert(1)</script>"),
        Request::get("/api/profile?id=NaN"),
        Request::get("/api/stats?graph=ghost-404"),
        Request::post("/api/edit", &b"{\"add\":[[0,"[..]),
        Request::post("/api/edit", &b"{\"add\":[[18446744073709551615,0]]}"[..]),
        Request::post("/api/edit", [0xff, 0xfe, 0x80].as_slice()),
        Request::post("/api/upload?name=x", &b"v\tonly-half"[..]),
    ];
    for req in cases {
        let resp = s.handle(&req);
        assert!(
            matches!(resp.status, 200 | 400 | 404 | 405),
            "{} {}: status {}",
            req.method,
            req.path,
            resp.status
        );
        if resp.status >= 400 {
            let v = Json::parse(&resp.text())
                .unwrap_or_else(|e| panic!("{} {}: bad JSON ({e})", req.method, req.path));
            let msg = v.get("error").and_then(Json::as_str).unwrap_or("");
            assert!(!msg.is_empty(), "{} {}: empty error", req.method, req.path);
        }
    }
}
