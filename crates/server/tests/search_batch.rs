//! End-to-end contract tests for `POST /api/v1/search_batch` over the
//! real HTTP stack: mixed valid/invalid members degrade per-slot, item
//! pagination follows the GET `search` clamp rules, the batch-size cap
//! is enforced, and the legacy `/api` namespace answers with a typed 404
//! (the endpoint never existed there).

use std::io::{Read, Write};
use std::net::TcpStream;

use cx_explorer::Engine;
use cx_server::{Json, Server};

fn http_post(port: u16, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

fn serve_fig5() -> cx_server::ServerHandle {
    Server::new(Engine::with_graph("fig5", cx_datagen::figure5_graph()))
        .serve_background()
        .unwrap()
}

#[test]
fn mixed_batch_degrades_per_slot() {
    let handle = serve_fig5();
    let port = handle.port();
    let body = r#"{"queries":[
        {"name":"A","k":2,"keywords":["x"]},
        {"names":["A","D"],"k":2},
        {"id":0,"k":2},
        {"name":"ZZZ","k":2},
        {"algo":"acq"},
        {"name":"A","algo":"ghost"},
        {"name":"A","k":"three"}
    ]}"#;
    let (status, resp) = http_post(port, "/api/v1/search_batch", body);
    assert_eq!(status, 200, "{resp}");
    let v = Json::parse(&resp).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let d = v.get("data").unwrap();
    assert_eq!(d.get("count").and_then(Json::as_f64), Some(7.0));
    assert_eq!(d.get("succeeded").and_then(Json::as_f64), Some(3.0));
    let results = d.get("results").and_then(Json::as_array).unwrap();

    // The three well-formed selectors (label, multi-label, id) succeed
    // and report the spec they resolved.
    for (i, want_label) in [(0usize, "A"), (1, "A"), (2, "A")] {
        let item = &results[i];
        assert_eq!(item.get("ok").and_then(Json::as_bool), Some(true), "item {i}");
        let data = item.get("data").unwrap();
        let q = data.get("query").unwrap();
        assert_eq!(q.get("label").and_then(Json::as_str), Some(want_label));
        assert_eq!(q.get("algo").and_then(Json::as_str), Some("acq"));
    }
    // Item 0 constrained on keyword "x" — part of the paper example's
    // shared theme, so the community survives the filter and its theme
    // (serialised straight from the interner) still lists both words.
    let constrained = results[0].get("data").unwrap();
    assert_eq!(constrained.get("total_communities").and_then(Json::as_f64), Some(1.0));
    let comms = constrained.get("communities").and_then(Json::as_array).unwrap();
    let theme = comms[0].get("theme").and_then(Json::as_array).unwrap();
    assert!(theme.iter().any(|t| t.as_str() == Some("x")), "{resp}");

    // The failures each carry the right typed code.
    let code = |i: usize| {
        results[i]
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .map(str::to_owned)
    };
    assert_eq!(code(3).as_deref(), Some("unknown_vertex"), "unknown label");
    assert_eq!(code(4).as_deref(), Some("bad_query"), "no vertex selector");
    assert_eq!(code(5).as_deref(), Some("unknown_algorithm"), "bogus algo");
    assert_eq!(code(6).as_deref(), Some("bad_query"), "non-integer k");
}

#[test]
fn item_pagination_clamps_like_get_search() {
    let handle = serve_fig5();
    let port = handle.port();
    let body = r#"{"queries":[
        {"name":"A","k":2,"limit":999999},
        {"name":"A","k":2,"limit":-7,"offset":-1},
        {"name":"A","k":2,"limit":2.5},
        {"name":"A","k":2,"offset":5}
    ]}"#;
    let (status, resp) = http_post(port, "/api/v1/search_batch", body);
    assert_eq!(status, 200, "{resp}");
    let v = Json::parse(&resp).unwrap();
    let results = v.get("data").unwrap().get("results").and_then(Json::as_array).unwrap();
    let data = |i: usize| results[i].get("data").unwrap().clone();
    // Oversize clamps to the max, hostile values fall back to defaults.
    assert_eq!(data(0).get("limit").and_then(Json::as_f64), Some(100.0));
    assert_eq!(data(1).get("limit").and_then(Json::as_f64), Some(20.0));
    assert_eq!(data(1).get("offset").and_then(Json::as_f64), Some(0.0));
    assert_eq!(data(2).get("limit").and_then(Json::as_f64), Some(20.0));
    // Offset past the end: empty slice, total preserved.
    assert_eq!(data(3).get("total_communities").and_then(Json::as_f64), Some(1.0));
    assert_eq!(data(3).get("communities").and_then(Json::as_array).map(|a| a.len()), Some(0));
}

#[test]
fn batch_cap_and_malformed_bodies_are_rejected_whole() {
    let handle = serve_fig5();
    let port = handle.port();
    let items: Vec<String> = (0..65).map(|_| r#"{"name":"A"}"#.to_owned()).collect();
    let oversize = format!("{{\"queries\":[{}]}}", items.join(","));
    for (body, want_code) in [
        (oversize.as_str(), "bad_query"),
        (r#"{"queries":[]}"#, "bad_query"),
        ("{broken", "bad_json"),
        (r#"{"queries":"nope"}"#, "bad_json"),
    ] {
        let (status, resp) = http_post(port, "/api/v1/search_batch", body);
        assert_eq!(status, 400, "{resp}");
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
            Some(want_code),
            "{resp}"
        );
    }
}

#[test]
fn legacy_namespace_answers_typed_not_found() {
    let handle = serve_fig5();
    let port = handle.port();
    let (status, resp) = http_post(port, "/api/search_batch", r#"{"queries":[{"name":"A"}]}"#);
    assert_eq!(status, 404, "{resp}");
    let v = Json::parse(&resp).unwrap();
    assert_eq!(v.get("code").and_then(Json::as_str), Some("not_found"));
}
