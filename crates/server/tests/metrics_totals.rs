//! Concurrency test for the cx-obs HTTP counters. Lives in its own test
//! binary (one test, one process) because the metrics registry is
//! process-global: any other test issuing requests in parallel would
//! shift the totals.
//!
//! Counting order contract: `route()` bumps `cx_http_requests_total`
//! *after* dispatch builds the response, so a `/metrics` scrape never
//! counts itself in its own body. Hence: initial scrape (A), N worker
//! requests, final scrape (B) → B's body reports `initial + 1 + N`
//! (A counted, B not).

use std::sync::Arc;

use cx_explorer::Engine;
use cx_server::{Request, Server};

/// Sums every `cx_http_requests_total{class=...}` sample in an
/// exposition body, and reads `cx_http_request_duration_us_count`.
fn totals(body: &str) -> (u64, u64) {
    let mut requests = 0u64;
    let mut duration_count = 0u64;
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("cx_http_requests_total{") {
            let v = rest.split_whitespace().next_back().unwrap_or("0");
            requests += v.parse::<u64>().unwrap_or(0);
        }
        if let Some(rest) = line.strip_prefix("cx_http_request_duration_us_count ") {
            duration_count = rest.trim().parse().unwrap_or(0);
        }
    }
    (requests, duration_count)
}

#[test]
fn metrics_totals_match_requests_issued_under_concurrency() {
    let s = Arc::new(Server::new(Engine::with_graph("fig5", cx_datagen::figure5_graph())));

    let initial = s.handle(&Request::get("/metrics"));
    assert_eq!(initial.status, 200);
    let (req0, dur0) = totals(&initial.text());

    const THREADS: usize = 8;
    const PER_THREAD: usize = 25;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let target = match (t + i) % 4 {
                        0 => "/api/v1/graphs".to_owned(),
                        1 => "/api/v1/search?name=A&k=2&algo=acq".to_owned(),
                        2 => "/api/v1/stats".to_owned(),
                        _ => format!("/api/v1/search?name=ZZZ{t}"),
                    };
                    let r = s.handle(&Request::get(&target));
                    assert!(matches!(r.status, 200 | 404), "{target}: {}", r.status);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let n = (THREADS * PER_THREAD) as u64;
    let fin = s.handle(&Request::get("/metrics"));
    let (req1, dur1) = totals(&fin.text());
    // +1: the initial scrape was counted after its own body was built;
    // the final scrape is not yet counted in its own body.
    assert_eq!(req1, req0 + n + 1, "request counter must match requests issued");
    assert_eq!(dur1, dur0 + n + 1, "duration histogram count must match");

    // The write-path metrics share the same process-global registry, so
    // they are asserted here too (HTTP counting is already settled).
    // Every edit records its wall time in the cx_edit_apply_us histogram…
    let edit_us = cx_obs::global().histogram("cx_edit_apply_us");
    let fallbacks = cx_obs::global().counter("cx_incremental_fallback_total");
    let (edits0, fb0) = (edit_us.count(), fallbacks.get());
    let e = Engine::with_graph("fig5", cx_datagen::figure5_graph());
    // Dropping H–I only zeroes two of ten core numbers: well under the
    // 25% fallback threshold, so this edit must stay incremental.
    e.apply_edits(None, &[], &[(cx_graph::VertexId(7), cx_graph::VertexId(8))]).unwrap();
    assert_eq!(edit_us.count(), edits0 + 1, "an edit must record cx_edit_apply_us");
    assert_eq!(fallbacks.get(), fb0, "a small edit must stay incremental");

    // …and dropping the whole K4 (6 edges, >25% of cores change) pushes
    // the CL-tree repair over the fallback threshold.
    let k4: Vec<_> = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        .iter()
        .map(|&(u, v)| (cx_graph::VertexId(u), cx_graph::VertexId(v)))
        .collect();
    e.apply_edits(None, &[], &k4).unwrap();
    assert_eq!(edit_us.count(), edits0 + 2);
    assert_eq!(fallbacks.get(), fb0 + 1, "mass core change must count a fallback");

    // Both series are visible on the exposition endpoint.
    let scrape = s.handle(&Request::get("/metrics")).text();
    assert!(scrape.contains("cx_edit_apply_us_count"), "histogram missing from /metrics");
    assert!(
        scrape.contains("cx_incremental_fallback_total"),
        "fallback counter missing from /metrics"
    );

    // The ACQ signature-pruning metrics share the same registry. Two K4s
    // joined through a degree-2 middle vertex give the CL-tree two sibling
    // level-3 subtrees; querying from the left K4 with a keyword only it
    // carries must skip the right subtree — observable as counter bumps
    // plus one more sample in the verified-candidates histogram.
    let pruned = cx_obs::global().counter("cx_acq_subtrees_pruned_total");
    let sig_hits = cx_obs::global().counter("cx_acq_signature_hits_total");
    let verified = cx_obs::global().histogram("cx_acq_candidates_verified");
    let (p0, h0, v0) = (pruned.get(), sig_hits.get(), verified.count());
    let mut b = cx_graph::GraphBuilder::with_capacity(9, 14);
    for i in 0..4 {
        b.add_vertex(&format!("l{i}"), &["a"]);
    }
    for i in 0..4 {
        b.add_vertex(&format!("r{i}"), &["b"]);
    }
    b.add_vertex("m", &["a", "b"]);
    for i in 0..4u32 {
        for j in (i + 1)..4 {
            b.add_edge(cx_graph::VertexId(i), cx_graph::VertexId(j));
            b.add_edge(cx_graph::VertexId(4 + i), cx_graph::VertexId(4 + j));
        }
    }
    b.add_edge(cx_graph::VertexId(0), cx_graph::VertexId(8));
    b.add_edge(cx_graph::VertexId(4), cx_graph::VertexId(8));
    let g2 = b.try_build().unwrap();
    let tree = cx_cltree::ClTree::build(&g2);
    let res = cx_acq::acq(
        &g2,
        &tree,
        cx_graph::VertexId(0),
        &cx_acq::AcqOptions::with_k(1),
        cx_acq::AcqStrategy::Dec,
    );
    assert!(!res.communities.is_empty(), "left K4 query must find a community");
    assert!(pruned.get() > p0, "the right-K4 subtree must be signature-pruned");
    assert!(sig_hits.get() > h0, "descended subtrees must count signature hits");
    assert_eq!(verified.count(), v0 + 1, "one query → one verified-candidates sample");

    // All three new families are visible on the exposition endpoint.
    let scrape = s.handle(&Request::get("/metrics")).text();
    for family in [
        "cx_acq_subtrees_pruned_total",
        "cx_acq_signature_hits_total",
        "cx_acq_candidates_verified_count",
    ] {
        assert!(scrape.contains(family), "{family} missing from /metrics:\n{scrape}");
    }
}
