//! Property tests for the protocol layer: the JSON parser must be total
//! (never panic) and inverse to the writer; URL decoding must be total;
//! the router must answer every request without panicking.
//!
//! Gated behind the non-default `proptest` feature: the build environment
//! is offline, so the `proptest` dev-dependency is not in the manifest.
//! Restore it (and `rand`) before enabling the feature in a networked
//! environment — see DESIGN.md "Offline build policy".
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use cx_server::{Json, Request, Server};

/// Strategy for arbitrary JSON values of bounded depth.
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite doubles that survive text round-trips.
        (-1e9f64..1e9).prop_map(|x| Json::Number((x * 1e3).round() / 1e3)),
        "[a-zA-Z0-9 _\\-\\.\\n\\t\"\\\\]{0,24}".prop_map(Json::String),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            proptest::collection::btree_map("[a-z]{1,8}", inner, 0..6).prop_map(Json::Object),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn json_write_parse_roundtrip(v in arb_json()) {
        let text = v.to_string();
        let parsed = Json::parse(&text).expect("writer output must parse");
        // Numbers round-trip through our fixed-precision strategy.
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn json_parse_is_total(input in "\\PC{0,64}") {
        // Any unicode garbage: must return Ok or Err, never panic.
        let _ = Json::parse(&input);
    }

    #[test]
    fn json_parse_fuzzy_structures(input in "[\\[\\]{}\",:0-9a-z \\\\.eE+-]{0,48}") {
        // Structure-shaped garbage hits the recursive paths.
        let _ = Json::parse(&input);
    }

    #[test]
    fn url_decode_is_total(input in "\\PC{0,64}") {
        let _ = cx_server::http::url_decode(&input);
    }

    #[test]
    fn url_decode_inverts_encoding(s in "[a-zA-Z0-9 /?=&\\-_.~%]{0,32}") {
        // Encode then decode must give the original back.
        let encoded: String = s
            .bytes()
            .map(|b| {
                if b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.' || b == b'~' {
                    (b as char).to_string()
                } else {
                    format!("%{b:02X}")
                }
            })
            .collect();
        prop_assert_eq!(cx_server::http::url_decode(&encoded), s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The router never panics, whatever the request line looks like.
    #[test]
    fn router_is_total(
        path in "/[a-z/]{0,20}",
        query in "[a-z0-9=&%+]{0,30}",
        post in any::<bool>(),
        body in "\\PC{0,64}",
    ) {
        let server = Server::new(cx_explorer::Engine::with_graph(
            "fig5",
            cx_datagen::figure5_graph(),
        ));
        let target = format!("{path}?{query}");
        let req = if post {
            Request::post(&target, body.into_bytes())
        } else {
            Request::get(&target)
        };
        let resp = server.handle(&req);
        prop_assert!(matches!(resp.status, 200 | 400 | 404 | 405), "status {}", resp.status);
    }
}
